// Deterministic fault injection across the serve subsystem's failpoint
// sites (serve.budget_reserve, serve.budget_commit, serve.persist,
// serve.admit), checking the two invariants the budget protocol promises
// under faults:
//   * spend-exactly-once — a committed charge appears once, whether the
//     persist succeeded, failed, or the process "crashed" between the
//     in-memory charge and the disk write;
//   * never-negative — no fault sequence drives spent or reserved below
//     zero or above the budget.
#include <sys/stat.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "serve/admission.h"
#include "serve/budget.h"
#include "util/failpoint.h"

namespace bolton {
namespace serve {
namespace {

std::string MakeStateDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0700);
  std::remove((dir + "/bolton.budget").c_str());
  std::remove((dir + "/bolton.budget.tmp").c_str());
  return dir;
}

TenantBudgetOptions DiskOptions(const std::string& dir_name) {
  TenantBudgetOptions options;
  options.default_budget = PrivacyParams{1.0, 0.0};
  options.state_dir = MakeStateDir(dir_name);
  options.persist_retry.max_attempts = 3;
  options.persist_retry.backoff_base_ms = 0;  // fast tests
  return options;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Default().Clear(); }
};

TEST_F(ServeChaosTest, ReserveFaultRefusesCleanlyAndRecovers) {
  auto manager =
      TenantBudgetManager::Open(DiskOptions("chaos_reserve")).MoveValue();
  ASSERT_TRUE(FailpointRegistry::Default()
                  .Configure("serve.budget_reserve:error@1")
                  .ok());
  auto failed = manager->Reserve("alice", {0.3, 0.0}, "x");
  ASSERT_FALSE(failed.ok());
  // Nothing held, nothing spent.
  TenantAccountView view = manager->Account("alice");
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.0);
  // The next attempt (failpoint disarmed after hit 1) succeeds.
  EXPECT_TRUE(manager->Reserve("alice", {0.3, 0.0}, "x").ok());
}

TEST_F(ServeChaosTest, PersistFaultFailsReserveAfterBoundedRetries) {
  auto manager =
      TenantBudgetManager::Open(DiskOptions("chaos_persist_hard")).MoveValue();
  const uint64_t hits_before =
      FailpointRegistry::Default().Stats("serve.persist").hits;
  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("serve.persist:error").ok());
  auto failed = manager->Reserve("alice", {0.3, 0.0}, "x");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  // All three attempts consumed by the write-ahead persist.
  EXPECT_EQ(FailpointRegistry::Default().Stats("serve.persist").hits -
                hits_before,
            3u);
  // The rolled-back hold left no trace.
  TenantAccountView view = manager->Account("alice");
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
  FailpointRegistry::Default().Clear();
  EXPECT_TRUE(manager->Reserve("alice", {0.3, 0.0}, "x").ok());
}

TEST_F(ServeChaosTest, TransientPersistFaultMaskedByRetry) {
  auto manager =
      TenantBudgetManager::Open(DiskOptions("chaos_persist_soft")).MoveValue();
  // First persist attempt fails, retry succeeds — caller never notices.
  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("serve.persist:error@1").ok());
  auto hold = manager->Reserve("alice", {0.3, 0.0}, "x");
  ASSERT_TRUE(hold.ok()) << hold.status().ToString();
  EXPECT_TRUE(manager->Commit(hold.value()).ok());
}

TEST_F(ServeChaosTest, CommitPersistFaultStillSpendsExactlyOnce) {
  TenantBudgetOptions options = DiskOptions("chaos_commit");
  uint64_t hold = 0;
  {
    auto manager = TenantBudgetManager::Open(options).MoveValue();
    hold = manager->Reserve("alice", {0.4, 0.0}, "train").MoveValue();
    // Every persist from here on fails: the commit's in-memory charge must
    // land anyway (the noisy model is already released by commit time).
    ASSERT_TRUE(
        FailpointRegistry::Default().Configure("serve.budget_commit:error")
            .ok());
    ASSERT_TRUE(manager->Commit(hold).ok());
    TenantAccountView view = manager->Account("alice");
    EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.4);
    EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
    FailpointRegistry::Default().Clear();
    // Process "crashes" here: the state file still shows the hold pending.
  }
  // Restart: recovery promotes the pending hold — same 0.4, exactly once.
  auto recovered = TenantBudgetManager::Open(options).MoveValue();
  EXPECT_EQ(recovered->recovered_holds(), 1u);
  TenantAccountView view = recovered->Account("alice");
  EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.4);
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
}

TEST_F(ServeChaosTest, RefundPersistFaultReChargesConservativelyAtRestart) {
  TenantBudgetOptions options = DiskOptions("chaos_refund");
  {
    auto manager = TenantBudgetManager::Open(options).MoveValue();
    uint64_t hold = manager->Reserve("alice", {0.2, 0.0}, "x").MoveValue();
    ASSERT_TRUE(
        FailpointRegistry::Default().Configure("serve.persist:error").ok());
    // Refund succeeds in memory but cannot persist.
    ASSERT_TRUE(manager->Refund(hold).ok());
    EXPECT_DOUBLE_EQ(manager->Account("alice").spent.epsilon, 0.0);
    FailpointRegistry::Default().Clear();
  }
  // Restart from the stale file: the hold is still pending there and is
  // conservatively promoted. Over-charging ε is the safe direction — a
  // crash must never UNDER-count spend.
  auto recovered = TenantBudgetManager::Open(options).MoveValue();
  EXPECT_EQ(recovered->recovered_holds(), 1u);
  EXPECT_DOUBLE_EQ(recovered->Account("alice").spent.epsilon, 0.2);
}

TEST_F(ServeChaosTest, FaultStormKeepsAccountsSane) {
  auto manager =
      TenantBudgetManager::Open(DiskOptions("chaos_storm")).MoveValue();
  // Every 3rd persist fails, every 5th reserve gate fires.
  ASSERT_TRUE(FailpointRegistry::Default()
                  .Configure("serve.persist:1in3;serve.budget_reserve:1in5")
                  .ok());
  int commits = 0, refunds = 0, failures = 0;
  for (int i = 0; i < 40; ++i) {
    auto hold = manager->Reserve("alice", {0.01, 0.0}, "storm");
    if (!hold.ok()) {
      ++failures;
      continue;
    }
    if (i % 2 == 0) {
      if (manager->Commit(hold.value()).ok()) ++commits;
    } else {
      if (manager->Refund(hold.value()).ok()) ++refunds;
    }
  }
  FailpointRegistry::Default().Clear();
  EXPECT_GT(failures, 0);  // the storm actually fired
  TenantAccountView view = manager->Account("alice");
  // Never-negative / never-over-budget invariants.
  EXPECT_GE(view.spent.epsilon, 0.0);
  EXPECT_GE(view.reserved.epsilon, -1e-12);
  EXPECT_LE(view.spent.epsilon, 1.0 + 1e-9);
  // Exactly the committed holds are spent, to float tolerance.
  EXPECT_NEAR(view.spent.epsilon, commits * 0.01, 1e-9);
  EXPECT_EQ(view.commits, static_cast<uint64_t>(commits));
  EXPECT_EQ(view.refunds, static_cast<uint64_t>(refunds));
}

TEST_F(ServeChaosTest, AdmitFaultRefusesWithoutLeakingSlots) {
  AdmissionController admission(AdmissionOptions{4, 2});
  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("serve.admit:error@1").ok());
  auto refused = admission.Admit("alice");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(admission.inflight(), 0u);
  // Disarmed after the first hit: normal admission resumes and caps hold.
  auto t1 = admission.Admit("alice");
  auto t2 = admission.Admit("alice");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto busy = admission.Admit("alice");
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.status().code(), StatusCode::kFailedPrecondition);
  auto other = admission.Admit("bob");
  EXPECT_TRUE(other.ok());  // per-tenant cap, not global
  auto third = admission.Admit("carol");
  auto overload = admission.Admit("dave");
  ASSERT_TRUE(third.ok());
  ASSERT_FALSE(overload.ok());  // global cap of 4
  EXPECT_EQ(overload.status().code(), StatusCode::kOutOfRange);
  // RAII release: dropping a ticket frees its slot.
  t2.value().Release();
  EXPECT_EQ(admission.inflight(), 3u);
  EXPECT_TRUE(admission.Admit("dave").ok());
}

}  // namespace
}  // namespace serve
}  // namespace bolton
