// Tests for the sampling profiler stack: the lock-free sample ring, the
// ELF-index symbolizer, the profiler control surface (including concurrent
// start/stop/dump, which is what the TSan job exercises), and the
// collapsed/JSON exporters.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "util/sample_ring.h"
#include "util/symbolize.h"

namespace bolton {
namespace {

using obs::ProfileDump;
using obs::Profiler;
using obs::ProfilerOptions;

// ThreadSanitizer intercepts signal delivery: a SIGPROF arriving in
// instrumented code is queued and the handler runs deferred at the next
// runtime interceptor, so the captured stack shows the delivery point
// (__tsan::ProcessPendingSignals...), not the interrupted burn loop.
// Under TSan this suite therefore checks the concurrency contract and
// that sampling happens at all; exact frame attribution is a property of
// uninstrumented builds only.
#if defined(__SANITIZE_THREAD__)
#define BOLTON_PROFILER_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BOLTON_PROFILER_TEST_UNDER_TSAN 1
#endif
#endif
#ifdef BOLTON_PROFILER_TEST_UNDER_TSAN
constexpr bool kExactAttribution = false;
#else
constexpr bool kExactAttribution = true;
#endif

// A distinctly named leaf the sampler should catch; must not be inlined or
// folded away, hence the volatile accumulator and noinline.
__attribute__((noinline)) double ProfilerTestBurnLeaf(int iters) {
  volatile double acc = 0.0;
  for (int i = 0; i < iters; ++i) acc = acc + std::sqrt(static_cast<double>(i));
  return acc;
}

// Burns CPU until `until` (steady clock), through the named leaf.
void BurnUntil(std::chrono::steady_clock::time_point until) {
  while (std::chrono::steady_clock::now() < until) {
    ProfilerTestBurnLeaf(5000);
  }
}

ProfilerOptions FastOptions() {
  ProfilerOptions options;
  options.hz = 997;  // prime, fast enough that short tests collect samples
  return options;
}

TEST(SampleRingTest, PushAndCopyCommitted) {
  StackSampleRing ring;
  ring.Reset(4);
  void* pcs[2] = {reinterpret_cast<void*>(0x1000),
                  reinterpret_cast<void*>(0x2000)};
  EXPECT_TRUE(ring.Push(pcs, 2, 7));
  EXPECT_TRUE(ring.Push(pcs, 1, 8));
  EXPECT_EQ(ring.Size(), 2u);

  std::vector<StackSampleRing::Sample> out;
  ring.CopyCommitted(0, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].thread_id, 7u);
  EXPECT_EQ(out[0].depth, 2u);
  EXPECT_EQ(out[0].pcs[1], pcs[1]);
  EXPECT_EQ(out[1].depth, 1u);

  out.clear();
  ring.CopyCommitted(1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].thread_id, 8u);
}

TEST(SampleRingTest, FullRingCountsDrops) {
  StackSampleRing ring;
  ring.Reset(2);
  void* pc = reinterpret_cast<void*>(0x1000);
  EXPECT_TRUE(ring.Push(&pc, 1, 1));
  EXPECT_TRUE(ring.Push(&pc, 1, 1));
  EXPECT_FALSE(ring.Push(&pc, 1, 1));
  EXPECT_FALSE(ring.Push(&pc, 1, 1));
  EXPECT_EQ(ring.Size(), 2u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SampleRingTest, DepthIsCappedAtMaxDepth) {
  StackSampleRing ring;
  ring.Reset(1);
  std::vector<void*> pcs(StackSampleRing::kMaxDepth + 10,
                         reinterpret_cast<void*>(0x1000));
  EXPECT_TRUE(ring.Push(pcs.data(), pcs.size(), 1));
  std::vector<StackSampleRing::Sample> out;
  ring.CopyCommitted(0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].depth, StackSampleRing::kMaxDepth);
}

TEST(SymbolizeTest, ResolvesOwnExportedFunction) {
  // &Demangle is an exported repo symbol; the index must name it.
  auto result = SymbolizePc(reinterpret_cast<void*>(&Demangle));
  EXPECT_TRUE(result.resolved);
  EXPECT_NE(result.name.find("Demangle"), std::string::npos) << result.name;
}

TEST(SymbolizeTest, ResolvesStaticFunctionViaSymtab) {
  // ProfilerTestBurnLeaf lives in an anonymous namespace — invisible to
  // dladdr, resolvable only through the binary's .symtab.
  auto result = SymbolizePc(reinterpret_cast<void*>(&ProfilerTestBurnLeaf));
  EXPECT_TRUE(result.resolved);
  EXPECT_NE(result.name.find("ProfilerTestBurnLeaf"), std::string::npos)
      << result.name;
}

TEST(SymbolizeTest, UnknownAddressGetsPlaceholder) {
  auto result = SymbolizePc(reinterpret_cast<void*>(uintptr_t{0x12}));
  EXPECT_FALSE(result.resolved);
  EXPECT_NE(result.name.find("[0x"), std::string::npos) << result.name;
}

TEST(SymbolizeTest, BatchDeduplicates) {
  void* pc = reinterpret_cast<void*>(&Demangle);
  auto table = SymbolizePcs({pc, pc, pc});
  ASSERT_EQ(table.size(), 1u);
  EXPECT_TRUE(table[pc].resolved);
}

TEST(ProfilerTest, RejectsBadOptions) {
  ProfilerOptions bad_hz;
  bad_hz.hz = 0;
  EXPECT_FALSE(Profiler::Default().Start(bad_hz).ok());
  bad_hz.hz = 1001;
  EXPECT_FALSE(Profiler::Default().Start(bad_hz).ok());
  ProfilerOptions bad_capacity;
  bad_capacity.max_samples = 0;
  EXPECT_FALSE(Profiler::Default().Start(bad_capacity).ok());
  EXPECT_FALSE(Profiler::Default().running());
}

TEST(ProfilerTest, StopWithoutStartFails) {
  EXPECT_FALSE(Profiler::Default().Stop().ok());
}

TEST(ProfilerTest, SecondStartFailsWhileRunning) {
  ASSERT_TRUE(Profiler::Default().Start(FastOptions()).ok());
  EXPECT_FALSE(Profiler::Default().Start(FastOptions()).ok());
  EXPECT_TRUE(Profiler::Default().Stop().ok());
}

TEST(ProfilerTest, CapturesAndSymbolizesBusyLoop) {
  Profiler& profiler = Profiler::Default();
  ASSERT_TRUE(profiler.Start(FastOptions()).ok());
  BurnUntil(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(300));
  ASSERT_TRUE(profiler.Stop().ok());

  const ProfileDump dump = profiler.Dump();
  EXPECT_EQ(dump.hz, 997);
  EXPECT_GT(dump.samples, 0u);
  EXPECT_GT(dump.duration_ns, 0u);
  ASSERT_FALSE(dump.stacks.empty());

  // The burn leaf must appear, and the dominant stacks must symbolize.
  bool saw_burn_leaf = false;
  for (const auto& stack : dump.stacks) {
    for (const auto& frame : stack.frames) {
      if (frame.find("ProfilerTestBurnLeaf") != std::string::npos) {
        saw_burn_leaf = true;
      }
    }
  }
  if (kExactAttribution) {
    EXPECT_TRUE(saw_burn_leaf);
    EXPECT_GT(dump.any_symbolized_fraction, 0.8);
    EXPECT_GT(dump.leaf_symbolized_fraction, 0.5);
  }
}

TEST(ProfilerTest, DumpFromMarkCoversOnlyTheWindow) {
  Profiler& profiler = Profiler::Default();
  ASSERT_TRUE(profiler.Start(FastOptions()).ok());
  BurnUntil(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(150));
  const size_t mark = profiler.sample_count();
  BurnUntil(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(150));
  ASSERT_TRUE(profiler.Stop().ok());

  const ProfileDump all = profiler.Dump();
  const ProfileDump window = profiler.Dump(mark);
  EXPECT_GT(mark, 0u);
  EXPECT_GT(all.samples, window.samples);
  EXPECT_GT(window.samples, 0u);
}

TEST(ProfilerTest, SamplesStayAvailableAfterStopUntilRestart) {
  Profiler& profiler = Profiler::Default();
  ASSERT_TRUE(profiler.Start(FastOptions()).ok());
  BurnUntil(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(150));
  ASSERT_TRUE(profiler.Stop().ok());
  const uint64_t samples = profiler.Dump().samples;
  EXPECT_GT(samples, 0u);
  EXPECT_EQ(profiler.Dump().samples, samples);  // stable across dumps

  ASSERT_TRUE(profiler.Start(FastOptions()).ok());
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_LT(profiler.Dump().samples, samples + 1);  // buffer was reset
}

TEST(ProfilerTest, RegisteredWorkerThreadIsSampled) {
  Profiler& profiler = Profiler::Default();
  ASSERT_TRUE(profiler.Start(FastOptions()).ok());

  std::thread worker([] {
    obs::ProfiledThreadScope scope;
    BurnUntil(std::chrono::steady_clock::now() +
              std::chrono::milliseconds(300));
  });
  worker.join();
  ASSERT_TRUE(profiler.Stop().ok());
  // The main thread idled in join, so the worker's samples are most of the
  // profile; the burn leaf proves they were attributed.
  const ProfileDump dump = profiler.Dump();
  bool saw_burn_leaf = false;
  for (const auto& stack : dump.stacks) {
    for (const auto& frame : stack.frames) {
      if (frame.find("ProfilerTestBurnLeaf") != std::string::npos) {
        saw_burn_leaf = true;
      }
    }
  }
  if (kExactAttribution) EXPECT_TRUE(saw_burn_leaf);
}

TEST(ProfilerTest, ConcurrentStartStopDumpIsSafe) {
  // Hammer the control surface from several threads while a worker burns
  // CPU under a registration scope. No assertions beyond invariants — the
  // point is that TSan/ASan observe the races this provokes.
  Profiler& profiler = Profiler::Default();
  std::atomic<bool> done{false};

  std::thread burner([&done] {
    obs::ProfiledThreadScope scope;
    while (!done.load(std::memory_order_acquire)) {
      ProfilerTestBurnLeaf(2000);
    }
  });
  std::vector<std::thread> controllers;
  for (int t = 0; t < 3; ++t) {
    controllers.emplace_back([&profiler, t] {
      for (int i = 0; i < 20; ++i) {
        switch ((i + t) % 3) {
          case 0:
            (void)profiler.Start(FastOptions());
            break;
          case 1:
            (void)profiler.Stop();
            break;
          default: {
            const ProfileDump dump = profiler.Dump();
            EXPECT_LE(dump.leaf_symbolized_fraction, 1.0);
            break;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  for (auto& thread : controllers) thread.join();
  done.store(true, std::memory_order_release);
  burner.join();
  if (profiler.running()) ASSERT_TRUE(profiler.Stop().ok());
}

TEST(ProfileExportTest, RenderCollapsedFormat) {
  ProfileDump dump;
  dump.hz = 97;
  dump.samples = 5;
  obs::ProfileStack a;
  a.frames = {"main", "work;inner"};  // ';' must be rewritten
  a.count = 3;
  obs::ProfileStack b;
  b.frames = {"main", "other"};
  b.count = 2;
  dump.stacks = {a, b};

  const std::string collapsed = obs::RenderCollapsed(dump);
  EXPECT_EQ(collapsed, "main;work,inner 3\nmain;other 2\n");
}

TEST(ProfileExportTest, RenderProfileSummaryJson) {
  ProfileDump dump;
  dump.hz = 97;
  dump.samples = 5;
  dump.dropped = 1;
  dump.duration_ns = 1000;
  dump.leaf_symbolized_fraction = 0.8;
  dump.any_symbolized_fraction = 1.0;
  obs::ProfileStack a;
  a.frames = {"main", "hot"};
  a.count = 4;
  obs::ProfileStack b;
  b.frames = {"main", "cold"};
  b.count = 1;
  dump.stacks = {a, b};

  const std::string json = obs::RenderProfileSummaryJson(dump, 2);
  EXPECT_NE(json.find("\"schema\":\"boltondp-profile-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"hz\":97"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":5"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
  EXPECT_NE(json.find("\"leaf_symbolized_pct\":80.00"), std::string::npos);
  // "main" appears in both stacks: total 5, self 0. The top_n=2 cut keeps
  // the two highest-self frames: hot (4) and cold (1).
  EXPECT_NE(json.find("{\"name\":\"hot\",\"self\":4,\"self_pct\":80.00,"
                      "\"total\":4,\"total_pct\":80.00}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"cold\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"main\""), std::string::npos) << json;
}

}  // namespace
}  // namespace bolton
