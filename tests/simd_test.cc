#include "linalg/simd.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "random/rng.h"

namespace bolton {
namespace {

/// Every kernel is compared BIT-FOR-BIT against the scalar reference on the
/// same inputs, across every tier the CPU supports, over lengths that cover
/// the empty case, pure-tail cases (n < 8), the exact vector widths, and
/// misaligned remainders. EXPECT_EQ on doubles is deliberate: the contract
/// is bit-compatibility at equal rounding mode, not closeness.

std::vector<SimdTier> SupportedTiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2,
                        SimdTier::kAvx512}) {
    if (SimdTierSupported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

std::vector<double> RandomValues(size_t n, Rng* rng) {
  std::vector<double> values(n);
  for (double& v : values) v = rng->UniformDouble(-3.0, 3.0);
  return values;
}

const std::vector<size_t>& Lengths() {
  static const std::vector<size_t> lengths = {0,  1,  2,  3,  4,  5,  7, 8,
                                              9,  12, 15, 16, 17, 24, 31, 32,
                                              33, 50, 63, 64, 100, 1000};
  return lengths;
}

TEST(SimdTest, DetectionAndNames) {
  // The probe returns a real tier, scalar is always supported, and tiers
  // round-trip through their names.
  EXPECT_NE(DetectedSimdTier(), SimdTier::kAuto);
  EXPECT_TRUE(SimdTierSupported(SimdTier::kScalar));
  EXPECT_TRUE(SimdTierSupported(DetectedSimdTier()));
  EXPECT_FALSE(SimdTierSupported(SimdTier::kAuto));
  for (SimdTier tier : SupportedTiers()) {
    SimdTier parsed;
    ASSERT_TRUE(ParseSimdTier(SimdTierName(tier), &parsed));
    EXPECT_EQ(parsed, tier);
  }
  SimdTier parsed;
  EXPECT_TRUE(ParseSimdTier("auto", &parsed));
  EXPECT_EQ(parsed, SimdTier::kAuto);
  EXPECT_TRUE(ParseSimdTier("avx512f", &parsed));
  EXPECT_EQ(parsed, SimdTier::kAvx512);
  EXPECT_FALSE(ParseSimdTier("neon", &parsed));
  EXPECT_FALSE(ParseSimdTier("", &parsed));
}

TEST(SimdTest, ScopedForceTierRestores) {
  const SimdTier before = ActiveSimdTier();
  {
    ScopedSimdTier forced(SimdTier::kScalar);
    EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
    {
      // Nested scopes restore in LIFO order.
      ScopedSimdTier nested(DetectedSimdTier());
      EXPECT_EQ(ActiveSimdTier(), DetectedSimdTier());
    }
    EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
  }
  EXPECT_EQ(ActiveSimdTier(), before);
  // Forcing an unsupported tier fails and leaves the dispatch unchanged.
  if (!SimdTierSupported(SimdTier::kAvx512)) {
    EXPECT_FALSE(ForceSimdTier(SimdTier::kAvx512));
    EXPECT_EQ(ActiveSimdTier(), before);
  }
}

TEST(SimdTest, ReductionsBitCompatibleAcrossTiers) {
  Rng rng(2024);
  for (size_t n : Lengths()) {
    const std::vector<double> x = RandomValues(n, &rng);
    const std::vector<double> y = RandomValues(n, &rng);
    double expected_dot, expected_norm, expected_dist;
    {
      ScopedSimdTier scalar(SimdTier::kScalar);
      expected_dot = SimdDot(x.data(), y.data(), n);
      expected_norm = SimdSquaredNorm(x.data(), n);
      expected_dist = SimdSquaredDistance(x.data(), y.data(), n);
    }
    for (SimdTier tier : SupportedTiers()) {
      ScopedSimdTier forced(tier);
      EXPECT_EQ(SimdDot(x.data(), y.data(), n), expected_dot)
          << "dot n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(SimdSquaredNorm(x.data(), n), expected_norm)
          << "squared_norm n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(SimdSquaredDistance(x.data(), y.data(), n), expected_dist)
          << "squared_distance n=" << n << " tier=" << SimdTierName(tier);
    }
  }
}

TEST(SimdTest, ElementwiseBitCompatibleAcrossTiers) {
  Rng rng(4096);
  const double a = -0.37;
  for (size_t n : Lengths()) {
    const std::vector<double> x = RandomValues(n, &rng);
    const std::vector<double> y = RandomValues(n, &rng);

    std::vector<double> axpy_ref = y, scale_ref = y, add_ref = y,
                        sub_ref = y;
    {
      ScopedSimdTier scalar(SimdTier::kScalar);
      SimdAxpy(a, x.data(), axpy_ref.data(), n);
      SimdScale(scale_ref.data(), a, n);
      SimdAdd(add_ref.data(), x.data(), n);
      SimdSub(sub_ref.data(), x.data(), n);
    }
    for (SimdTier tier : SupportedTiers()) {
      ScopedSimdTier forced(tier);
      std::vector<double> axpy_out = y, scale_out = y, add_out = y,
                          sub_out = y;
      SimdAxpy(a, x.data(), axpy_out.data(), n);
      SimdScale(scale_out.data(), a, n);
      SimdAdd(add_out.data(), x.data(), n);
      SimdSub(sub_out.data(), x.data(), n);
      EXPECT_EQ(axpy_out, axpy_ref)
          << "axpy n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(scale_out, scale_ref)
          << "scale n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(add_out, add_ref)
          << "add n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(sub_out, sub_ref)
          << "sub n=" << n << " tier=" << SimdTierName(tier);
    }
  }
}

TEST(SimdTest, SpecialValuesPropagateIdentically) {
  // NaN/Inf handling must also match the scalar reference bit-for-bit in
  // structure (NaN payloads aside, the *pattern* of non-finite results and
  // finite values must agree; we compare bitwise on finite entries and
  // classification on non-finite ones).
  std::vector<double> x = {1.0, -2.0, std::numeric_limits<double>::infinity(),
                           4.0, 5e300, -5e300, 7.0, 8.0, 9.0, -1.5};
  std::vector<double> y = {0.5, 0.25, 2.0, 1.0, 5e300, 5e300, 0.125, 2.0,
                           -3.0, 4.0};
  const size_t n = x.size();
  double expected;
  {
    ScopedSimdTier scalar(SimdTier::kScalar);
    expected = SimdDot(x.data(), y.data(), n);
  }
  for (SimdTier tier : SupportedTiers()) {
    ScopedSimdTier forced(tier);
    const double got = SimdDot(x.data(), y.data(), n);
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(got)) << SimdTierName(tier);
    } else {
      EXPECT_EQ(got, expected) << SimdTierName(tier);
    }
  }
}

TEST(SimdTest, SparseDotBitIdenticalToDenseDot) {
  // The sparse gather must reproduce the dense canonical order exactly:
  // SimdSparseDot(sparsify(x), y) == SimdDot(x, y) bit-for-bit at every
  // tier, including pure-tail dims and ~70%-zero vectors.
  Rng rng(777);
  for (size_t n : Lengths()) {
    std::vector<double> x = RandomValues(n, &rng);
    const std::vector<double> y = RandomValues(n, &rng);
    std::vector<std::pair<size_t, double>> entries;
    for (size_t i = 0; i < n; ++i) {
      if (rng.UniformDouble(0.0, 1.0) < 0.7) {
        x[i] = 0.0;
      } else {
        entries.emplace_back(i, x[i]);
      }
    }
    for (SimdTier tier : SupportedTiers()) {
      ScopedSimdTier forced(tier);
      EXPECT_EQ(SimdSparseDot(entries.data(), entries.size(), y.data(), n),
                SimdDot(x.data(), y.data(), n))
          << "sparse dot n=" << n << " tier=" << SimdTierName(tier);
    }
  }
}

TEST(SimdTest, SmallDimensionsMatchSequentialSum) {
  // For n < 8 the canonical order degenerates to a plain sequential sum
  // (all 8 lanes empty, tail in index order) — the pre-SIMD behavior, so
  // small-dimension callers see unchanged numerics.
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0, 5.0};
  double sequential = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sequential += x[i] * y[i];
  EXPECT_EQ(SimdDot(x.data(), y.data(), x.size()), sequential);
}

}  // namespace
}  // namespace bolton
