#include "optim/sag.h"

#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeData(size_t m = 500, uint64_t seed = 241) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 8;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(SagTest, LearnsSeparableData) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SagOptions options;  // defaults: 5 passes, eta = 1/(16β)
  Rng rng(1);
  auto run = RunSag(data, *loss, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(BinaryAccuracy(run.value().model, data), 0.85);
  EXPECT_LT(loss->EmpiricalRisk(run.value().model, data),
            loss->EmpiricalRisk(Vector(data.dim()), data));
}

TEST(SagTest, StatsCountUpdates) {
  Dataset data = MakeData(100, 242);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SagOptions options;
  options.updates = 250;
  Rng rng(2);
  auto run = RunSag(data, *loss, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().stats.updates, 250u);
  EXPECT_EQ(run.value().stats.gradient_evaluations, 250u);  // one per update
}

TEST(SagTest, ProjectionRespected) {
  Dataset data = MakeData(200, 243);
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  SagOptions options;
  options.radius = 0.05;
  Rng rng(3);
  auto run = RunSag(data, *loss, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run.value().model.Norm(), 0.05 + 1e-12);
}

TEST(SagTest, DeterministicForFixedSeed) {
  Dataset data = MakeData(150, 244);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SagOptions options;
  options.updates = 300;
  Rng rng_a(4), rng_b(4);
  auto a = RunSag(data, *loss, options, &rng_a);
  auto b = RunSag(data, *loss, options, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().model, b.value().model);
}

TEST(SagTest, CheaperPerUpdateThanSvrgAtSameUpdateCount) {
  // SAG uses ONE gradient evaluation per update (vs SVRG's two plus
  // snapshots) — that is its trade against the O(m·d) gradient memory.
  Dataset data = MakeData(100, 245);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SagOptions options;
  options.updates = 100;
  Rng rng(5);
  auto run = RunSag(data, *loss, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().stats.gradient_evaluations,
            run.value().stats.updates);
}

TEST(SagTest, Validation) {
  Dataset data = MakeData(50, 246);
  Dataset empty(8, 2);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Rng rng(6);
  SagOptions options;
  EXPECT_FALSE(RunSag(empty, *loss, options, &rng).ok());
  options.radius = 0.0;
  EXPECT_FALSE(RunSag(data, *loss, options, &rng).ok());
}

}  // namespace
}  // namespace bolton
