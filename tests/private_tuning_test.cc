#include "core/private_tuning.h"

#include <algorithm>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/trainer.h"

namespace bolton {
namespace {

Dataset MakeData(size_t m = 600, uint64_t seed = 141) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 8;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

// A fake trainer that returns a fixed model per candidate index, letting the
// tests control validation error exactly: candidate i returns the vector
// quality_i · w*, where w* classifies perfectly and quality 0 is a zero
// model (50% error).
class FixedModels {
 public:
  explicit FixedModels(std::vector<Vector> models) : models_(std::move(models)) {}

  TuningTrainFn AsTrainFn(const std::vector<TuningCandidate>& grid) {
    return [this, &grid](const Dataset&, const TuningCandidate& candidate,
                         Rng*) -> Result<Vector> {
      // Identify the candidate by pointer arithmetic over the grid.
      for (size_t i = 0; i < grid.size(); ++i) {
        if (&grid[i] == &candidate) return models_[i];
      }
      // Fall back to matching by value.
      for (size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].passes == candidate.passes &&
            grid[i].batch_size == candidate.batch_size &&
            grid[i].lambda == candidate.lambda) {
          return models_[i];
        }
      }
      return Status::Internal("unknown candidate");
    };
  }

 private:
  std::vector<Vector> models_;
};

TEST(MakeTuningGridTest, CartesianProduct) {
  auto grid = MakeTuningGrid({5, 10}, {50}, {1e-4, 1e-3, 1e-2});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].passes, 5u);
  EXPECT_EQ(grid[0].batch_size, 50u);
  EXPECT_DOUBLE_EQ(grid[0].lambda, 1e-4);
  EXPECT_EQ(grid[5].passes, 10u);
  EXPECT_DOUBLE_EQ(grid[5].lambda, 1e-2);
}

TEST(PrivateTuningTest, SelectsGoodCandidateWithLargeEpsilon) {
  // One candidate is a strong model, the others are anti-models. With a
  // large ε the exponential mechanism must pick the good one almost surely.
  Dataset data = MakeData();
  // Train a decent reference model to use as the "good" candidate.
  TrainerConfig ref_config;
  ref_config.passes = 5;
  ref_config.batch_size = 10;
  Rng ref_rng(1);
  Vector good = TrainBinary(data, ref_config, &ref_rng).MoveValue();
  Vector bad = -1.0 * good;

  auto grid = MakeTuningGrid({5, 10, 20}, {50}, {1e-4});
  FixedModels models({bad, good, bad});
  Rng rng(2);
  auto out = PrivatelyTunedSgd(data, grid, PrivacyParams{50.0, 0.0},
                               models.AsTrainFn(grid), &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().selected_index, 1u);
  ASSERT_EQ(out.value().error_counts.size(), 3u);
  EXPECT_LT(out.value().error_counts[1], out.value().error_counts[0]);
}

TEST(PrivateTuningTest, SmallEpsilonRandomizesSelection) {
  // With ε → 0 the exponential mechanism is near-uniform; across repeats we
  // must see more than one index selected.
  Dataset data = MakeData(300, 142);
  auto grid = MakeTuningGrid({5, 10, 20}, {50}, {1e-4});
  Vector w_a(data.dim()), w_b(data.dim()), w_c(data.dim());
  w_a[0] = 1.0;
  w_b[1] = 1.0;
  w_c[2] = 1.0;
  FixedModels models({w_a, w_b, w_c});

  std::set<size_t> selected;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    auto out = PrivatelyTunedSgd(data, grid, PrivacyParams{1e-4, 0.0},
                                 models.AsTrainFn(grid), &rng);
    ASSERT_TRUE(out.ok());
    selected.insert(out.value().selected_index);
  }
  EXPECT_GT(selected.size(), 1u);
}

TEST(PrivateTuningTest, EndToEndWithRealTrainer) {
  Dataset data = MakeData(900, 143);
  auto grid = MakeTuningGrid({5, 10}, {20}, {1e-4, 1e-3, 1e-2});
  TuningTrainFn train = [](const Dataset& portion,
                           const TuningCandidate& candidate,
                           Rng* rng) -> Result<Vector> {
    TrainerConfig config;
    config.algorithm = Algorithm::kBoltOn;
    config.lambda = candidate.lambda;
    config.passes = candidate.passes;
    config.batch_size = std::min(candidate.batch_size, portion.size());
    config.privacy = PrivacyParams{4.0, 0.0};
    return TrainBinary(portion, config, rng);
  };
  Rng rng(3);
  auto out =
      PrivatelyTunedSgd(data, grid, PrivacyParams{4.0, 0.0}, train, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().error_counts.size(), grid.size());
  EXPECT_EQ(out.value().model.dim(), data.dim());
}

TEST(PrivateTuningTest, Validation) {
  Dataset data = MakeData(100, 144);
  auto grid = MakeTuningGrid({5}, {10}, {1e-4});
  TuningTrainFn train = [](const Dataset&, const TuningCandidate&,
                           Rng*) -> Result<Vector> { return Vector(8); };
  Rng rng(4);
  // Empty grid.
  EXPECT_FALSE(
      PrivatelyTunedSgd(data, {}, PrivacyParams{1.0, 0.0}, train, &rng).ok());
  // Null train fn.
  EXPECT_FALSE(
      PrivatelyTunedSgd(data, grid, PrivacyParams{1.0, 0.0}, nullptr, &rng)
          .ok());
  // Bad budget.
  EXPECT_FALSE(
      PrivatelyTunedSgd(data, grid, PrivacyParams{0.0, 0.0}, train, &rng)
          .ok());
  // Too little data for the grid size.
  Dataset tiny(8, 2);
  tiny.Add(Example{Vector(8), +1});
  auto big_grid = MakeTuningGrid({1, 2}, {1}, {1e-4});
  EXPECT_FALSE(PrivatelyTunedSgd(tiny, big_grid, PrivacyParams{1.0, 0.0},
                                 train, &rng)
                   .ok());
}

TEST(PublicGridSearchTest, PicksArgminErrors) {
  Dataset train_data = MakeData(200, 145);
  Dataset validation = MakeData(200, 146);
  TrainerConfig ref_config;
  ref_config.passes = 5;
  ref_config.batch_size = 10;
  Rng ref_rng(5);
  Vector good = TrainBinary(train_data, ref_config, &ref_rng).MoveValue();
  Vector bad = -1.0 * good;

  auto grid = MakeTuningGrid({5, 10}, {50}, {1e-4});
  FixedModels models({bad, good});
  Rng rng(6);
  auto out = PublicGridSearch(train_data, validation, grid,
                              models.AsTrainFn(grid), &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().selected_index, 1u);
  EXPECT_EQ(out.value().model, good);
}

TEST(PublicGridSearchTest, Validation) {
  Dataset data = MakeData(50, 147);
  Dataset empty(8, 2);
  auto grid = MakeTuningGrid({5}, {10}, {1e-4});
  TuningTrainFn train = [](const Dataset&, const TuningCandidate&,
                           Rng*) -> Result<Vector> { return Vector(8); };
  Rng rng(7);
  EXPECT_FALSE(PublicGridSearch(data, empty, grid, train, &rng).ok());
  EXPECT_FALSE(PublicGridSearch(data, data, {}, train, &rng).ok());
}

}  // namespace
}  // namespace bolton
