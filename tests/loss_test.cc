#include "optim/loss.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "random/distributions.h"
#include "random/rng.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Central finite-difference gradient for validation.
Vector NumericGradient(const LossFunction& loss, const Vector& w,
                       const Example& e) {
  const double h = 1e-6;
  Vector grad(w.dim());
  for (size_t i = 0; i < w.dim(); ++i) {
    Vector plus = w, minus = w;
    plus[i] += h;
    minus[i] -= h;
    grad[i] = (loss.Loss(plus, e) - loss.Loss(minus, e)) / (2.0 * h);
  }
  return grad;
}

struct LossCase {
  std::string label;
  double lambda;
  double radius;
  enum Kind { kLogistic, kHuber, kSquared } kind;
};

std::unique_ptr<LossFunction> MakeCase(const LossCase& c) {
  switch (c.kind) {
    case LossCase::kLogistic:
      return MakeLogisticLoss(c.lambda, c.radius).MoveValue();
    case LossCase::kHuber:
      return MakeHuberSvmLoss(0.1, c.lambda, c.radius).MoveValue();
    case LossCase::kSquared:
      return MakeSquaredLoss(c.lambda, c.radius).MoveValue();
  }
  return nullptr;
}

class LossPropertyTest : public ::testing::TestWithParam<LossCase> {};

// The analytic gradient must agree with finite differences at random points.
TEST_P(LossPropertyTest, GradientMatchesFiniteDifference) {
  auto loss = MakeCase(GetParam());
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    Vector w = SampleGaussianVector(5, 0.5, &rng);
    Example e{SampleUnitSphere(5, &rng), (trial % 2 == 0) ? +1 : -1};
    Vector analytic = loss->Gradient(w, e);
    Vector numeric = NumericGradient(*loss, w, e);
    for (size_t i = 0; i < w.dim(); ++i) {
      EXPECT_NEAR(analytic[i], numeric[i], 1e-5)
          << GetParam().label << " coord " << i;
    }
  }
}

// First-order convexity: ℓ(u) ≥ ℓ(v) + ⟨∇ℓ(v), u − v⟩.
TEST_P(LossPropertyTest, FirstOrderConvexity) {
  auto loss = MakeCase(GetParam());
  Rng rng(62);
  for (int trial = 0; trial < 50; ++trial) {
    Vector u = SampleGaussianVector(4, 1.0, &rng);
    Vector v = SampleGaussianVector(4, 1.0, &rng);
    Example e{SampleUnitSphere(4, &rng), (trial % 2 == 0) ? +1 : -1};
    double lhs = loss->Loss(u, e);
    double rhs = loss->Loss(v, e) + Dot(loss->Gradient(v, e), u - v);
    EXPECT_GE(lhs, rhs - 1e-9) << GetParam().label;
  }
}

// β-smoothness: ‖∇ℓ(u) − ∇ℓ(v)‖ ≤ β‖u − v‖.
TEST_P(LossPropertyTest, GradientIsBetaSmooth) {
  auto loss = MakeCase(GetParam());
  const double beta = loss->smoothness();
  Rng rng(63);
  for (int trial = 0; trial < 50; ++trial) {
    Vector u = SampleGaussianVector(4, 1.0, &rng);
    Vector v = SampleGaussianVector(4, 1.0, &rng);
    Example e{SampleUnitSphere(4, &rng), +1};
    double grad_gap = Distance(loss->Gradient(u, e), loss->Gradient(v, e));
    EXPECT_LE(grad_gap, beta * Distance(u, v) + 1e-9) << GetParam().label;
  }
}

// L-Lipschitz loss ⟺ gradient norm bounded by L (within the radius).
TEST_P(LossPropertyTest, GradientNormWithinLipschitzConstant) {
  auto loss = MakeCase(GetParam());
  const double L = loss->lipschitz();
  Rng rng(64);
  for (int trial = 0; trial < 50; ++trial) {
    Vector w = SampleGaussianVector(4, 1.0, &rng);
    if (std::isfinite(loss->radius())) {
      ProjectToL2BallInPlace(&w, loss->radius());
    }
    Example e{SampleUnitSphere(4, &rng), (trial % 2 == 0) ? +1 : -1};
    EXPECT_LE(loss->Gradient(w, e).Norm(), L + 1e-9) << GetParam().label;
  }
}

// γ-strong convexity: ℓ(u) ≥ ℓ(v) + ⟨∇ℓ(v), u−v⟩ + (γ/2)‖u−v‖².
TEST_P(LossPropertyTest, StrongConvexityWhenRegularized) {
  auto loss = MakeCase(GetParam());
  const double gamma = loss->strong_convexity();
  if (gamma == 0.0) GTEST_SKIP() << "convex-only case";
  Rng rng(65);
  for (int trial = 0; trial < 50; ++trial) {
    Vector u = SampleGaussianVector(4, 1.0, &rng);
    Vector v = SampleGaussianVector(4, 1.0, &rng);
    Example e{SampleUnitSphere(4, &rng), +1};
    double gap = Distance(u, v);
    double lhs = loss->Loss(u, e);
    double rhs = loss->Loss(v, e) + Dot(loss->Gradient(v, e), u - v) +
                 0.5 * gamma * gap * gap;
    EXPECT_GE(lhs, rhs - 1e-9) << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLosses, LossPropertyTest,
    ::testing::Values(
        LossCase{"logistic_convex", 0.0, kInf, LossCase::kLogistic},
        LossCase{"logistic_l2", 0.01, 100.0, LossCase::kLogistic},
        LossCase{"huber_convex", 0.0, kInf, LossCase::kHuber},
        LossCase{"huber_l2", 0.001, 1000.0, LossCase::kHuber},
        LossCase{"squared_l2", 0.01, 100.0, LossCase::kSquared}),
    [](const ::testing::TestParamInfo<LossCase>& info) {
      return info.param.label;
    });

TEST(LogisticLossTest, PaperConstantsConvex) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  EXPECT_DOUBLE_EQ(loss->lipschitz(), 1.0);
  EXPECT_DOUBLE_EQ(loss->smoothness(), 1.0);
  EXPECT_DOUBLE_EQ(loss->strong_convexity(), 0.0);
  EXPECT_FALSE(loss->IsStronglyConvex());
}

TEST(LogisticLossTest, PaperConstantsRegularized) {
  // §2: λ > 0, ‖w‖ ≤ R ⇒ L = 1 + λR, β = 1 + λ, γ = λ.
  const double lambda = 0.01, radius = 100.0;
  auto loss = MakeLogisticLoss(lambda, radius).MoveValue();
  EXPECT_DOUBLE_EQ(loss->lipschitz(), 1.0 + lambda * radius);
  EXPECT_DOUBLE_EQ(loss->smoothness(), 1.0 + lambda);
  EXPECT_DOUBLE_EQ(loss->strong_convexity(), lambda);
  EXPECT_TRUE(loss->IsStronglyConvex());
}

TEST(LogisticLossTest, ValueAtZeroIsLogTwo) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Example e{Vector{0.5, 0.5}, +1};
  EXPECT_NEAR(loss->Loss(Vector(2), e), std::log(2.0), 1e-12);
}

TEST(LogisticLossTest, NumericallyStableAtExtremeMargins) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Vector w{1000.0};
  Example pos{Vector{1.0}, +1};
  Example neg{Vector{1.0}, -1};
  EXPECT_NEAR(loss->Loss(w, pos), 0.0, 1e-12);
  EXPECT_NEAR(loss->Loss(w, neg), 1000.0, 1e-9);
  EXPECT_TRUE(std::isfinite(loss->Gradient(w, neg)[0]));
}

TEST(HuberSvmLossTest, PaperConstants) {
  // Appendix B: L ≤ 1, β ≤ 1/(2h).
  auto loss = MakeHuberSvmLoss(0.1, 0.0, kInf).MoveValue();
  EXPECT_DOUBLE_EQ(loss->lipschitz(), 1.0);
  EXPECT_DOUBLE_EQ(loss->smoothness(), 5.0);
}

TEST(HuberSvmLossTest, ThreeRegimes) {
  auto loss = MakeHuberSvmLoss(0.1, 0.0, kInf).MoveValue();
  // z = y⟨w,x⟩ with x = (1), y = +1, so z = w₀.
  Example e{Vector{1.0}, +1};
  EXPECT_DOUBLE_EQ(loss->Loss(Vector{2.0}, e), 0.0);        // z > 1+h
  EXPECT_DOUBLE_EQ(loss->Loss(Vector{0.0}, e), 1.0);        // z < 1−h
  // |1−z| ≤ h: value (1+h−z)²/(4h) at z=1 is h/4.
  EXPECT_NEAR(loss->Loss(Vector{1.0}, e), 0.1 / 4.0, 1e-12);
  // Gradient is 0 / −y x / interpolated in the three regimes.
  EXPECT_DOUBLE_EQ(loss->Gradient(Vector{2.0}, e)[0], 0.0);
  EXPECT_DOUBLE_EQ(loss->Gradient(Vector{0.0}, e)[0], -1.0);
}

TEST(HuberSvmLossTest, ContinuousAtRegimeBoundaries) {
  auto loss = MakeHuberSvmLoss(0.1, 0.0, kInf).MoveValue();
  Example e{Vector{1.0}, +1};
  const double eps = 1e-9;
  EXPECT_NEAR(loss->Loss(Vector{1.1 - eps}, e), loss->Loss(Vector{1.1 + eps}, e),
              1e-7);
  EXPECT_NEAR(loss->Loss(Vector{0.9 - eps}, e), loss->Loss(Vector{0.9 + eps}, e),
              1e-7);
}

TEST(LossValidationTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeLogisticLoss(-0.1, kInf).ok());
  // λ > 0 with infinite radius: the Lipschitz constant would be unbounded.
  EXPECT_FALSE(MakeLogisticLoss(0.1, kInf).ok());
  EXPECT_FALSE(MakeHuberSvmLoss(0.0, 0.0, kInf).ok());
  EXPECT_FALSE(MakeHuberSvmLoss(1.0, 0.0, kInf).ok());
  EXPECT_FALSE(MakeSquaredLoss(0.0, kInf).ok());  // needs finite radius
  EXPECT_TRUE(MakeSquaredLoss(0.0, 10.0).ok());
}

TEST(EmpiricalRiskTest, AveragesLosses) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Dataset ds(1, 2);
  ds.Add(Example{Vector{1.0}, +1});
  ds.Add(Example{Vector{1.0}, -1});
  Vector w{0.0};
  EXPECT_NEAR(loss->EmpiricalRisk(w, ds), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(loss->EmpiricalRisk(w, Dataset(1, 2)), 0.0);
}

}  // namespace
}  // namespace bolton
