#include "random/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int agreements = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++agreements;
  }
  EXPECT_EQ(agreements, 0);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  // stderr of the mean is ~1/(sqrt(12n)) ≈ 0.0009; allow 5 sigma.
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, UniformDoubleRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.UniformDouble(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntWithinRangeAndHitsAll) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Split();
  // The child stream should not replicate the parent's continuation.
  int agreements = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++agreements;
  }
  EXPECT_EQ(agreements, 0);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ull);
}

}  // namespace
}  // namespace bolton
