#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "ml/trainer.h"
#include "ml/metrics.h"

namespace bolton {
namespace {

TEST(SyntheticTest, ShapeMatchesConfig) {
  SyntheticConfig config;
  config.num_examples = 500;
  config.dim = 12;
  config.num_classes = 4;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().size(), 500u);
  EXPECT_EQ(ds.value().dim(), 12u);
  EXPECT_EQ(ds.value().num_classes(), 4);
}

TEST(SyntheticTest, FeaturesNormalizedToUnitBall) {
  SyntheticConfig config;
  config.num_examples = 300;
  config.margin = 10.0;  // would overflow the ball without normalization
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_LE(ds.value().MaxFeatureNorm(), 1.0 + 1e-12);
}

TEST(SyntheticTest, BinaryLabelsArePlusMinusOne) {
  SyntheticConfig config;
  config.num_examples = 200;
  config.num_classes = 2;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds.value().size(); ++i) {
    int y = ds.value()[i].label;
    EXPECT_TRUE(y == -1 || y == +1);
  }
}

TEST(SyntheticTest, MulticlassLabelsInRange) {
  SyntheticConfig config;
  config.num_examples = 200;
  config.num_classes = 5;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds.value().size(); ++i) {
    int y = ds.value()[i].label;
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 5);
  }
}

TEST(SyntheticTest, SameSeedReproduces) {
  SyntheticConfig config;
  config.num_examples = 100;
  config.seed = 77;
  auto a = GenerateSynthetic(config);
  auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].x, b.value()[i].x);
    EXPECT_EQ(a.value()[i].label, b.value()[i].label);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig config;
  config.num_examples = 100;
  config.seed = 1;
  auto a = GenerateSynthetic(config);
  config.seed = 2;
  auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value()[0].x, b.value()[0].x);
}

TEST(SyntheticTest, InvalidConfigsRejected) {
  SyntheticConfig config;
  config.num_examples = 0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SyntheticConfig{};
  config.dim = 0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SyntheticConfig{};
  config.num_classes = 1;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SyntheticConfig{};
  config.label_flip_prob = 1.0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SyntheticConfig{};
  config.noise_stddev = -0.5;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
}

TEST(SyntheticTest, LabelFlipRaisesBayesError) {
  // A heavily flipped dataset cannot be learned past ~1 − flip_prob.
  SyntheticConfig config;
  config.num_examples = 2000;
  config.dim = 10;
  config.margin = 5.0;
  config.noise_stddev = 0.1;
  config.label_flip_prob = 0.3;
  config.seed = 5;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  size_t flipped_fraction_check = 0;
  // With margin >> noise, the example's nearest prototype recovers the
  // pre-flip class; count label disagreements as a flip-rate estimate.
  // (Indirect check: just verify the config was accepted and labels vary.)
  for (size_t i = 0; i < ds.value().size(); ++i) {
    if (ds.value()[i].label == +1) ++flipped_fraction_check;
  }
  EXPECT_GT(flipped_fraction_check, 0u);
  EXPECT_LT(flipped_fraction_check, ds.value().size());
}

TEST(DatasetStandInsTest, ShapesMatchTable3) {
  // At scale=1 the generators must match the paper's Table 3 sizes; use a
  // small scale to keep the test fast and verify proportionality.
  auto protein = GenerateProteinLike(0.01, 1);
  ASSERT_TRUE(protein.ok());
  EXPECT_EQ(protein.value().first.dim(), 74u);
  EXPECT_EQ(protein.value().first.num_classes(), 2);

  auto covertype = GenerateCovertypeLike(0.001, 1);
  ASSERT_TRUE(covertype.ok());
  EXPECT_EQ(covertype.value().first.dim(), 54u);

  auto higgs = GenerateHiggsLike(0.0001, 1);
  ASSERT_TRUE(higgs.ok());
  EXPECT_EQ(higgs.value().first.dim(), 28u);

  auto kddcup = GenerateKddcupLike(0.001, 1);
  ASSERT_TRUE(kddcup.ok());
  EXPECT_EQ(kddcup.value().first.dim(), 41u);

  MnistLikeSpec spec;
  spec.scale = 0.01;
  auto mnist = GenerateMnistLike(spec);
  ASSERT_TRUE(mnist.ok());
  EXPECT_EQ(mnist.value().first.dim(), 784u);
  EXPECT_EQ(mnist.value().first.num_classes(), 10);
}

TEST(DatasetStandInsTest, GenerateByNameDispatches) {
  EXPECT_TRUE(GenerateByName("protein", 0.01, 1).ok());
  EXPECT_TRUE(GenerateByName("covertype", 0.001, 1).ok());
  EXPECT_EQ(GenerateByName("imagenet", 1.0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetStandInsTest, ProteinLikeIsLearnable) {
  // The Protein stand-in must be well-fit by logistic regression, as the
  // paper observes for the real dataset (§4.5).
  auto split = GenerateProteinLike(0.05, 3);
  ASSERT_TRUE(split.ok());
  const auto& [train, test] = split.value();

  TrainerConfig config;
  config.algorithm = Algorithm::kNoiseless;
  config.passes = 10;
  config.batch_size = 10;
  Rng rng(9);
  auto model = TrainBinary(train, config, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(BinaryAccuracy(model.value(), test), 0.85);
}

}  // namespace
}  // namespace bolton
