#include "obs/postmortem.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/build_info.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/thread_name.h"

// Death tests fork the process mid-run, which ThreadSanitizer's runtime
// does not support reliably (the forked child inherits TSan's internal
// locks). The crash paths themselves are single-threaded by construction;
// they are exercised without TSan here and the ring's concurrency is
// covered by logging_test under TSan.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BOLTON_TSAN 1
#endif
#endif

namespace bolton {
namespace obs {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

std::string FreshDir(const char* tag) {
  std::string dir = ::testing::TempDir() + "/postmortem_" + tag;
  std::remove((dir + "/postmortem.raw").c_str());
  std::remove((dir + "/postmortem.json").c_str());
  return dir;
}

/// Runs in the death-test child: arm the handler, leave some evidence in
/// the flight recorder, open a span, then die by `signal_number`.
[[noreturn]] void CrashWith(int signal_number, const std::string& dir) {
  SetCurrentThreadName("crasher");
  PostmortemOptions options;
  options.dir = dir;
  InstallCrashHandler(options).CheckOK();
  FailpointRegistry::Default()
      .Configure("psgd.pass:error@7")
      .CheckOK();
  BOLTON_LOG(kInfo) << "about to crash with signal " << signal_number;
  TraceRecorder::Default().SetEnabled(true);
  ScopedSpan span("doomed-span");
  raise(signal_number);
  // The handler re-raises with SIG_DFL; we never get here.
  _exit(97);
}

void ExpectPostmortemJsonCommon(const std::string& json) {
  EXPECT_NE(json.find("\"schema\":\"bolton-postmortem-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"backtrace\":["), std::string::npos);
  // At least one frame resolved to a module (the test binary itself).
  EXPECT_NE(json.find("\"module\":\""), std::string::npos);
  EXPECT_NE(json.find("\"recent_logs\":["), std::string::npos);
  EXPECT_NE(json.find("about to crash"), std::string::npos);
  EXPECT_NE(json.find("\"log_ring\":{"), std::string::npos);
  EXPECT_NE(json.find("\"build\":{"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"failpoints\":\"psgd.pass:error@7\""),
            std::string::npos);
}

TEST(PostmortemRenderTest, RendersEveryReportSection) {
  PostmortemReport report;
  report.reason = "signal";
  report.signal_number = 11;
  report.signal_name = "SIGSEGV";
  report.fault_addr = "0xdeadbeef";
  report.mono_ns = 123;
  report.thread_id = 4;
  report.thread_name = "worker";
  PostmortemReport::Frame frame;
  frame.module = "/bin/test";
  frame.offset = 0x1234;
  frame.pc = 0x55550000;
  frame.symbol = "DoWork()";
  frame.resolved = true;
  report.frames.push_back(frame);
  report.active_spans.push_back({9, "train"});
  RecordedLogEvent log;
  log.seq = 1;
  log.message = "last words";
  report.recent_logs.push_back(log);
  report.log_ring = {256, 10, 0};
  report.span_ring = {128, 2, 0};
  report.peak_rss_bytes = 4096;
  report.failpoints = "a:panic@1";

  const std::string json = RenderPostmortemJson(report);
  EXPECT_NE(json.find("\"schema\":\"bolton-postmortem-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"signal\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"SIGSEGV\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_addr\":\"0xdeadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"symbol\":\"DoWork()\""), std::string::npos);
  EXPECT_NE(json.find("\"active_spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"train\""), std::string::npos);
  EXPECT_NE(json.find("last words"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"failpoints\":\"a:panic@1\""), std::string::npos);
  // Build identity is stamped into every report by the renderer.
  EXPECT_NE(json.find("\"git_sha\":\"" + GetBuildInfo().git_sha + "\""),
            std::string::npos);
}

TEST(PostmortemFinalizeTest, NoCrashDataIsNotFound) {
  const std::string dir = FreshDir("empty");
  mkdir(dir.c_str(), 0755);
  Status status = FinalizePostmortem(dir);
  EXPECT_FALSE(status.ok());
}

#if !defined(BOLTON_TSAN)

class PostmortemSignalDeathTest
    : public ::testing::TestWithParam<std::pair<int, const char*>> {};

TEST_P(PostmortemSignalDeathTest, SignalLeavesFinalizablePostmortem) {
  const int signal_number = GetParam().first;
  const char* signal_name = GetParam().second;
  const std::string dir = FreshDir(signal_name);

  EXPECT_EXIT(CrashWith(signal_number, dir),
              ::testing::KilledBySignal(signal_number), "");

  ASSERT_TRUE(FileExists(dir + "/postmortem.raw"));
  ASSERT_TRUE(FinalizePostmortem(dir).ok());
  const std::string json = ReadWholeFile(dir + "/postmortem.json");
  ExpectPostmortemJsonCommon(json);
  EXPECT_NE(json.find("\"reason\":\"signal\""), std::string::npos);
  EXPECT_NE(json.find(std::string("\"name\":\"") + signal_name + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_name\":\"crasher\""), std::string::npos);
  EXPECT_NE(json.find("doomed-span"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllFatalSignals, PostmortemSignalDeathTest,
    ::testing::Values(std::make_pair(SIGSEGV, "SIGSEGV"),
                      std::make_pair(SIGBUS, "SIGBUS"),
                      std::make_pair(SIGFPE, "SIGFPE"),
                      std::make_pair(SIGILL, "SIGILL"),
                      std::make_pair(SIGABRT, "SIGABRT")),
    [](const ::testing::TestParamInfo<std::pair<int, const char*>>& info) {
      return info.param.second;
    });

TEST(PostmortemCheckDeathTest, CheckFailureWritesJsonInProcess) {
  const std::string dir = FreshDir("check");

  EXPECT_DEATH(
      {
        SetCurrentThreadName("crasher");
        PostmortemOptions options;
        options.dir = dir;
        InstallCrashHandler(options).CheckOK();
        FailpointRegistry::Default()
            .Configure("psgd.pass:error@7")
            .CheckOK();
        BOLTON_LOG(kInfo) << "about to crash with a failed check";
        BOLTON_CHECK(2 + 2 == 5);
      },
      "check failed: 2 \\+ 2 == 5");

  // The fatal hook writes the full report before abort(); no finalize
  // step is required, but running it anyway must succeed (idempotence).
  ASSERT_TRUE(FileExists(dir + "/postmortem.json"));
  ASSERT_TRUE(FinalizePostmortem(dir).ok());
  const std::string json = ReadWholeFile(dir + "/postmortem.json");
  ExpectPostmortemJsonCommon(json);
  EXPECT_NE(json.find("\"reason\":\"check_failure\""), std::string::npos);
  EXPECT_NE(json.find("check failed: 2 + 2 == 5"), std::string::npos);
}

TEST(PostmortemFailpointDeathTest, ArmedPanicLeavesPostmortem) {
  const std::string dir = FreshDir("failpoint");

  EXPECT_EXIT(
      {
        SetCurrentThreadName("crasher");
        PostmortemOptions options;
        options.dir = dir;
        InstallCrashHandler(options).CheckOK();
        FailpointRegistry::Default()
            .Configure("test.site:panic@1")
            .CheckOK();
        BOLTON_LOG(kInfo) << "about to crash via failpoint";
        Status ignored = FailpointRegistry::Default().Evaluate("test.site");
        (void)ignored;
        _exit(97);  // the panic action must have killed us already
      },
      ::testing::KilledBySignal(SIGABRT), "");

  ASSERT_TRUE(FinalizePostmortem(dir).ok());
  const std::string json = ReadWholeFile(dir + "/postmortem.json");
  EXPECT_NE(json.find("\"schema\":\"bolton-postmortem-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("about to crash via failpoint"), std::string::npos);
  EXPECT_NE(json.find("\"failpoints\":\"test.site:panic@1\""),
            std::string::npos);
}

#endif  // !defined(BOLTON_TSAN)

}  // namespace
}  // namespace obs
}  // namespace bolton
