#include "engine/table.h"

#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace bolton {
namespace {

Dataset MakeData(size_t m = 200, uint64_t seed = 161) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 6;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

std::string SpillPath(const std::string& tag) {
  return ::testing::TempDir() + "table_test_" + tag + ".bin";
}

// Sums features + labels as an order-independent content fingerprint.
std::pair<double, long> Fingerprint(const Table& table) {
  double feature_sum = 0.0;
  long label_sum = 0;
  table
      .Scan([&](const Example& e) {
        for (size_t i = 0; i < e.x.dim(); ++i) feature_sum += e.x[i];
        label_sum += e.label;
      })
      .CheckOK();
  return {feature_sum, label_sum};
}

class TableModeTest : public ::testing::TestWithParam<StorageMode> {
 protected:
  Result<std::unique_ptr<Table>> Make(const Dataset& data) {
    return MakeTable(data, GetParam(), SpillPath(TestName()), 16);
  }
  std::string TestName() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();  // e.g. "RoundTripsRows/disk"
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    return name + (GetParam() == StorageMode::kMemory ? "_mem" : "_disk");
  }
};

TEST_P(TableModeTest, RoundTripsRows) {
  Dataset data = MakeData();
  auto table = Make(data);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), data.size());
  EXPECT_EQ(table.value()->dim(), data.dim());

  // Before any shuffle, scan order matches insertion order.
  size_t i = 0;
  table.value()
      ->Scan([&](const Example& e) {
        EXPECT_NEAR(Distance(e.x, data[i].x), 0.0, 1e-12);
        EXPECT_EQ(e.label, data[i].label);
        ++i;
      })
      .CheckOK();
  EXPECT_EQ(i, data.size());
}

TEST_P(TableModeTest, ShufflePreservesContentAndChangesOrder) {
  Dataset data = MakeData(500, 162);
  auto table = Make(data);
  ASSERT_TRUE(table.ok());
  auto before = Fingerprint(*table.value());

  Rng rng(1);
  ASSERT_TRUE(table.value()->Shuffle(&rng).ok());
  auto after = Fingerprint(*table.value());
  EXPECT_NEAR(before.first, after.first, 1e-9);
  EXPECT_EQ(before.second, after.second);

  // At least one row moved (probability of identity order ~ 1/500!).
  bool moved = false;
  size_t i = 0;
  table.value()
      ->Scan([&](const Example& e) {
        if (Distance(e.x, data[i].x) > 1e-12) moved = true;
        ++i;
      })
      .CheckOK();
  EXPECT_TRUE(moved);
}

TEST_P(TableModeTest, RepeatedScansAreStable) {
  Dataset data = MakeData(100, 163);
  auto table = Make(data);
  ASSERT_TRUE(table.ok());
  Rng rng(2);
  ASSERT_TRUE(table.value()->Shuffle(&rng).ok());
  // Two scans after one shuffle must see the identical order — Bismarck
  // shuffles once and then does sequential epochs.
  std::vector<int> labels_a, labels_b;
  table.value()->Scan([&](const Example& e) { labels_a.push_back(e.label); })
      .CheckOK();
  table.value()->Scan([&](const Example& e) { labels_b.push_back(e.label); })
      .CheckOK();
  EXPECT_EQ(labels_a, labels_b);
}

TEST_P(TableModeTest, ToDatasetCopiesEverything) {
  Dataset data = MakeData(50, 164);
  auto table = Make(data);
  ASSERT_TRUE(table.ok());
  auto copied = table.value()->ToDataset();
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied.value().size(), data.size());
  EXPECT_EQ(copied.value().dim(), data.dim());
}

INSTANTIATE_TEST_SUITE_P(Modes, TableModeTest,
                         ::testing::Values(StorageMode::kMemory,
                                           StorageMode::kDisk),
                         [](const ::testing::TestParamInfo<StorageMode>& i) {
                           return i.param == StorageMode::kMemory ? "memory"
                                                                  : "disk";
                         });

TEST(TableTest, DiskModeRequiresSpillPath) {
  Dataset data = MakeData(10, 165);
  EXPECT_FALSE(MakeTable(data, StorageMode::kDisk).ok());
}

TEST(TableTest, EmptyDatasetRejected) {
  Dataset empty(4, 2);
  EXPECT_FALSE(MakeTable(empty, StorageMode::kMemory).ok());
}

TEST(TableTest, TruncatedSpillFileSurfacesIOError) {
  // Failure injection: corrupt the backing file after creation; the next
  // scan must fail with IOError rather than emit garbage rows.
  Dataset data = MakeData(64, 167);
  std::string path = SpillPath("truncated");
  auto table = MakeTable(data, StorageMode::kDisk, path, 16);
  ASSERT_TRUE(table.ok());
  {
    std::ofstream truncate(path, std::ios::binary | std::ios::trunc);
    truncate << "short";
  }
  Status scan = table.value()->Scan([](const Example&) {});
  EXPECT_EQ(scan.code(), StatusCode::kIOError);
  // Shuffle reads the same file and must fail loudly too.
  Rng rng(4);
  EXPECT_EQ(table.value()->Shuffle(&rng).code(), StatusCode::kIOError);
}

TEST(TableTest, DiskTableUsesMultiplePages) {
  // 100 rows with 16-row pages exercises the paging path; content must
  // survive a shuffle that rewrites the file.
  Dataset data = MakeData(100, 166);
  auto table = MakeTable(data, StorageMode::kDisk, SpillPath("paging"), 16);
  ASSERT_TRUE(table.ok());
  Rng rng(3);
  ASSERT_TRUE(table.value()->Shuffle(&rng).ok());
  size_t rows = 0;
  table.value()->Scan([&](const Example&) { ++rows; }).CheckOK();
  EXPECT_EQ(rows, 100u);
}

}  // namespace
}  // namespace bolton
