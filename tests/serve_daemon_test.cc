// End-to-end HTTP tests for the `boltondp serve` daemon: a raw-socket
// client drives the /v1 JSON API against an in-process ServeDaemon and the
// responses are checked with the same JSON parser the daemon uses.
#include "serve/daemon.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"
#include "util/json.h"
#include "util/net.h"
#include "util/strings.h"

namespace bolton {
namespace serve {
namespace {

struct HttpResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// One HTTP/1.0 exchange: send, read to EOF, split head from body.
HttpResponse Call(int port, const std::string& method,
                  const std::string& target, const std::string& body) {
  HttpResponse out;
  auto fd = net::ConnectTcp(static_cast<uint16_t>(port));
  if (!fd.ok()) {
    ADD_FAILURE() << "connect: " << fd.status().ToString();
    return out;
  }
  std::string request = StrFormat("%s %s HTTP/1.0\r\nHost: 127.0.0.1\r\n",
                                  method.c_str(), target.c_str());
  if (!body.empty() || method == "POST") {
    request += StrFormat("Content-Type: application/json\r\n"
                         "Content-Length: %zu\r\n",
                         body.size());
  }
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!net::SendAll(fd.value(), request.data(), request.size(), 5000).ok()) {
    ADD_FAILURE() << "send failed";
    net::CloseFd(fd.value());
    return out;
  }
  auto response = net::RecvAll(fd.value(), 16 * 1024 * 1024, 30000);
  net::CloseFd(fd.value());
  if (!response.ok()) {
    ADD_FAILURE() << "recv: " << response.status().ToString();
    return out;
  }
  const std::string& text = response.value();
  const size_t split = text.find("\r\n\r\n");
  out.head = split == std::string::npos ? text : text.substr(0, split);
  out.body = split == std::string::npos ? "" : text.substr(split + 4);
  std::vector<std::string> parts = StrSplit(out.head, ' ');
  if (parts.size() >= 2) {
    auto code = ParseInt(parts[1]);
    if (code.ok()) out.status = static_cast<int>(code.value());
  }
  return out;
}

JsonValue ParseBody(const HttpResponse& response) {
  auto value = ParseJson(response.body);
  EXPECT_TRUE(value.ok()) << "unparseable body: " << response.body;
  return value.ok() ? value.MoveValue() : JsonValue();
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  void StartDaemon(ServeOptions options = {}) {
    options.port = 0;
    options.handler_threads = 2;
    auto daemon = ServeDaemon::Start(options);
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    daemon_ = daemon.MoveValue();
  }

  void TearDown() override {
    FailpointRegistry::Default().Clear();
    if (daemon_) daemon_->Shutdown();
  }

  HttpResponse Train(const std::string& json) {
    return Call(daemon_->port(), "POST", "/v1/train", json);
  }

  std::unique_ptr<ServeDaemon> daemon_;
};

TEST_F(ServeDaemonTest, TrainPredictRoundTrip) {
  StartDaemon();
  HttpResponse trained = Train(
      R"({"tenant":"alice","algorithm":"bolton","epsilon":0.4,)"
      R"("delta":1e-6,"passes":1,"scale":0.02})");
  ASSERT_EQ(trained.status, 200) << trained.body;
  JsonValue result = ParseBody(trained);
  const std::string model_id = result.GetString("model_id", "").MoveValue();
  EXPECT_EQ(model_id, "alice-1");
  const int dim =
      static_cast<int>(result.GetInt("dim", 0).MoveValue());
  ASSERT_GT(dim, 0);
  EXPECT_DOUBLE_EQ(result.GetNumber("spent_epsilon", 0).MoveValue(), 0.4);
  EXPECT_DOUBLE_EQ(result.GetNumber("remaining_epsilon", 0).MoveValue(), 0.6);

  // Predict against the released model — budget-free post-processing.
  std::string features = "[";
  for (int i = 0; i < dim; ++i) features += (i ? ",0.1" : "0.1");
  features += "]";
  HttpResponse predicted = Call(
      daemon_->port(), "POST", "/v1/predict",
      StrFormat(R"({"tenant":"alice","model_id":"%s","features":%s})",
                model_id.c_str(), features.c_str()));
  ASSERT_EQ(predicted.status, 200) << predicted.body;
  JsonValue score = ParseBody(predicted);
  const double prediction = score.GetNumber("prediction", 0.0).MoveValue();
  EXPECT_TRUE(prediction == 1.0 || prediction == -1.0);
  // Prediction spent nothing.
  EXPECT_DOUBLE_EQ(daemon_->budget().Account("alice").spent.epsilon, 0.4);

  // Wrong dimensionality is a client error, not a crash.
  HttpResponse short_features = Call(
      daemon_->port(), "POST", "/v1/predict",
      StrFormat(R"({"tenant":"alice","model_id":"%s","features":[1]})",
                model_id.c_str()));
  EXPECT_EQ(short_features.status, 400);
}

TEST_F(ServeDaemonTest, MalformedRequestsGet400) {
  StartDaemon();
  EXPECT_EQ(Train("{not json").status, 400);
  EXPECT_EQ(Train(R"({"algorithm":"bolton"})").status, 400);  // no tenant
  EXPECT_EQ(Train(R"({"tenant":"a","algorithm":"martian"})").status, 400);
  EXPECT_EQ(Train(R"({"tenant":"a","epsilon":-2})").status, 400);
  JsonValue error = ParseBody(Train("{not json"));
  EXPECT_EQ(error.GetString("error", "").MoveValue(), "bad_request");
}

TEST_F(ServeDaemonTest, WrongMethodGets405) {
  StartDaemon();
  EXPECT_EQ(Call(daemon_->port(), "GET", "/v1/train", "").status, 405);
  EXPECT_EQ(Call(daemon_->port(), "POST", "/v1/budget", "{}").status, 405);
}

TEST_F(ServeDaemonTest, ExhaustedTenantGets429AndLedgeredRefusal) {
  ServeOptions options;
  options.budget.default_budget = PrivacyParams{0.5, 1e-6};
  StartDaemon(options);
  ASSERT_EQ(Train(R"({"tenant":"alice","algorithm":"bolton",)"
                  R"("epsilon":0.4,"passes":1,"scale":0.02})")
                .status,
            200);
  HttpResponse refused = Train(
      R"({"tenant":"alice","algorithm":"bolton","epsilon":0.4,)"
      R"("passes":1,"scale":0.02})");
  ASSERT_EQ(refused.status, 429) << refused.body;
  JsonValue body = ParseBody(refused);
  EXPECT_EQ(body.GetString("error", "").MoveValue(), "budget_exhausted");
  EXPECT_EQ(body.GetString("tenant", "").MoveValue(), "alice");
  EXPECT_DOUBLE_EQ(body.GetNumber("budget_epsilon", 0).MoveValue(), 0.5);
  EXPECT_DOUBLE_EQ(body.GetNumber("spent_epsilon", 0).MoveValue(), 0.4);
  // The refusal is on the account (and thus the ledger, tested in
  // serve_budget_test); an unaffected tenant still trains.
  EXPECT_EQ(daemon_->budget().Account("alice").refusals, 1u);
  EXPECT_EQ(Train(R"({"tenant":"bob","algorithm":"bolton","epsilon":0.4,)"
                  R"("passes":1,"scale":0.02})")
                .status,
            200);
}

TEST_F(ServeDaemonTest, NoiselessTrainingSpendsNothing) {
  StartDaemon();
  ASSERT_EQ(Train(R"({"tenant":"alice","algorithm":"noiseless",)"
                  R"("passes":1,"scale":0.02})")
                .status,
            200);
  EXPECT_DOUBLE_EQ(daemon_->budget().Account("alice").spent.epsilon, 0.0);
}

TEST_F(ServeDaemonTest, ForeignModelLooksMissing) {
  StartDaemon();
  HttpResponse trained = Train(
      R"({"tenant":"alice","algorithm":"noiseless","passes":1,"scale":0.02})");
  ASSERT_EQ(trained.status, 200);
  const std::string model_id =
      ParseBody(trained).GetString("model_id", "").MoveValue();
  // Bob probing Alice's model id gets the same 404 as a nonexistent id —
  // the API does not disclose other tenants' model namespace.
  HttpResponse foreign = Call(
      daemon_->port(), "POST", "/v1/predict",
      StrFormat(R"({"tenant":"bob","model_id":"%s","features":[1]})",
                model_id.c_str()));
  HttpResponse missing = Call(
      daemon_->port(), "POST", "/v1/predict",
      R"({"tenant":"bob","model_id":"no-such","features":[1]})");
  EXPECT_EQ(foreign.status, 404);
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(foreign.body, missing.body);
}

TEST_F(ServeDaemonTest, AggregateSpendsUnderTheSameBudget) {
  StartDaemon();
  HttpResponse counted = Call(
      daemon_->port(), "POST", "/v1/aggregate",
      R"({"tenant":"alice","op":"count","epsilon":0.2,"scale":0.02})");
  ASSERT_EQ(counted.status, 200) << counted.body;
  JsonValue body = ParseBody(counted);
  EXPECT_GT(body.GetNumber("value", 0.0).MoveValue(), 0.0);
  EXPECT_DOUBLE_EQ(daemon_->budget().Account("alice").spent.epsilon, 0.2);
}

TEST_F(ServeDaemonTest, BudgetEndpointReportsAccounts) {
  StartDaemon();
  ASSERT_EQ(Train(R"({"tenant":"alice","algorithm":"bolton","epsilon":0.3,)"
                  R"("passes":1,"scale":0.02})")
                .status,
            200);
  HttpResponse single =
      Call(daemon_->port(), "GET", "/v1/budget?tenant=alice", "");
  ASSERT_EQ(single.status, 200);
  JsonValue view = ParseBody(single);
  EXPECT_EQ(view.GetString("tenant", "").MoveValue(), "alice");
  EXPECT_DOUBLE_EQ(view.GetNumber("spent_epsilon", 0).MoveValue(), 0.3);
  EXPECT_EQ(view.GetInt("commits", 0).MoveValue(), 1);

  HttpResponse all = Call(daemon_->port(), "GET", "/v1/budget", "");
  ASSERT_EQ(all.status, 200);
  auto list = ParseJson(all.body);
  ASSERT_TRUE(list.ok()) << all.body;
  ASSERT_TRUE(list.value().is_array());
  EXPECT_EQ(list.value().array_items().size(), 1u);
}

TEST_F(ServeDaemonTest, SaturatedTenantGets429OthersProceed) {
  ServeOptions options;
  options.admission.max_inflight = 4;
  options.admission.max_inflight_per_tenant = 1;
  StartDaemon(options);
  // Occupy alice's one slot out-of-band: her next request must bounce with
  // tenant_busy while bob is unaffected. Deterministic — no racing threads.
  auto ticket = daemon_->admission().Admit("alice");
  ASSERT_TRUE(ticket.ok());
  HttpResponse busy = Train(
      R"({"tenant":"alice","algorithm":"noiseless","passes":1,"scale":0.02})");
  EXPECT_EQ(busy.status, 429);
  EXPECT_EQ(ParseBody(busy).GetString("error", "").MoveValue(),
            "tenant_busy");
  EXPECT_EQ(Train(R"({"tenant":"bob","algorithm":"noiseless",)"
                  R"("passes":1,"scale":0.02})")
                .status,
            200);
}

TEST_F(ServeDaemonTest, OverloadedDaemonShedsWithRetryAfter) {
  ServeOptions options;
  options.admission.max_inflight = 2;
  options.admission.max_inflight_per_tenant = 2;
  StartDaemon(options);
  auto slot1 = daemon_->admission().Admit("x");
  auto slot2 = daemon_->admission().Admit("y");
  ASSERT_TRUE(slot1.ok());
  ASSERT_TRUE(slot2.ok());
  HttpResponse shed = Train(
      R"({"tenant":"alice","algorithm":"noiseless","passes":1,"scale":0.02})");
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(ParseBody(shed).GetString("error", "").MoveValue(), "overloaded");
  EXPECT_NE(shed.head.find("Retry-After:"), std::string::npos) << shed.head;
}

TEST_F(ServeDaemonTest, DeadlineCancelsTrainingAndRefunds) {
  StartDaemon();
  // Stall every PSGD pass 300 ms; the request allows 50 ms. The solver must
  // notice the deadline at a batch boundary, the daemon must answer 408,
  // and — bolton draws noise only at release — the hold must be refunded.
  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("psgd.pass:delay@300").ok());
  HttpResponse timed_out = Train(
      R"({"tenant":"alice","algorithm":"bolton","epsilon":0.4,)"
      R"("passes":3,"scale":0.02,"timeout_ms":50})");
  FailpointRegistry::Default().Clear();
  ASSERT_EQ(timed_out.status, 408) << timed_out.body;
  EXPECT_EQ(ParseBody(timed_out).GetString("error", "").MoveValue(),
            "timeout");
  TenantAccountView view = daemon_->budget().Account("alice");
  EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
  EXPECT_EQ(view.refunds, 1u);
  // Capacity intact: the same request without the stall succeeds.
  EXPECT_EQ(Train(R"({"tenant":"alice","algorithm":"bolton","epsilon":0.4,)"
                  R"("passes":1,"scale":0.02})")
                .status,
            200);
}

TEST_F(ServeDaemonTest, ShutdownIsIdempotentAndStopsServing) {
  StartDaemon();
  const int port = daemon_->port();
  ASSERT_EQ(Train(R"({"tenant":"a","algorithm":"noiseless","passes":1,)"
                  R"("scale":0.02})")
                .status,
            200);
  daemon_->Shutdown();
  daemon_->Shutdown();  // second call is a no-op
  EXPECT_FALSE(net::ConnectTcp(static_cast<uint16_t>(port)).ok());
}

}  // namespace
}  // namespace serve
}  // namespace bolton
