#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "random/distributions.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// An adversarial-ish neighboring replacement: flipping only the label
// reverses the example's gradient direction. (Flipping BOTH x and y would
// be a no-op: the logistic loss depends on (x, y) only through y⟨w, x⟩, so
// (−x, −y) is gradient-identical to (x, y).)
Example AdversarialReplacement(const Dataset& data, size_t index) {
  Example e = data[index];
  e.label = -e.label;
  return e;
}

Dataset MakeData(size_t m, uint64_t seed) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 8;
  config.margin = 1.5;
  config.noise_stddev = 0.8;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

struct SweepCase {
  size_t passes;
  size_t batch_size;
  size_t m;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return "k" + std::to_string(info.param.passes) + "_b" +
         std::to_string(info.param.batch_size) + "_m" +
         std::to_string(info.param.m);
}

// ---------------------------------------------------------------------------
// Convex, constant step (Corollary 1): empirical δ_T ≤ 2kLη/b.
// ---------------------------------------------------------------------------
class ConvexConstantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConvexConstantSweep, EmpiricalDeltaWithinBound) {
  const SweepCase c = GetParam();
  Dataset data = MakeData(c.m, 101 + c.m);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  const double eta = 1.0 / std::sqrt(static_cast<double>(c.m));

  SensitivitySetup setup{c.passes, c.batch_size, c.m};
  double bound = ConvexConstantStepSensitivity(*loss, eta, setup).value();
  EXPECT_DOUBLE_EQ(bound, 2.0 * c.passes * loss->lipschitz() * eta /
                              c.batch_size);

  auto schedule = MakeConstantStep(eta).MoveValue();
  PsgdOptions options;
  options.passes = c.passes;
  options.batch_size = c.batch_size;

  // Several differing positions and seeds; the bound is a sup, so every
  // observation must sit below it. Each observation must also be strictly
  // positive — a zero would mean the "neighboring" replacement was
  // actually a no-op and the comparison vacuous.
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (size_t index : {size_t{0}, c.m / 2, c.m - 1}) {
      double delta = SimulateDeltaT(data, index,
                                    AdversarialReplacement(data, index),
                                    *loss, *schedule, options, seed)
                         .value();
      EXPECT_GT(delta, 0.0) << "seed=" << seed << " index=" << index;
      EXPECT_LE(delta, bound + 1e-9)
          << "seed=" << seed << " index=" << index;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvexConstantSweep,
                         ::testing::Values(SweepCase{1, 1, 50},
                                           SweepCase{5, 1, 50},
                                           SweepCase{10, 1, 100},
                                           SweepCase{5, 5, 100},
                                           SweepCase{10, 10, 200},
                                           SweepCase{20, 50, 200}),
                         CaseName);

// ---------------------------------------------------------------------------
// Strongly convex, decreasing step (Lemma 8 / Algorithm 2):
// empirical δ_T ≤ 2L/(γmb), independent of k.
// ---------------------------------------------------------------------------
class StronglyConvexSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(StronglyConvexSweep, EmpiricalDeltaWithinLemma8Bound) {
  const SweepCase c = GetParam();
  Dataset data = MakeData(c.m, 202 + c.m);
  const double lambda = 0.05;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();

  SensitivitySetup setup{c.passes, c.batch_size, c.m};
  // The paper's (b-divided) bound and the corrected batch bound.
  double paper_bound =
      StronglyConvexDecreasingStepSensitivity(*loss, setup).value();
  EXPECT_DOUBLE_EQ(paper_bound, 2.0 * loss->lipschitz() /
                                    (lambda * c.m * c.batch_size));
  double corrected_bound =
      StronglyConvexDecreasingStepSensitivityCorrected(*loss, setup).value();
  EXPECT_DOUBLE_EQ(corrected_bound,
                   2.0 * loss->lipschitz() / (lambda * c.m));

  auto schedule =
      MakeInverseTimeStep(loss->strong_convexity(), loss->smoothness())
          .MoveValue();
  PsgdOptions options;
  options.passes = c.passes;
  options.batch_size = c.batch_size;
  options.radius = loss->radius();

  for (uint64_t seed : {4u, 5u}) {
    for (size_t index : {size_t{0}, c.m - 1}) {
      double delta = SimulateDeltaT(data, index,
                                    AdversarialReplacement(data, index),
                                    *loss, *schedule, options, seed)
                         .value();
      EXPECT_GT(delta, 0.0) << "seed=" << seed << " index=" << index;
      // The corrected bound must dominate at every batch size; the paper's
      // bound is only guaranteed at b = 1 (see PaperBatchBoundCanBeViolated).
      EXPECT_LE(delta, corrected_bound + 1e-9)
          << "seed=" << seed << " index=" << index;
      if (c.batch_size == 1) {
        EXPECT_LE(delta, paper_bound + 1e-9)
            << "seed=" << seed << " index=" << index;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, StronglyConvexSweep,
                         ::testing::Values(SweepCase{1, 1, 50},
                                           SweepCase{10, 1, 50},
                                           SweepCase{20, 1, 100},
                                           SweepCase{10, 5, 100},
                                           SweepCase{10, 25, 150}),
                         CaseName);

// Documented reproduction finding: the paper's §3.2.3 claim that
// mini-batching divides Lemma 8's Δ₂ by b is NOT sound — the decreasing
// schedule sees b× fewer updates, which cancels the 1/b in the additive
// term. This test pins the concrete counterexample we found (λ = 0.05,
// m = 150, b = 25, k = 10): the measured two-run δ_T exceeds the paper's
// bound while staying below the corrected bound.
TEST(StronglyConvexBatchTest, PaperBatchBoundCanBeViolated) {
  const size_t m = 150, b = 25, k = 10;
  Dataset data = MakeData(m, 202 + m);
  const double lambda = 0.05;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();

  SensitivitySetup setup{k, b, m};
  double paper_bound =
      StronglyConvexDecreasingStepSensitivity(*loss, setup).value();
  double corrected_bound =
      StronglyConvexDecreasingStepSensitivityCorrected(*loss, setup).value();

  auto schedule =
      MakeInverseTimeStep(loss->strong_convexity(), loss->smoothness())
          .MoveValue();
  PsgdOptions options;
  options.passes = k;
  options.batch_size = b;
  options.radius = loss->radius();

  double worst = 0.0;
  for (uint64_t seed : {4u, 5u}) {
    for (size_t index : {size_t{0}, m - 1}) {
      double delta = SimulateDeltaT(data, index,
                                    AdversarialReplacement(data, index),
                                    *loss, *schedule, options, seed)
                         .value();
      worst = std::max(worst, delta);
      EXPECT_LE(delta, corrected_bound + 1e-9);
    }
  }
  EXPECT_GT(worst, paper_bound)
      << "expected the paper's b-divided bound to be violated here; if this "
         "starts passing, the counterexample has rotted and EXPERIMENTS.md "
         "should be updated";
}

// ---------------------------------------------------------------------------
// Convex, decreasing and square-root steps (Corollaries 2 and 3).
// ---------------------------------------------------------------------------
class ConvexScheduleSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConvexScheduleSweep, DecreasingStepBoundHolds) {
  const SweepCase c = GetParam();
  const double c_exp = 0.5;
  Dataset data = MakeData(c.m, 303 + c.m);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();

  SensitivitySetup setup{c.passes, c.batch_size, c.m};
  double bound =
      ConvexDecreasingStepSensitivityCorrected(*loss, c_exp, setup).value();
  // At b = 1 the corrected sum coincides with the paper's Corollary 2 sum.
  if (c.batch_size == 1) {
    EXPECT_DOUBLE_EQ(
        bound, ConvexDecreasingStepSensitivity(*loss, c_exp, setup).value());
  }
  auto schedule =
      MakeDecreasingStep(loss->smoothness(), c.m, c_exp).MoveValue();
  PsgdOptions options;
  options.passes = c.passes;
  options.batch_size = c.batch_size;

  for (size_t index : {size_t{0}, c.m / 3}) {
    double delta =
        SimulateDeltaT(data, index, AdversarialReplacement(data, index),
                       *loss, *schedule, options, 7)
            .value();
    EXPECT_GT(delta, 0.0);
    EXPECT_LE(delta, bound + 1e-9);
  }
}

TEST_P(ConvexScheduleSweep, SqrtStepBoundHolds) {
  const SweepCase c = GetParam();
  const double c_exp = 0.5;
  Dataset data = MakeData(c.m, 404 + c.m);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();

  SensitivitySetup setup{c.passes, c.batch_size, c.m};
  double bound =
      ConvexSqrtStepSensitivityCorrected(*loss, c_exp, setup).value();
  if (c.batch_size == 1) {
    EXPECT_DOUBLE_EQ(bound,
                     ConvexSqrtStepSensitivity(*loss, c_exp, setup).value());
  }
  auto schedule =
      MakeSqrtOffsetStep(loss->smoothness(), c.m, c_exp).MoveValue();
  PsgdOptions options;
  options.passes = c.passes;
  options.batch_size = c.batch_size;

  for (size_t index : {size_t{0}, c.m / 3}) {
    double delta =
        SimulateDeltaT(data, index, AdversarialReplacement(data, index),
                       *loss, *schedule, options, 8)
            .value();
    EXPECT_GT(delta, 0.0);
    EXPECT_LE(delta, bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvexScheduleSweep,
                         ::testing::Values(SweepCase{1, 1, 64},
                                           SweepCase{5, 1, 64},
                                           SweepCase{5, 4, 128}),
                         CaseName);

// The analysis is loss-agnostic given (L, β, γ); verify the Corollary 1
// bound also holds empirically for the Huber SVM (Appendix B), whose β =
// 1/(2h) = 5 differs markedly from logistic regression's.
TEST(HuberSensitivityTest, ConvexConstantStepBoundHolds) {
  const size_t m = 100, k = 5;
  Dataset data = MakeData(m, 271);
  auto loss = MakeHuberSvmLoss(0.1, 0.0, kInf).MoveValue();
  const double eta = 1.0 / std::sqrt(static_cast<double>(m));  // < 2/β = 0.4

  SensitivitySetup setup{k, 1, m};
  double bound = ConvexConstantStepSensitivity(*loss, eta, setup).value();
  auto schedule = MakeConstantStep(eta).MoveValue();
  PsgdOptions options;
  options.passes = k;

  for (uint64_t seed : {1u, 2u}) {
    for (size_t index : {size_t{0}, m / 2}) {
      double delta = SimulateDeltaT(data, index,
                                    AdversarialReplacement(data, index),
                                    *loss, *schedule, options, seed)
                         .value();
      EXPECT_GT(delta, 0.0);
      EXPECT_LE(delta, bound + 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Formula-level checks.
// ---------------------------------------------------------------------------

TEST(SensitivityFormulaTest, ClosedFormDominatesExactSum) {
  // The paper's displayed Corollary 2 bound must upper-bound the exact sum
  // (for k >= 2; at k = 1 the ln k term vanishes and the exact sum's +1
  // offset keeps it below 1/m^c anyway).
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  for (size_t k : {size_t{2}, size_t{5}, size_t{20}}) {
    for (size_t m : {size_t{100}, size_t{10000}}) {
      SensitivitySetup setup{k, 1, m};
      double exact = ConvexDecreasingStepSensitivity(*loss, 0.5, setup).value();
      double closed =
          ConvexDecreasingStepSensitivityClosedForm(*loss, 0.5, setup).value();
      EXPECT_LE(exact, closed) << "k=" << k << " m=" << m;
    }
  }
}

TEST(SensitivityFormulaTest, StronglyConvexBoundIsPassCountOblivious) {
  auto loss = MakeLogisticLoss(0.01, 100.0).MoveValue();
  SensitivitySetup setup_1{1, 1, 1000};
  SensitivitySetup setup_100{100, 1, 1000};
  EXPECT_DOUBLE_EQ(
      StronglyConvexDecreasingStepSensitivity(*loss, setup_1).value(),
      StronglyConvexDecreasingStepSensitivity(*loss, setup_100).value());
}

TEST(SensitivityFormulaTest, ConvexBoundGrowsLinearlyInPasses) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SensitivitySetup setup_1{1, 1, 1000};
  SensitivitySetup setup_10{10, 1, 1000};
  double d1 = ConvexConstantStepSensitivity(*loss, 0.01, setup_1).value();
  double d10 = ConvexConstantStepSensitivity(*loss, 0.01, setup_10).value();
  EXPECT_DOUBLE_EQ(d10, 10.0 * d1);
}

TEST(SensitivityFormulaTest, MiniBatchDividesEveryBound) {
  auto convex = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto strong = MakeLogisticLoss(0.01, 100.0).MoveValue();
  SensitivitySetup b1{5, 1, 1000};
  SensitivitySetup b50{5, 50, 1000};
  EXPECT_DOUBLE_EQ(ConvexConstantStepSensitivity(*convex, 0.01, b1).value(),
                   50.0 *
                       ConvexConstantStepSensitivity(*convex, 0.01, b50)
                           .value());
  EXPECT_DOUBLE_EQ(
      StronglyConvexDecreasingStepSensitivity(*strong, b1).value(),
      50.0 * StronglyConvexDecreasingStepSensitivity(*strong, b50).value());
}

TEST(SensitivityFormulaTest, StronglyConvexConstantStepLemma7) {
  const double lambda = 0.1;
  auto loss = MakeLogisticLoss(lambda, 10.0).MoveValue();
  const double eta = 0.5 / loss->smoothness();
  SensitivitySetup setup{3, 1, 100};
  double bound =
      StronglyConvexConstantStepSensitivity(*loss, eta, setup).value();
  double expected = 2.0 * eta * loss->lipschitz() /
                    (1.0 - std::pow(1.0 - eta * lambda, 100.0));
  EXPECT_NEAR(bound, expected, 1e-9 * expected);
  // Lemma 7's geometric bound also never exceeds 2L/γ · η/(ηγ·m-ish); just
  // sanity-check it is finite and positive.
  EXPECT_GT(bound, 0.0);
  EXPECT_TRUE(std::isfinite(bound));
}

TEST(SensitivityErrorsTest, WrongConvexityRejected) {
  auto convex = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto strong = MakeLogisticLoss(0.01, 100.0).MoveValue();
  SensitivitySetup setup{5, 1, 100};
  EXPECT_EQ(ConvexConstantStepSensitivity(*strong, 0.01, setup)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StronglyConvexDecreasingStepSensitivity(*convex, setup)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(SensitivityErrorsTest, OutOfRegimeStepRejected) {
  auto convex = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto strong = MakeLogisticLoss(0.1, 10.0).MoveValue();
  SensitivitySetup setup{5, 1, 100};
  // Corollary 1 needs η ≤ 2/β.
  EXPECT_FALSE(ConvexConstantStepSensitivity(*convex, 2.5, setup).ok());
  // Lemma 7 needs η ≤ 1/β.
  EXPECT_FALSE(
      StronglyConvexConstantStepSensitivity(*strong, 1.0, setup).ok());
}

TEST(SensitivityErrorsTest, BadSetupRejected) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  EXPECT_FALSE(
      ConvexConstantStepSensitivity(*loss, 0.01, {0, 1, 100}).ok());
  EXPECT_FALSE(
      ConvexConstantStepSensitivity(*loss, 0.01, {1, 0, 100}).ok());
  EXPECT_FALSE(ConvexConstantStepSensitivity(*loss, 0.01, {1, 1, 0}).ok());
  EXPECT_FALSE(ConvexDecreasingStepSensitivity(*loss, 1.5, {1, 1, 10}).ok());
}

TEST(SimulateDeltaTest, IdenticalDatasetsGiveZero) {
  Dataset data = MakeData(40, 11);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  double delta =
      SimulateDeltaT(data, 3, data[3], *loss, *schedule, options, 42).value();
  EXPECT_DOUBLE_EQ(delta, 0.0);
}

TEST(SimulateDeltaTest, ValidationErrors) {
  Dataset data = MakeData(20, 12);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  EXPECT_FALSE(SimulateDeltaT(data, 99, data[0], *loss, *schedule, options, 1)
                   .ok());
  Example wrong_dim{Vector(3), +1};
  EXPECT_FALSE(
      SimulateDeltaT(data, 0, wrong_dim, *loss, *schedule, options, 1).ok());
}

// Model averaging never increases sensitivity (Lemma 10): the averaged
// models of two neighboring runs are at most as far apart as the bound.
TEST(AveragingSensitivityTest, AveragedDeltaWithinBound) {
  const size_t m = 100, k = 5;
  Dataset data = MakeData(m, 13);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  const double eta = 0.05;
  double bound =
      ConvexConstantStepSensitivity(*loss, eta, {k, 1, m}).value();
  auto schedule = MakeConstantStep(eta).MoveValue();
  PsgdOptions options;
  options.passes = k;
  options.output = OutputMode::kAverageAll;
  for (size_t index : {size_t{0}, m / 2}) {
    double delta =
        SimulateDeltaT(data, index, AdversarialReplacement(data, index),
                       *loss, *schedule, options, 14)
            .value();
    EXPECT_LE(delta, bound + 1e-9);
  }
}

}  // namespace
}  // namespace bolton
