#include "optim/parallel_executor.h"

#include <cmath>
#include <limits>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/private_sgd.h"
#include "core/sensitivity.h"
#include "data/synthetic.h"
#include "linalg/simd.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "optim/schedule.h"
#include "optim/thread_pool.h"
#include "util/failpoint.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeTrainingSet(size_t m, uint64_t seed = 91) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 8;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

/// A schedule whose very first step is invalid, so every shard's RunPsgd
/// fails — exercises the failure-surfacing contract.
class BadSchedule : public StepSizeSchedule {
 public:
  double StepSize(size_t) const override { return 0.0; }
  double MaxStepSize() const override { return 0.0; }
  std::string name() const override { return "bad"; }
  std::unique_ptr<StepSizeSchedule> Clone() const override {
    return std::make_unique<BadSchedule>();
  }
};

TEST(ShardSeedTest, CounterBasedAndDistinct) {
  std::set<uint64_t> seeds;
  for (size_t j = 0; j < 64; ++j) {
    // Depends only on (base, j): same inputs, same seed.
    EXPECT_EQ(ShardSeed(42, j), ShardSeed(42, j));
    seeds.insert(ShardSeed(42, j));
  }
  EXPECT_EQ(seeds.size(), 64u);
  EXPECT_NE(ShardSeed(42, 0), ShardSeed(43, 0));
}

TEST(ParallelExecutorTest, ShardsOneIsBitIdenticalToSerial) {
  Dataset data = MakeTrainingSet(150);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.2).MoveValue();
  PsgdOptions options;
  options.passes = 3;
  options.batch_size = 4;

  Rng serial_rng(17), sharded_rng(17);
  auto serial = RunPsgd(data, *loss, *schedule, options, &serial_rng);
  auto sharded =
      RunShardedPsgd(data, *loss, *schedule, options, &sharded_rng);
  ASSERT_TRUE(serial.ok() && sharded.ok());
  EXPECT_EQ(serial.value().model, sharded.value().model);
  EXPECT_EQ(sharded.value().shards, 1u);
  ASSERT_EQ(sharded.value().shard_sizes.size(), 1u);
  EXPECT_EQ(sharded.value().shard_sizes[0], data.size());
  // The serial path must also consume the caller's rng identically.
  EXPECT_EQ(serial_rng.Next(), sharded_rng.Next());
}

TEST(ParallelExecutorTest, DeterministicAtAnyThreadCount) {
  Dataset data = MakeTrainingSet(203);
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  auto schedule = MakeInverseTimeStep(0.1, 1.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.batch_size = 3;
  options.radius = 10.0;
  options.shards = 4;

  Vector reference;
  for (size_t max_threads : {1u, 2u, 4u, 0u}) {
    Rng rng(23);
    options.executor.max_threads = max_threads;
    auto run = RunShardedPsgd(data, *loss, *schedule, options, &rng);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    if (reference.empty()) {
      reference = run.value().model;
    } else {
      EXPECT_EQ(reference, run.value().model)
          << "model differs at max_threads=" << max_threads;
    }
  }
}

TEST(ParallelExecutorTest, BalancedPartitionAndSummedStats) {
  Dataset data = MakeTrainingSet(103);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.batch_size = 5;
  options.shards = 4;
  Rng rng(29);
  auto run = RunShardedPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  // 103 = 26 + 26 + 26 + 25.
  ASSERT_EQ(run.value().shard_sizes.size(), 4u);
  EXPECT_EQ(run.value().shard_sizes[0], 26u);
  EXPECT_EQ(run.value().shard_sizes[1], 26u);
  EXPECT_EQ(run.value().shard_sizes[2], 26u);
  EXPECT_EQ(run.value().shard_sizes[3], 25u);
  // Every example is touched once per pass across all shards.
  EXPECT_EQ(run.value().stats.gradient_evaluations, 2u * 103u);
  // ⌈26/5⌉ = 6 updates per pass on the big shards, ⌈25/5⌉ = 5 on the last.
  EXPECT_EQ(run.value().stats.updates, 2u * (6u + 6u + 6u + 5u));
}

TEST(ParallelExecutorTest, ShardFailureSurfacesThroughResult) {
  Dataset data = MakeTrainingSet(40);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BadSchedule schedule;
  PsgdOptions options;
  options.passes = 1;
  options.shards = 2;
  Rng rng(31);
  auto run = RunShardedPsgd(data, *loss, schedule, options, &rng);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("psgd shard"), std::string::npos)
      << run.status().ToString();
}

TEST(ParallelExecutorTest, RejectsInvalidShardConfigs) {
  Dataset data = MakeTrainingSet(10);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  Rng rng(37);

  PsgdOptions too_many;
  too_many.shards = 11;
  EXPECT_FALSE(RunShardedPsgd(data, *loss, *schedule, too_many, &rng).ok());

  PsgdOptions big_batch;
  big_batch.shards = 3;  // smallest shard has ⌊10/3⌋ = 3 examples
  big_batch.batch_size = 4;
  EXPECT_FALSE(RunShardedPsgd(data, *loss, *schedule, big_batch, &rng).ok());

  PsgdOptions with_replacement;
  with_replacement.shards = 2;
  with_replacement.sampling = SamplingMode::kWithReplacement;
  EXPECT_FALSE(
      RunShardedPsgd(data, *loss, *schedule, with_replacement, &rng).ok());

  // The serial black box itself refuses shards > 1.
  PsgdOptions sharded_serial;
  sharded_serial.shards = 2;
  EXPECT_FALSE(RunPsgd(data, *loss, *schedule, sharded_serial, &rng).ok());
}

TEST(ParallelExecutorTest, ShardedSensitivityMatchesClosedForm) {
  // Strongly convex, λ = 0.1, R = 1/λ = 10 ⇒ L = 1 + λR = 2, γ = 0.1.
  auto strong = MakeLogisticLoss(0.1, 10.0).MoveValue();
  SensitivitySetup setup;
  setup.passes = 5;
  setup.batch_size = 2;
  setup.num_examples = 100;
  // m = 100, s = 4 ⇒ every shard sees 25 examples: Δ₂ = 2L/(γ·25·b).
  auto sharded = ShardedStronglyConvexDecreasingStepSensitivity(
      *strong, setup, /*shards=*/4, /*use_corrected_minibatch=*/false);
  ASSERT_TRUE(sharded.ok());
  EXPECT_DOUBLE_EQ(sharded.value(), 2.0 * 2.0 / (0.1 * 25.0 * 2.0));

  // Uneven split: m = 10, s = 3 ⇒ smallest shard ⌊10/3⌋ = 3 dominates.
  SensitivitySetup uneven = setup;
  uneven.num_examples = 10;
  uneven.batch_size = 1;
  auto smallest = ShardedStronglyConvexDecreasingStepSensitivity(
      *strong, uneven, /*shards=*/3, /*use_corrected_minibatch=*/false);
  ASSERT_TRUE(smallest.ok());
  EXPECT_DOUBLE_EQ(smallest.value(), 2.0 * 2.0 / (0.1 * 3.0 * 1.0));

  // shards = 1 degenerates to the serial Lemma 8 bound.
  auto serial = StronglyConvexDecreasingStepSensitivity(*strong, setup);
  auto one = ShardedStronglyConvexDecreasingStepSensitivity(
      *strong, setup, /*shards=*/1, /*use_corrected_minibatch=*/false);
  ASSERT_TRUE(serial.ok() && one.ok());
  EXPECT_DOUBLE_EQ(one.value(), serial.value());

  // Convex constant step: Δ₂ = 2kLη/b is m-oblivious, so sharding leaves
  // it unchanged.
  auto convex = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto convex_serial = ConvexConstantStepSensitivity(*convex, 0.05, setup);
  auto convex_sharded =
      ShardedConvexConstantStepSensitivity(*convex, 0.05, setup, 4);
  ASSERT_TRUE(convex_serial.ok() && convex_sharded.ok());
  EXPECT_DOUBLE_EQ(convex_sharded.value(), convex_serial.value());
  EXPECT_DOUBLE_EQ(convex_sharded.value(), 2.0 * 5.0 * 1.0 * 0.05 / 2.0);
}

TEST(ParallelExecutorTest, MinShardSizeValidates) {
  auto ok = MinShardSize(10, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 3u);
  EXPECT_FALSE(MinShardSize(10, 0).ok());
  EXPECT_FALSE(MinShardSize(10, 11).ok());
}

TEST(ParallelExecutorTest, ShardMetricsRecorded) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Default().Reset();
  Dataset data = MakeTrainingSet(60);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 1;
  options.shards = 3;
  Rng rng(41);
  ASSERT_TRUE(RunShardedPsgd(data, *loss, *schedule, options, &rng).ok());
  obs::SetMetricsEnabled(false);
  EXPECT_EQ(
      obs::MetricsRegistry::Default().GetCounter("psgd.shard_runs")->Value(),
      3u);
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .GetCounter("psgd.shard_failures")
                ->Value(),
            0u);
  EXPECT_EQ(
      obs::MetricsRegistry::Default().GetGauge("psgd.shard_count")->Value(),
      3.0);
}

TEST(ParallelExecutorTest, ShardedBoltOnRecordsLedgerAccounting) {
  obs::PrivacyLedger::Default().Clear();
  obs::PrivacyLedger::Default().SetEnabled(true);
  Dataset data = MakeTrainingSet(120);
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 2;
  options.batch_size = 1;
  options.shards = 2;
  Rng rng(43);
  auto run = PrivatePsgd(data, *loss, options, &rng);
  obs::PrivacyLedger::Default().SetEnabled(false);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().shards, 2u);
  // The calibration Δ₂ must be the per-shard bound: 2L/(γ·(m/s)·b).
  EXPECT_DOUBLE_EQ(run.value().sensitivity,
                   2.0 * 2.0 / (0.1 * 60.0 * 1.0));

  bool found = false;
  for (const obs::LedgerEvent& event :
       obs::PrivacyLedger::Default().Snapshot()) {
    if (event.kind != "calibration") continue;
    EXPECT_EQ(event.label, "bolton.sharded_sensitivity");
    EXPECT_EQ(event.shards, 2u);
    EXPECT_DOUBLE_EQ(event.epsilon, 1.0);
    EXPECT_DOUBLE_EQ(event.sensitivity, run.value().sensitivity);
    found = true;
  }
  EXPECT_TRUE(found);
  obs::PrivacyLedger::Default().Clear();
}

TEST(ParallelExecutorTest, InjectedShardFaultRecoversViaRetryBitIdentically) {
  Dataset data = MakeTrainingSet(90);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.batch_size = 3;
  options.shards = 3;

  Rng clean_rng(53);
  auto clean = RunShardedPsgd(data, *loss, *schedule, options, &clean_rng);
  ASSERT_TRUE(clean.ok());

  // The first two shard attempts of the whole run fail (executor
  // max_threads = 1 makes the hit order deterministic: shard 0's first two
  // attempts), then
  // the failpoint goes quiet and the retry budget recovers the run.
  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("shard.worker:error*2").ok());
  options.executor.max_threads = 1;
  options.executor.retry.max_attempts = 3;
  // exercise the backoff+jitter path cheaply
  options.executor.retry.backoff_base_ms = 1;
  options.executor.retry.jitter_frac = 0.5;
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Default().Reset();
  Rng faulty_rng(53);
  auto recovered = RunShardedPsgd(data, *loss, *schedule, options,
                                  &faulty_rng);
  FailpointRegistry::Default().Clear();
  obs::SetMetricsEnabled(false);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // A retried success is bit-identical: every attempt re-seeds the shard
  // rng from the same counter-based seed.
  EXPECT_EQ(clean.value().model, recovered.value().model);
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .GetCounter("psgd.shard_retries")
                ->Value(),
            2u);
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .GetCounter("psgd.shard_redispatches")
                ->Value(),
            0u);
}

TEST(ParallelExecutorTest, ExhaustedRetriesFailTheRunNeverPartialAverage) {
  obs::PrivacyLedger::Default().Clear();
  obs::PrivacyLedger::Default().SetEnabled(true);
  Dataset data = MakeTrainingSet(60);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 1;
  options.shards = 2;

  // Every attempt fails: retries, then the degradation re-dispatch, must
  // all be exhausted and the whole release must be refused (Lemma 10
  // calibrates the average to ALL shards; a partial average is never
  // privacy-sound).
  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("shard.worker:error").ok());
  options.executor.max_threads = 1;
  options.executor.retry.max_attempts = 2;
  Rng rng(59);
  auto run = RunShardedPsgd(data, *loss, *schedule, options, &rng);
  FailpointRegistry::Default().Clear();
  obs::PrivacyLedger::Default().SetEnabled(false);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kIOError);
  EXPECT_NE(
      run.status().message().find("refusing to average a partial run"),
      std::string::npos)
      << run.status().ToString();

  // Every recovery action left an audit event.
  size_t retry_events = 0, redispatch_events = 0;
  for (const obs::LedgerEvent& event :
       obs::PrivacyLedger::Default().Snapshot()) {
    if (event.kind != "retry") continue;
    if (event.label.find("psgd.shard_retry") == 0) ++retry_events;
    if (event.label.find("psgd.shard_redispatch") == 0) ++redispatch_events;
  }
  EXPECT_GE(retry_events, 2u);
  EXPECT_EQ(redispatch_events, 2u);
  obs::PrivacyLedger::Default().Clear();
}

TEST(ParallelExecutorTest, UtilizationAccountsEveryWorker) {
  Dataset data = MakeTrainingSet(300);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.shards = 4;
  options.executor.max_threads = 2;
  Rng rng(17);
  auto out = RunShardedPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  const WorkerUtilization& util = out.value().utilization;
  ASSERT_EQ(util.workers.size(), 2u);
  size_t shards_total = 0;
  for (const WorkerStats& w : util.workers) {
    EXPECT_GT(w.busy_ns, 0u) << "worker " << w.worker;
    EXPECT_GE(w.shards_run, 1u);
    shards_total += w.shards_run;
  }
  EXPECT_EQ(shards_total, 4u);
  EXPECT_EQ(util.workers[0].worker, 0u);
  EXPECT_EQ(util.workers[1].worker, 1u);
  // busy_fraction is Σbusy/Σ(busy+idle): a real fraction, positive here.
  EXPECT_GT(util.busy_fraction, 0.0);
  EXPECT_LE(util.busy_fraction, 1.0);
  EXPECT_GT(util.average_ns, 0u);
}

TEST(ParallelExecutorTest, WorkersCarryPerfCounterDeltas) {
  obs::SetPerfCountersEnabled(true);
  Dataset data = MakeTrainingSet(300);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.shards = 2;
  options.executor.max_threads = 2;
  Rng rng(29);
  auto out = RunShardedPsgd(data, *loss, *schedule, options, &rng);
  obs::SetPerfCountersEnabled(false);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.value().utilization.workers.size(), 2u);
  for (const WorkerStats& w : out.value().utilization.workers) {
    // task_clock_ns works at every degradation tier — a worker that did
    // shard work must show on-CPU time even without a PMU.
    EXPECT_GT(w.counters.task_clock_ns, 0u) << "worker " << w.worker;
    if (obs::PerfHardwareAvailable()) {
      EXPECT_TRUE(w.counters.available);
      EXPECT_GT(w.counters.cycles, 0u);
    }
  }
}

TEST(ParallelExecutorTest, SerialDelegationHasNoWorkerRows) {
  Dataset data = MakeTrainingSet(100);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.shards = 1;
  Rng rng(19);
  auto out = RunShardedPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().utilization.workers.empty());
}

TEST(ParallelExecutorTest, WorkerMetricsRecorded) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Default().Reset();
  Dataset data = MakeTrainingSet(200);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.shards = 2;
  // Pin two slices: the auto policy (max_threads = 0) sizes to the pool's
  // capacity, which is machine-dependent.
  options.executor.max_threads = 2;
  Rng rng(23);
  ASSERT_TRUE(RunShardedPsgd(data, *loss, *schedule, options, &rng).ok());

  auto snapshot = obs::MetricsRegistry::Default().Snapshot();
  bool saw_busy = false, saw_count = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "psgd.worker_busy_seconds") {
      saw_busy = true;
      EXPECT_EQ(h.count, 2u);
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "psgd.worker_count") {
      saw_count = true;
      EXPECT_EQ(value, 2.0);
    }
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(saw_count);
  obs::SetMetricsEnabled(false);
}

TEST(ParallelExecutorTest, PoolReuseIsDeterministicFreshVsWarm) {
  Dataset data = MakeTrainingSet(180);
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  auto schedule = MakeInverseTimeStep(0.1, 1.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.batch_size = 3;
  options.radius = 10.0;
  options.shards = 4;

  // Reference: the global pool (whatever its warmth).
  Rng reference_rng(71);
  auto reference =
      RunShardedPsgd(data, *loss, *schedule, options, &reference_rng);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (size_t workers : {1u, 2u, 4u}) {
    // Fresh pool: first run pays worker spawn, second reuses warm parked
    // workers. Both must be bit-identical to the reference and each other
    // — results may depend only on (seed, shard count), never on pool
    // temperature or size.
    ThreadPoolOptions pool_options;
    pool_options.max_threads = workers;
    ThreadPool pool(pool_options);
    options.executor.pool = &pool;
    for (int repeat = 0; repeat < 2; ++repeat) {
      Rng rng(71);
      auto run = RunShardedPsgd(data, *loss, *schedule, options, &rng);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(reference.value().model, run.value().model)
          << "workers=" << workers << " repeat=" << repeat;
    }
    options.executor.pool = nullptr;
  }
}

TEST(ParallelExecutorTest, ExecutorSimdOverrideIsBitIdenticalToDefault) {
  Dataset data = MakeTrainingSet(120);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.batch_size = 2;
  options.shards = 2;

  Rng default_rng(83);
  auto with_default =
      RunShardedPsgd(data, *loss, *schedule, options, &default_rng);
  ASSERT_TRUE(with_default.ok());

  // Every supported tier must release the same bits (the kernel-level
  // contract, exercised end-to-end through a full sharded run).
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2,
                        SimdTier::kAvx512}) {
    if (!SimdTierSupported(tier)) continue;
    options.executor.simd = tier;
    Rng rng(83);
    auto run = RunShardedPsgd(data, *loss, *schedule, options, &rng);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(with_default.value().model, run.value().model)
        << "tier=" << SimdTierName(tier);
  }
  // The override is scoped to the run: the process default is restored.
  EXPECT_EQ(ActiveSimdTier(), DefaultSimdTier());

  // An unsupported tier is an InvalidArgument, not a silent clamp.
  if (!SimdTierSupported(SimdTier::kAvx512)) {
    options.executor.simd = SimdTier::kAvx512;
    Rng rng(83);
    auto run = RunShardedPsgd(data, *loss, *schedule, options, &rng);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParallelExecutorTest, RetryPolicyValidatesMaxAttempts) {
  Dataset data = MakeTrainingSet(20);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.shards = 2;
  options.executor.retry.max_attempts = 0;
  Rng rng(61);
  EXPECT_FALSE(RunShardedPsgd(data, *loss, *schedule, options, &rng).ok());
}

}  // namespace
}  // namespace bolton
