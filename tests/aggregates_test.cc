#include "engine/aggregates.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/catalog.h"

namespace bolton {
namespace {

Dataset MakeTiny() {
  Dataset ds(2, 2);
  ds.Add(Example{Vector{1.0, 0.0}, +1});
  ds.Add(Example{Vector{0.0, 1.0}, -1});
  ds.Add(Example{Vector{0.5, 0.5}, +1});
  return ds;
}

TEST(AvgUdaTest, ComputesFeatureMeans) {
  Dataset ds = MakeTiny();
  auto table = MakeTable(ds, StorageMode::kMemory).MoveValue();
  auto means = TableFeatureMeans(*table);
  ASSERT_TRUE(means.ok());
  EXPECT_NEAR(means.value()[0], 0.5, 1e-12);
  EXPECT_NEAR(means.value()[1], 0.5, 1e-12);
}

TEST(AvgUdaTest, StateCarriesAcrossInvocations) {
  // Feed two scans through the same UDA by passing the raw state back in —
  // the aggregation-state contract the SGD UDA also relies on.
  Dataset ds = MakeTiny();
  auto table = MakeTable(ds, StorageMode::kMemory).MoveValue();
  AvgUda uda(2);
  uda.Initialize(Vector(3));
  table->Scan([&uda](const Example& row) { uda.Transition(row); }).CheckOK();
  table->Scan([&uda](const Example& row) { uda.Transition(row); }).CheckOK();
  Vector means = uda.Terminate();
  // Doubled rows, same means.
  EXPECT_NEAR(means[0], 0.5, 1e-12);
}

TEST(LabelCountUdaTest, CountsPerSign) {
  Dataset ds = MakeTiny();
  auto table = MakeTable(ds, StorageMode::kMemory).MoveValue();
  LabelCountUda uda;
  auto counts = RunAggregate(*table, &uda, Vector(2));
  ASSERT_TRUE(counts.ok());
  EXPECT_DOUBLE_EQ(counts.value()[0], 1.0);  // negatives
  EXPECT_DOUBLE_EQ(counts.value()[1], 2.0);  // positives
}

TEST(NormStatsUdaTest, MinMaxMean) {
  Dataset ds(1, 2);
  ds.Add(Example{Vector{3.0}, +1});
  ds.Add(Example{Vector{-1.0}, -1});
  ds.Add(Example{Vector{2.0}, +1});
  auto table = MakeTable(ds, StorageMode::kMemory).MoveValue();
  auto stats = TableNormStats(*table);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats.value()[0], 1.0);  // min
  EXPECT_DOUBLE_EQ(stats.value()[1], 3.0);  // max
  EXPECT_DOUBLE_EQ(stats.value()[2], 2.0);  // mean
}

TEST(NormStatsUdaTest, AuditsUnitBallPreprocessing) {
  SyntheticConfig config;
  config.num_examples = 200;
  config.dim = 6;
  config.seed = 211;
  Dataset ds = GenerateSynthetic(config).MoveValue();
  auto table = MakeTable(ds, StorageMode::kMemory).MoveValue();
  auto stats = TableNormStats(*table);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats.value()[1], 1.0 + 1e-12);  // generator normalizes
}

TEST(RunAggregateTest, NullUdaRejected) {
  Dataset ds = MakeTiny();
  auto table = MakeTable(ds, StorageMode::kMemory).MoveValue();
  EXPECT_FALSE(RunAggregate(*table, nullptr, Vector()).ok());
}

// ---------------------------------------------------------------------------
// Catalog.
// ---------------------------------------------------------------------------

TEST(CatalogTest, RegisterGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("train", MakeTiny(), StorageMode::kMemory).ok());
  EXPECT_TRUE(catalog.Contains("train"));
  EXPECT_EQ(catalog.size(), 1u);

  auto table = catalog.Get("train");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), 3u);

  EXPECT_TRUE(catalog.Drop("train").ok());
  EXPECT_FALSE(catalog.Contains("train"));
  EXPECT_EQ(catalog.Get("train").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Drop("train").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("t", MakeTiny(), StorageMode::kMemory).ok());
  EXPECT_EQ(catalog.CreateTable("t", MakeTiny(), StorageMode::kMemory).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog catalog;
  catalog.CreateTable("zeta", MakeTiny(), StorageMode::kMemory).CheckOK();
  catalog.CreateTable("alpha", MakeTiny(), StorageMode::kMemory).CheckOK();
  EXPECT_EQ(catalog.ListTables(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(CatalogTest, RejectsBadRegistrations) {
  Catalog catalog;
  EXPECT_FALSE(catalog.Register("x", nullptr).ok());
  auto table = MakeTable(MakeTiny(), StorageMode::kMemory);
  EXPECT_FALSE(catalog.Register("", table.MoveValue()).ok());
}

}  // namespace
}  // namespace bolton
