#include "util/json.h"

#include <string>

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null").MoveValue().is_null());
  EXPECT_TRUE(ParseJson("true").MoveValue().bool_value());
  EXPECT_FALSE(ParseJson("false").MoveValue().bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("3.25").MoveValue().number_value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-1e-6").MoveValue().number_value(), -1e-6);
  EXPECT_EQ(ParseJson("\"hi\"").MoveValue().string_value(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  auto value = ParseJson("\"a\\\"b\\\\c\\n\\t\\u0041\"");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().string_value(), "a\"b\\c\n\tA");
}

TEST(JsonParseTest, UnicodeEscapeBmp) {
  // U+00E9 (é) → two-byte UTF-8.
  auto value = ParseJson("\"caf\\u00e9\"");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().string_value(), "caf\xc3\xa9");
}

TEST(JsonParseTest, ArraysAndObjects) {
  auto value = ParseJson(R"({"a": [1, 2, 3], "b": {"c": true}, "d": null})");
  ASSERT_TRUE(value.ok());
  const JsonValue& root = value.value();
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_items()[1].number_value(), 2.0);
  const JsonValue* b = root.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_object());
  EXPECT_TRUE(b->Find("c")->bool_value());
  EXPECT_TRUE(root.Find("d")->is_null());
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto value = ParseJson("  {\n\t\"k\" : 1 }  ");
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(value.value().Find("k")->number_value(), 1.0);
}

TEST(JsonParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("nan").ok());
  EXPECT_FALSE(ParseJson("01").ok());
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

TEST(JsonParseTest, RejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
  // But 32 levels is comfortably inside the cap.
  std::string fine;
  for (int i = 0; i < 32; ++i) fine += "[";
  for (int i = 0; i < 32; ++i) fine += "]";
  EXPECT_TRUE(ParseJson(fine).ok());
}

TEST(JsonParseTest, ErrorsCarryByteOffset) {
  auto value = ParseJson("{\"a\": @}");
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("at byte 6"), std::string::npos)
      << value.status().message();
}

TEST(JsonAccessorTest, TypedGettersWithFallbacks) {
  auto value = ParseJson(
      R"({"s": "x", "n": 2.5, "i": 7, "b": true, "f": 1.5})");
  ASSERT_TRUE(value.ok());
  const JsonValue& root = value.value();

  EXPECT_EQ(root.GetString("s", "d").MoveValue(), "x");
  EXPECT_EQ(root.GetString("absent", "d").MoveValue(), "d");
  EXPECT_DOUBLE_EQ(root.GetNumber("n", 0.0).MoveValue(), 2.5);
  EXPECT_DOUBLE_EQ(root.GetNumber("absent", 9.0).MoveValue(), 9.0);
  EXPECT_EQ(root.GetInt("i", 0).MoveValue(), 7);
  EXPECT_EQ(root.GetInt("absent", -3).MoveValue(), -3);
  EXPECT_TRUE(root.GetBool("b", false).MoveValue());
  EXPECT_FALSE(root.GetBool("absent", false).MoveValue());

  // Wrong type → InvalidArgument naming the key.
  auto wrong = root.GetNumber("s", 0.0);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().message().find("s"), std::string::npos);
  // Non-integral number refused by GetInt.
  EXPECT_FALSE(root.GetInt("f", 0).ok());
}

}  // namespace
}  // namespace bolton
