#include "engine/private_aggregates.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace bolton {
namespace {

std::unique_ptr<Table> MakeSmallTable(size_t m = 200, uint64_t seed = 281) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 6;
  config.seed = seed;
  Dataset data = GenerateSynthetic(config).MoveValue();
  return MakeTable(data, StorageMode::kMemory).MoveValue();
}

TEST(PrivateCountTest, NoisyCountIsNearTruth) {
  auto table = MakeSmallTable();
  Rng rng(1);
  auto count = PrivateCount(*table, PrivacyParams{2.0, 0.0}, &rng);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count.value().true_value, 200.0);
  // Laplace(1/2): within ±10 with overwhelming probability.
  EXPECT_NEAR(count.value().noisy, 200.0, 10.0);
}

TEST(PrivateCountTest, NoiseScaleMatchesMechanism) {
  auto table = MakeSmallTable();
  // Average absolute noise over repeats: E|Laplace(b)| = b = Δ/ε.
  const int runs = 4000;
  double total_abs = 0.0;
  for (int r = 0; r < runs; ++r) {
    Rng rng(100 + r);
    auto count = PrivateCount(*table, PrivacyParams{0.5, 0.0}, &rng);
    ASSERT_TRUE(count.ok());
    total_abs += std::abs(count.value().noisy - count.value().true_value);
  }
  EXPECT_NEAR(total_abs / runs, 1.0 / 0.5, 0.15);
}

TEST(PrivateFeatureMeanTest, MatchesTrueMeanUpToNoise) {
  auto table = MakeSmallTable(500, 282);
  // True column mean via a plain scan.
  double sum = 0.0;
  table->Scan([&](const Example& e) { sum += e.x[2]; }).CheckOK();
  double truth = sum / 500.0;

  Rng rng(2);
  auto mean = PrivateFeatureMean(*table, 2, PrivacyParams{1.0, 0.0}, &rng);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean.value().true_value, truth);
  // Sensitivity 2/m = 0.004 at ε=1: noise is tiny.
  EXPECT_NEAR(mean.value().noisy, truth, 0.1);
}

TEST(PrivateFeatureMeanTest, GaussianVariantWorks) {
  auto table = MakeSmallTable(300, 283);
  Rng rng(3);
  auto mean = PrivateFeatureMean(*table, 0, PrivacyParams{0.5, 1e-6}, &rng);
  ASSERT_TRUE(mean.ok());
  EXPECT_TRUE(std::isfinite(mean.value().noisy));
}

TEST(PrivateFeatureMeanTest, Validation) {
  auto table = MakeSmallTable(50, 284);
  Rng rng(4);
  EXPECT_FALSE(
      PrivateFeatureMean(*table, 99, PrivacyParams{1.0, 0.0}, &rng).ok());
  EXPECT_FALSE(
      PrivateFeatureMean(*table, 0, PrivacyParams{0.0, 0.0}, &rng).ok());
}

TEST(PrivateFeatureMeanTest, RejectsOutOfRangeFeatures) {
  // Features outside [-1, 1] invalidate the 2/m sensitivity calibration.
  Dataset data(2, 2);
  data.Add(Example{Vector{5.0, 0.0}, +1});
  data.Add(Example{Vector{1.0, 0.5}, -1});
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  Rng rng(5);
  EXPECT_EQ(
      PrivateFeatureMean(*table, 0, PrivacyParams{1.0, 0.0}, &rng)
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
}

TEST(PrivateFeatureMeansTest, VectorReleaseNearTruth) {
  auto table = MakeSmallTable(1000, 285);
  Vector truth(table->dim());
  table->Scan([&](const Example& e) { truth += e.x; }).CheckOK();
  truth *= 1.0 / 1000.0;

  Rng rng(6);
  auto means = PrivateFeatureMeans(*table, PrivacyParams{1.0, 0.0}, &rng);
  ASSERT_TRUE(means.ok());
  // Laplace noise norm E = d·(2/m)/ε = 6·0.002 = 0.012.
  EXPECT_LT(Distance(means.value(), truth), 0.2);
}

TEST(PrivateFeatureMeansTest, EmptyTableRejected) {
  // MakeTable rejects empty datasets, so exercise the validation through a
  // direct empty-table scan guard via the smallest valid table instead.
  auto table = MakeSmallTable(1, 286);
  Rng rng(7);
  EXPECT_TRUE(
      PrivateFeatureMeans(*table, PrivacyParams{1.0, 0.0}, &rng).ok());
}

}  // namespace
}  // namespace bolton
