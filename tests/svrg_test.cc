#include "optim/svrg.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/sensitivity.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "optim/schedule.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeData(size_t m = 500, uint64_t seed = 231) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 8;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(SvrgTest, ReducesEmpiricalRisk) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SvrgOptions options;
  options.outer_iterations = 3;
  Rng rng(1);
  auto run = RunSvrg(data, *loss, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_LT(loss->EmpiricalRisk(run.value().model, data),
            loss->EmpiricalRisk(Vector(data.dim()), data));
  EXPECT_GT(BinaryAccuracy(run.value().model, data), 0.85);
}

TEST(SvrgTest, StatsCountSnapshotAndInnerGradients) {
  Dataset data = MakeData(100, 232);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SvrgOptions options;
  options.outer_iterations = 2;
  options.inner_updates = 50;
  Rng rng(2);
  auto run = RunSvrg(data, *loss, options, &rng);
  ASSERT_TRUE(run.ok());
  // Per outer iteration: m snapshot gradients + 2 per inner update.
  EXPECT_EQ(run.value().stats.gradient_evaluations, 2u * (100 + 2 * 50));
  EXPECT_EQ(run.value().stats.updates, 100u);
}

TEST(SvrgTest, ProjectionRespected) {
  Dataset data = MakeData(200, 233);
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  SvrgOptions options;
  options.outer_iterations = 2;
  options.radius = 0.05;
  Rng rng(3);
  auto run = RunSvrg(data, *loss, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run.value().model.Norm(), 0.05 + 1e-12);
}

TEST(SvrgTest, DeterministicForFixedSeed) {
  Dataset data = MakeData(150, 234);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SvrgOptions options;
  options.outer_iterations = 2;
  Rng rng_a(4), rng_b(4);
  auto a = RunSvrg(data, *loss, options, &rng_a);
  auto b = RunSvrg(data, *loss, options, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().model, b.value().model);
}

TEST(SvrgTest, CompetitiveWithPlainSgdAtSameBudget) {

  Dataset data = MakeData(400, 235);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();

  // Same constant step and same number of model updates; SVRG's variance
  // reduction should reach lower (or equal) training risk.
  const double eta = 1.0 / std::sqrt(static_cast<double>(data.size()));
  SvrgOptions svrg_options;
  svrg_options.outer_iterations = 4;
  svrg_options.step = eta;
  Rng rng_svrg(5);
  auto svrg = RunSvrg(data, *loss, svrg_options, &rng_svrg);
  ASSERT_TRUE(svrg.ok());

  auto schedule = MakeConstantStep(eta).MoveValue();
  PsgdOptions psgd_options;
  psgd_options.passes = 4;  // 4m updates, matching SVRG's inner updates
  Rng rng_psgd(6);
  auto psgd = RunPsgd(data, *loss, *schedule, psgd_options, &rng_psgd);
  ASSERT_TRUE(psgd.ok());
  ASSERT_EQ(svrg.value().stats.updates, psgd.value().stats.updates);

  // On this easy, well-conditioned problem both converge; SVRG must at
  // least be competitive (its edge grows on ill-conditioned problems).
  double svrg_risk = loss->EmpiricalRisk(svrg.value().model, data);
  double psgd_risk = loss->EmpiricalRisk(psgd.value().model, data);
  double zero_risk = loss->EmpiricalRisk(Vector(data.dim()), data);
  EXPECT_LT(svrg_risk, 0.2 * zero_risk);
  EXPECT_LT(svrg_risk, 1.1 * psgd_risk);
}

// SVRG is non-adaptive (Definition 7), so the randomness-coupling trick
// behind SimulateDeltaT applies: identical seeds isolate the differing
// example. Empirical δ_T must be small and finite (no analytical bound in
// the paper; this documents the measurement path for future work).
TEST(SvrgTest, EmpiricalSensitivityIsMeasurable) {
  Dataset data = MakeData(100, 236);
  Dataset neighbor = data;
  Example replacement = data[7];
  // Flip only the label: for the logistic loss, flipping both x and y is
  // gradient-identical (the loss depends on (x, y) through y⟨w, x⟩ alone).
  replacement.label = -replacement.label;
  neighbor.Replace(7, replacement);

  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SvrgOptions options;
  options.outer_iterations = 2;
  Rng rng_a(7), rng_b(7);
  auto run_a = RunSvrg(data, *loss, options, &rng_a);
  auto run_b = RunSvrg(neighbor, *loss, options, &rng_b);
  ASSERT_TRUE(run_a.ok() && run_b.ok());
  double delta = Distance(run_a.value().model, run_b.value().model);
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta, 1.0);  // one example out of 100 moves the model little
}

TEST(SvrgTest, Validation) {
  Dataset data = MakeData(50, 237);
  Dataset empty(8, 2);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Rng rng(8);
  SvrgOptions options;
  EXPECT_FALSE(RunSvrg(empty, *loss, options, &rng).ok());
  options.outer_iterations = 0;
  EXPECT_FALSE(RunSvrg(data, *loss, options, &rng).ok());
  options = SvrgOptions{};
  options.radius = 0.0;
  EXPECT_FALSE(RunSvrg(data, *loss, options, &rng).ok());
}

}  // namespace
}  // namespace bolton
