#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace bolton {
namespace {

/// Every test leaves the process-wide registry disarmed so failpoints
/// configured here cannot leak into later tests (or vice versa).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Default().Clear();
    FailpointRegistry::Default().SetObserver(nullptr);
  }
  void TearDown() override {
    FailpointRegistry::Default().Clear();
    FailpointRegistry::Default().SetObserver(nullptr);
  }
};

/// A function body as production code sees it: the macro returns the
/// injected Status from the enclosing function.
Status GuardedStep(const char* site) {
  BOLTON_FAILPOINT(site);
  return Status::OK();
}

TEST_F(FailpointTest, UnconfiguredRegistryIsDisarmedAndInert) {
  EXPECT_FALSE(FailpointRegistry::Default().armed());
  EXPECT_TRUE(GuardedStep("nowhere").ok());
  // Disarmed registries don't even count hits (the macro's fast path).
  EXPECT_EQ(FailpointRegistry::Default().Stats("nowhere").hits, 0u);
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  auto& registry = FailpointRegistry::Default();
  EXPECT_FALSE(registry.Configure("no-colon").ok());
  EXPECT_FALSE(registry.Configure(":error").ok());
  EXPECT_FALSE(registry.Configure("site:").ok());
  EXPECT_FALSE(registry.Configure("site:bogus").ok());
  EXPECT_FALSE(registry.Configure("site:error@").ok());
  EXPECT_FALSE(registry.Configure("site:error@0").ok());
  EXPECT_FALSE(registry.Configure("site:1in-3").ok());
  EXPECT_FALSE(registry.Configure("a:error;b:wat").ok());
  // A failed Configure leaves the previous (empty) set armed-state intact.
  EXPECT_FALSE(registry.armed());
}

TEST_F(FailpointTest, ConfigureReplacesAndEmptySpecClears) {
  auto& registry = FailpointRegistry::Default();
  ASSERT_TRUE(registry.Configure("a:error").ok());
  EXPECT_TRUE(registry.armed());
  EXPECT_FALSE(GuardedStep("a").ok());
  // Reconfiguring replaces the whole site set (and resets counters).
  ASSERT_TRUE(registry.Configure("b:error").ok());
  EXPECT_TRUE(GuardedStep("a").ok());
  EXPECT_FALSE(GuardedStep("b").ok());
  ASSERT_TRUE(registry.Configure("").ok());
  EXPECT_FALSE(registry.armed());
}

TEST_F(FailpointTest, ErrorAlwaysFiresEveryHitWithContext) {
  ASSERT_TRUE(FailpointRegistry::Default().Configure("io:error").ok());
  for (int i = 1; i <= 3; ++i) {
    Status status = GuardedStep("io");
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIOError);
    EXPECT_NE(status.message().find("failpoint 'io'"), std::string::npos);
  }
  EXPECT_EQ(FailpointRegistry::Default().Stats("io").hits, 3u);
  EXPECT_EQ(FailpointRegistry::Default().Stats("io").fired, 3u);
}

TEST_F(FailpointTest, ErrorAtHitFiresOnlyOnTheNthHit) {
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:error@3").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
  EXPECT_FALSE(GuardedStep("s").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
  EXPECT_EQ(FailpointRegistry::Default().Stats("s").fired, 1u);
}

TEST_F(FailpointTest, ErrorFirstNFiresThenRecovers) {
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:error*2").ok());
  EXPECT_FALSE(GuardedStep("s").ok());
  EXPECT_FALSE(GuardedStep("s").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
}

TEST_F(FailpointTest, OneInNIsCounterBasedNotRandom) {
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:1in3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!GuardedStep("s").ok());
  // Hits 3, 6, 9 — deterministic, so a failing run replays identically.
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FailpointTest, DeterministicAcrossReconfiguration) {
  auto trace = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 8; ++i) fired.push_back(!GuardedStep("s").ok());
    return fired;
  };
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:1in2").ok());
  std::vector<bool> first = trace();
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:1in2").ok());
  EXPECT_EQ(first, trace());
}

TEST_F(FailpointTest, DelaySleepsAndReturnsOk) {
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:delay@20").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(GuardedStep("s").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 20);
  EXPECT_EQ(FailpointRegistry::Default().Stats("s").fired, 1u);
}

TEST_F(FailpointTest, OffCountsHitsWithoutFiring) {
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:off").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
  EXPECT_EQ(FailpointRegistry::Default().Stats("s").hits, 2u);
  EXPECT_EQ(FailpointRegistry::Default().Stats("s").fired, 0u);
}

TEST_F(FailpointTest, ObserverSeesEveryFiring) {
  struct Firing {
    std::string site;
    uint64_t hit;
    std::string action;
  };
  static std::vector<Firing>* firings = new std::vector<Firing>();
  firings->clear();
  FailpointRegistry::Default().SetObserver(
      [](const char* site, uint64_t hit, const char* action) {
        firings->push_back({site, hit, action});
      });
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:error@2").ok());
  EXPECT_TRUE(GuardedStep("s").ok());
  EXPECT_FALSE(GuardedStep("s").ok());
  ASSERT_EQ(firings->size(), 1u);
  EXPECT_EQ((*firings)[0].site, "s");
  EXPECT_EQ((*firings)[0].hit, 2u);
  EXPECT_EQ((*firings)[0].action, "error");
}

TEST_F(FailpointTest, ConfigureFromEnvReadsTheVariable) {
  ASSERT_EQ(::setenv("BOLTON_FAILPOINTS", "envsite:error", 1), 0);
  ASSERT_TRUE(FailpointRegistry::Default().ConfigureFromEnv().ok());
  EXPECT_FALSE(GuardedStep("envsite").ok());
  ASSERT_EQ(::unsetenv("BOLTON_FAILPOINTS"), 0);
  ASSERT_TRUE(FailpointRegistry::Default().ConfigureFromEnv().ok());
  EXPECT_FALSE(FailpointRegistry::Default().armed());
}

TEST_F(FailpointTest, PanicAborts) {
  ASSERT_TRUE(FailpointRegistry::Default().Configure("s:panic").ok());
  EXPECT_DEATH((void)GuardedStep("s"), "injected panic");
}

}  // namespace
}  // namespace bolton
