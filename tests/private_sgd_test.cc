#include "core/private_sgd.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeData(size_t m = 500, uint64_t seed = 91) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 10;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(BoltOnPerturbTest, ModelIsNoiselessPlusNoise) {
  Vector model{1.0, 2.0, 3.0};
  Rng rng(1);
  auto out = BoltOnPerturb(model, 0.5, PrivacyParams{1.0, 0.0}, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().noiseless_model, model);
  EXPECT_DOUBLE_EQ(out.value().sensitivity, 0.5);
  // model = noiseless + κ with ‖κ‖ recorded exactly.
  Vector kappa = out.value().model - model;
  EXPECT_NEAR(kappa.Norm(), out.value().noise_norm, 1e-12);
  EXPECT_GT(out.value().noise_norm, 0.0);
}

TEST(BoltOnPerturbTest, ZeroSensitivityAddsNothing) {
  Vector model{1.0, 2.0};
  Rng rng(2);
  auto out = BoltOnPerturb(model, 0.0, PrivacyParams{1.0, 0.0}, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().model, model);
  EXPECT_DOUBLE_EQ(out.value().noise_norm, 0.0);
}

TEST(BoltOnPerturbTest, Validation) {
  Rng rng(3);
  Vector model{1.0};
  EXPECT_FALSE(BoltOnPerturb(model, -1.0, PrivacyParams{1.0, 0.0}, &rng).ok());
  EXPECT_FALSE(BoltOnPerturb(model, 1.0, PrivacyParams{0.0, 0.0}, &rng).ok());
  EXPECT_FALSE(BoltOnPerturb(Vector(), 1.0, PrivacyParams{1.0, 0.0}, &rng).ok());
}

TEST(PrivateConvexPsgdTest, SensitivityMatchesCorollary1) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 10;
  options.batch_size = 50;
  Rng rng(4);
  auto out = PrivateConvexPsgd(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  const double eta = 1.0 / std::sqrt(static_cast<double>(data.size()));
  EXPECT_DOUBLE_EQ(out.value().sensitivity,
                   2.0 * 10 * loss->lipschitz() * eta / 50.0);
  EXPECT_EQ(out.value().stats.gradient_evaluations, 10 * data.size());
  // One noise draw only — that is the whole point of the bolt-on approach.
  EXPECT_EQ(out.value().stats.noise_samples, 0u);
}

TEST(PrivateConvexPsgdTest, RejectsStronglyConvexLoss) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.01, 100.0).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  Rng rng(5);
  EXPECT_EQ(PrivateConvexPsgd(data, *loss, options, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PrivateStronglyConvexPsgdTest, SensitivityMatchesLemma8) {
  Dataset data = MakeData();
  const double lambda = 0.01;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 10;
  options.batch_size = 50;
  Rng rng(6);
  auto out = PrivateStronglyConvexPsgd(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(
      out.value().sensitivity,
      2.0 * loss->lipschitz() / (lambda * data.size() * 50.0));
}

TEST(PrivateStronglyConvexPsgdTest, RejectsConvexLoss) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  Rng rng(7);
  EXPECT_EQ(
      PrivateStronglyConvexPsgd(data, *loss, options, &rng).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(PrivatePsgdTest, DispatchesOnConvexity) {
  Dataset data = MakeData();
  auto convex = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto strong = MakeLogisticLoss(0.01, 100.0).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 2;
  options.batch_size = 10;
  Rng rng(8);
  EXPECT_TRUE(PrivatePsgd(data, *convex, options, &rng).ok());
  EXPECT_TRUE(PrivatePsgd(data, *strong, options, &rng).ok());
}

TEST(PrivatePsgdTest, GaussianMechanismSelectedForDeltaPositive) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{0.5, 1e-6};
  options.passes = 5;
  options.batch_size = 10;
  Rng rng(9);
  EXPECT_TRUE(PrivateConvexPsgd(data, *loss, options, &rng).ok());
  // Gaussian mechanism (Theorem 3) requires ε < 1.
  options.privacy = PrivacyParams{2.0, 1e-6};
  EXPECT_FALSE(PrivateConvexPsgd(data, *loss, options, &rng).ok());
}

TEST(PrivatePsgdTest, NoiseShrinksWithEpsilon) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.passes = 5;
  options.batch_size = 10;
  // Average over repeats; E‖κ‖ scales as 1/ε.
  auto mean_noise = [&](double eps) {
    double total = 0.0;
    for (uint64_t seed = 0; seed < 30; ++seed) {
      Rng rng(100 + seed);
      BoltOnOptions o = options;
      o.privacy = PrivacyParams{eps, 0.0};
      total += PrivateConvexPsgd(data, *loss, o, &rng).value().noise_norm;
    }
    return total / 30.0;
  };
  EXPECT_GT(mean_noise(0.1), 5.0 * mean_noise(4.0));
}

TEST(PrivatePsgdTest, HighEpsilonApproachesNoiselessAccuracy) {
  Dataset data = MakeData(2000, 93);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.passes = 10;
  options.batch_size = 50;
  options.privacy = PrivacyParams{100.0, 0.0};
  Rng rng(10);
  auto out = PrivateConvexPsgd(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  double noiseless_acc = BinaryAccuracy(out.value().noiseless_model, data);
  double private_acc = BinaryAccuracy(out.value().model, data);
  EXPECT_GT(noiseless_acc, 0.9);
  EXPECT_GT(private_acc, noiseless_acc - 0.05);
}

TEST(PrivatePsgdTest, StronglyConvexPassCountDoesNotChangeSensitivity) {
  // §4.3: "the number of passes k is oblivious to private SGD" in the
  // strongly convex case.
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.01, 100.0).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.batch_size = 10;
  Rng rng_a(11), rng_b(12);
  options.passes = 1;
  double s1 =
      PrivateStronglyConvexPsgd(data, *loss, options, &rng_a).value()
          .sensitivity;
  options.passes = 20;
  double s20 =
      PrivateStronglyConvexPsgd(data, *loss, options, &rng_b).value()
          .sensitivity;
  EXPECT_DOUBLE_EQ(s1, s20);
}

TEST(PrivatePsgdTest, EmptyDataRejected) {
  Dataset empty(5, 2);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  Rng rng(13);
  EXPECT_FALSE(PrivateConvexPsgd(empty, *loss, options, &rng).ok());
}

}  // namespace
}  // namespace bolton
