#include "util/logging.h"

#include <gtest/gtest.h>

namespace bolton {
namespace {

// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "visible " << 42;
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("[I "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "hidden";
  BOLTON_LOG(kWarning) << "also hidden";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysVisibleAtDefault) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kError) << "bad thing";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[E "), std::string::npos);
  EXPECT_NE(out.find("bad thing"), std::string::npos);
}

TEST_F(LoggingTest, TimestampPrefixIsOptIn) {
  SetLogLevel(LogLevel::kInfo);

  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "plain";
  std::string plain = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(plain.find("s t"), std::string::npos);

  SetLogTimestamps(true);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "stamped";
  std::string stamped = ::testing::internal::GetCapturedStderr();
  SetLogTimestamps(false);

  // "[I <seconds>s t<tid> logging_test.cc:<line>] stamped"
  EXPECT_NE(stamped.find("[I "), std::string::npos);
  EXPECT_NE(stamped.find("s t"), std::string::npos);
  EXPECT_NE(stamped.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(stamped.find("stamped"), std::string::npos);
}

TEST(CheckTest, PassingCheckIsSilent) {
  // BOLTON_CHECK(true) must not abort or print.
  ::testing::internal::CaptureStderr();
  BOLTON_CHECK(1 + 1 == 2);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(BOLTON_CHECK(false), "check failed: false");
}

}  // namespace
}  // namespace bolton
