#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/thread_name.h"

namespace bolton {
namespace {

/// Copies every dispatched event so tests can assert on the envelope.
class CapturingSink : public LogSink {
 public:
  struct Captured {
    LogLevel level;
    uint64_t mono_ns;
    uint64_t thread_id;
    uint64_t span_id;
    std::string thread_name;
    std::string file;
    int line;
    std::string message;
  };

  void Write(const LogEvent& event) override {
    events.push_back({event.level, event.mono_ns, event.thread_id,
                      event.span_id, event.thread_name, event.file, event.line,
                      std::string(event.message, event.message_len)});
  }

  std::vector<Captured> events;
};

/// RAII registration so a failing EXPECT cannot leak the sink into later
/// tests (dispatch would then touch a dead object).
class ScopedSink {
 public:
  explicit ScopedSink(LogSink* sink) : sink_(sink) { AddLogSink(sink_); }
  ~ScopedSink() { RemoveLogSink(sink_); }

 private:
  LogSink* sink_;
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "visible " << 42;
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("[I "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "hidden";
  BOLTON_LOG(kWarning) << "also hidden";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysVisibleAtDefault) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kError) << "bad thing";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[E "), std::string::npos);
  EXPECT_NE(out.find("bad thing"), std::string::npos);
}

TEST_F(LoggingTest, TimestampPrefixIsOptIn) {
  SetLogLevel(LogLevel::kInfo);

  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "plain";
  std::string plain = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(plain.find("s t"), std::string::npos);

  SetLogTimestamps(true);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "stamped";
  std::string stamped = ::testing::internal::GetCapturedStderr();
  SetLogTimestamps(false);

  // "[I <seconds>s t<tid> logging_test.cc:<line>] stamped"
  EXPECT_NE(stamped.find("[I "), std::string::npos);
  EXPECT_NE(stamped.find("s t"), std::string::npos);
  EXPECT_NE(stamped.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(stamped.find("stamped"), std::string::npos);
}

TEST_F(LoggingTest, LevelTagAndParseRoundTrip) {
  EXPECT_STREQ(LogLevelTag(LogLevel::kDebug), "D");
  EXPECT_STREQ(LogLevelTag(LogLevel::kInfo), "I");
  EXPECT_STREQ(LogLevelTag(LogLevel::kWarning), "W");
  EXPECT_STREQ(LogLevelTag(LogLevel::kError), "E");

  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("W", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("ERROR", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("i", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
}

TEST_F(LoggingTest, SinksReceiveStructuredEvents) {
  SetLogLevel(LogLevel::kInfo);
  SetCurrentThreadName("log-test");
  CapturingSink sink;
  ScopedSink registration(&sink);

  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kWarning) << "structured " << 7;
  const int expected_line = __LINE__ - 1;
  ::testing::internal::GetCapturedStderr();

  ASSERT_EQ(sink.events.size(), 1u);
  const CapturingSink::Captured& event = sink.events[0];
  EXPECT_EQ(event.level, LogLevel::kWarning);
  EXPECT_EQ(event.message, "structured 7");
  EXPECT_EQ(event.file, "logging_test.cc");
  EXPECT_EQ(event.line, expected_line);
  EXPECT_EQ(event.thread_name, "log-test");
  EXPECT_EQ(event.thread_id, CurrentThreadSmallId());
}

TEST_F(LoggingTest, FilteredEventsReachNoSink) {
  SetLogLevel(LogLevel::kError);
  CapturingSink sink;
  ScopedSink registration(&sink);
  BOLTON_LOG(kInfo) << "below threshold";
  BOLTON_LOG(kWarning) << "still below";
  EXPECT_TRUE(sink.events.empty());
}

TEST_F(LoggingTest, RemovedSinkStopsReceiving) {
  SetLogLevel(LogLevel::kInfo);
  CapturingSink sink;
  AddLogSink(&sink);
  AddLogSink(&sink);  // double-add must not double-deliver
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "while registered";
  RemoveLogSink(&sink);
  BOLTON_LOG(kInfo) << "after removal";
  ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].message, "while registered");
}

TEST_F(LoggingTest, JsonlSinkWritesOneObjectPerLine) {
  SetLogLevel(LogLevel::kInfo);
  SetCurrentThreadName("jsonl-test");
  const std::string path =
      ::testing::TempDir() + "/logging_test_events.jsonl";
  ASSERT_TRUE(OpenLogJsonlFile(path).ok());

  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "jsonl line with \"quotes\"";
  ::testing::internal::GetCapturedStderr();

  const std::string contents = ReadWholeFile(path);
  EXPECT_NE(contents.find("\"level\":\"I\""), std::string::npos);
  EXPECT_NE(contents.find("\"thread\":\"jsonl-test\""), std::string::npos);
  EXPECT_NE(contents.find("\"file\":\"logging_test.cc\""), std::string::npos);
  EXPECT_NE(contents.find("\"msg\":\"jsonl line with \\\"quotes\\\"\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"mono_ns\":"), std::string::npos);
  EXPECT_NE(contents.find("\"span\":"), std::string::npos);

  // Redirect the process-lifetime sink at /dev/null so later tests (and
  // later suites in this binary) stop appending to the temp file.
  ASSERT_TRUE(OpenLogJsonlFile("/dev/null").ok());
  std::remove(path.c_str());
}

TEST_F(LoggingTest, LogEventsCarryCurrentSpanId) {
  SetLogLevel(LogLevel::kInfo);
  obs::TraceRecorder::Default().SetEnabled(true);
  CapturingSink sink;
  ScopedSink registration(&sink);

  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "outside";
  {
    obs::ScopedSpan span("logging-test-span");
    BOLTON_LOG(kInfo) << "inside";
  }
  BOLTON_LOG(kInfo) << "outside again";
  ::testing::internal::GetCapturedStderr();
  obs::TraceRecorder::Default().SetEnabled(false);

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].span_id, 0u);
  EXPECT_NE(sink.events[1].span_id, 0u);
  EXPECT_EQ(sink.events[2].span_id, 0u);
}

TEST_F(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  SetLogLevel(LogLevel::kInfo);
  CapturingSink sink;
  ScopedSink registration(&sink);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) {
    BOLTON_LOG_EVERY_N(kInfo, 4) << "hit " << i;
  }
  ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(sink.events.size(), 3u);  // hits 0, 4, 8
  EXPECT_EQ(sink.events[0].message, "hit 0");
  EXPECT_EQ(sink.events[1].message, "hit 4");
  EXPECT_EQ(sink.events[2].message, "hit 8");
}

TEST_F(LoggingTest, LogFirstNEmitsOnlyTheFirstN) {
  SetLogLevel(LogLevel::kInfo);
  CapturingSink sink;
  ScopedSink registration(&sink);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) {
    BOLTON_LOG_FIRST_N(kInfo, 2) << "first " << i;
  }
  ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].message, "first 0");
  EXPECT_EQ(sink.events[1].message, "first 1");
}

TEST_F(LoggingTest, FlightRecorderRetainsRecentLogs) {
  SetLogLevel(LogLevel::kInfo);
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  const obs::RingStats before = recorder.LogRingStats();

  // Overfill the ring so wrap-around accounting is exercised.
  const size_t total = obs::FlightRecorder::kLogSlots + 50;
  ::testing::internal::CaptureStderr();
  for (size_t i = 0; i < total; ++i) {
    BOLTON_LOG(kInfo) << "ring event " << i;
  }
  ::testing::internal::GetCapturedStderr();

  const obs::RingStats after = recorder.LogRingStats();
  EXPECT_EQ(after.capacity, obs::FlightRecorder::kLogSlots);
  EXPECT_GE(after.appended - before.appended, total);

  std::vector<obs::RecordedLogEvent> logs =
      recorder.RecentLogs(obs::FlightRecorder::kLogSlots, LogLevel::kDebug);
  EXPECT_LE(logs.size(), obs::FlightRecorder::kLogSlots);
  ASSERT_FALSE(logs.empty());
  // Oldest-first: the newest retained event is the last one logged.
  EXPECT_EQ(logs.back().message, "ring event " + std::to_string(total - 1));
  EXPECT_EQ(logs.back().file, "logging_test.cc");
  // The first 50 events were overwritten by the wrap.
  EXPECT_NE(logs.front().message, "ring event 0");
  for (size_t i = 1; i < logs.size(); ++i) {
    EXPECT_LT(logs[i - 1].seq, logs[i].seq);
  }
}

TEST_F(LoggingTest, FlightRecorderFiltersByLevelAndCapsCount) {
  SetLogLevel(LogLevel::kInfo);
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "fr info event";
  BOLTON_LOG(kWarning) << "fr warning event";
  BOLTON_LOG(kError) << "fr error event";
  ::testing::internal::GetCapturedStderr();

  std::vector<obs::RecordedLogEvent> errors =
      recorder.RecentLogs(obs::FlightRecorder::kLogSlots, LogLevel::kError);
  ASSERT_FALSE(errors.empty());
  for (const obs::RecordedLogEvent& event : errors) {
    EXPECT_GE(static_cast<int>(event.level),
              static_cast<int>(LogLevel::kError));
  }
  EXPECT_EQ(errors.back().message, "fr error event");

  std::vector<obs::RecordedLogEvent> one =
      recorder.RecentLogs(1, LogLevel::kDebug);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].message, "fr error event");
}

TEST(CheckTest, PassingCheckIsSilent) {
  // BOLTON_CHECK(true) must not abort or print.
  ::testing::internal::CaptureStderr();
  BOLTON_CHECK(1 + 1 == 2);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(BOLTON_CHECK(false), "check failed: false");
}

}  // namespace
}  // namespace bolton
