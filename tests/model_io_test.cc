#include "ml/model_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace bolton {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "model_io_test.model";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(ModelIoTest, BinaryRoundTripIsExact) {
  // Values chosen to stress exact double round-tripping.
  Vector model{0.1, -3.0000000000000004, 1e-17, 12345.6789, 0.0};
  ASSERT_TRUE(SaveModel(model, path_).ok());
  auto loaded = LoadBinaryModel(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), model);
}

TEST_F(ModelIoTest, MulticlassRoundTrip) {
  MulticlassModel model;
  model.weights = {Vector{1.0, 2.0}, Vector{-1.0, 0.5}, Vector{0.0, 3.0}};
  ASSERT_TRUE(SaveModel(model, path_).ok());
  auto loaded = LoadMulticlassModel(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_classes(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(loaded.value().weights[c], model.weights[c]);
  }
}

TEST_F(ModelIoTest, BinaryLoaderRejectsMulticlassFile) {
  MulticlassModel model;
  model.weights = {Vector{1.0}, Vector{2.0}};
  ASSERT_TRUE(SaveModel(model, path_).ok());
  EXPECT_FALSE(LoadBinaryModel(path_).ok());
  // But the multiclass loader accepts a binary file.
  Vector binary{1.0, 2.0};
  ASSERT_TRUE(SaveModel(binary, path_).ok());
  auto as_multiclass = LoadMulticlassModel(path_);
  ASSERT_TRUE(as_multiclass.ok());
  EXPECT_EQ(as_multiclass.value().num_classes(), 1);
}

TEST_F(ModelIoTest, RejectsCorruptFiles) {
  {
    std::ofstream out(path_);
    out << "not a model\n";
  }
  EXPECT_FALSE(LoadBinaryModel(path_).ok());

  {
    std::ofstream out(path_);
    out << "bolton-model v1\n1\n3\n0.5\n";  // truncated weights
  }
  EXPECT_FALSE(LoadBinaryModel(path_).ok());

  {
    std::ofstream out(path_);
    out << "bolton-model v1\n1\n2\n0.5\nnot-a-number\n";
  }
  EXPECT_FALSE(LoadBinaryModel(path_).ok());
}

TEST_F(ModelIoTest, SkipsCommentsAndBlankLines) {
  {
    std::ofstream out(path_);
    out << "# a comment\nbolton-model v1\n\n1\n2\n# weights\n1.5\n-2.5\n";
  }
  auto loaded = LoadBinaryModel(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), (Vector{1.5, -2.5}));
}

TEST_F(ModelIoTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadBinaryModel("/nonexistent/model").status().code(),
            StatusCode::kIOError);
}

TEST_F(ModelIoTest, EmptyModelRejected) {
  EXPECT_FALSE(SaveModel(Vector(), path_).ok());
  EXPECT_FALSE(SaveModel(MulticlassModel{}, path_).ok());
}

}  // namespace
}  // namespace bolton
