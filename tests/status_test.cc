#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace bolton {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("epsilon must be > 0");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "epsilon must be > 0");
  EXPECT_EQ(st.ToString(), "invalid-argument: epsilon must be > 0");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("missing");
  Status copy = st;
  EXPECT_EQ(copy, st);
  EXPECT_EQ(copy.message(), "missing");
  // Mutating the copy must not alias the original.
  copy = Status::OK();
  EXPECT_FALSE(st.ok());
}

TEST(StatusTest, WithContextPrependsAndPreservesCode) {
  Status st = Status::IOError("disk full").WithContext("loading train.csv");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "loading train.csv: disk full");
  // WithContext on OK is a no-op.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "invalid-argument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "out-of-range");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "not-found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "io-error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "failed-precondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "not-implemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "internal");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    BOLTON_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string("payload"));
  std::string taken = r.MoveValue();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<int> { return 5; };
  auto consumer = [&]() -> Result<int> {
    BOLTON_ASSIGN_OR_RETURN(int v, produce());
    return v + 1;
  };
  ASSERT_TRUE(consumer().ok());
  EXPECT_EQ(consumer().value(), 6);

  auto fail = []() -> Result<int> { return Status::NotFound("x"); };
  auto failing_consumer = [&]() -> Result<int> {
    BOLTON_ASSIGN_OR_RETURN(int v, fail());
    return v;
  };
  EXPECT_EQ(failing_consumer().status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bolton
