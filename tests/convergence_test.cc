// Convergence property sweeps: every supported (loss, schedule) pairing
// must reduce empirical risk and reach sensible accuracy within a few
// passes — the optimization-quality counterpart to the privacy sweeps in
// sensitivity_test.cc. Parameterized so each combination is one test case.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/schedule.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ConvergenceCase {
  std::string label;
  enum Loss { kLogistic, kHuber, kSquared } loss;
  enum Schedule { kConstant, kInverseTime, kInverseSqrt, kDecreasing } schedule;
  double lambda;
};

class ConvergenceSweep : public ::testing::TestWithParam<ConvergenceCase> {
 protected:
  static Dataset MakeData() {
    SyntheticConfig config;
    config.num_examples = 800;
    config.dim = 10;
    config.margin = 2.0;
    config.noise_stddev = 0.5;
    config.seed = 261;
    return GenerateSynthetic(config).MoveValue();
  }

  static std::unique_ptr<LossFunction> MakeLoss(const ConvergenceCase& c) {
    const double radius = c.lambda > 0.0 ? 1.0 / c.lambda : kInf;
    switch (c.loss) {
      case ConvergenceCase::kLogistic:
        return MakeLogisticLoss(c.lambda, radius).MoveValue();
      case ConvergenceCase::kHuber:
        return MakeHuberSvmLoss(0.1, c.lambda, radius).MoveValue();
      case ConvergenceCase::kSquared:
        return MakeSquaredLoss(c.lambda, c.lambda > 0.0 ? radius : 10.0)
            .MoveValue();
    }
    return nullptr;
  }

  static std::unique_ptr<StepSizeSchedule> MakeSchedule(
      const ConvergenceCase& c, const LossFunction& loss, size_t m) {
    switch (c.schedule) {
      case ConvergenceCase::kConstant:
        return MakeConstantStep(1.0 / std::sqrt(static_cast<double>(m)))
            .MoveValue();
      case ConvergenceCase::kInverseTime:
        return MakeInverseTimeStep(loss.strong_convexity(), loss.smoothness())
            .MoveValue();
      case ConvergenceCase::kInverseSqrt:
        return MakeInverseSqrtStep(1.0).MoveValue();
      case ConvergenceCase::kDecreasing:
        return MakeDecreasingStep(loss.smoothness(), m, 0.5).MoveValue();
    }
    return nullptr;
  }
};

TEST_P(ConvergenceSweep, RiskDecreasesAndModelClassifies) {
  const ConvergenceCase c = GetParam();
  Dataset data = MakeData();
  auto loss = MakeLoss(c);
  auto schedule = MakeSchedule(c, *loss, data.size());

  PsgdOptions options;
  options.passes = 10;
  options.batch_size = 10;
  options.radius = loss->radius();
  // Squared loss without regularization carries a synthetic radius; keep
  // the hypothesis inside it.
  if (c.loss == ConvergenceCase::kSquared && c.lambda == 0.0) {
    options.radius = 10.0;
  }

  Rng rng(1);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  double trained_risk = loss->EmpiricalRisk(run.value().model, data);
  double zero_risk = loss->EmpiricalRisk(Vector(data.dim()), data);
  EXPECT_LT(trained_risk, zero_risk) << c.label;
  EXPECT_GT(BinaryAccuracy(run.value().model, data), 0.85) << c.label;
}

// Monotone improvement over passes (up to small SGD noise): the risk after
// k passes must not be dramatically worse than after k/2 passes.
TEST_P(ConvergenceSweep, MorePassesDoNotRegressBadly) {
  const ConvergenceCase c = GetParam();
  Dataset data = MakeData();
  auto loss = MakeLoss(c);
  auto schedule = MakeSchedule(c, *loss, data.size());

  PsgdOptions options;
  options.batch_size = 10;
  options.radius = loss->radius();
  if (c.loss == ConvergenceCase::kSquared && c.lambda == 0.0) {
    options.radius = 10.0;
  }

  options.passes = 5;
  Rng rng_short(2);
  auto short_run = RunPsgd(data, *loss, *schedule, options, &rng_short);
  options.passes = 10;
  Rng rng_long(2);
  auto long_run = RunPsgd(data, *loss, *schedule, options, &rng_long);
  ASSERT_TRUE(short_run.ok() && long_run.ok());

  double short_risk = loss->EmpiricalRisk(short_run.value().model, data);
  double long_risk = loss->EmpiricalRisk(long_run.value().model, data);
  EXPECT_LT(long_risk, short_risk * 1.2 + 1e-6) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvergenceSweep,
    ::testing::Values(
        ConvergenceCase{"logistic_constant", ConvergenceCase::kLogistic,
                        ConvergenceCase::kConstant, 0.0},
        ConvergenceCase{"logistic_inverse_sqrt", ConvergenceCase::kLogistic,
                        ConvergenceCase::kInverseSqrt, 0.0},
        ConvergenceCase{"logistic_decreasing", ConvergenceCase::kLogistic,
                        ConvergenceCase::kDecreasing, 0.0},
        ConvergenceCase{"logistic_l2_inverse_time",
                        ConvergenceCase::kLogistic,
                        ConvergenceCase::kInverseTime, 1e-3},
        ConvergenceCase{"huber_constant", ConvergenceCase::kHuber,
                        ConvergenceCase::kConstant, 0.0},
        ConvergenceCase{"huber_l2_inverse_time", ConvergenceCase::kHuber,
                        ConvergenceCase::kInverseTime, 1e-3},
        ConvergenceCase{"squared_constant", ConvergenceCase::kSquared,
                        ConvergenceCase::kConstant, 0.0},
        ConvergenceCase{"squared_l2_inverse_time", ConvergenceCase::kSquared,
                        ConvergenceCase::kInverseTime, 1e-2}),
    [](const ::testing::TestParamInfo<ConvergenceCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace bolton
