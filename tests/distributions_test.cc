#include "random/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bolton {
namespace {

// Gamma(shape, scale): mean = shape·scale, variance = shape·scale².
// Property sweep across the shapes the Laplace mechanism actually uses
// (shape = d for d-dimensional models) plus sub-1 shapes for the boost path.
class GammaMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaMomentsTest, MeanAndVarianceMatch) {
  const double shape = GetParam();
  const double scale = 2.0;
  Rng rng(static_cast<uint64_t>(shape * 1000) + 1);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = SampleGamma(shape, scale, &rng);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  double expected_mean = shape * scale;
  double expected_var = shape * scale * scale;
  EXPECT_NEAR(mean, expected_mean, 0.05 * expected_mean + 0.02);
  EXPECT_NEAR(var, expected_var, 0.10 * expected_var + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMomentsTest,
                         ::testing::Values(0.3, 0.7, 1.0, 2.0, 5.0, 50.0));

TEST(ExponentialTest, MeanMatchesScale) {
  Rng rng(21);
  const double scale = 3.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += SampleExponential(scale, &rng);
  EXPECT_NEAR(sum / n, scale, 0.06);
}

TEST(LaplaceTest, SymmetricWithCorrectVariance) {
  Rng rng(22);
  const double scale = 1.5;
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = SampleLaplace(scale, &rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  // Var(Laplace(b)) = 2b².
  EXPECT_NEAR(sum_sq / n, 2.0 * scale * scale, 0.1 * 2.0 * scale * scale);
}

TEST(UnitSphereTest, UnitNormAllDimensions) {
  Rng rng(23);
  for (size_t dim : {1u, 2u, 5u, 50u, 784u}) {
    Vector v = SampleUnitSphere(dim, &rng);
    ASSERT_EQ(v.dim(), dim);
    EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
  }
}

TEST(UnitSphereTest, MeanIsNearZero) {
  Rng rng(24);
  const size_t dim = 10;
  const int n = 50000;
  Vector mean(dim);
  for (int i = 0; i < n; ++i) mean += SampleUnitSphere(dim, &rng);
  mean *= 1.0 / n;
  // Each coordinate has variance 1/dim; the mean-of-n has sd ~ 1/sqrt(n·dim).
  EXPECT_LT(mean.Norm(), 0.05);
}

TEST(UnitBallTest, InsideBall) {
  Rng rng(25);
  for (int i = 0; i < 1000; ++i) {
    Vector v = SampleUnitBall(5, &rng);
    EXPECT_LE(v.Norm(), 1.0 + 1e-12);
  }
}

TEST(UnitBallTest, RadiusDistributionCorrect) {
  // P(‖v‖ ≤ r) = r^d for the uniform ball; check the median.
  Rng rng(26);
  const size_t dim = 3;
  const int n = 100000;
  int below_median_radius = 0;
  const double median_radius = std::pow(0.5, 1.0 / dim);
  for (int i = 0; i < n; ++i) {
    if (SampleUnitBall(dim, &rng).Norm() <= median_radius) {
      ++below_median_radius;
    }
  }
  EXPECT_NEAR(static_cast<double>(below_median_radius) / n, 0.5, 0.01);
}

TEST(GaussianVectorTest, MomentsMatch) {
  Rng rng(27);
  const size_t dim = 20;
  const double sigma = 2.5;
  const int n = 20000;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    sum_sq += SampleGaussianVector(dim, sigma, &rng).SquaredNorm();
  }
  // E‖v‖² = d·σ².
  double expected = dim * sigma * sigma;
  EXPECT_NEAR(sum_sq / n, expected, 0.03 * expected);
}

TEST(GaussianVectorTest, ZeroSigmaIsZeroVector) {
  Rng rng(28);
  Vector v = SampleGaussianVector(4, 0.0, &rng);
  EXPECT_EQ(v, Vector(4));
}

}  // namespace
}  // namespace bolton
