#include "obs/perf_counters.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace bolton {
namespace obs {
namespace {

/// Burns enough deterministic work that any on-CPU clock must advance.
volatile uint64_t g_sink = 0;
void SpinSomeWork() {
  uint64_t acc = 1;
  for (int i = 0; i < 2000000; ++i) acc = acc * 6364136223846793005ull + 1;
  g_sink = acc;
}

class PerfCountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Default().Reset();
    TraceRecorder::Default().Clear();
    SetPerfCountersEnabled(true);
  }
  void TearDown() override {
    internal::ForcePerfUnavailableForTest(false);
    SetPerfCountersEnabled(false);
    SetMetricsEnabled(false);
    TraceRecorder::Default().SetEnabled(false);
    TraceRecorder::Default().Clear();
    MetricsRegistry::Default().Reset();
  }
};

TEST_F(PerfCountersTest, ProbeIsStableAndExplained) {
  const PerfCapability& first = PerfCaps();
  const PerfCapability& second = PerfCaps();
  EXPECT_EQ(&first, &second);  // cached, probed once
  EXPECT_FALSE(first.detail.empty());
}

TEST_F(PerfCountersTest, DisabledPillarYieldsInvalidReadings) {
  SetPerfCountersEnabled(false);
  const PerfReading reading = ReadCurrentThreadPerf();
  EXPECT_FALSE(reading.valid);
  const PerfCounterDelta delta = DeltaBetween(reading, reading);
  EXPECT_FALSE(delta.available);
  EXPECT_EQ(delta.task_clock_ns, 0u);
}

TEST_F(PerfCountersTest, ScopeMeasuresOnCpuTimeAtEveryTier) {
  PerfCounterDelta delta;
  {
    CounterScope scope(nullptr, &delta);
    SpinSomeWork();
  }
  // task_clock_ns is the tier-independent field: real on-CPU time must
  // have elapsed during the spin, whatever the probe found.
  EXPECT_GT(delta.task_clock_ns, 0u);
  if (PerfHardwareAvailable()) {
    EXPECT_TRUE(delta.available);
    EXPECT_GT(delta.cycles, 0u);
    EXPECT_GT(delta.instructions, 0u);
    EXPECT_GT(delta.Ipc(), 0.0);
  }
}

TEST_F(PerfCountersTest, ForcedUnavailableFallsBackToTaskClockOnly) {
  internal::ForcePerfUnavailableForTest(true);
  EXPECT_FALSE(PerfHardwareAvailable());
  PerfCounterDelta delta;
  {
    CounterScope scope(nullptr, &delta);
    SpinSomeWork();
  }
  EXPECT_FALSE(delta.available);
  EXPECT_EQ(delta.cycles, 0u);
  EXPECT_EQ(delta.instructions, 0u);
  // The software clock keeps working: degraded, not blind.
  EXPECT_GT(delta.task_clock_ns, 0u);
  EXPECT_DOUBLE_EQ(delta.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(delta.CacheMissRate(), 0.0);
}

TEST_F(PerfCountersTest, ForcedUnavailableDrivesPerfAvailableGaugeToZero) {
  SetMetricsEnabled(true);
  internal::ForcePerfUnavailableForTest(true);
  UpdatePerfGauges();
  const MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  bool found = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "perf.available") {
      found = true;
      EXPECT_DOUBLE_EQ(value, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PerfCountersTest, ScopeAttachesDeltaAndThreadNameToSpan) {
  TraceRecorder::Default().SetEnabled(true);
  SetCurrentThreadName("perf-test-main");
  {
    ScopedSpan span("perf.test_span");
    CounterScope scope(&span);
    SpinSomeWork();
  }
  const std::vector<SpanRecord> spans = TraceRecorder::Default().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "perf.test_span");
  EXPECT_EQ(spans[0].thread_name, "perf-test-main");
  EXPECT_TRUE(spans[0].has_counters);
  EXPECT_GT(spans[0].counters.task_clock_ns, 0u);
}

TEST_F(PerfCountersTest, NestedScopesAccumulateProcessTotalsOnce) {
  const PerfCounterDelta before = ProcessPerfTotals();
  PerfCounterDelta outer;
  PerfCounterDelta inner;
  {
    CounterScope outer_scope(nullptr, &outer);
    {
      CounterScope inner_scope(nullptr, &inner);
      SpinSomeWork();
    }
    SpinSomeWork();
  }
  const PerfCounterDelta after = ProcessPerfTotals();
  const uint64_t total_growth = after.task_clock_ns - before.task_clock_ns;
  // Only the outermost scope feeds the totals: growth equals the outer
  // delta exactly, and is strictly less than outer + inner (the
  // double-counting a naive per-scope accumulation would produce).
  EXPECT_EQ(total_growth, outer.task_clock_ns);
  EXPECT_GT(inner.task_clock_ns, 0u);
  EXPECT_LT(total_growth, outer.task_clock_ns + inner.task_clock_ns);
}

TEST_F(PerfCountersTest, DeltaArithmeticGuardsUnderflow) {
  PerfCounterDelta big;
  big.available = true;
  big.cycles = 100;
  big.task_clock_ns = 1000;
  PerfCounterDelta small;
  small.available = true;
  small.cycles = 250;  // larger than big.cycles
  small.task_clock_ns = 400;
  const PerfCounterDelta diff = big - small;
  EXPECT_EQ(diff.cycles, 0u);  // clamped, never wraps
  EXPECT_EQ(diff.task_clock_ns, 600u);
}

TEST_F(PerfCountersTest, RenderPerfCountersJsonShapes) {
  PerfCounterDelta unavailable;
  unavailable.task_clock_ns = 123;
  EXPECT_EQ(RenderPerfCountersJson(unavailable),
            "{\"available\":false,\"task_clock_ns\":123}");

  PerfCounterDelta hw;
  hw.available = true;
  hw.cycles = 1000;
  hw.instructions = 2500;
  hw.cache_references = 100;
  hw.cache_misses = 10;
  hw.branch_misses = 25;
  hw.task_clock_ns = 500;
  const std::string json = RenderPerfCountersJson(hw);
  EXPECT_NE(json.find("\"available\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cycles\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"ipc\":2.5000"), std::string::npos);
  EXPECT_NE(json.find("\"cache_miss_rate\":0.100000"), std::string::npos);
  EXPECT_NE(json.find("\"branch_miss_rate\":0.010000"), std::string::npos);
}

TEST_F(PerfCountersTest, SpanJsonCarriesThreadNameAndOptionalCounters) {
  SpanRecord span;
  span.name = "psgd.pass";
  span.id = 7;
  span.thread_id = 3;
  span.thread_name = "psgd-shard-2";
  std::string json = RenderSpanJson(span);
  // The JSONL schema checks key on the leading {"name": — keep it first.
  EXPECT_EQ(json.rfind("{\"name\":\"psgd.pass\"", 0), 0u) << json;
  EXPECT_NE(json.find("\"thread_name\":\"psgd-shard-2\""), std::string::npos);
  EXPECT_EQ(json.find("\"counters\""), std::string::npos);

  span.has_counters = true;
  span.counters.task_clock_ns = 42;
  json = RenderSpanJson(span);
  EXPECT_NE(
      json.find("\"counters\":{\"available\":false,\"task_clock_ns\":42}"),
      std::string::npos)
      << json;
}

TEST_F(PerfCountersTest, ThreadNameDefaultsAndRoundTrips) {
  SetCurrentThreadName("counter-thread");
  EXPECT_EQ(CurrentThreadName(), "counter-thread");
  // Longer than the kernel's 15-char limit: the telemetry-side name keeps
  // full fidelity regardless of pthread truncation.
  SetCurrentThreadName("a-very-long-thread-name-indeed");
  EXPECT_EQ(CurrentThreadName(), "a-very-long-thread-name-indeed");
}

}  // namespace
}  // namespace obs
}  // namespace bolton
