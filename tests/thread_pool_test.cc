#include "optim/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace bolton {
namespace {

ThreadPoolOptions SmallPool(size_t max_threads, uint64_t idle_ms = 2000) {
  ThreadPoolOptions options;
  options.max_threads = max_threads;
  options.idle_timeout_ms = idle_ms;
  options.name_prefix = "test-pool";
  return options;
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(SmallPool(4));
  constexpr size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelRun(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_run, kCount);
  EXPECT_EQ(stats.batches_run, 1u);
  EXPECT_LE(stats.live_threads, 4u);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(SmallPool(2));
  pool.ParallelRun(0, [&](size_t) { FAIL() << "no task should run"; });
  EXPECT_EQ(pool.stats().tasks_run, 0u);
  EXPECT_EQ(pool.stats().threads_spawned, 0u);  // fully lazy
}

TEST(ThreadPoolTest, WarmReuseSpawnsNoNewThreads) {
  ThreadPool pool(SmallPool(2));
  std::atomic<size_t> ran{0};
  pool.ParallelRun(2, [&](size_t) { ran.fetch_add(1); });
  const uint64_t spawned_after_first = pool.stats().threads_spawned;
  EXPECT_GE(spawned_after_first, 1u);
  // Parked (not retired) workers must be reused: further batches spawn
  // nothing — this is the whole point of the pool vs. per-run threads.
  for (int repeat = 0; repeat < 5; ++repeat) {
    pool.ParallelRun(2, [&](size_t) { ran.fetch_add(1); });
  }
  EXPECT_EQ(pool.stats().threads_spawned, spawned_after_first);
  EXPECT_EQ(ran.load(), 12u);
}

TEST(ThreadPoolTest, IdleWorkersRetireAndRespawnOnDemand) {
  ThreadPool pool(SmallPool(2, /*idle_ms=*/50));
  pool.ParallelRun(2, [](size_t) {});
  // Workers park idle, then spin down after the timeout; poll rather than
  // assume exact timing.
  bool drained = false;
  for (int i = 0; i < 100; ++i) {
    if (pool.stats().live_threads == 0) {
      drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(drained) << "idle workers did not spin down";
  EXPECT_GE(pool.stats().threads_retired, 1u);

  // The drained pool respawns on demand and still runs everything.
  std::atomic<size_t> ran{0};
  pool.ParallelRun(4, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4u);
}

TEST(ThreadPoolTest, MoreTasksThanWorkersDrain) {
  ThreadPool pool(SmallPool(1));
  std::atomic<size_t> ran{0};
  pool.ParallelRun(16, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 16u);
  EXPECT_LE(pool.stats().live_threads, 1u);
}

TEST(ThreadPoolTest, ConcurrentCallersShareTheWorkers) {
  ThreadPool pool(SmallPool(4));
  std::atomic<size_t> ran{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int batch = 0; batch < 8; ++batch) {
        pool.ParallelRun(8, [&](size_t) { ran.fetch_add(1); });
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(ran.load(), 4u * 8u * 8u);
  // The pool never exceeded its cap, no matter how many callers piled on.
  EXPECT_LE(pool.stats().threads_spawned, 4u + pool.stats().threads_retired);
}

TEST(ThreadPoolTest, NestedParallelRunOnOwnPoolRunsInline) {
  ThreadPool pool(SmallPool(1));
  std::atomic<size_t> inner_ran{0};
  // With max_threads = 1 a parked nested batch would deadlock; the inline
  // fallback must complete it on the worker itself.
  pool.ParallelRun(1, [&](size_t) {
    pool.ParallelRun(3, [&](size_t) { inner_ran.fetch_add(1); });
  });
  EXPECT_EQ(inner_ran.load(), 3u);
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.max_threads(), 1u);
  std::atomic<size_t> ran{0};
  a.ParallelRun(3, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3u);
}

TEST(ThreadPoolTest, StatsSnapshotIsConsistent) {
  ThreadPool pool(SmallPool(3));
  pool.ParallelRun(9, [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.max_threads, 3u);
  EXPECT_EQ(stats.tasks_run, 9u);
  EXPECT_EQ(stats.batches_run, 1u);
  EXPECT_GE(stats.threads_spawned, 1u);
  EXPECT_LE(stats.live_threads, 3u);
  EXPECT_LE(stats.idle_threads, stats.live_threads);
}

}  // namespace
}  // namespace bolton
