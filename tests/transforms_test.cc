#include "data/transforms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace bolton {
namespace {

Dataset MakeRaw() {
  // Feature 0 spans hundreds, feature 1 is tiny, feature 2 is constant.
  Dataset ds(3, 2);
  ds.Add(Example{Vector{100.0, 0.01, 5.0}, +1});
  ds.Add(Example{Vector{300.0, 0.03, 5.0}, -1});
  ds.Add(Example{Vector{200.0, 0.02, 5.0}, +1});
  return ds;
}

TEST(StandardizerTest, FittedMomentsAreCorrect) {
  auto standardizer = Standardizer::Fit(MakeRaw());
  ASSERT_TRUE(standardizer.ok());
  EXPECT_NEAR(standardizer.value().means()[0], 200.0, 1e-9);
  EXPECT_NEAR(standardizer.value().means()[1], 0.02, 1e-12);
  // Population stddev of {100,200,300} is sqrt(20000/3).
  EXPECT_NEAR(standardizer.value().stddevs()[0],
              std::sqrt(20000.0 / 3.0), 1e-9);
  // Constant features get stddev 1.
  EXPECT_DOUBLE_EQ(standardizer.value().stddevs()[2], 1.0);
}

TEST(StandardizerTest, TransformedDataHasZeroMeanUnitVariance) {
  Dataset ds = MakeRaw();
  auto standardizer = Standardizer::Fit(ds).MoveValue();
  Dataset transformed = standardizer.Apply(ds).MoveValue();
  for (size_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < transformed.size(); ++i) {
      mean += transformed[i].x[j];
    }
    mean /= transformed.size();
    for (size_t i = 0; i < transformed.size(); ++i) {
      var += (transformed[i].x[j] - mean) * (transformed[i].x[j] - mean);
    }
    var /= transformed.size();
    EXPECT_NEAR(mean, 0.0, 1e-9) << "feature " << j;
    EXPECT_NEAR(var, 1.0, 1e-9) << "feature " << j;
  }
  // Labels untouched.
  EXPECT_EQ(transformed[1].label, -1);
}

TEST(StandardizerTest, TrainFitAppliesToTest) {
  Dataset train = MakeRaw();
  auto standardizer = Standardizer::Fit(train).MoveValue();
  // A test point transformed with TRAIN statistics.
  Vector test_point{250.0, 0.025, 5.0};
  Vector transformed = standardizer.Apply(test_point);
  EXPECT_NEAR(transformed[0], 50.0 / std::sqrt(20000.0 / 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(transformed[2], 0.0);  // centered constant feature
}

TEST(StandardizerTest, Validation) {
  EXPECT_FALSE(Standardizer::Fit(Dataset(3, 2)).ok());
  auto standardizer = Standardizer::Fit(MakeRaw()).MoveValue();
  Dataset wrong_dim(2, 2);
  wrong_dim.Add(Example{Vector{1.0, 2.0}, +1});
  EXPECT_FALSE(standardizer.Apply(wrong_dim).ok());
}

TEST(ClassCountsTest, CountsPerLabel) {
  SyntheticConfig config;
  config.num_examples = 1000;
  config.dim = 3;
  config.num_classes = 4;
  config.seed = 221;
  Dataset ds = GenerateSynthetic(config).MoveValue();
  auto counts = ClassCounts(ds);
  ASSERT_EQ(counts.size(), 4u);
  size_t total = 0;
  for (const auto& [label, count] : counts) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
    total += count;
  }
  EXPECT_EQ(total, ds.size());
}

TEST(StratifiedSplitTest, PreservesClassRatios) {
  // An imbalanced binary set: 90 positives, 10 negatives.
  Dataset ds(1, 2);
  for (int i = 0; i < 90; ++i) {
    ds.Add(Example{Vector{static_cast<double>(i)}, +1});
  }
  for (int i = 0; i < 10; ++i) {
    ds.Add(Example{Vector{static_cast<double>(-i)}, -1});
  }
  Rng rng(1);
  auto split = StratifiedSplit(ds, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  auto [train, test] = split.value();
  auto train_counts = ClassCounts(train);
  auto test_counts = ClassCounts(test);
  EXPECT_EQ(test_counts[+1], 18u);  // 20% of each class exactly
  EXPECT_EQ(test_counts[-1], 2u);
  EXPECT_EQ(train_counts[+1], 72u);
  EXPECT_EQ(train_counts[-1], 8u);
}

TEST(StratifiedSplitTest, Validation) {
  Dataset ds(1, 2);
  ds.Add(Example{Vector{1.0}, +1});
  Rng rng(2);
  EXPECT_FALSE(StratifiedSplit(Dataset(1, 2), 0.2, &rng).ok());
  EXPECT_FALSE(StratifiedSplit(ds, 0.0, &rng).ok());
  EXPECT_FALSE(StratifiedSplit(ds, 1.0, &rng).ok());
}

TEST(DownsampleMajorityTest, CapsImbalance) {
  Dataset ds(1, 2);
  for (int i = 0; i < 100; ++i) {
    ds.Add(Example{Vector{static_cast<double>(i)}, +1});
  }
  for (int i = 0; i < 10; ++i) {
    ds.Add(Example{Vector{static_cast<double>(-i)}, -1});
  }
  Rng rng(3);
  auto balanced = DownsampleMajority(ds, 2.0, &rng);
  ASSERT_TRUE(balanced.ok());
  auto counts = ClassCounts(balanced.value());
  EXPECT_EQ(counts[-1], 10u);          // minority untouched
  EXPECT_EQ(counts[+1], 20u);          // majority capped at 2x
}

TEST(DownsampleMajorityTest, AlreadyBalancedUnchangedInSize) {
  Dataset ds(1, 2);
  for (int i = 0; i < 10; ++i) {
    ds.Add(Example{Vector{static_cast<double>(i)}, i % 2 == 0 ? +1 : -1});
  }
  Rng rng(4);
  auto balanced = DownsampleMajority(ds, 2.0, &rng);
  ASSERT_TRUE(balanced.ok());
  EXPECT_EQ(balanced.value().size(), 10u);
}

TEST(DownsampleMajorityTest, Validation) {
  Dataset ds(1, 2);
  ds.Add(Example{Vector{1.0}, +1});
  Rng rng(5);
  EXPECT_FALSE(DownsampleMajority(ds, 0.5, &rng).ok());
  EXPECT_FALSE(DownsampleMajority(ds, 2.0, &rng).ok());  // one class only
}

}  // namespace
}  // namespace bolton
