#include "optim/psgd.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"
#include "optim/schedule.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeTrainingSet(size_t m = 400, uint64_t seed = 81) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 10;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(PsgdTest, ReducesEmpiricalRisk) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule =
      MakeConstantStep(1.0 / std::sqrt(static_cast<double>(data.size())))
          .MoveValue();
  PsgdOptions options;
  options.passes = 5;
  Rng rng(1);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  double trained_risk = loss->EmpiricalRisk(run.value().model, data);
  double zero_risk = loss->EmpiricalRisk(Vector(data.dim()), data);
  EXPECT_LT(trained_risk, zero_risk);
}

TEST(PsgdTest, LearnsSeparableData) {
  Dataset data = MakeTrainingSet(1000);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.5).MoveValue();
  PsgdOptions options;
  options.passes = 10;
  options.batch_size = 10;
  Rng rng(2);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(BinaryAccuracy(run.value().model, data), 0.9);
}

TEST(PsgdTest, StatsCountCorrectly) {
  Dataset data = MakeTrainingSet(100);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 3;
  options.batch_size = 7;  // 100 = 14*7 + 2: 15 updates per pass
  Rng rng(3);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().stats.gradient_evaluations, 300u);
  EXPECT_EQ(run.value().stats.updates, 45u);
  EXPECT_EQ(run.value().stats.noise_samples, 0u);
}

TEST(PsgdTest, ProjectionKeepsIterateInBall) {
  Dataset data = MakeTrainingSet(200);
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  auto schedule = MakeConstantStep(0.5).MoveValue();
  PsgdOptions options;
  options.passes = 5;
  options.radius = 0.05;  // tiny ball; unconstrained training would escape
  Rng rng(4);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run.value().model.Norm(), 0.05 + 1e-12);
}

TEST(PsgdTest, DeterministicForFixedSeed) {
  Dataset data = MakeTrainingSet(150);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.2).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  Rng rng_a(5), rng_b(5);
  auto a = RunPsgd(data, *loss, *schedule, options, &rng_a);
  auto b = RunPsgd(data, *loss, *schedule, options, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().model, b.value().model);
}

TEST(PsgdTest, AveragingChangesOutput) {
  Dataset data = MakeTrainingSet(150);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.2).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  Rng rng_a(6), rng_b(6);
  options.output = OutputMode::kLastIterate;
  auto last = RunPsgd(data, *loss, *schedule, options, &rng_a);
  options.output = OutputMode::kAverageAll;
  auto averaged = RunPsgd(data, *loss, *schedule, options, &rng_b);
  ASSERT_TRUE(last.ok() && averaged.ok());
  EXPECT_GT(Distance(last.value().model, averaged.value().model), 0.0);
  // The average of iterates has smaller norm than the last (we start at 0
  // and move outward on this data).
  EXPECT_LT(averaged.value().model.Norm(), last.value().model.Norm());
}

TEST(PsgdTest, FullBatchEqualsGradientDescent) {
  // With b = m, each pass is one full-gradient step — verify the single
  // update against a hand-computed one.
  Dataset data = MakeTrainingSet(50);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.3).MoveValue();
  PsgdOptions options;
  options.passes = 1;
  options.batch_size = data.size();
  Rng rng(7);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().stats.updates, 1u);

  Vector w(data.dim());
  Vector grad(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    loss->AddGradient(w, data[i], 1.0 / data.size(), &grad);
  }
  w.Axpy(-0.3, grad);
  EXPECT_NEAR(Distance(run.value().model, w), 0.0, 1e-12);
}

TEST(PsgdTest, PassCallbackFiresPerPass) {
  Dataset data = MakeTrainingSet(60);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 4;
  Rng rng(8);
  std::vector<size_t> passes_seen;
  auto run = RunPsgd(data, *loss, *schedule, options, &rng, nullptr,
                     [&](size_t pass, const Vector& w) {
                       passes_seen.push_back(pass);
                       EXPECT_EQ(w.dim(), data.dim());
                     });
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(passes_seen, (std::vector<size_t>{1, 2, 3, 4}));
}

TEST(PsgdTest, WithReplacementSamplingRuns) {
  Dataset data = MakeTrainingSet(200);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeInverseSqrtStep(0.5).MoveValue();
  PsgdOptions options;
  options.passes = 3;
  options.batch_size = 10;
  options.sampling = SamplingMode::kWithReplacement;
  Rng rng(9);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().stats.updates, 60u);
  EXPECT_GT(BinaryAccuracy(run.value().model, data), 0.8);
}

TEST(PsgdTest, FreshPermutationStillLearns) {
  Dataset data = MakeTrainingSet(300);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.3).MoveValue();
  PsgdOptions options;
  options.passes = 5;
  options.fresh_permutation_each_pass = true;
  Rng rng(10);
  auto run = RunPsgd(data, *loss, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(BinaryAccuracy(run.value().model, data), 0.9);
}

// A per-step noise hook must be sampled once per update and added to the
// gradient; a deterministic "noise" of zero must not change the output.
class CountingNoise final : public GradientNoiseSource {
 public:
  Result<Vector> Sample(size_t, size_t dim, Rng*) override {
    ++calls_;
    return Vector(dim);
  }
  size_t calls() const { return calls_; }

 private:
  size_t calls_ = 0;
};

TEST(PsgdTest, NoiseHookSampledPerUpdate) {
  Dataset data = MakeTrainingSet(100);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.batch_size = 10;
  CountingNoise noise;
  Rng rng_a(11), rng_b(11);
  auto noisy = RunPsgd(data, *loss, *schedule, options, &rng_a, &noise);
  auto clean = RunPsgd(data, *loss, *schedule, options, &rng_b);
  ASSERT_TRUE(noisy.ok() && clean.ok());
  EXPECT_EQ(noise.calls(), 20u);
  EXPECT_EQ(noisy.value().stats.noise_samples, 20u);
  EXPECT_EQ(noisy.value().model, clean.value().model);
}

class FailingNoise final : public GradientNoiseSource {
 public:
  Result<Vector> Sample(size_t, size_t, Rng*) override {
    return Status::Internal("noise sampler broke");
  }
};

TEST(PsgdTest, NoiseErrorPropagates) {
  Dataset data = MakeTrainingSet(50);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  FailingNoise noise;
  Rng rng(12);
  EXPECT_EQ(RunPsgd(data, *loss, *schedule, options, &rng, &noise)
                .status()
                .code(),
            StatusCode::kInternal);
}

TEST(PsgdTest, ValidationErrors) {
  Dataset data = MakeTrainingSet(50);
  Dataset empty(10, 2);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  Rng rng(13);

  PsgdOptions options;
  EXPECT_FALSE(RunPsgd(empty, *loss, *schedule, options, &rng).ok());

  options = PsgdOptions{};
  options.passes = 0;
  EXPECT_FALSE(RunPsgd(data, *loss, *schedule, options, &rng).ok());

  options = PsgdOptions{};
  options.batch_size = 0;
  EXPECT_FALSE(RunPsgd(data, *loss, *schedule, options, &rng).ok());

  options = PsgdOptions{};
  options.batch_size = data.size() + 1;
  EXPECT_FALSE(RunPsgd(data, *loss, *schedule, options, &rng).ok());

  options = PsgdOptions{};
  options.radius = 0.0;
  EXPECT_FALSE(RunPsgd(data, *loss, *schedule, options, &rng).ok());
}

}  // namespace
}  // namespace bolton
