#include "serve/budget.h"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/ledger.h"
#include "util/failpoint.h"

namespace bolton {
namespace serve {
namespace {

/// Fresh empty state directory under the gtest temp root.
std::string MakeStateDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0700);
  std::remove((dir + "/bolton.budget").c_str());
  std::remove((dir + "/bolton.budget.tmp").c_str());
  return dir;
}

TenantBudgetOptions InMemory(double epsilon = 1.0, double delta = 1e-6) {
  TenantBudgetOptions options;
  options.default_budget = PrivacyParams{epsilon, delta};
  return options;
}

TEST(TenantBudgetTest, FreshTenantReportsDefaultBudgetAndZeroSpend) {
  auto manager = TenantBudgetManager::Open(InMemory(2.0, 1e-5)).MoveValue();
  TenantAccountView view = manager->Account("alice");
  EXPECT_EQ(view.tenant, "alice");
  EXPECT_DOUBLE_EQ(view.budget.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
  EXPECT_EQ(view.commits, 0u);
}

TEST(TenantBudgetTest, ReserveCommitSpends) {
  auto manager = TenantBudgetManager::Open(InMemory()).MoveValue();
  uint64_t hold =
      manager->Reserve("alice", {0.4, 1e-7}, "train").MoveValue();
  TenantAccountView held = manager->Account("alice");
  EXPECT_DOUBLE_EQ(held.reserved.epsilon, 0.4);
  EXPECT_DOUBLE_EQ(held.spent.epsilon, 0.0);

  ASSERT_TRUE(manager->Commit(hold).ok());
  TenantAccountView committed = manager->Account("alice");
  EXPECT_DOUBLE_EQ(committed.spent.epsilon, 0.4);
  EXPECT_DOUBLE_EQ(committed.spent.delta, 1e-7);
  EXPECT_DOUBLE_EQ(committed.reserved.epsilon, 0.0);
  EXPECT_EQ(committed.commits, 1u);
}

TEST(TenantBudgetTest, RefundRestoresCapacity) {
  auto manager = TenantBudgetManager::Open(InMemory()).MoveValue();
  uint64_t hold = manager->Reserve("bob", {0.9, 0.0}, "t").MoveValue();
  ASSERT_TRUE(manager->Refund(hold).ok());
  TenantAccountView view = manager->Account("bob");
  EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
  EXPECT_EQ(view.refunds, 1u);
  // The freed budget is reusable.
  EXPECT_TRUE(manager->Reserve("bob", {0.9, 0.0}, "t2").ok());
}

TEST(TenantBudgetTest, OverspendRefusedWithFailedPrecondition) {
  auto manager = TenantBudgetManager::Open(InMemory(1.0, 0.0)).MoveValue();
  auto refused = manager->Reserve("alice", {1.5, 0.0}, "big");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("budget_exhausted"),
            std::string::npos);
  TenantAccountView view = manager->Account("alice");
  EXPECT_EQ(view.refusals, 1u);
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
}

TEST(TenantBudgetTest, PendingHoldsCountAgainstCapacity) {
  auto manager = TenantBudgetManager::Open(InMemory(1.0, 0.0)).MoveValue();
  ASSERT_TRUE(manager->Reserve("alice", {0.6, 0.0}, "a").ok());
  // spent = 0 but 0.6 is held, so another 0.6 must refuse.
  auto second = manager->Reserve("alice", {0.6, 0.0}, "b");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TenantBudgetTest, ExactBudgetFits) {
  auto manager = TenantBudgetManager::Open(InMemory(1.0, 0.0)).MoveValue();
  // Ten charges of exactly 0.1 must not be refused on rounding noise.
  for (int i = 0; i < 10; ++i) {
    auto hold = manager->Reserve("alice", {0.1, 0.0}, "slice");
    ASSERT_TRUE(hold.ok()) << "slice " << i << ": "
                           << hold.status().ToString();
    ASSERT_TRUE(manager->Commit(hold.value()).ok());
  }
  auto over = manager->Reserve("alice", {0.1, 0.0}, "one too many");
  EXPECT_FALSE(over.ok());
}

TEST(TenantBudgetTest, TenantsAreIsolated) {
  auto manager = TenantBudgetManager::Open(InMemory(1.0, 0.0)).MoveValue();
  uint64_t hold = manager->Reserve("alice", {1.0, 0.0}, "all").MoveValue();
  ASSERT_TRUE(manager->Commit(hold).ok());
  // Alice is exhausted; Bob is untouched.
  EXPECT_FALSE(manager->Reserve("alice", {0.1, 0.0}, "x").ok());
  EXPECT_TRUE(manager->Reserve("bob", {0.1, 0.0}, "y").ok());
}

TEST(TenantBudgetTest, InvalidCostAndUnknownHolds) {
  auto manager = TenantBudgetManager::Open(InMemory()).MoveValue();
  EXPECT_EQ(manager->Reserve("", {0.1, 0.0}, "x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->Reserve("a", {-1.0, 0.0}, "x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->Commit(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager->Refund(999).code(), StatusCode::kNotFound);
}

TEST(TenantBudgetTest, StatePersistsAcrossReopen) {
  TenantBudgetOptions options = InMemory(1.0, 1e-6);
  options.state_dir = MakeStateDir("budget_reopen");
  {
    auto manager = TenantBudgetManager::Open(options).MoveValue();
    uint64_t hold =
        manager->Reserve("alice", {0.3, 1e-7}, "train").MoveValue();
    ASSERT_TRUE(manager->Commit(hold).ok());
  }
  auto reopened = TenantBudgetManager::Open(options).MoveValue();
  TenantAccountView view = reopened->Account("alice");
  EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.3);
  EXPECT_DOUBLE_EQ(view.spent.delta, 1e-7);
  EXPECT_EQ(view.commits, 1u);
  EXPECT_EQ(reopened->recovered_holds(), 0u);
}

TEST(TenantBudgetTest, PendingHoldPromotedToSpendAtRecovery) {
  TenantBudgetOptions options = InMemory(1.0, 0.0);
  options.state_dir = MakeStateDir("budget_recover");
  {
    auto manager = TenantBudgetManager::Open(options).MoveValue();
    // Reserve persists the hold write-ahead; "crash" before Commit.
    ASSERT_TRUE(manager->Reserve("alice", {0.5, 0.0}, "doomed").ok());
  }
  auto recovered = TenantBudgetManager::Open(options).MoveValue();
  EXPECT_EQ(recovered->recovered_holds(), 1u);
  TenantAccountView view = recovered->Account("alice");
  // Promoted exactly once: spent the held 0.5, nothing still reserved.
  EXPECT_DOUBLE_EQ(view.spent.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(view.reserved.epsilon, 0.0);
  EXPECT_EQ(view.recovered, 1u);

  // A THIRD open sees the promotion persisted as plain spend — the hold
  // must not promote again (that would double-charge).
  auto third = TenantBudgetManager::Open(options).MoveValue();
  EXPECT_EQ(third->recovered_holds(), 0u);
  EXPECT_DOUBLE_EQ(third->Account("alice").spent.epsilon, 0.5);
}

TEST(TenantBudgetTest, CorruptedStateRefusedAtOpen) {
  TenantBudgetOptions options = InMemory();
  options.state_dir = MakeStateDir("budget_corrupt");
  {
    auto manager = TenantBudgetManager::Open(options).MoveValue();
    uint64_t hold = manager->Reserve("a", {0.1, 0.0}, "x").MoveValue();
    ASSERT_TRUE(manager->Commit(hold).ok());
  }
  {
    // Flip spend bytes without updating the checksum.
    const std::string path = options.state_dir + "/bolton.budget";
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    const size_t at = content.find("account a");
    ASSERT_NE(at, std::string::npos);
    content[at + 8] = 'b';  // tenant "a" -> "b"
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
  auto reopened = TenantBudgetManager::Open(options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("checksum"), std::string::npos)
      << reopened.status().ToString();
}

TEST(TenantBudgetTest, BudgetEventsAreTenantKeyed) {
  obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
  ledger.Clear();
  ledger.SetEnabled(true);
  auto manager = TenantBudgetManager::Open(InMemory(1.0, 0.0)).MoveValue();
  uint64_t hold = manager->Reserve("alice", {0.4, 0.0}, "train").MoveValue();
  ASSERT_TRUE(manager->Commit(hold).ok());
  ASSERT_FALSE(manager->Reserve("alice", {0.7, 0.0}, "too much").ok());
  ledger.SetEnabled(false);

  int reserves = 0, commits = 0, refusals = 0;
  for (const obs::LedgerEvent& event : ledger.Snapshot()) {
    if (event.kind == "budget_reserve") {
      ++reserves;
      EXPECT_EQ(event.tenant, "alice");
      EXPECT_DOUBLE_EQ(event.epsilon, 0.4);
      EXPECT_TRUE(event.accepted);
    } else if (event.kind == "budget_commit") {
      ++commits;
      EXPECT_EQ(event.tenant, "alice");
    } else if (event.kind == "budget_refusal") {
      ++refusals;
      EXPECT_EQ(event.tenant, "alice");
      EXPECT_FALSE(event.accepted);
      EXPECT_DOUBLE_EQ(event.epsilon, 0.7);
    }
  }
  EXPECT_EQ(reserves, 1);
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(refusals, 1);
  ledger.Clear();
}

TEST(TenantBudgetTest, SnapshotListsEveryTenant) {
  auto manager = TenantBudgetManager::Open(InMemory()).MoveValue();
  ASSERT_TRUE(manager->Reserve("a", {0.1, 0.0}, "x").ok());
  ASSERT_TRUE(manager->Reserve("b", {0.2, 0.0}, "y").ok());
  auto views = manager->Snapshot();
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].tenant, "a");
  EXPECT_EQ(views[1].tenant, "b");
}

}  // namespace
}  // namespace serve
}  // namespace bolton
