#include "obs/ledger.h"

#include <gtest/gtest.h>

#include "core/accountant.h"
#include "core/bst14.h"
#include "core/scs13.h"
#include "data/synthetic.h"
#include "random/dp_noise.h"

namespace bolton {
namespace obs {
namespace {

// The ledger is off by default; every test opts in on a clean log and
// restores the documented disabled state afterwards.
class ObsLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PrivacyLedger::Default().Clear();
    PrivacyLedger::Default().SetEnabled(true);
  }
  void TearDown() override {
    PrivacyLedger::Default().SetEnabled(false);
    PrivacyLedger::Default().Clear();
  }
};

Dataset MakeData(size_t m = 200) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 8;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = 19;
  return GenerateSynthetic(config).MoveValue();
}

TEST_F(ObsLedgerTest, LaplaceDrawRecordsOneEventWithActualParameters) {
  Rng rng(5);
  const uint64_t fingerprint_before = rng.StateFingerprint();
  auto noise = SampleSphericalLaplace(16, 0.25, 2.0, &rng);
  ASSERT_TRUE(noise.ok());

  std::vector<LedgerEvent> events = PrivacyLedger::Default().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const LedgerEvent& e = events[0];
  EXPECT_EQ(e.seq, 1u);
  EXPECT_EQ(e.kind, "noise_draw");
  EXPECT_EQ(e.mechanism, "laplace");
  EXPECT_EQ(e.label, "dp_noise.spherical_laplace");
  EXPECT_DOUBLE_EQ(e.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(e.sensitivity, 0.25);
  EXPECT_DOUBLE_EQ(e.noise_scale, 0.25 / 2.0);
  EXPECT_EQ(e.dim, 16u);
  // The recorded norm is the norm of the vector actually returned, and the
  // fingerprint identifies the generator state that produced it.
  EXPECT_NEAR(e.noise_norm, noise.value().Norm(), 1e-9);
  EXPECT_EQ(e.rng_fingerprint, fingerprint_before);
  EXPECT_NE(e.rng_fingerprint, rng.StateFingerprint());
}

TEST_F(ObsLedgerTest, GaussianDrawRecordsSigmaAndNorm) {
  Rng rng(6);
  auto noise = SampleGaussianMechanism(16, 0.5, 0.5, 1e-6, &rng);
  ASSERT_TRUE(noise.ok());
  double sigma = GaussianMechanismSigma(0.5, 0.5, 1e-6).value();

  std::vector<LedgerEvent> events = PrivacyLedger::Default().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const LedgerEvent& e = events[0];
  EXPECT_EQ(e.kind, "noise_draw");
  EXPECT_EQ(e.mechanism, "gaussian");
  EXPECT_DOUBLE_EQ(e.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(e.delta, 1e-6);
  EXPECT_DOUBLE_EQ(e.noise_scale, sigma);
  EXPECT_NEAR(e.noise_norm, noise.value().Norm(), 1e-9);
}

TEST_F(ObsLedgerTest, ZeroSensitivityStillAudited) {
  Rng rng(7);
  ASSERT_TRUE(SampleSphericalLaplace(4, 0.0, 1.0, &rng).ok());
  std::vector<LedgerEvent> events = PrivacyLedger::Default().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].sensitivity, 0.0);
  EXPECT_DOUBLE_EQ(events[0].noise_norm, 0.0);
}

TEST_F(ObsLedgerTest, DisabledLedgerRecordsNothing) {
  PrivacyLedger::Default().SetEnabled(false);
  Rng rng(8);
  ASSERT_TRUE(SampleSphericalLaplace(4, 0.1, 1.0, &rng).ok());
  EXPECT_EQ(PrivacyLedger::Default().size(), 0u);
}

TEST_F(ObsLedgerTest, AccountantChargesAreAudited) {
  PrivacyAccountant accountant(PrivacyParams{1.0, 0.0});
  ASSERT_TRUE(accountant.Charge({0.4, 0.0}, "query-1").ok());
  ASSERT_FALSE(accountant.Charge({0.8, 0.0}, "query-2").ok());
  ASSERT_TRUE(accountant.Charge({0.6, 0.0}, "query-3").ok());

  std::vector<LedgerEvent> events = PrivacyLedger::Default().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, "accountant_charge");
  EXPECT_EQ(events[0].label, "query-1");
  EXPECT_DOUBLE_EQ(events[0].epsilon, 0.4);
  EXPECT_TRUE(events[0].accepted);
  EXPECT_EQ(events[1].label, "query-2");
  EXPECT_FALSE(events[1].accepted);
  EXPECT_TRUE(events[2].accepted);
  // Sequence numbers are assigned in record order.
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].seq, 3u);
}

TEST_F(ObsLedgerTest, Scs13RunLogsCalibrationPlusEveryDraw) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.01, 100.0).MoveValue();
  Scs13Options options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 2;
  options.batch_size = 20;
  Rng rng(9);
  auto out = RunScs13(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());

  size_t calibrations = 0, draws = 0;
  for (const LedgerEvent& e : PrivacyLedger::Default().Snapshot()) {
    if (e.kind == "calibration") ++calibrations;
    if (e.kind == "noise_draw") ++draws;
  }
  EXPECT_EQ(calibrations, 1u);
  EXPECT_EQ(draws, out.value().stats.noise_samples);
  EXPECT_GT(draws, 0u);
}

TEST_F(ObsLedgerTest, Bst14RunLogsCalibrationPlusEveryDraw) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.01, 100.0).MoveValue();
  Bst14Options options;
  options.privacy = PrivacyParams{0.5, 1e-6};
  options.passes = 2;
  options.batch_size = 20;
  Rng rng(10);
  auto out = RunBst14StronglyConvex(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());

  size_t calibrations = 0, draws = 0;
  for (const LedgerEvent& e : PrivacyLedger::Default().Snapshot()) {
    if (e.kind == "calibration") ++calibrations;
    if (e.kind == "noise_draw") {
      ++draws;
      EXPECT_EQ(e.mechanism, "gaussian_per_step");
      EXPECT_GT(e.step, 0u);
    }
  }
  EXPECT_EQ(calibrations, 1u);
  EXPECT_EQ(draws, out.value().stats.noise_samples);
  EXPECT_GT(draws, 0u);
}

TEST_F(ObsLedgerTest, JsonlHasOneObjectPerEvent) {
  Rng rng(11);
  ASSERT_TRUE(SampleSphericalLaplace(4, 0.1, 1.0, &rng).ok());
  ASSERT_TRUE(SampleGaussianMechanism(4, 0.1, 0.5, 1e-6, &rng).ok());

  std::string jsonl = PrivacyLedger::Default().ToJsonl();
  size_t lines = 0;
  for (size_t pos = 0; (pos = jsonl.find('\n', pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.rfind("{\"seq\":1,", 0), 0u);
  EXPECT_NE(jsonl.find("\"kind\":\"noise_draw\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"mechanism\":\"laplace\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"mechanism\":\"gaussian\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"rng_fingerprint\":"), std::string::npos);
}

TEST_F(ObsLedgerTest, ClearEmptiesAndRestartsSequence) {
  Rng rng(12);
  ASSERT_TRUE(SampleSphericalLaplace(4, 0.1, 1.0, &rng).ok());
  PrivacyLedger::Default().Clear();
  EXPECT_EQ(PrivacyLedger::Default().size(), 0u);
  ASSERT_TRUE(SampleSphericalLaplace(4, 0.1, 1.0, &rng).ok());
  ASSERT_EQ(PrivacyLedger::Default().size(), 1u);
  EXPECT_EQ(PrivacyLedger::Default().Snapshot()[0].seq, 1u);
}

}  // namespace
}  // namespace obs
}  // namespace bolton
