#include "random/dp_noise.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(SphericalLaplaceTest, NormFollowsGammaMean) {
  // Theorem 1 / Appendix E: ‖κ‖ ~ Gamma(d, Δ₂/ε), so E‖κ‖ = dΔ₂/ε.
  Rng rng(31);
  const size_t dim = 10;
  const double sensitivity = 0.5;
  const double epsilon = 2.0;
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    auto noise = SampleSphericalLaplace(dim, sensitivity, epsilon, &rng);
    ASSERT_TRUE(noise.ok());
    sum += noise.value().Norm();
  }
  double expected = dim * sensitivity / epsilon;
  EXPECT_NEAR(sum / n, expected, 0.03 * expected);
}

TEST(SphericalLaplaceTest, DirectionIsUnbiased) {
  Rng rng(32);
  const size_t dim = 5;
  const int n = 50000;
  Vector mean(dim);
  for (int i = 0; i < n; ++i) {
    auto noise = SampleSphericalLaplace(dim, 1.0, 1.0, &rng);
    ASSERT_TRUE(noise.ok());
    mean += Normalized(noise.value());
  }
  mean *= 1.0 / n;
  EXPECT_LT(mean.Norm(), 0.02);
}

TEST(SphericalLaplaceTest, Theorem2TailBound) {
  // With probability ≥ 1−γ, ‖κ‖ ≤ d·ln(d/γ)·Δ₂/ε.
  Rng rng(33);
  const size_t dim = 8;
  const double sensitivity = 1.0, epsilon = 1.0, gamma = 0.05;
  const double bound = LaplaceNoiseNormBound(dim, sensitivity, epsilon, gamma);
  const int n = 20000;
  int violations = 0;
  for (int i = 0; i < n; ++i) {
    auto noise = SampleSphericalLaplace(dim, sensitivity, epsilon, &rng);
    ASSERT_TRUE(noise.ok());
    if (noise.value().Norm() > bound) ++violations;
  }
  EXPECT_LT(static_cast<double>(violations) / n, gamma);
}

TEST(SphericalLaplaceTest, ScalesWithSensitivityOverEpsilon) {
  Rng rng_a(34), rng_b(34);
  const int n = 20000;
  double small_eps_sum = 0.0, large_eps_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    small_eps_sum +=
        SampleSphericalLaplace(5, 1.0, 0.5, &rng_a).value().Norm();
    large_eps_sum +=
        SampleSphericalLaplace(5, 1.0, 2.0, &rng_b).value().Norm();
  }
  // Same seed => identical draws up to the ε scaling: ratio is exactly 4.
  EXPECT_NEAR(small_eps_sum / large_eps_sum, 4.0, 1e-9);
}

TEST(SphericalLaplaceTest, ZeroSensitivityYieldsZeroNoise) {
  Rng rng(35);
  auto noise = SampleSphericalLaplace(4, 0.0, 1.0, &rng);
  ASSERT_TRUE(noise.ok());
  EXPECT_EQ(noise.value(), Vector(4));
}

TEST(SphericalLaplaceTest, InvalidArguments) {
  Rng rng(36);
  EXPECT_FALSE(SampleSphericalLaplace(0, 1.0, 1.0, &rng).ok());
  EXPECT_FALSE(SampleSphericalLaplace(4, -1.0, 1.0, &rng).ok());
  EXPECT_FALSE(SampleSphericalLaplace(4, 1.0, 0.0, &rng).ok());
  EXPECT_FALSE(SampleSphericalLaplace(4, 1.0, -2.0, &rng).ok());
}

TEST(GaussianMechanismTest, SigmaMatchesTheorem3) {
  const double sensitivity = 0.1, epsilon = 0.5, delta = 1e-6;
  auto sigma = GaussianMechanismSigma(sensitivity, epsilon, delta);
  ASSERT_TRUE(sigma.ok());
  double expected =
      std::sqrt(2.0 * std::log(1.25 / delta)) * sensitivity / epsilon;
  EXPECT_DOUBLE_EQ(sigma.value(), expected);
}

TEST(GaussianMechanismTest, RequiresEpsilonBelowOne) {
  EXPECT_FALSE(GaussianMechanismSigma(1.0, 1.0, 1e-6).ok());
  EXPECT_FALSE(GaussianMechanismSigma(1.0, 1.5, 1e-6).ok());
  EXPECT_TRUE(GaussianMechanismSigma(1.0, 0.99, 1e-6).ok());
}

TEST(GaussianMechanismTest, RequiresValidDelta) {
  EXPECT_FALSE(GaussianMechanismSigma(1.0, 0.5, 0.0).ok());
  EXPECT_FALSE(GaussianMechanismSigma(1.0, 0.5, 1.0).ok());
}

TEST(GaussianMechanismTest, NoiseHasCorrectVariance) {
  Rng rng(37);
  const size_t dim = 16;
  const double sensitivity = 1.0, epsilon = 0.5, delta = 1e-5;
  double sigma = GaussianMechanismSigma(sensitivity, epsilon, delta).value();
  const int n = 20000;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    auto noise =
        SampleGaussianMechanism(dim, sensitivity, epsilon, delta, &rng);
    ASSERT_TRUE(noise.ok());
    sum_sq += noise.value().SquaredNorm();
  }
  double expected = dim * sigma * sigma;
  EXPECT_NEAR(sum_sq / n, expected, 0.03 * expected);
}

TEST(DispatchTest, SelectsMechanism) {
  Rng rng(38);
  auto laplace = SampleDpNoise(NoiseMechanism::kLaplace, 4, 1.0, 1.0, 0.0,
                               &rng);
  EXPECT_TRUE(laplace.ok());
  auto gaussian = SampleDpNoise(NoiseMechanism::kGaussian, 4, 1.0, 0.5, 1e-6,
                                &rng);
  EXPECT_TRUE(gaussian.ok());
  // Gaussian path validates ε < 1 even through the dispatcher.
  EXPECT_FALSE(
      SampleDpNoise(NoiseMechanism::kGaussian, 4, 1.0, 2.0, 1e-6, &rng).ok());
}

// The Laplace mechanism's noise magnitude grows linearly in d (Theorem 2) —
// the reason the paper random-projects MNIST to 50 dimensions.
TEST(DimensionScalingTest, LaplaceNoiseGrowsLinearlyInDimension) {
  Rng rng(39);
  const int n = 20000;
  double norm_d10 = 0.0, norm_d100 = 0.0;
  for (int i = 0; i < n; ++i) {
    norm_d10 += SampleSphericalLaplace(10, 1.0, 1.0, &rng).value().Norm();
    norm_d100 += SampleSphericalLaplace(100, 1.0, 1.0, &rng).value().Norm();
  }
  EXPECT_NEAR(norm_d100 / norm_d10, 10.0, 0.5);
}

}  // namespace
}  // namespace bolton
