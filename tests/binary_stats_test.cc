#include "ml/binary_stats.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/trainer.h"

namespace bolton {
namespace {

Dataset MakeScored() {
  // Model w = (1) scores x directly; construct known confusion counts.
  Dataset test(1, 2);
  test.Add(Example{Vector{2.0}, +1});   // TP
  test.Add(Example{Vector{1.0}, +1});   // TP
  test.Add(Example{Vector{0.5}, -1});   // FP
  test.Add(Example{Vector{-1.0}, -1});  // TN
  test.Add(Example{Vector{-2.0}, +1});  // FN
  return test;
}

TEST(BinaryStatsTest, CountsMatchHandConstruction) {
  BinaryStats stats = ComputeBinaryStats(Vector{1.0}, MakeScored());
  EXPECT_EQ(stats.true_positives, 2u);
  EXPECT_EQ(stats.false_positives, 1u);
  EXPECT_EQ(stats.true_negatives, 1u);
  EXPECT_EQ(stats.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(stats.Accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(stats.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.Recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.F1(), 2.0 / 3.0);
}

TEST(BinaryStatsTest, AccuracyAgreesWithMetricsModule) {
  Dataset test = MakeScored();
  Vector model{1.0};
  EXPECT_DOUBLE_EQ(ComputeBinaryStats(model, test).Accuracy(),
                   BinaryAccuracy(model, test));
}

TEST(BinaryStatsTest, DegenerateCases) {
  BinaryStats empty;
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Precision(), 1.0);  // no positive predictions
  EXPECT_DOUBLE_EQ(empty.Recall(), 1.0);     // no positives
  EXPECT_DOUBLE_EQ(empty.F1(), 1.0);

  BinaryStats all_wrong;
  all_wrong.false_positives = 3;
  all_wrong.false_negatives = 2;
  EXPECT_DOUBLE_EQ(all_wrong.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(all_wrong.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(all_wrong.F1(), 0.0);
}

TEST(BinaryStatsTest, ToStringMentionsEverything) {
  std::string s = ComputeBinaryStats(Vector{1.0}, MakeScored()).ToString();
  EXPECT_NE(s.find("tp=2"), std::string::npos);
  EXPECT_NE(s.find("f1="), std::string::npos);
}

TEST(RocAucTest, PerfectSeparationIsOne) {
  Dataset test(1, 2);
  test.Add(Example{Vector{3.0}, +1});
  test.Add(Example{Vector{2.0}, +1});
  test.Add(Example{Vector{-1.0}, -1});
  test.Add(Example{Vector{-2.0}, -1});
  EXPECT_DOUBLE_EQ(RocAuc(Vector{1.0}, test).value(), 1.0);
  // An anti-model gets AUC 0.
  EXPECT_DOUBLE_EQ(RocAuc(Vector{-1.0}, test).value(), 0.0);
}

TEST(RocAucTest, TiesGetHalfCredit) {
  // All scores identical: AUC must be exactly 0.5 via midranks.
  Dataset test(1, 2);
  test.Add(Example{Vector{1.0}, +1});
  test.Add(Example{Vector{1.0}, -1});
  test.Add(Example{Vector{1.0}, +1});
  test.Add(Example{Vector{1.0}, -1});
  EXPECT_DOUBLE_EQ(RocAuc(Vector{1.0}, test).value(), 0.5);
}

TEST(RocAucTest, HandComputedMixedCase) {
  // Scores: +1 examples at {3, 1}, −1 examples at {2, 0}.
  // Pairs: (3>2, 3>0, 1<2, 1>0) → 3 of 4 → AUC 0.75.
  Dataset test(1, 2);
  test.Add(Example{Vector{3.0}, +1});
  test.Add(Example{Vector{1.0}, +1});
  test.Add(Example{Vector{2.0}, -1});
  test.Add(Example{Vector{0.0}, -1});
  EXPECT_DOUBLE_EQ(RocAuc(Vector{1.0}, test).value(), 0.75);
}

TEST(RocAucTest, SingleClassRejected) {
  Dataset test(1, 2);
  test.Add(Example{Vector{1.0}, +1});
  test.Add(Example{Vector{2.0}, +1});
  EXPECT_FALSE(RocAuc(Vector{1.0}, test).ok());
}

TEST(RocAucTest, TrainedModelBeatsChance) {
  SyntheticConfig config;
  config.num_examples = 600;
  config.dim = 8;
  config.margin = 2.0;
  config.noise_stddev = 0.6;
  config.seed = 201;
  Dataset data = GenerateSynthetic(config).MoveValue();
  TrainerConfig trainer;
  trainer.passes = 5;
  trainer.batch_size = 10;
  Rng rng(1);
  Vector model = TrainBinary(data, trainer, &rng).MoveValue();
  EXPECT_GT(RocAuc(model, data).value(), 0.9);
}

// ---------------------------------------------------------------------------
// Cross-validation.
// ---------------------------------------------------------------------------

TEST(KFoldSplitTest, FoldsPartitionTheData) {
  SyntheticConfig config;
  config.num_examples = 103;  // not divisible by k
  config.dim = 4;
  config.seed = 202;
  Dataset data = GenerateSynthetic(config).MoveValue();
  Rng rng(2);
  auto folds = KFoldSplit(data, 5, &rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds.value().size(), 5u);
  size_t total_validation = 0;
  for (const Fold& fold : folds.value()) {
    EXPECT_EQ(fold.train.size() + fold.validation.size(), data.size());
    total_validation += fold.validation.size();
  }
  EXPECT_EQ(total_validation, data.size());
}

TEST(KFoldSplitTest, Validation) {
  SyntheticConfig config;
  config.num_examples = 10;
  config.dim = 2;
  Dataset data = GenerateSynthetic(config).MoveValue();
  Rng rng(3);
  EXPECT_FALSE(KFoldSplit(data, 1, &rng).ok());
  EXPECT_FALSE(KFoldSplit(data, 11, &rng).ok());
  EXPECT_TRUE(KFoldSplit(data, 10, &rng).ok());
}

TEST(CrossValidateTest, ScoresEveryFold) {
  SyntheticConfig config;
  config.num_examples = 500;
  config.dim = 6;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = 203;
  Dataset data = GenerateSynthetic(config).MoveValue();

  FoldTrainFn train = [](const Dataset& train_data,
                         Rng* rng) -> Result<Vector> {
    TrainerConfig trainer;
    trainer.passes = 5;
    trainer.batch_size = 10;
    return TrainBinary(train_data, trainer, rng);
  };
  FoldScoreFn score = [](const Vector& model, const Dataset& validation) {
    return BinaryAccuracy(model, validation);
  };
  Rng rng(4);
  auto result = CrossValidate(data, 5, train, score, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().fold_scores.size(), 5u);
  EXPECT_GT(result.value().mean, 0.85);
  EXPECT_GE(result.value().stddev, 0.0);
  EXPECT_LT(result.value().stddev, 0.2);
}

TEST(CrossValidateTest, NullFunctionsRejected) {
  SyntheticConfig config;
  config.num_examples = 20;
  config.dim = 2;
  Dataset data = GenerateSynthetic(config).MoveValue();
  Rng rng(5);
  FoldScoreFn score = [](const Vector&, const Dataset&) { return 0.0; };
  EXPECT_FALSE(CrossValidate(data, 2, nullptr, score, &rng).ok());
}

}  // namespace
}  // namespace bolton
