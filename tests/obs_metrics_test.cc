#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace bolton {
namespace obs {
namespace {

// Metrics are off by default; every test here opts in and restores the
// default so other suites see the documented disabled state.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Default().Reset();
    SetMetricsEnabled(true);
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    MetricsRegistry::Default().Reset();
  }
};

TEST_F(ObsMetricsTest, CounterIncrements) {
  Counter* c = MetricsRegistry::Default().GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST_F(ObsMetricsTest, SameNameReturnsSameMetric) {
  Counter* a = MetricsRegistry::Default().GetCounter("test.shared");
  Counter* b = MetricsRegistry::Default().GetCounter("test.shared");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
}

TEST_F(ObsMetricsTest, DisabledIncrementsAreDropped) {
  Counter* c = MetricsRegistry::Default().GetCounter("test.disabled");
  Gauge* g = MetricsRegistry::Default().GetGauge("test.disabled_gauge");
  Histogram* h = MetricsRegistry::Default().GetHistogram(
      "test.disabled_hist", {1.0, 2.0});
  SetMetricsEnabled(false);
  c->Increment(100);
  g->Set(3.5);
  h->Observe(1.5);
  SetMetricsEnabled(true);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->TotalCount(), 0u);
}

TEST_F(ObsMetricsTest, GaugeLastWriteWins) {
  Gauge* g = MetricsRegistry::Default().GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_EQ(g->Value(), -2.25);
}

TEST_F(ObsMetricsTest, HistogramBucketsObservations) {
  Histogram* h =
      MetricsRegistry::Default().GetHistogram("test.hist", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // <= 1
  h->Observe(1.0);    // <= 1 (inclusive upper edge)
  h->Observe(5.0);    // <= 10
  h->Observe(1000.0); // +inf overflow
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 0u);
  EXPECT_EQ(h->BucketCount(3), 1u);
  EXPECT_EQ(h->TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 1006.5);
}

TEST_F(ObsMetricsTest, ExponentialBucketsShape) {
  std::vector<double> bounds = ExponentialBuckets(1e-6, 10.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[1], 1e-5);
  EXPECT_DOUBLE_EQ(bounds[3], 1e-3);
}

TEST_F(ObsMetricsTest, SnapshotIsIsolatedFromLaterUpdates) {
  Counter* c = MetricsRegistry::Default().GetCounter("test.snap");
  c->Increment(7);
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  c->Increment(100);

  bool found = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "test.snap") {
      found = true;
      EXPECT_EQ(value, 7u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsMetricsTest, ResetZeroesButKeepsRegistrations) {
  Counter* c = MetricsRegistry::Default().GetCounter("test.reset");
  c->Increment(9);
  MetricsRegistry::Default().Reset();
  EXPECT_EQ(c->Value(), 0u);
  // Same registration survives: the pointer still works and is returned
  // for the same name.
  EXPECT_EQ(MetricsRegistry::Default().GetCounter("test.reset"), c);
}

TEST_F(ObsMetricsTest, ConcurrentIncrementsAreExact) {
  Counter* c = MetricsRegistry::Default().GetCounter("test.concurrent");
  Histogram* h = MetricsRegistry::Default().GetHistogram(
      "test.concurrent_hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->TotalCount(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsMetricsTest, TextAndJsonlExports) {
  MetricsRegistry::Default().GetCounter("test.export")->Increment(3);
  MetricsRegistry::Default().GetGauge("test.export_gauge")->Set(1.5);
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();

  std::string text = snapshot.ToText();
  EXPECT_NE(text.find("# counters"), std::string::npos);
  EXPECT_NE(text.find("test.export"), std::string::npos);

  std::string jsonl = snapshot.ToJsonl();
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":\"test.export\","
                       "\"value\":3}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"gauge\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace bolton
