#include "linalg/vector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix.h"

namespace bolton {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector zero(3);
  EXPECT_EQ(zero.dim(), 3u);
  EXPECT_EQ(zero[0], 0.0);

  Vector filled(2, 1.5);
  EXPECT_EQ(filled[0], 1.5);
  EXPECT_EQ(filled[1], 1.5);

  Vector braced{1.0, 2.0, 3.0};
  EXPECT_EQ(braced.dim(), 3u);
  EXPECT_EQ(braced[2], 3.0);

  EXPECT_TRUE(Vector().empty());
}

TEST(VectorTest, ArithmeticMatchesComponentwise) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  Vector sum = a + b;
  EXPECT_EQ(sum, (Vector{4.0, 1.0}));
  Vector diff = a - b;
  EXPECT_EQ(diff, (Vector{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vector{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vector{2.0, 4.0}));

  Vector c = a;
  c += b;
  EXPECT_EQ(c, sum);
  c -= b;
  EXPECT_EQ(c, a);
  c *= 3.0;
  EXPECT_EQ(c, (Vector{3.0, 6.0}));
  c /= 3.0;
  EXPECT_EQ(c, a);
}

TEST(VectorTest, AxpyAccumulates) {
  Vector y{1.0, 1.0};
  Vector x{2.0, -2.0};
  y.Axpy(0.5, x);
  EXPECT_EQ(y, (Vector{2.0, 0.0}));
}

TEST(VectorTest, NormsAndDistances) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(Dot(v, v), 25.0);
  EXPECT_DOUBLE_EQ(Distance(v, Vector{0.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(Distance(v, v), 0.0);
}

TEST(VectorTest, NormalizedHasUnitNorm) {
  Vector v{3.0, 4.0};
  EXPECT_NEAR(Normalized(v).Norm(), 1.0, 1e-12);
  // Zero vectors are passed through unchanged.
  Vector zero(2);
  EXPECT_EQ(Normalized(zero), zero);
}

TEST(VectorTest, SetZeroClears) {
  Vector v{1.0, 2.0};
  v.SetZero();
  EXPECT_EQ(v, Vector(2));
}

TEST(ProjectionTest, InsideBallUnchanged) {
  Vector v{0.3, 0.4};
  EXPECT_EQ(ProjectToL2Ball(v, 1.0), v);
}

TEST(ProjectionTest, OutsideBallLandsOnBoundary) {
  Vector v{3.0, 4.0};
  Vector projected = ProjectToL2Ball(v, 1.0);
  EXPECT_NEAR(projected.Norm(), 1.0, 1e-12);
  // Direction is preserved.
  EXPECT_NEAR(projected[0] / projected[1], v[0] / v[1], 1e-12);
}

// Non-expansiveness ‖Πu − Πv‖ ≤ ‖u − v‖ is the property the paper's
// constrained-optimization extension (§3.2.3) relies on.
TEST(ProjectionTest, ProjectionIsNonExpansive) {
  const double radius = 2.0;
  Vector u{5.0, 0.0};
  Vector v{0.0, 7.0};
  double before = Distance(u, v);
  double after = Distance(ProjectToL2Ball(u, radius),
                          ProjectToL2Ball(v, radius));
  EXPECT_LE(after, before + 1e-12);
}

TEST(MatrixTest, MultiplyMatchesManual) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(0, 2) = 3.0;
  m(1, 0) = -1.0;
  m(1, 1) = 0.0;
  m(1, 2) = 1.0;
  Vector x{1.0, 1.0, 1.0};
  Vector y = m.Multiply(x);
  EXPECT_EQ(y, (Vector{6.0, 0.0}));

  Vector z = m.MultiplyTransposed(Vector{1.0, 2.0});
  EXPECT_EQ(z, (Vector{-1.0, 2.0, 5.0}));
}

TEST(MatrixTest, RowAndFrobenius) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_EQ(m.Row(0), (Vector{3.0, 0.0}));
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

}  // namespace
}  // namespace bolton
