#include "core/checkpoint.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/private_sgd.h"
#include "data/synthetic.h"
#include "obs/ledger.h"
#include "util/failpoint.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeTrainingSet(size_t m = 120, uint64_t seed = 91) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 6;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

/// Fresh empty directory under the gtest temp root; stale checkpoint files
/// from a previous (crashed) test run are removed.
std::string MakeCheckpointDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0700);
  std::remove((dir + "/bolton.ckpt").c_str());
  std::remove((dir + "/bolton.ckpt.tmp").c_str());
  return dir;
}

CheckpointData MakeSampleData() {
  CheckpointData data;
  data.spec_hash = 0xdeadbeefcafef00dull;
  data.algorithm = "ours";
  data.state.completed_passes = 3;
  data.state.step = 41;
  data.state.w = Vector({0.5, -1.25, 3e-17});
  data.state.iterate_sum = Vector({1.0, 2.0, -0.125});
  data.state.stats.gradient_evaluations = 360;
  data.state.stats.updates = 120;
  data.state.order = {2, 0, 1};
  Rng rng(7);
  rng.Gaussian();  // populate the cached-gaussian half of the state
  data.state.rng = rng.SaveState();
  data.has_outer_rng = true;
  Rng outer(11);
  data.outer_rng = outer.SaveState();
  data.sensitivity = 0.0625;
  obs::LedgerEvent event;
  event.seq = 1;
  event.kind = "calibration";
  event.mechanism = "laplace";
  event.label = "bolton.sensitivity";
  event.epsilon = 1.0;
  event.sensitivity = 0.0625;
  event.shards = 1;
  event.accepted = true;
  data.ledger.push_back(event);
  obs::LedgerEvent unlabeled;  // empty strings must round-trip too
  unlabeled.seq = 2;
  data.ledger.push_back(unlabeled);
  return data;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Default().Clear(); }
  void TearDown() override {
    FailpointRegistry::Default().Clear();
    obs::PrivacyLedger::Default().SetEnabled(false);
    obs::PrivacyLedger::Default().Clear();
  }
};

TEST_F(CheckpointTest, SaveLoadRoundTripsEveryField) {
  CheckpointManager manager(MakeCheckpointDir("ckpt_roundtrip"));
  CheckpointData data = MakeSampleData();
  ASSERT_TRUE(manager.Save(data).ok());
  EXPECT_TRUE(manager.Exists());

  auto loaded = manager.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const CheckpointData& got = loaded.value();
  EXPECT_EQ(got.spec_hash, data.spec_hash);
  EXPECT_EQ(got.algorithm, data.algorithm);
  EXPECT_EQ(got.state.completed_passes, data.state.completed_passes);
  EXPECT_EQ(got.state.step, data.state.step);
  EXPECT_EQ(got.state.w, data.state.w);
  EXPECT_EQ(got.state.iterate_sum, data.state.iterate_sum);
  EXPECT_EQ(got.state.stats.gradient_evaluations,
            data.state.stats.gradient_evaluations);
  EXPECT_EQ(got.state.stats.updates, data.state.stats.updates);
  EXPECT_EQ(got.state.order, data.state.order);
  EXPECT_EQ(got.sensitivity, data.sensitivity);
  EXPECT_TRUE(got.has_outer_rng);

  // The rng states must restore to bit-identical streams.
  Rng expected(0), actual(0);
  expected.RestoreState(data.state.rng);
  actual.RestoreState(got.state.rng);
  EXPECT_EQ(expected.Next(), actual.Next());
  EXPECT_EQ(expected.Gaussian(), actual.Gaussian());
  expected.RestoreState(data.outer_rng);
  actual.RestoreState(got.outer_rng);
  EXPECT_EQ(expected.Gaussian(), actual.Gaussian());

  ASSERT_EQ(got.ledger.size(), 2u);
  EXPECT_EQ(got.ledger[0].kind, "calibration");
  EXPECT_EQ(got.ledger[0].mechanism, "laplace");
  EXPECT_EQ(got.ledger[0].label, "bolton.sensitivity");
  EXPECT_EQ(got.ledger[0].epsilon, 1.0);
  EXPECT_EQ(got.ledger[0].sensitivity, 0.0625);
  EXPECT_TRUE(got.ledger[0].accepted);
  EXPECT_EQ(got.ledger[1].kind, "");
  EXPECT_EQ(got.ledger[1].label, "");

  ASSERT_TRUE(manager.Remove().ok());
  EXPECT_FALSE(manager.Exists());
  // Remove is idempotent.
  EXPECT_TRUE(manager.Remove().ok());
}

TEST_F(CheckpointTest, FileIsPrivateAndCarriesPrivacyMarker) {
  CheckpointManager manager(MakeCheckpointDir("ckpt_perms"));
  ASSERT_TRUE(manager.Save(MakeSampleData()).ok());

  struct stat st{};
  ASSERT_EQ(::stat(manager.path().c_str(), &st), 0);
  EXPECT_EQ(st.st_mode & 0777, 0600u)
      << "pre-noise iterates must not be world-readable";

  std::ifstream in(manager.path());
  std::string magic, marker;
  ASSERT_TRUE(std::getline(in, magic));
  ASSERT_TRUE(std::getline(in, marker));
  EXPECT_EQ(magic, "bolton-checkpoint v1");
  EXPECT_EQ(marker.find("UNRELEASED_PRIVATE"), 0u);
  // The atomic write leaves no temp file behind.
  EXPECT_NE(::access((manager.path() + ".tmp").c_str(), F_OK), 0);
}

TEST_F(CheckpointTest, LoadRejectsCorruptionAndTruncation) {
  CheckpointManager manager(MakeCheckpointDir("ckpt_corrupt"));
  ASSERT_TRUE(manager.Save(MakeSampleData()).ok());

  std::ifstream in(manager.path());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();

  // Flip one payload byte: the checksum line must catch it.
  std::string corrupt = content;
  corrupt[corrupt.find("cursor") + 7] ^= 1;
  { std::ofstream out(manager.path(), std::ios::trunc); out << corrupt; }
  auto bad = manager.Load();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos);

  // Drop the tail (as a torn non-atomic write would): also rejected.
  { std::ofstream out(manager.path(), std::ios::trunc);
    out << content.substr(0, content.size() / 2); }
  EXPECT_FALSE(manager.Load().ok());

  // Not a checkpoint at all.
  { std::ofstream out(manager.path(), std::ios::trunc); out << "hello\n"; }
  EXPECT_FALSE(manager.Load().ok());

  ASSERT_TRUE(manager.Remove().ok());
}

TEST_F(CheckpointTest, SpecHashTracksTheResumeContract) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SolverSpec spec;
  spec.passes = 4;
  spec.privacy = PrivacyParams{1.0, 0.0};
  const uint64_t base = SolverSpecHash(Algorithm::kBoltOn, spec, *loss, data);
  EXPECT_EQ(base, SolverSpecHash(Algorithm::kBoltOn, spec, *loss, data));
  EXPECT_NE(base, SolverSpecHash(Algorithm::kNoiseless, spec, *loss, data));

  SolverSpec changed = spec;
  changed.passes = 5;
  EXPECT_NE(base, SolverSpecHash(Algorithm::kBoltOn, changed, *loss, data));
  changed = spec;
  changed.privacy.epsilon = 2.0;
  EXPECT_NE(base, SolverSpecHash(Algorithm::kBoltOn, changed, *loss, data));

  auto strong = MakeLogisticLoss(0.1, 10.0).MoveValue();
  EXPECT_NE(base, SolverSpecHash(Algorithm::kBoltOn, spec, *strong, data));

  Dataset smaller = MakeTrainingSet(60);
  EXPECT_NE(base, SolverSpecHash(Algorithm::kBoltOn, spec, *loss, smaller));
}

TEST_F(CheckpointTest, UninterruptedCheckpointedRunMatchesPlainSolver) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  SolverSpec spec;
  spec.passes = 3;
  spec.batch_size = 4;
  spec.privacy = PrivacyParams{1.0, 0.0};

  for (Algorithm algorithm : {Algorithm::kNoiseless, Algorithm::kBoltOn}) {
    Rng plain_rng(17), ckpt_rng(17);
    auto plain = RunPrivateSolver(algorithm, data, *loss, spec, &plain_rng);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    CheckpointOptions options;
    options.dir = MakeCheckpointDir("ckpt_uninterrupted");
    auto checkpointed = RunSolverWithCheckpoints(algorithm, data, *loss, spec,
                                                 &ckpt_rng, options);
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.status().ToString();
    EXPECT_EQ(plain.value().model, checkpointed.value().model)
        << "algorithm " << AlgorithmName(algorithm);
    EXPECT_EQ(plain.value().sensitivity, checkpointed.value().sensitivity);
    // A successful run removes its checkpoint: it holds pre-noise state.
    EXPECT_FALSE(CheckpointManager(options.dir).Exists());
  }
}

TEST_F(CheckpointTest, ResumeAfterInjectedCrashIsBitIdentical) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SolverSpec spec;
  spec.passes = 4;
  spec.batch_size = 4;
  spec.privacy = PrivacyParams{0.5, 0.0};

  for (Algorithm algorithm : {Algorithm::kNoiseless, Algorithm::kBoltOn}) {
    Rng plain_rng(23);
    auto plain = RunPrivateSolver(algorithm, data, *loss, spec, &plain_rng);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    CheckpointOptions options;
    options.dir = MakeCheckpointDir("ckpt_resume");

    // "Crash" when pass 3 begins: passes 1 and 2 are checkpointed.
    ASSERT_TRUE(
        FailpointRegistry::Default().Configure("psgd.pass:error@3").ok());
    Rng crash_rng(23);
    auto crashed = RunSolverWithCheckpoints(algorithm, data, *loss, spec,
                                            &crash_rng, options);
    FailpointRegistry::Default().Clear();
    ASSERT_FALSE(crashed.ok());
    EXPECT_NE(crashed.status().message().find("failpoint"),
              std::string::npos);
    ASSERT_TRUE(CheckpointManager(options.dir).Exists());

    // Resume in a fresh "process" (fresh rng object; its seed is irrelevant
    // because every stream is restored from the checkpoint).
    options.resume = true;
    Rng resume_rng(99);
    auto resumed = RunSolverWithCheckpoints(algorithm, data, *loss, spec,
                                            &resume_rng, options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(plain.value().model, resumed.value().model)
        << "algorithm " << AlgorithmName(algorithm);
    EXPECT_FALSE(CheckpointManager(options.dir).Exists());
  }
}

TEST_F(CheckpointTest, ResumeKeepsLedgerContinuousWithOneNoiseDraw) {
  obs::PrivacyLedger::Default().Clear();
  obs::PrivacyLedger::Default().SetEnabled(true);

  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  SolverSpec spec;
  spec.passes = 3;
  spec.batch_size = 4;
  spec.privacy = PrivacyParams{1.0, 0.0};

  CheckpointOptions options;
  options.dir = MakeCheckpointDir("ckpt_ledger");

  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("psgd.pass:error@2").ok());
  Rng crash_rng(31);
  ASSERT_FALSE(RunSolverWithCheckpoints(Algorithm::kBoltOn, data, *loss, spec,
                                        &crash_rng, options)
                   .ok());
  FailpointRegistry::Default().Clear();

  options.resume = true;
  Rng resume_rng(31);
  auto resumed = RunSolverWithCheckpoints(Algorithm::kBoltOn, data, *loss,
                                          spec, &resume_rng, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  size_t calibrations = 0, noise_draws = 0, checkpoints = 0, resumes = 0;
  uint64_t last_seq = 0;
  for (const obs::LedgerEvent& event :
       obs::PrivacyLedger::Default().Snapshot()) {
    EXPECT_GT(event.seq, last_seq) << "ledger seq must stay monotone";
    last_seq = event.seq;
    if (event.kind == "calibration") ++calibrations;
    if (event.kind == "noise_draw") ++noise_draws;
    if (event.kind == "checkpoint") ++checkpoints;
    if (event.kind == "resume") ++resumes;
  }
  // One calibration (reused on resume, not re-recorded), exactly one noise
  // draw (the single release), and a continuous audit trail across the
  // crash.
  EXPECT_EQ(calibrations, 1u);
  EXPECT_EQ(noise_draws, 1u);
  EXPECT_GE(checkpoints, 1u);
  EXPECT_EQ(resumes, 1u);
}

TEST_F(CheckpointTest, ResumeRejectsChangedSpec) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SolverSpec spec;
  spec.passes = 3;
  spec.batch_size = 4;
  spec.privacy = PrivacyParams{1.0, 0.0};

  CheckpointOptions options;
  options.dir = MakeCheckpointDir("ckpt_mismatch");

  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("psgd.pass:error@2").ok());
  Rng crash_rng(37);
  ASSERT_FALSE(RunSolverWithCheckpoints(Algorithm::kBoltOn, data, *loss, spec,
                                        &crash_rng, options)
                   .ok());
  FailpointRegistry::Default().Clear();

  // Resuming under a different privacy budget would mis-calibrate the
  // release: hard FailedPrecondition, not a silent retrain.
  options.resume = true;
  SolverSpec changed = spec;
  changed.privacy.epsilon = 2.0;
  Rng resume_rng(37);
  auto mismatch = RunSolverWithCheckpoints(Algorithm::kBoltOn, data, *loss,
                                           changed, &resume_rng, options);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatch.status().message().find("refusing to resume"),
            std::string::npos);

  // The original spec still resumes fine.
  auto resumed = RunSolverWithCheckpoints(Algorithm::kBoltOn, data, *loss,
                                          spec, &resume_rng, options);
  EXPECT_TRUE(resumed.ok()) << resumed.status().ToString();
}

TEST_F(CheckpointTest, ResumeWithoutCheckpointFails) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SolverSpec spec;
  CheckpointOptions options;
  options.dir = MakeCheckpointDir("ckpt_missing");
  options.resume = true;
  Rng rng(41);
  EXPECT_FALSE(RunSolverWithCheckpoints(Algorithm::kNoiseless, data, *loss,
                                        spec, &rng, options)
                   .ok());
}

TEST_F(CheckpointTest, RejectsWhiteBoxAlgorithmsAndShardedRuns) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SolverSpec spec;
  spec.privacy = PrivacyParams{1.0, 1e-6};
  CheckpointOptions options;
  options.dir = MakeCheckpointDir("ckpt_reject");
  Rng rng(43);

  for (Algorithm algorithm :
       {Algorithm::kScs13, Algorithm::kBst14, Algorithm::kObjective}) {
    auto run =
        RunSolverWithCheckpoints(algorithm, data, *loss, spec, &rng, options);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument)
        << AlgorithmName(algorithm);
  }

  SolverSpec sharded = spec;
  sharded.shards = 2;
  EXPECT_FALSE(RunSolverWithCheckpoints(Algorithm::kNoiseless, data, *loss,
                                        sharded, &rng, options)
                   .ok());
}

TEST_F(CheckpointTest, InjectedSaveFailureSurfacesWithContext) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  SolverSpec spec;
  spec.passes = 3;
  spec.batch_size = 4;
  CheckpointOptions options;
  options.dir = MakeCheckpointDir("ckpt_savefail");

  ASSERT_TRUE(
      FailpointRegistry::Default().Configure("checkpoint.save:error").ok());
  Rng rng(47);
  auto run = RunSolverWithCheckpoints(Algorithm::kNoiseless, data, *loss,
                                      spec, &rng, options);
  FailpointRegistry::Default().Clear();
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("checkpoint sink"), std::string::npos)
      << run.status().ToString();
}

}  // namespace
}  // namespace bolton
