#include "optim/schedule.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ConstantStepTest, AlwaysSameValue) {
  auto schedule = MakeConstantStep(0.25).MoveValue();
  EXPECT_DOUBLE_EQ(schedule->StepSize(1), 0.25);
  EXPECT_DOUBLE_EQ(schedule->StepSize(1000000), 0.25);
  EXPECT_DOUBLE_EQ(schedule->MaxStepSize(), 0.25);
}

TEST(ConstantStepTest, RejectsNonPositive) {
  EXPECT_FALSE(MakeConstantStep(0.0).ok());
  EXPECT_FALSE(MakeConstantStep(-1.0).ok());
}

TEST(InverseTimeStepTest, MatchesMinFormula) {
  // Algorithm 2: η_t = min(1/β, 1/(γt)).
  const double gamma = 0.01, beta = 2.0;
  auto schedule = MakeInverseTimeStep(gamma, beta).MoveValue();
  // Early iterations are capped by 1/β.
  EXPECT_DOUBLE_EQ(schedule->StepSize(1), 0.5);
  EXPECT_DOUBLE_EQ(schedule->StepSize(10), 0.5);
  // After t > β/γ = 200, 1/(γt) takes over.
  EXPECT_DOUBLE_EQ(schedule->StepSize(1000), 1.0 / (gamma * 1000));
  EXPECT_DOUBLE_EQ(schedule->MaxStepSize(), 0.5);
}

TEST(InverseTimeStepTest, InfiniteBetaIsPureInverseTime) {
  // Table 4's noiseless strongly convex schedule 1/(γt).
  auto schedule = MakeInverseTimeStep(0.5, kInf).MoveValue();
  EXPECT_DOUBLE_EQ(schedule->StepSize(1), 2.0);
  EXPECT_DOUBLE_EQ(schedule->StepSize(4), 0.5);
}

TEST(InverseSqrtStepTest, MatchesFormula) {
  auto schedule = MakeInverseSqrtStep(2.0).MoveValue();
  EXPECT_DOUBLE_EQ(schedule->StepSize(1), 2.0);
  EXPECT_DOUBLE_EQ(schedule->StepSize(4), 1.0);
  EXPECT_DOUBLE_EQ(schedule->StepSize(100), 0.2);
}

TEST(DecreasingStepTest, MatchesCorollary2Formula) {
  // η_t = 2/(β(t + m^c)).
  const double beta = 1.0, c = 0.5;
  const size_t m = 100;
  auto schedule = MakeDecreasingStep(beta, m, c).MoveValue();
  EXPECT_DOUBLE_EQ(schedule->StepSize(1), 2.0 / (1.0 + 10.0));
  EXPECT_DOUBLE_EQ(schedule->StepSize(90), 2.0 / (90.0 + 10.0));
}

TEST(SqrtOffsetStepTest, MatchesCorollary3Formula) {
  // η_t = 2/(β(√t + m^c)).
  const double beta = 2.0, c = 0.5;
  const size_t m = 100;
  auto schedule = MakeSqrtOffsetStep(beta, m, c).MoveValue();
  EXPECT_DOUBLE_EQ(schedule->StepSize(4), 2.0 / (2.0 * (2.0 + 10.0)));
}

TEST(ScheduleValidationTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeInverseTimeStep(0.0, 1.0).ok());
  EXPECT_FALSE(MakeInverseTimeStep(1.0, 0.0).ok());
  EXPECT_FALSE(MakeInverseSqrtStep(0.0).ok());
  EXPECT_FALSE(MakeDecreasingStep(0.0, 100, 0.5).ok());
  EXPECT_FALSE(MakeDecreasingStep(1.0, 0, 0.5).ok());
  EXPECT_FALSE(MakeDecreasingStep(1.0, 100, 1.0).ok());
  EXPECT_FALSE(MakeDecreasingStep(1.0, 100, -0.1).ok());
  EXPECT_FALSE(MakeSqrtOffsetStep(1.0, 100, 1.5).ok());
}

TEST(ScheduleTest, DecreasingSchedulesAreMonotone) {
  std::vector<std::unique_ptr<StepSizeSchedule>> schedules;
  schedules.push_back(MakeInverseTimeStep(0.1, 1.0).MoveValue());
  schedules.push_back(MakeInverseSqrtStep(1.0).MoveValue());
  schedules.push_back(MakeDecreasingStep(1.0, 100, 0.5).MoveValue());
  schedules.push_back(MakeSqrtOffsetStep(1.0, 100, 0.5).MoveValue());
  for (const auto& s : schedules) {
    for (size_t t = 1; t < 100; ++t) {
      EXPECT_GE(s->StepSize(t), s->StepSize(t + 1)) << s->name() << " t=" << t;
    }
    EXPECT_DOUBLE_EQ(s->MaxStepSize(), s->StepSize(1)) << s->name();
  }
}

TEST(ScheduleTest, CloneIsEquivalent) {
  auto schedule = MakeInverseTimeStep(0.1, 2.0).MoveValue();
  auto clone = schedule->Clone();
  for (size_t t = 1; t <= 50; ++t) {
    EXPECT_DOUBLE_EQ(schedule->StepSize(t), clone->StepSize(t));
  }
  EXPECT_EQ(schedule->name(), clone->name());
}

}  // namespace
}  // namespace bolton
