// End-to-end reproduction checks of the paper's headline claims, at small
// scale with fixed seeds. These are statistical claims, so thresholds are
// deliberately loose and averaged over a few seeds; they verify *shape*
// (who wins), not absolute numbers.
#include <gtest/gtest.h>

#include "data/projection.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/trainer.h"

namespace bolton {
namespace {

double MeanAccuracy(const Dataset& train, const Dataset& test,
                    const TrainerConfig& config, int repeats,
                    uint64_t seed_base) {
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Rng rng(seed_base + r);
    auto model = TrainBinary(train, config, &rng);
    if (!model.ok()) ADD_FAILURE() << model.status().ToString();
    total += BinaryAccuracy(model.value(), test);
  }
  return total / repeats;
}

class HeadlineClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto split = GenerateProteinLike(0.25, 191);
    split.status().CheckOK();
    train_ = new Dataset(split.value().first);
    test_ = new Dataset(split.value().second);
  }
  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    train_ = test_ = nullptr;
  }

  static Dataset* train_;
  static Dataset* test_;
};

Dataset* HeadlineClaims::train_ = nullptr;
Dataset* HeadlineClaims::test_ = nullptr;

// Claim (Figure 3): at a small ε, the bolt-on method beats SCS13 in the
// convex ε-DP setting.
TEST_F(HeadlineClaims, BoltOnBeatsScs13AtSmallEpsilonConvex) {
  TrainerConfig base;
  base.lambda = 0.0;
  base.passes = 10;
  base.batch_size = 50;
  base.privacy = PrivacyParams{0.05, 0.0};

  TrainerConfig ours = base;
  ours.algorithm = Algorithm::kBoltOn;
  TrainerConfig scs13 = base;
  scs13.algorithm = Algorithm::kScs13;

  double ours_acc = MeanAccuracy(*train_, *test_, ours, 5, 11);
  double scs13_acc = MeanAccuracy(*train_, *test_, scs13, 5, 22);
  EXPECT_GT(ours_acc, scs13_acc);
}

// Claim (Figure 3, tests 2/4): at small ε with δ > 0, the bolt-on method
// beats both white-box baselines.
TEST_F(HeadlineClaims, BoltOnBeatsBothBaselinesApproxDp) {
  TrainerConfig base;
  base.lambda = 0.01;  // the tuned value; γ = λ enters Δ₂ = 2L/(γmb)
  base.passes = 10;
  base.batch_size = 50;
  const double m = static_cast<double>(train_->size());
  base.privacy = PrivacyParams{0.05, 1.0 / (m * m)};

  TrainerConfig ours = base;
  ours.algorithm = Algorithm::kBoltOn;
  TrainerConfig scs13 = base;
  scs13.algorithm = Algorithm::kScs13;
  TrainerConfig bst14 = base;
  bst14.algorithm = Algorithm::kBst14;

  double ours_acc = MeanAccuracy(*train_, *test_, ours, 5, 33);
  double scs13_acc = MeanAccuracy(*train_, *test_, scs13, 5, 44);
  double bst14_acc = MeanAccuracy(*train_, *test_, bst14, 5, 55);
  EXPECT_GT(ours_acc, scs13_acc);
  EXPECT_GT(ours_acc, bst14_acc);
}

// Claim (§4.5 and Figure 3): the bolt-on method converges to noiseless
// accuracy as ε grows.
TEST_F(HeadlineClaims, BoltOnApproachesNoiselessAsEpsilonGrows) {
  TrainerConfig noiseless;
  noiseless.algorithm = Algorithm::kNoiseless;
  noiseless.passes = 10;
  noiseless.batch_size = 50;
  double clean = MeanAccuracy(*train_, *test_, noiseless, 1, 66);

  TrainerConfig ours = noiseless;
  ours.algorithm = Algorithm::kBoltOn;
  ours.privacy = PrivacyParams{4.0, 0.0};
  double at_large_eps = MeanAccuracy(*train_, *test_, ours, 5, 77);
  EXPECT_GT(clean, 0.85);
  EXPECT_GT(at_large_eps, clean - 0.08);
}

// Claim (Figure 4a vs 4b): more passes hurt the convex bolt-on accuracy
// (noise grows with k) but do not increase noise in the strongly convex
// case.
TEST_F(HeadlineClaims, PassCountEffectMatchesTheory) {
  // Convex: compare noise magnitude through sensitivity (deterministic).
  TrainerConfig convex;
  convex.algorithm = Algorithm::kBoltOn;
  convex.lambda = 0.0;
  convex.batch_size = 1;
  convex.privacy = PrivacyParams{1.0, 0.0};

  // Strongly convex: accuracy with 10 passes should not be materially worse
  // than with 1 pass (usually better, since convergence improves).
  TrainerConfig strong = convex;
  strong.lambda = 1e-3;
  strong.batch_size = 50;
  strong.passes = 1;
  double one_pass = MeanAccuracy(*train_, *test_, strong, 5, 88);
  strong.passes = 10;
  double ten_pass = MeanAccuracy(*train_, *test_, strong, 5, 99);
  EXPECT_GT(ten_pass, one_pass - 0.05);
}

// Claim (Figure 4c / Appendix D): enlarging the mini-batch reduces noise
// and drastically improves convex accuracy at fixed ε and k.
TEST_F(HeadlineClaims, MiniBatchingRescuesConvexAccuracy) {
  TrainerConfig config;
  config.algorithm = Algorithm::kBoltOn;
  config.lambda = 0.0;
  config.passes = 20;
  config.privacy = PrivacyParams{0.2, 0.0};

  config.batch_size = 1;
  double b1 = MeanAccuracy(*train_, *test_, config, 5, 111);
  config.batch_size = 50;
  double b50 = MeanAccuracy(*train_, *test_, config, 5, 222);
  EXPECT_GT(b50, b1 + 0.05);
}

// Random projection preserves enough signal to learn (the MNIST strategy):
// project the 784-dim MNIST stand-in to 50 dims and train one-vs-all.
TEST(ProjectionIntegrationTest, MnistLikeProjectedOvaLearns) {
  MnistLikeSpec spec;
  spec.scale = 0.02;  // 1200 train examples
  spec.seed = 192;
  auto split = GenerateMnistLike(spec);
  ASSERT_TRUE(split.ok());
  auto projection = GaussianRandomProjection::Create(784, 50, 5).MoveValue();
  Dataset train = projection.Apply(split.value().first).MoveValue();
  Dataset test = projection.Apply(split.value().second).MoveValue();

  TrainerConfig config;
  config.algorithm = Algorithm::kNoiseless;
  config.passes = 30;
  config.batch_size = 5;
  Rng rng(6);
  auto model = TrainMulticlass(train, config, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(MulticlassAccuracy(model.value(), test), 0.6);
}

}  // namespace
}  // namespace bolton
