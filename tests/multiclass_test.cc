#include "core/multiclass.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/trainer.h"

namespace bolton {
namespace {

Dataset MakeMulticlassData(size_t m = 1200, uint64_t seed = 151) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 12;
  config.num_classes = 4;
  config.margin = 3.0;
  config.noise_stddev = 0.6;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(MulticlassModelTest, PredictIsArgmax) {
  MulticlassModel model;
  model.weights = {Vector{1.0, 0.0}, Vector{0.0, 1.0}, Vector{-1.0, -1.0}};
  EXPECT_EQ(model.Predict(Vector{2.0, 0.1}), 0);
  EXPECT_EQ(model.Predict(Vector{0.1, 2.0}), 1);
  EXPECT_EQ(model.Predict(Vector{-3.0, -3.0}), 2);
  EXPECT_EQ(model.num_classes(), 3);
}

TEST(TrainOneVsAllTest, SplitsBudgetEvenly) {
  Dataset data = MakeMulticlassData();
  std::vector<double> budgets_seen;
  BinaryTrainFn record = [&](const Dataset& binary,
                             const PrivacyParams& budget,
                             Rng*) -> Result<Vector> {
    budgets_seen.push_back(budget.epsilon);
    EXPECT_EQ(binary.num_classes(), 2);
    return Vector(binary.dim());
  };
  Rng rng(1);
  auto model = TrainOneVsAll(data, PrivacyParams{2.0, 4e-6}, record, &rng);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(budgets_seen.size(), 4u);
  for (double eps : budgets_seen) EXPECT_DOUBLE_EQ(eps, 0.5);
  EXPECT_EQ(model.value().num_classes(), 4);
}

TEST(TrainOneVsAllTest, BinaryViewsHaveCorrectPolarity) {
  Dataset data = MakeMulticlassData(400, 152);
  int call = 0;
  BinaryTrainFn check = [&](const Dataset& binary, const PrivacyParams&,
                            Rng*) -> Result<Vector> {
    size_t positives = 0;
    for (size_t i = 0; i < binary.size(); ++i) {
      EXPECT_TRUE(binary[i].label == +1 || binary[i].label == -1);
      if (binary[i].label == +1) ++positives;
    }
    // Roughly a quarter of a 4-class balanced set is the positive class.
    EXPECT_GT(positives, binary.size() / 8);
    EXPECT_LT(positives, binary.size() / 2);
    ++call;
    return Vector(binary.dim());
  };
  Rng rng(2);
  ASSERT_TRUE(TrainOneVsAll(data, PrivacyParams{1.0, 0.0}, check, &rng).ok());
  EXPECT_EQ(call, 4);
}

TEST(TrainOneVsAllTest, NoiselessLearnsSeparableMulticlass) {
  Dataset data = MakeMulticlassData();
  TrainerConfig config;
  config.algorithm = Algorithm::kNoiseless;
  config.passes = 10;
  config.batch_size = 10;
  Rng rng(3);
  auto model = TrainMulticlass(data, config, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(MulticlassAccuracy(model.value(), data), 0.85);
}

TEST(TrainOneVsAllTest, PrivateTrainingAtLargeEpsilonStaysAccurate) {
  Dataset data = MakeMulticlassData();
  TrainerConfig config;
  config.algorithm = Algorithm::kBoltOn;
  config.lambda = 1e-3;
  config.passes = 10;
  config.batch_size = 50;
  config.privacy = PrivacyParams{40.0, 0.0};  // 10 per class
  Rng rng(4);
  auto model = TrainMulticlass(data, config, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(MulticlassAccuracy(model.value(), data), 0.7);
}

TEST(TrainOneVsAllTest, ParallelTrainingIsBitIdenticalToSerial) {
  Dataset data = MakeMulticlassData(600, 154);
  TrainerConfig config;
  config.algorithm = Algorithm::kBoltOn;
  config.lambda = 1e-3;
  config.passes = 3;
  config.batch_size = 20;
  config.privacy = PrivacyParams{8.0, 0.0};

  Rng rng_serial(6);
  auto serial = TrainMulticlass(data, config, &rng_serial);
  config.training_threads = 3;
  Rng rng_parallel(6);
  auto parallel = TrainMulticlass(data, config, &rng_parallel);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial.value().num_classes(), parallel.value().num_classes());
  for (int c = 0; c < serial.value().num_classes(); ++c) {
    EXPECT_EQ(serial.value().weights[c], parallel.value().weights[c])
        << "class " << c;
  }
}

TEST(TrainOneVsAllTest, ParallelPropagatesSubTrainerErrors) {
  Dataset data = MakeMulticlassData(200, 155);
  BinaryTrainFn failing = [](const Dataset&, const PrivacyParams&,
                             Rng*) -> Result<Vector> {
    return Status::Internal("boom");
  };
  Rng rng(7);
  auto out = TrainOneVsAll(data, PrivacyParams{1.0, 0.0}, failing, &rng,
                           /*threads=*/4);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST(TrainOneVsAllTest, Validation) {
  Dataset data = MakeMulticlassData(200, 153);
  Rng rng(5);
  BinaryTrainFn ok_fn = [](const Dataset& d, const PrivacyParams&,
                           Rng*) -> Result<Vector> { return Vector(d.dim()); };
  EXPECT_FALSE(TrainOneVsAll(data, PrivacyParams{0.0, 0.0}, ok_fn, &rng).ok());
  EXPECT_FALSE(TrainOneVsAll(data, PrivacyParams{1.0, 0.0}, nullptr, &rng).ok());

  BinaryTrainFn failing = [](const Dataset&, const PrivacyParams&,
                             Rng*) -> Result<Vector> {
    return Status::Internal("sub-trainer failed");
  };
  EXPECT_FALSE(
      TrainOneVsAll(data, PrivacyParams{1.0, 0.0}, failing, &rng).ok());
}

}  // namespace
}  // namespace bolton
