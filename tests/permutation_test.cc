#include "random/permutation.h"

#include <algorithm>
#include <map>
#include <numeric>

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(PermutationTest, IsAPermutation) {
  Rng rng(41);
  for (size_t n : {1u, 2u, 7u, 100u}) {
    std::vector<size_t> perm = RandomPermutation(n, &rng);
    ASSERT_EQ(perm.size(), n);
    std::vector<size_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(PermutationTest, EmptyAndSingleton) {
  Rng rng(42);
  EXPECT_TRUE(RandomPermutation(0, &rng).empty());
  EXPECT_EQ(RandomPermutation(1, &rng), (std::vector<size_t>{0}));
}

TEST(PermutationTest, AllOrderingsReachable) {
  // For n=3 every one of the 6 orderings should appear with roughly equal
  // frequency — a direct uniformity check of Fisher–Yates.
  Rng rng(43);
  std::map<std::vector<size_t>, int> counts;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    ++counts[RandomPermutation(3, &rng)];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 1.0 / 6.0, 0.01);
  }
}

TEST(PermutationTest, FirstPositionUniform) {
  Rng rng(44);
  const size_t n = 10;
  std::vector<int> first_counts(n, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    ++first_counts[RandomPermutation(n, &rng)[0]];
  }
  for (int c : first_counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

TEST(ShuffleInPlaceTest, PreservesMultiset) {
  Rng rng(45);
  std::vector<int> items{5, 5, 1, 2, 3};
  std::vector<int> original = items;
  ShuffleInPlace(&items, &rng);
  std::sort(items.begin(), items.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(items, original);
}

TEST(ShuffleInPlaceTest, SmallInputsAreNoOps) {
  Rng rng(46);
  std::vector<int> empty;
  ShuffleInPlace(&empty, &rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  ShuffleInPlace(&one, &rng);
  EXPECT_EQ(one, (std::vector<int>{9}));
}

}  // namespace
}  // namespace bolton
