#include "linalg/sparse_vector.h"

#include <cstdio>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "data/loaders.h"
#include "data/sparse_dataset.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/sparse_psgd.h"
#include "optim/schedule.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SparseVectorTest, FromEntriesValidatesAndSorts) {
  auto v = SparseVector::FromEntries(5, {{3, 1.0}, {0, 2.0}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().nnz(), 2u);
  EXPECT_EQ(v.value().entries()[0].first, 0u);  // sorted
  EXPECT_EQ(v.value().entries()[1].first, 3u);

  EXPECT_FALSE(SparseVector::FromEntries(5, {{5, 1.0}}).ok());  // range
  EXPECT_FALSE(
      SparseVector::FromEntries(5, {{1, 1.0}, {1, 2.0}}).ok());  // dup
  // Explicit zeros are dropped, not stored.
  auto with_zero = SparseVector::FromEntries(5, {{1, 0.0}, {2, 3.0}});
  ASSERT_TRUE(with_zero.ok());
  EXPECT_EQ(with_zero.value().nnz(), 1u);
}

TEST(SparseVectorTest, DenseRoundTrip) {
  Vector dense{0.0, 1.5, 0.0, -2.0};
  SparseVector sparse = SparseVector::FromDense(dense);
  EXPECT_EQ(sparse.nnz(), 2u);
  EXPECT_EQ(sparse.ToDense(), dense);
}

TEST(SparseVectorTest, FromDenseThreshold) {
  Vector dense{0.01, 1.0, -0.005};
  SparseVector sparse = SparseVector::FromDense(dense, 0.05);
  EXPECT_EQ(sparse.nnz(), 1u);
  EXPECT_DOUBLE_EQ(sparse.ToDense()[1], 1.0);
}

TEST(SparseVectorTest, KernelsMatchDense) {
  Vector dense{0.0, 1.5, 0.0, -2.0, 0.25};
  SparseVector sparse = SparseVector::FromDense(dense);
  Vector other{1.0, 2.0, 3.0, 4.0, 5.0};

  EXPECT_DOUBLE_EQ(Dot(sparse, other), Dot(dense, other));
  EXPECT_DOUBLE_EQ(sparse.Norm(), dense.Norm());

  Vector acc_sparse(5), acc_dense(5);
  sparse.AxpyInto(0.5, &acc_sparse);
  acc_dense.Axpy(0.5, dense);
  EXPECT_EQ(acc_sparse, acc_dense);

  sparse.Scale(2.0);
  EXPECT_EQ(sparse.ToDense(), 2.0 * dense);
}

TEST(SparseDatasetTest, DenseRoundTripAndStats) {
  SyntheticConfig config;
  config.num_examples = 50;
  config.dim = 6;
  config.seed = 251;
  Dataset dense = GenerateSynthetic(config).MoveValue();
  SparseDataset sparse = SparseDataset::FromDense(dense);
  EXPECT_EQ(sparse.size(), dense.size());
  EXPECT_EQ(sparse.dim(), dense.dim());
  EXPECT_GT(sparse.AverageNnz(), 0.0);
  Dataset back = sparse.ToDense();
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(back[i].x, dense[i].x);
    EXPECT_EQ(back[i].label, dense[i].label);
  }
}

TEST(SparseDatasetTest, NormalizeToUnitBall) {
  SparseDataset ds(3, 2);
  ds.Add(SparseExample{
      SparseVector::FromEntries(3, {{0, 3.0}, {2, 4.0}}).MoveValue(), +1});
  ds.NormalizeToUnitBall();
  EXPECT_NEAR(ds[0].x.Norm(), 1.0, 1e-12);
}

TEST(SparseLoaderTest, KeepsSparsityAndMatchesDenseLoader) {
  std::string path = ::testing::TempDir() + "sparse_loader_test.libsvm";
  {
    std::ofstream out(path);
    out << "1 2:0.5 100:1.0\n-1 1:0.25\n# comment\n1 50:2.0\n";
  }
  auto sparse = LoadLibsvmSparse(path);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse.value().size(), 3u);
  EXPECT_EQ(sparse.value().dim(), 100u);
  EXPECT_EQ(sparse.value()[0].x.nnz(), 2u);
  // Densifying reproduces the dense loader's output.
  auto dense = LoadLibsvm(path);
  ASSERT_TRUE(dense.ok());
  Dataset densified = sparse.value().ToDense();
  for (size_t i = 0; i < dense.value().size(); ++i) {
    EXPECT_EQ(densified[i].x, dense.value()[i].x);
    EXPECT_EQ(densified[i].label, dense.value()[i].label);
  }
  std::remove(path.c_str());
}

TEST(SparseLoaderTest, RejectsMalformedInput) {
  std::string path = ::testing::TempDir() + "sparse_loader_bad.libsvm";
  {
    std::ofstream out(path);
    out << "1 0:0.5\n";  // 0-based index
  }
  EXPECT_FALSE(LoadLibsvmSparse(path).ok());
  std::remove(path.c_str());
}

// The headline property: the sparse engine is BIT-FOR-BIT the dense engine
// on densified data with the same seed, so every sensitivity bound (and
// the bolt-on wrapper) transfers unchanged.
TEST(SparsePsgdTest, BitExactWithDenseEngineConvex) {
  SyntheticConfig config;
  config.num_examples = 300;
  config.dim = 12;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = 252;
  Dataset dense = GenerateSynthetic(config).MoveValue();
  SparseDataset sparse = SparseDataset::FromDense(dense);

  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 3;
  options.batch_size = 7;

  Rng rng_dense(9), rng_sparse(9);
  auto dense_run = RunPsgd(dense, *loss, *schedule, options, &rng_dense);
  auto sparse_run =
      RunSparseLogisticPsgd(sparse, 0.0, *schedule, options, &rng_sparse);
  ASSERT_TRUE(dense_run.ok() && sparse_run.ok());
  EXPECT_EQ(dense_run.value().model, sparse_run.value().model);
  EXPECT_EQ(dense_run.value().stats.updates,
            sparse_run.value().stats.updates);
}

TEST(SparsePsgdTest, BitExactWithDenseEngineRegularizedProjected) {
  SyntheticConfig config;
  config.num_examples = 200;
  config.dim = 10;
  config.seed = 253;
  Dataset dense = GenerateSynthetic(config).MoveValue();
  SparseDataset sparse = SparseDataset::FromDense(dense);

  const double lambda = 0.05;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  auto schedule =
      MakeInverseTimeStep(loss->strong_convexity(), loss->smoothness())
          .MoveValue();
  PsgdOptions options;
  options.passes = 2;
  options.batch_size = 5;
  options.radius = loss->radius();

  Rng rng_dense(11), rng_sparse(11);
  auto dense_run = RunPsgd(dense, *loss, *schedule, options, &rng_dense);
  auto sparse_run = RunSparseLogisticPsgd(sparse, lambda, *schedule, options,
                                          &rng_sparse);
  ASSERT_TRUE(dense_run.ok() && sparse_run.ok());
  EXPECT_EQ(dense_run.value().model, sparse_run.value().model);
}

TEST(SparsePsgdTest, LearnsOnGenuinelySparseData) {
  // High-dimensional data where each example touches few coordinates —
  // the workload the sparse path exists for.
  const size_t dim = 500;
  SparseDataset ds(dim, 2);
  Rng gen(13);
  for (int i = 0; i < 400; ++i) {
    // Positive examples activate low indices, negatives high indices.
    bool positive = (i % 2 == 0);
    std::vector<SparseVector::Entry> entries;
    for (int f = 0; f < 5; ++f) {
      size_t index = gen.UniformInt(dim / 2) + (positive ? 0 : dim / 2);
      bool duplicate = false;
      for (const auto& e : entries) duplicate |= (e.first == index);
      if (!duplicate) entries.emplace_back(index, 0.4);
    }
    ds.Add(SparseExample{
        SparseVector::FromEntries(dim, std::move(entries)).MoveValue(),
        positive ? +1 : -1});
  }
  ds.NormalizeToUnitBall();
  EXPECT_LT(ds.AverageNnz(), 6.0);  // ~1% density

  auto schedule = MakeConstantStep(0.5).MoveValue();
  PsgdOptions options;
  options.passes = 5;
  Rng rng(14);
  auto run = RunSparseLogisticPsgd(ds, 0.0, *schedule, options, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(BinaryAccuracy(run.value().model, ds.ToDense()), 0.95);
}

TEST(SparsePsgdTest, Validation) {
  SparseDataset empty(10, 2);
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  Rng rng(15);
  EXPECT_FALSE(
      RunSparseLogisticPsgd(empty, 0.0, *schedule, options, &rng).ok());

  SparseDataset ds(4, 2);
  ds.Add(SparseExample{SparseVector::FromDense(Vector{1.0, 0, 0, 0}), +1});
  EXPECT_FALSE(
      RunSparseLogisticPsgd(ds, -1.0, *schedule, options, &rng).ok());
  options.sampling = SamplingMode::kWithReplacement;
  EXPECT_EQ(
      RunSparseLogisticPsgd(ds, 0.0, *schedule, options, &rng).status().code(),
      StatusCode::kNotImplemented);
}

}  // namespace
}  // namespace bolton
