#include "data/projection.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "random/distributions.h"

namespace bolton {
namespace {

TEST(RandomProjectionTest, DimensionsCorrect) {
  auto projection = GaussianRandomProjection::Create(784, 50, 1);
  ASSERT_TRUE(projection.ok());
  EXPECT_EQ(projection.value().input_dim(), 784u);
  EXPECT_EQ(projection.value().output_dim(), 50u);
  Rng rng(2);
  Vector x = SampleUnitSphere(784, &rng);
  EXPECT_EQ(projection.value().Apply(x).dim(), 50u);
}

TEST(RandomProjectionTest, InvalidDimensionsRejected) {
  EXPECT_FALSE(GaussianRandomProjection::Create(0, 50, 1).ok());
  EXPECT_FALSE(GaussianRandomProjection::Create(784, 0, 1).ok());
}

TEST(RandomProjectionTest, ApproximatelyPreservesNorms) {
  // Johnson–Lindenstrauss: with T entries N(0, 1/k), E‖Tx‖² = ‖x‖². Check
  // the average over many unit vectors is near 1.
  auto projection = GaussianRandomProjection::Create(200, 50, 3);
  ASSERT_TRUE(projection.ok());
  Rng rng(4);
  const int n = 2000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    Vector x = SampleUnitSphere(200, &rng);
    sum += projection.value().Apply(x).SquaredNorm();
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RandomProjectionTest, SameSeedSameMap) {
  auto a = GaussianRandomProjection::Create(20, 5, 42);
  auto b = GaussianRandomProjection::Create(20, 5, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  Rng rng(5);
  Vector x = SampleUnitSphere(20, &rng);
  EXPECT_EQ(a.value().Apply(x), b.value().Apply(x));
}

TEST(RandomProjectionTest, DatasetProjectionKeepsLabelsAndNormalizes) {
  SyntheticConfig config;
  config.num_examples = 100;
  config.dim = 100;
  config.seed = 6;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto projection = GaussianRandomProjection::Create(100, 10, 7);
  ASSERT_TRUE(projection.ok());
  auto projected = projection.value().Apply(ds.value());
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().dim(), 10u);
  EXPECT_EQ(projected.value().size(), ds.value().size());
  EXPECT_LE(projected.value().MaxFeatureNorm(), 1.0 + 1e-12);
  for (size_t i = 0; i < ds.value().size(); ++i) {
    EXPECT_EQ(projected.value()[i].label, ds.value()[i].label);
  }
}

TEST(RandomProjectionTest, DimensionMismatchRejected) {
  SyntheticConfig config;
  config.num_examples = 10;
  config.dim = 30;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto projection = GaussianRandomProjection::Create(100, 10, 7);
  ASSERT_TRUE(projection.ok());
  EXPECT_FALSE(projection.value().Apply(ds.value()).ok());
}

// Neighboring datasets stay neighboring under a data-independent T — the
// privacy-preservation property of §2 ("Random Projection").
TEST(RandomProjectionTest, NeighboringDatasetsStayNeighboring) {
  SyntheticConfig config;
  config.num_examples = 50;
  config.dim = 40;
  config.seed = 8;
  auto base = GenerateSynthetic(config);
  ASSERT_TRUE(base.ok());
  Dataset neighbor = base.value();
  Rng rng(9);
  neighbor.Replace(7, Example{SampleUnitSphere(40, &rng), -1});

  auto projection = GaussianRandomProjection::Create(40, 8, 10);
  ASSERT_TRUE(projection.ok());
  auto pa = projection.value().Apply(base.value());
  auto pb = projection.value().Apply(neighbor);
  ASSERT_TRUE(pa.ok() && pb.ok());
  size_t differing = 0;
  for (size_t i = 0; i < pa.value().size(); ++i) {
    if (!(pa.value()[i].x == pb.value()[i].x)) ++differing;
  }
  EXPECT_EQ(differing, 1u);
}

}  // namespace
}  // namespace bolton
