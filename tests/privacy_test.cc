#include "core/privacy.h"

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(PrivacyParamsTest, PureDetection) {
  EXPECT_TRUE((PrivacyParams{1.0, 0.0}).IsPure());
  EXPECT_FALSE((PrivacyParams{1.0, 1e-6}).IsPure());
}

TEST(PrivacyParamsTest, Validation) {
  EXPECT_TRUE((PrivacyParams{0.1, 0.0}).Validate().ok());
  EXPECT_TRUE((PrivacyParams{0.5, 1e-6}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{0.0, 0.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{-1.0, 0.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, -0.1}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, 1.0}).Validate().ok());
}

TEST(PrivacyParamsTest, SplitEvenlyBasicComposition) {
  PrivacyParams total{1.0, 1e-5};
  PrivacyParams per = total.SplitEvenly(10);
  EXPECT_DOUBLE_EQ(per.epsilon, 0.1);
  EXPECT_DOUBLE_EQ(per.delta, 1e-6);
  // Splitting into one part is the identity.
  PrivacyParams same = total.SplitEvenly(1);
  EXPECT_DOUBLE_EQ(same.epsilon, total.epsilon);
  EXPECT_DOUBLE_EQ(same.delta, total.delta);
}

TEST(PrivacyParamsTest, ToStringMentionsBudget) {
  EXPECT_EQ((PrivacyParams{2.0, 0.0}).ToString(), "eps=2");
  EXPECT_NE((PrivacyParams{0.5, 1e-6}).ToString().find("delta"),
            std::string::npos);
}

}  // namespace
}  // namespace bolton
