#include "engine/driver.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/scs13.h"
#include "data/synthetic.h"
#include "engine/bolt_on_driver.h"
#include "engine/sgd_uda.h"
#include "ml/metrics.h"
#include "optim/schedule.h"
#include "random/dp_noise.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeData(size_t m = 400, uint64_t seed = 171) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 8;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

// ---------------------------------------------------------------------------
// SgdUda unit behavior.
// ---------------------------------------------------------------------------

TEST(SgdUdaTest, SingleTransitionMatchesManualUpdate) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.25).MoveValue();
  SgdUdaOptions options;  // batch 1
  SgdUda uda(*loss, *schedule, options);

  Vector w0{0.1, -0.2};
  uda.Initialize(w0);
  Example e{Vector{1.0, 0.0}, +1};
  uda.Transition(e);
  Vector w1 = uda.Terminate();

  Vector expected = w0 - 0.25 * loss->Gradient(w0, e);
  EXPECT_NEAR(Distance(w1, expected), 0.0, 1e-12);
}

TEST(SgdUdaTest, MiniBatchAveragesGradients) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.5).MoveValue();
  SgdUdaOptions options;
  options.batch_size = 2;
  SgdUda uda(*loss, *schedule, options);

  Vector w0(2);
  uda.Initialize(w0);
  Example a{Vector{1.0, 0.0}, +1};
  Example b{Vector{0.0, 1.0}, -1};
  uda.Transition(a);
  uda.Transition(b);
  Vector w1 = uda.Terminate();

  Vector grad = 0.5 * (loss->Gradient(w0, a) + loss->Gradient(w0, b));
  Vector expected = w0 - 0.5 * grad;
  EXPECT_NEAR(Distance(w1, expected), 0.0, 1e-12);
}

TEST(SgdUdaTest, TerminateFlushesPartialBatch) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.5).MoveValue();
  SgdUdaOptions options;
  options.batch_size = 10;
  SgdUda uda(*loss, *schedule, options);
  uda.Initialize(Vector(2));
  uda.Transition(Example{Vector{1.0, 0.0}, +1});  // one row, batch of 10
  Vector w1 = uda.Terminate();
  EXPECT_GT(w1.Norm(), 0.0);  // the partial batch still produced an update
  EXPECT_EQ(uda.stats().updates, 1u);
}

TEST(SgdUdaTest, StepCounterPersistsAcrossEpochs) {
  // With a decreasing schedule, epoch 2 must continue at t = m+1, not t = 1.
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  auto schedule = MakeInverseTimeStep(0.1, kInf).MoveValue();
  SgdUdaOptions options;
  SgdUda uda(*loss, *schedule, options);

  Example e{Vector{1.0}, +1};
  uda.Initialize(Vector(1));
  uda.Transition(e);
  Vector after_first = uda.Terminate();
  uda.Initialize(after_first);
  uda.Transition(e);
  uda.Terminate();
  EXPECT_EQ(uda.stats().updates, 2u);
  // Indirect check: a second epoch with step 1/(γ·2) moves less than a
  // restarted schedule would; just assert the global counter advanced.
  EXPECT_EQ(uda.stats().gradient_evaluations, 2u);
}

TEST(SgdUdaTest, ProjectionApplied) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(10.0).MoveValue();
  SgdUdaOptions options;
  options.radius = 0.01;
  SgdUda uda(*loss, *schedule, options);
  uda.Initialize(Vector(2));
  uda.Transition(Example{Vector{1.0, 0.0}, +1});
  EXPECT_LE(uda.Terminate().Norm(), 0.01 + 1e-12);
}

// ---------------------------------------------------------------------------
// Driver (epoch loop + convergence test).
// ---------------------------------------------------------------------------

TEST(DriverTest, TrainsToHighAccuracy) {
  Dataset data = MakeData();
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.3).MoveValue();
  DriverOptions options;
  options.max_epochs = 10;
  options.batch_size = 10;
  Rng rng(1);
  auto out = RunSgdDriver(table.get(), *loss, *schedule, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().epochs_run, 10u);
  EXPECT_EQ(out.value().epoch_seconds.size(), 10u);
  EXPECT_GT(BinaryAccuracy(out.value().model, data), 0.9);
  EXPECT_EQ(out.value().stats.gradient_evaluations, 10 * data.size());
}

TEST(DriverTest, ConvergenceTestStopsEarly) {
  Dataset data = MakeData();
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  const double lambda = 0.1;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  auto schedule =
      MakeInverseTimeStep(loss->strong_convexity(), loss->smoothness())
          .MoveValue();
  DriverOptions options;
  options.max_epochs = 100;
  options.tolerance = 0.05;  // loose: should stop well before 100 epochs
  options.batch_size = 10;
  options.radius = loss->radius();
  Rng rng(2);
  auto out = RunSgdDriver(table.get(), *loss, *schedule, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().epochs_run, 100u);
}

TEST(DriverTest, WhiteBoxNoiseSampledPerUpdate) {
  Dataset data = MakeData(200, 172);
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeInverseSqrtStep(1.0).MoveValue();

  // Run the SCS13-style noise through the engine's white-box path.
  class EngineNoise final : public GradientNoiseSource {
   public:
    Result<Vector> Sample(size_t, size_t dim, Rng* rng) override {
      return SampleSphericalLaplace(dim, 0.04, 1.0, rng);
    }
  } noise;

  DriverOptions options;
  options.max_epochs = 2;
  options.batch_size = 50;
  Rng rng(3);
  auto out =
      RunSgdDriver(table.get(), *loss, *schedule, options, &rng, &noise);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().stats.noise_samples, 8u);  // 2 epochs × 4 updates
}

TEST(DriverTest, DiskTableTrainsIdenticallyWell) {
  Dataset data = MakeData(300, 173);
  std::string path = ::testing::TempDir() + "driver_disk_test.bin";
  auto table = MakeTable(data, StorageMode::kDisk, path, 32).MoveValue();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.3).MoveValue();
  DriverOptions options;
  options.max_epochs = 5;
  options.batch_size = 10;
  Rng rng(4);
  auto out = RunSgdDriver(table.get(), *loss, *schedule, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(BinaryAccuracy(out.value().model, data), 0.85);
}

TEST(DriverTest, Validation) {
  Dataset data = MakeData(50, 174);
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  Rng rng(5);
  DriverOptions options;
  EXPECT_FALSE(
      RunSgdDriver(nullptr, *loss, *schedule, options, &rng).ok());
  options.max_epochs = 0;
  EXPECT_FALSE(
      RunSgdDriver(table.get(), *loss, *schedule, options, &rng).ok());
  options = DriverOptions{};
  options.batch_size = 1000;
  EXPECT_FALSE(
      RunSgdDriver(table.get(), *loss, *schedule, options, &rng).ok());
}

// ---------------------------------------------------------------------------
// Bolt-on private driver (Figure 1B integration).
// ---------------------------------------------------------------------------

TEST(BoltOnDriverTest, ConvexPrivateModelIsDriverPlusNoise) {
  Dataset data = MakeData();
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 5;
  options.batch_size = 10;
  Rng rng(6);
  auto out = RunBoltOnPrivateDriver(table.get(), *loss, options,
                                    /*tolerance=*/0.0, &rng);
  ASSERT_TRUE(out.ok());
  const auto& priv = out.value().private_output;
  Vector kappa = priv.model - priv.noiseless_model;
  EXPECT_NEAR(kappa.Norm(), priv.noise_norm, 1e-12);
  EXPECT_EQ(out.value().driver.epochs_run, 5u);
  // Sensitivity matches Corollary 1 with the realized epoch count.
  const double eta = 1.0 / std::sqrt(static_cast<double>(data.size()));
  EXPECT_DOUBLE_EQ(priv.sensitivity,
                   2.0 * 5 * loss->lipschitz() * eta / 10.0);
  // Zero white-box noise draws — black-box integration.
  EXPECT_EQ(out.value().driver.stats.noise_samples, 0u);
}

TEST(BoltOnDriverTest, ConvexRejectsConvergenceStopping) {
  Dataset data = MakeData(100, 175);
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  Rng rng(7);
  EXPECT_EQ(RunBoltOnPrivateDriver(table.get(), *loss, options,
                                   /*tolerance=*/0.01, &rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(BoltOnDriverTest, StronglyConvexAllowsEarlyStopWithSameSensitivity) {
  Dataset data = MakeData();
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  const double lambda = 0.1;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 100;
  options.batch_size = 10;
  Rng rng(8);
  auto out = RunBoltOnPrivateDriver(table.get(), *loss, options,
                                    /*tolerance=*/0.05, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().driver.epochs_run, 100u);
  // Lemma 8's Δ₂ is pass-count independent, so early stopping is private.
  EXPECT_DOUBLE_EQ(
      out.value().private_output.sensitivity,
      2.0 * loss->lipschitz() / (lambda * data.size() * 10.0));
}

TEST(BoltOnDriverTest, IntegrationMatchesDirectAlgorithmStatistically) {
  // The engine path and the library path implement the same Algorithm 2;
  // their accuracies on the same data should be close at moderate ε.
  Dataset data = MakeData(1000, 176);
  auto table = MakeTable(data, StorageMode::kMemory).MoveValue();
  const double lambda = 0.01;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  BoltOnOptions options;
  options.privacy = PrivacyParams{4.0, 0.0};
  options.passes = 10;
  options.batch_size = 50;

  Rng rng_engine(9);
  auto engine_out = RunBoltOnPrivateDriver(table.get(), *loss, options, 0.0,
                                           &rng_engine);
  ASSERT_TRUE(engine_out.ok());
  Rng rng_direct(10);
  auto direct_out = PrivatePsgd(data, *loss, options, &rng_direct);
  ASSERT_TRUE(direct_out.ok());

  double engine_acc =
      BinaryAccuracy(engine_out.value().private_output.model, data);
  double direct_acc = BinaryAccuracy(direct_out.value().model, data);
  EXPECT_NEAR(engine_acc, direct_acc, 0.1);
  // And the sensitivities are identical by construction.
  EXPECT_DOUBLE_EQ(engine_out.value().private_output.sensitivity,
                   direct_out.value().sensitivity);
}

}  // namespace
}  // namespace bolton
