#!/bin/sh
# End-to-end smoke test of the boltondp CLI: datagen -> train -> evaluate,
# exercising the LIBSVM round trip, model persistence, and every
# algorithm's CLI path. Invoked by ctest with the CLI binary path as $1.
set -eu

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Generate a small dataset pair.
"$CLI" datagen --dataset protein --scale 0.01 --seed 3 \
    --out "$WORKDIR/train.libsvm" > "$WORKDIR/datagen.log"
test -s "$WORKDIR/train.libsvm"
test -s "$WORKDIR/train.libsvm.test"

# Train with each algorithm and evaluate on the held-out file.
for algo in noiseless ours scs13; do
  "$CLI" train --data "$WORKDIR/train.libsvm" --algo "$algo" \
      --epsilon 4 --lambda 0.01 --passes 5 --batch 10 \
      --model "$WORKDIR/$algo.model" > "$WORKDIR/$algo.train.log"
  test -s "$WORKDIR/$algo.model"
  "$CLI" evaluate --data "$WORKDIR/train.libsvm.test" \
      --model "$WORKDIR/$algo.model" > "$WORKDIR/$algo.eval.log"
  grep -q "acc=" "$WORKDIR/$algo.eval.log"
done

# BST14 needs delta > 0.
"$CLI" train --data "$WORKDIR/train.libsvm" --algo bst14 \
    --epsilon 0.5 --delta 1e-6 --lambda 0.01 --passes 2 --batch 10 \
    --model "$WORKDIR/bst14.model" > "$WORKDIR/bst14.train.log"
test -s "$WORKDIR/bst14.model"

# The noiseless model must classify the held-out set well.
acc=$(grep -o 'acc=[0-9.]*' "$WORKDIR/noiseless.eval.log" | head -1 | cut -d= -f2)
ok=$(awk -v a="$acc" 'BEGIN { print (a > 0.8) ? 1 : 0 }')
if [ "$ok" != "1" ]; then
  echo "noiseless CLI accuracy too low: $acc" >&2
  exit 1
fi

# Telemetry: --metrics dumps counters, --trace-out/--ledger-out write JSONL.
"$CLI" train --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 4 --lambda 0.01 --passes 5 --batch 10 \
    --model "$WORKDIR/telemetry.model" --metrics \
    --trace-out "$WORKDIR/trace.jsonl" --ledger-out "$WORKDIR/ledger.jsonl" \
    > "$WORKDIR/telemetry.train.log"

# The metrics dump must report the work that actually happened.
gradients=$(awk '$1 == "gradient_evaluations" { print $2 }' \
    "$WORKDIR/telemetry.train.log")
if [ -z "$gradients" ] || [ "$gradients" -eq 0 ]; then
  echo "expected nonzero gradient_evaluations, got '$gradients'" >&2
  exit 1
fi

# The trace must contain timed per-pass spans.
test -s "$WORKDIR/trace.jsonl"
grep -q '"name":"psgd.pass"' "$WORKDIR/trace.jsonl"
grep -q '"dur_ns":' "$WORKDIR/trace.jsonl"

# The ledger must record the output-perturbation draw with its mechanism.
test -s "$WORKDIR/ledger.jsonl"
grep -q '"kind":"noise_draw"' "$WORKDIR/ledger.jsonl"
grep -q '"mechanism":"laplace"' "$WORKDIR/ledger.jsonl"
grep -q '"rng_fingerprint":' "$WORKDIR/ledger.jsonl"

# Live observability: train with --serve-obs on an ephemeral port, scrape
# /metrics and /healthz while the server lingers, then tell it to quit.
"$CLI" train --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 4 --lambda 0.01 --passes 5 --batch 10 \
    --model "$WORKDIR/obs.model" \
    --serve-obs 0 --serve-obs-linger 30000 \
    > "$WORKDIR/obs.train.log" 2>&1 &
obs_pid=$!

# The CLI prints the bound port as its first line; poll for it.
port=""
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/^obs server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORKDIR/obs.train.log" | head -1)
  [ -n "$port" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "obs server port line never appeared" >&2
  cat "$WORKDIR/obs.train.log" >&2
  exit 1
fi

# The /metrics assertions below want the end-of-run counter flush, so wait
# for the linger line that follows training before scraping.
i=0
while [ $i -lt 300 ]; do
  grep -q "obs server lingering" "$WORKDIR/obs.train.log" && break
  i=$((i + 1))
  sleep 0.1
done
if ! grep -q "obs server lingering" "$WORKDIR/obs.train.log"; then
  echo "train run never reached the obs linger phase" >&2
  cat "$WORKDIR/obs.train.log" >&2
  exit 1
fi

# Scrape with the CLI's raw-socket client (no curl dependency). The linger
# keeps the server up even after the short training run finishes.
"$CLI" scrape --port "$port" --path /metrics > "$WORKDIR/metrics.prom"
grep -q '^# TYPE gradient_evaluations counter$' "$WORKDIR/metrics.prom"
grep -q '^gradient_evaluations [1-9]' "$WORKDIR/metrics.prom"
grep -q 'psgd_pass_seconds_bucket{le="+Inf"}' "$WORKDIR/metrics.prom"
grep -q '^psgd_pass_seconds_count ' "$WORKDIR/metrics.prom"

"$CLI" scrape --port "$port" --path /healthz > "$WORKDIR/healthz.json"
grep -q '"status":"ok"' "$WORKDIR/healthz.json"
grep -q '"noise_draws":' "$WORKDIR/healthz.json"

"$CLI" scrape --port "$port" --path /quitquitquit > /dev/null
if ! wait "$obs_pid"; then
  echo "train --serve-obs run failed" >&2
  cat "$WORKDIR/obs.train.log" >&2
  exit 1
fi

# Crash-safety: SIGKILL a checkpointed train mid-run, resume it, and demand
# the final model match the uninterrupted run ($WORKDIR/ours.model above
# used the same data, flags, and default seed) byte for byte — with exactly
# one noise draw across the killed + resumed halves.
ckptdir="$WORKDIR/ckpt"
mkdir -p "$ckptdir"
# The delay failpoint stretches every pass so the kill lands mid-train; it
# never changes what the run computes.
BOLTON_FAILPOINTS="psgd.pass:delay@750" "$CLI" train \
    --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 4 --lambda 0.01 --passes 5 --batch 10 \
    --model "$WORKDIR/resumed.model" \
    --checkpoint-dir "$ckptdir" --checkpoint-every 1 \
    > "$WORKDIR/killed.train.log" 2>&1 &
train_pid=$!
i=0
while [ $i -lt 300 ]; do
  [ -f "$ckptdir/bolton.ckpt" ] && break
  i=$((i + 1))
  sleep 0.05
done
if [ ! -f "$ckptdir/bolton.ckpt" ]; then
  echo "no checkpoint appeared before the kill window closed" >&2
  cat "$WORKDIR/killed.train.log" >&2
  exit 1
fi
kill -9 "$train_pid" 2> /dev/null || true
wait "$train_pid" 2> /dev/null || true
if [ ! -f "$ckptdir/bolton.ckpt" ]; then
  echo "checkpoint vanished after SIGKILL" >&2
  exit 1
fi

"$CLI" train --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 4 --lambda 0.01 --passes 5 --batch 10 \
    --model "$WORKDIR/resumed.model" \
    --checkpoint-dir "$ckptdir" --resume \
    --ledger-out "$WORKDIR/resume.ledger.jsonl" \
    > "$WORKDIR/resume.train.log"
if ! cmp -s "$WORKDIR/ours.model" "$WORKDIR/resumed.model"; then
  echo "resumed model differs from the uninterrupted run" >&2
  exit 1
fi
noise_draws=$(grep -c '"kind":"noise_draw"' "$WORKDIR/resume.ledger.jsonl")
if [ "$noise_draws" -ne 1 ]; then
  echo "expected exactly 1 noise_draw across kill+resume, got $noise_draws" >&2
  exit 1
fi
grep -q '"kind":"resume"' "$WORKDIR/resume.ledger.jsonl"
if [ -f "$ckptdir/bolton.ckpt" ]; then
  echo "checkpoint left behind after a successful resume" >&2
  exit 1
fi

# Version prints the stamped build identity on one line.
"$CLI" version > "$WORKDIR/version.log"
grep -q "^boltondp " "$WORKDIR/version.log"

# A train with --log-jsonl mirrors log events as one-object-per-line JSON
# (the checkpoint-save info logs guarantee at least one event).
mkdir -p "$WORKDIR/jsonl_ckpt"
"$CLI" train --data "$WORKDIR/train.libsvm" --algo noiseless \
    --epsilon 4 --lambda 0.01 --passes 2 --batch 10 \
    --model "$WORKDIR/jsonl.model" \
    --checkpoint-dir "$WORKDIR/jsonl_ckpt" \
    --log-jsonl "$WORKDIR/train.log.jsonl" > /dev/null
test -s "$WORKDIR/train.log.jsonl"
grep -q '"mono_ns":' "$WORKDIR/train.log.jsonl"
grep -q '"msg":"' "$WORKDIR/train.log.jsonl"

# Unknown subcommands and flags fail loudly.
if "$CLI" frobnicate > /dev/null 2>&1; then
  echo "unknown subcommand should fail" >&2
  exit 1
fi

# --- serve: the multi-tenant daemon end to end ------------------------------
# Start on an ephemeral port with a persistent budget store, train within
# budget, get refused beyond it, drain on SIGTERM, then restart and check
# the spend survived the process.
servedir="$WORKDIR/serve_state"
mkdir -p "$servedir"
"$CLI" serve --port 0 --state-dir "$servedir" \
    --budget-epsilon 1.0 --budget-delta 1e-5 \
    --ledger-out "$WORKDIR/serve.ledger.jsonl" \
    > "$WORKDIR/serve.log" 2>&1 &
serve_pid=$!

serve_port=""
i=0
while [ $i -lt 100 ]; do
  serve_port=$(sed -n 's/^serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORKDIR/serve.log" | head -1)
  [ -n "$serve_port" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$serve_port" ]; then
  echo "serve port line never appeared" >&2
  cat "$WORKDIR/serve.log" >&2
  exit 1
fi

# A private train inside the budget succeeds and names its model.
"$CLI" call --port "$serve_port" --path /v1/train \
    --body '{"tenant":"acme","algorithm":"bolton","epsilon":0.6,"delta":1e-6,"passes":2,"scale":0.02}' \
    > "$WORKDIR/serve.train.json"
grep -q '"model_id":"acme-1"' "$WORKDIR/serve.train.json"

# The same charge again overdraws the ε=1 budget: 429 + structured body,
# and the call subcommand's exit code reflects the refusal.
if "$CLI" call --port "$serve_port" --path /v1/train \
    --body '{"tenant":"acme","algorithm":"bolton","epsilon":0.6,"delta":1e-6,"passes":2,"scale":0.02}' \
    > "$WORKDIR/serve.refused.json" 2> /dev/null; then
  echo "over-budget train should have been refused" >&2
  exit 1
fi
grep -q '"error":"budget_exhausted"' "$WORKDIR/serve.refused.json"
grep -q '"tenant":"acme"' "$WORKDIR/serve.refused.json"

# The budget endpoint shows the commit and the refusal.
"$CLI" call --port "$serve_port" --method GET \
    --path "/v1/budget?tenant=acme" > "$WORKDIR/serve.budget.json"
grep -q '"spent_epsilon":0.6' "$WORKDIR/serve.budget.json"
grep -q '"commits":1' "$WORKDIR/serve.budget.json"
grep -q '"refusals":1' "$WORKDIR/serve.budget.json"

# SIGTERM drains gracefully: clean exit, drain lines, ledger flushed.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
  echo "serve did not exit cleanly on SIGTERM" >&2
  cat "$WORKDIR/serve.log" >&2
  exit 1
fi
grep -q "serve draining" "$WORKDIR/serve.log"
grep -q "serve drained, exiting" "$WORKDIR/serve.log"

# Every budget transition in the ledger is keyed by the tenant that caused
# it — the per-tenant audit trail the multi-tenant daemon exists for.
test -s "$WORKDIR/serve.ledger.jsonl"
grep '"kind":"budget_reserve"' "$WORKDIR/serve.ledger.jsonl" \
    | grep -q '"tenant":"acme"'
grep '"kind":"budget_commit"' "$WORKDIR/serve.ledger.jsonl" \
    | grep -q '"tenant":"acme"'
grep '"kind":"budget_refusal"' "$WORKDIR/serve.ledger.jsonl" \
    | grep -q '"tenant":"acme"'

# Restart on the same state dir: the spend must have survived the process,
# so the tenant is still refused.
"$CLI" serve --port 0 --state-dir "$servedir" \
    --budget-epsilon 1.0 --budget-delta 1e-5 \
    > "$WORKDIR/serve2.log" 2>&1 &
serve2_pid=$!
serve_port=""
i=0
while [ $i -lt 100 ]; do
  serve_port=$(sed -n 's/^serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORKDIR/serve2.log" | head -1)
  [ -n "$serve_port" ] && break
  i=$((i + 1))
  sleep 0.1
done
test -n "$serve_port"
"$CLI" call --port "$serve_port" --method GET \
    --path "/v1/budget?tenant=acme" > "$WORKDIR/serve.budget2.json"
grep -q '"spent_epsilon":0.6' "$WORKDIR/serve.budget2.json"
if "$CLI" call --port "$serve_port" --path /v1/train \
    --body '{"tenant":"acme","algorithm":"bolton","epsilon":0.6,"passes":1,"scale":0.02}' \
    > /dev/null 2>&1; then
  echo "restarted serve forgot the committed spend" >&2
  exit 1
fi
kill -TERM "$serve2_pid"
wait "$serve2_pid" || { echo "second serve did not drain" >&2; exit 1; }

echo "cli smoke test passed (noiseless acc=$acc)"
