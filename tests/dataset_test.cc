#include "data/dataset.h"

#include <gtest/gtest.h>

#include "random/rng.h"

namespace bolton {
namespace {

Dataset MakeSmall() {
  Dataset ds(2, 2);
  ds.Add(Example{Vector{1.0, 0.0}, +1});
  ds.Add(Example{Vector{0.0, 2.0}, -1});
  ds.Add(Example{Vector{3.0, 4.0}, +1});
  return ds;
}

TEST(DatasetTest, BasicAccess) {
  Dataset ds = MakeSmall();
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds[0].label, +1);
  EXPECT_EQ(ds[1].x, (Vector{0.0, 2.0}));
  EXPECT_FALSE(ds.empty());
  EXPECT_TRUE(Dataset(2, 2).empty());
}

TEST(DatasetTest, ReplaceSwapsOneExample) {
  Dataset ds = MakeSmall();
  ds.Replace(1, Example{Vector{9.0, 9.0}, +1});
  EXPECT_EQ(ds[1].x, (Vector{9.0, 9.0}));
  EXPECT_EQ(ds[1].label, +1);
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds[0].x, (Vector{1.0, 0.0}));  // others untouched
}

TEST(DatasetTest, NormalizeToUnitBall) {
  Dataset ds = MakeSmall();
  ds.NormalizeToUnitBall();
  EXPECT_LE(ds.MaxFeatureNorm(), 1.0 + 1e-12);
  // Vectors already inside the ball are left alone.
  EXPECT_EQ(ds[0].x, (Vector{1.0, 0.0}));
  // The (3,4) vector is scaled to norm 1, direction preserved.
  EXPECT_NEAR(ds[2].x.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(ds[2].x[0] / ds[2].x[1], 0.75, 1e-12);
}

TEST(DatasetTest, SubsetSelectsInOrder) {
  Dataset ds = MakeSmall();
  Dataset sub = ds.Subset({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].x, (Vector{3.0, 4.0}));
  EXPECT_EQ(sub[1].x, (Vector{1.0, 0.0}));
}

TEST(DatasetTest, SplitAtPartitions) {
  Dataset ds = MakeSmall();
  auto [head, tail] = ds.SplitAt(1);
  EXPECT_EQ(head.size(), 1u);
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_EQ(head[0].label, +1);
  EXPECT_EQ(tail[0].label, -1);
}

TEST(DatasetTest, SplitEvenBalances) {
  Dataset ds(1, 2);
  for (int i = 0; i < 10; ++i) {
    ds.Add(Example{Vector{static_cast<double>(i)}, +1});
  }
  std::vector<Dataset> parts = ds.SplitEven(3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  // Order preserved across the split.
  EXPECT_EQ(parts[1][0].x[0], 4.0);
  EXPECT_EQ(parts[2][2].x[0], 9.0);
}

TEST(DatasetTest, OneVsAllViewMapsLabels) {
  Dataset ds(1, 3);
  ds.Add(Example{Vector{0.0}, 0});
  ds.Add(Example{Vector{1.0}, 1});
  ds.Add(Example{Vector{2.0}, 2});
  Dataset view = ds.OneVsAllView(1);
  EXPECT_EQ(view.num_classes(), 2);
  EXPECT_EQ(view[0].label, -1);
  EXPECT_EQ(view[1].label, +1);
  EXPECT_EQ(view[2].label, -1);
  // The original is untouched.
  EXPECT_EQ(ds[1].label, 1);
}

TEST(DatasetTest, ShuffleKeepsContents) {
  Rng rng(51);
  Dataset ds(1, 2);
  for (int i = 0; i < 100; ++i) {
    ds.Add(Example{Vector{static_cast<double>(i)}, i % 2 == 0 ? 1 : -1});
  }
  double sum_before = 0.0;
  for (size_t i = 0; i < ds.size(); ++i) sum_before += ds[i].x[0];
  ds.Shuffle(&rng);
  double sum_after = 0.0;
  bool order_changed = false;
  for (size_t i = 0; i < ds.size(); ++i) {
    sum_after += ds[i].x[0];
    if (ds[i].x[0] != static_cast<double>(i)) order_changed = true;
  }
  EXPECT_DOUBLE_EQ(sum_before, sum_after);
  EXPECT_TRUE(order_changed);
}

TEST(DatasetTest, SummaryMentionsShape) {
  Dataset ds = MakeSmall();
  std::string summary = ds.Summary("tiny");
  EXPECT_NE(summary.find("tiny"), std::string::npos);
  EXPECT_NE(summary.find("m=3"), std::string::npos);
  EXPECT_NE(summary.find("d=2"), std::string::npos);
}

}  // namespace
}  // namespace bolton
