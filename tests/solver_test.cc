#include "core/solver.h"

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/trainer.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeTrainingSet(size_t m = 200, uint64_t seed = 77) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 6;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(AlgorithmNamesTest, RoundTripsEveryValue) {
  for (Algorithm algorithm : kAllAlgorithms) {
    const std::string name = AlgorithmName(algorithm);
    EXPECT_NE(name, "unknown");
    auto parsed = ParseAlgorithm(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed.value(), algorithm) << name;
  }
}

TEST(AlgorithmNamesTest, BoltOnAliasesParse) {
  for (const char* alias : {"ours", "bolton", "bolt-on"}) {
    auto parsed = ParseAlgorithm(alias);
    ASSERT_TRUE(parsed.ok()) << alias;
    EXPECT_EQ(parsed.value(), Algorithm::kBoltOn);
  }
}

TEST(AlgorithmNamesTest, UnknownNameListsEveryChoice) {
  auto parsed = ParseAlgorithm("sgd-with-vibes");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
  const Status status = parsed.status();
  const std::string& message = status.message();
  EXPECT_NE(message.find("sgd-with-vibes"), std::string::npos);
  for (Algorithm algorithm : kAllAlgorithms) {
    EXPECT_NE(message.find(AlgorithmName(algorithm)), std::string::npos)
        << "error message does not list " << AlgorithmName(algorithm);
  }
}

TEST(RunPrivateSolverTest, MatchesTrainBinaryForEveryAlgorithm) {
  Dataset data = MakeTrainingSet();
  for (Algorithm algorithm : kAllAlgorithms) {
    TrainerConfig config;
    config.algorithm = algorithm;
    config.lambda = 0.1;
    config.passes = 2;
    config.batch_size = 5;
    // BST14 requires δ > 0; the others accept it too.
    config.privacy = PrivacyParams{0.5, 1e-4};
    if (algorithm == Algorithm::kObjective) {
      config.privacy = PrivacyParams{0.5, 0.0};  // pure DP only
    }
    auto loss = MakeLossForConfig(config);
    ASSERT_TRUE(loss.ok());

    Rng trainer_rng(51), solver_rng(51);
    auto trained = TrainBinary(data, config, &trainer_rng);
    auto solved = RunPrivateSolver(algorithm, data, *loss.value(),
                                   SolverSpecForConfig(config), &solver_rng);
    ASSERT_TRUE(trained.ok()) << AlgorithmName(algorithm) << ": "
                              << trained.status().ToString();
    ASSERT_TRUE(solved.ok()) << AlgorithmName(algorithm) << ": "
                             << solved.status().ToString();
    EXPECT_EQ(trained.value(), solved.value().model)
        << AlgorithmName(algorithm);
  }
}

TEST(RunPrivateSolverTest, NoiselessShardedRunsAndReportsShards) {
  Dataset data = MakeTrainingSet(240);
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  SolverSpec spec;
  spec.passes = 2;
  spec.batch_size = 1;
  spec.shards = 4;
  Rng rng(53);
  auto run = RunPrivateSolver(Algorithm::kNoiseless, data, *loss, spec, &rng);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().shards, 4u);
  EXPECT_EQ(run.value().model.dim(), data.dim());
}

TEST(RunPrivateSolverTest, WhiteBoxAlgorithmsRejectSharding) {
  Dataset data = MakeTrainingSet();
  auto loss = MakeLogisticLoss(0.1, 10.0).MoveValue();
  for (Algorithm algorithm :
       {Algorithm::kScs13, Algorithm::kBst14, Algorithm::kObjective}) {
    SolverSpec spec;
    spec.passes = 1;
    spec.batch_size = 5;
    spec.shards = 2;
    spec.privacy = PrivacyParams{0.5, 1e-4};
    Rng rng(59);
    auto run = RunPrivateSolver(algorithm, data, *loss, spec, &rng);
    ASSERT_FALSE(run.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument)
        << AlgorithmName(algorithm);
    EXPECT_NE(run.status().message().find("shards"), std::string::npos)
        << run.status().ToString();
  }
}

TEST(RunPrivateSolverTest, ObjectiveRequiresLogisticAndPureDp) {
  Dataset data = MakeTrainingSet();
  SolverSpec spec;
  spec.privacy = PrivacyParams{0.5, 0.0};

  auto huber = MakeHuberSvmLoss(0.1, 0.1, 10.0).MoveValue();
  Rng rng(61);
  EXPECT_FALSE(
      RunPrivateSolver(Algorithm::kObjective, data, *huber, spec, &rng).ok());

  auto logistic = MakeLogisticLoss(0.1, 10.0).MoveValue();
  spec.privacy = PrivacyParams{0.5, 1e-4};
  EXPECT_FALSE(
      RunPrivateSolver(Algorithm::kObjective, data, *logistic, spec, &rng)
          .ok());
}

}  // namespace
}  // namespace bolton
