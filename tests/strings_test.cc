#include "util/strings.h"

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(StrSplitTest, SplitsOnSeparator) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, KeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrSplitTest, NoSeparatorYieldsWhole) {
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t\r\nx y\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -1e-3);
  EXPECT_DOUBLE_EQ(ParseDouble(" 42 ").value(), 42.0);
}

TEST(ParseDoubleTest, RejectsJunk) {
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(ParseIntTest, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt("7").value(), 7);
  EXPECT_EQ(ParseInt("-12").value(), -12);
  EXPECT_EQ(ParseInt(" 0 ").value(), 0);
}

TEST(ParseIntTest, RejectsNonIntegers) {
  EXPECT_FALSE(ParseInt("3.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("7x").ok());
}

TEST(ParseIntTest, RangeErrorIsOutOfRange) {
  EXPECT_EQ(ParseInt("99999999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-flag", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace bolton
