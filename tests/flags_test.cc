#include "util/flags.h"

#include <gtest/gtest.h>

namespace bolton {
namespace {

// Builds argv from string literals for Parse().
class FlagsTest : public ::testing::Test {
 protected:
  Status Parse(std::vector<std::string> args) {
    args.insert(args.begin(), "prog");
    std::vector<char*> argv;
    storage_ = std::move(args);
    for (auto& s : storage_) argv.push_back(s.data());
    return parser_.Parse(static_cast<int>(argv.size()), argv.data());
  }

  FlagParser parser_;
  std::vector<std::string> storage_;
};

TEST_F(FlagsTest, ParsesEqualsForm) {
  double eps = 1.0;
  int64_t passes = 10;
  parser_.AddDouble("epsilon", &eps, "budget");
  parser_.AddInt("passes", &passes, "k");
  ASSERT_TRUE(Parse({"--epsilon=0.5", "--passes=20"}).ok());
  EXPECT_DOUBLE_EQ(eps, 0.5);
  EXPECT_EQ(passes, 20);
}

TEST_F(FlagsTest, ParsesSpaceForm) {
  std::string dataset = "mnist";
  parser_.AddString("dataset", &dataset, "name");
  ASSERT_TRUE(Parse({"--dataset", "protein"}).ok());
  EXPECT_EQ(dataset, "protein");
}

TEST_F(FlagsTest, BoolFormsAndBareFlag) {
  bool verbose = false;
  parser_.AddBool("verbose", &verbose, "talk");
  ASSERT_TRUE(Parse({"--verbose"}).ok());
  EXPECT_TRUE(verbose);

  FlagParser p2;
  bool flag = true;
  p2.AddBool("flag", &flag, "");
  std::string a0 = "prog", a1 = "--flag=false";
  char* argv[] = {a0.data(), a1.data()};
  ASSERT_TRUE(p2.Parse(2, argv).ok());
  EXPECT_FALSE(flag);
}

TEST_F(FlagsTest, UnknownFlagFailsLoudly) {
  EXPECT_EQ(Parse({"--nope=1"}).code(), StatusCode::kInvalidArgument);
}

TEST_F(FlagsTest, MalformedValueFails) {
  double eps = 1.0;
  parser_.AddDouble("epsilon", &eps, "budget");
  EXPECT_FALSE(Parse({"--epsilon=abc"}).ok());
}

TEST_F(FlagsTest, MissingValueFails) {
  double eps = 1.0;
  parser_.AddDouble("epsilon", &eps, "budget");
  EXPECT_FALSE(Parse({"--epsilon"}).ok());
}

TEST_F(FlagsTest, PositionalCollected) {
  ASSERT_TRUE(Parse({"input.csv", "output.csv"}).ok());
  EXPECT_EQ(parser_.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST_F(FlagsTest, HelpRequested) {
  ASSERT_TRUE(Parse({"--help"}).ok());
  EXPECT_TRUE(parser_.help_requested());
}

TEST_F(FlagsTest, DefaultsUntouchedWhenAbsent) {
  double eps = 2.5;
  parser_.AddDouble("epsilon", &eps, "budget");
  ASSERT_TRUE(Parse({}).ok());
  EXPECT_DOUBLE_EQ(eps, 2.5);
}

}  // namespace
}  // namespace bolton
