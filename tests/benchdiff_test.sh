#!/bin/sh
# Exercises tools/benchdiff.py end to end: merge two per-bench JSON files
# into an aggregate, diff identical baselines (must pass), then inject a
# 20% throughput regression and a matching accuracy drop (must fail).
# Invoked by ctest with the benchdiff.py path as $1.
set -eu

BENCHDIFF="$1"
if ! command -v python3 > /dev/null 2>&1; then
  echo "python3 not available; skipping benchdiff test"
  exit 0
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/fig2.json" <<'EOF'
{"schema":"boltondp-bench-v1","results":[
 {"figure":"fig2_scalability","name":"memory/ours/m=25000","dataset":"two_gaussians","algo":"ours","epsilon":0,"wall_seconds":0.5,"rows_per_sec":50000,"accuracy":-1}
]}
EOF
cat > "$WORKDIR/fig3.json" <<'EOF'
{"schema":"boltondp-bench-v1","results":[
 {"figure":"fig3_accuracy_public","name":"protein/test1/ours/eps=0.1","dataset":"protein","algo":"ours","epsilon":0.1,"wall_seconds":1.2,"rows_per_sec":0,"accuracy":0.72}
]}
EOF

# Merge produces one aggregate with both rows.
python3 "$BENCHDIFF" merge "$WORKDIR/baseline.json" \
    "$WORKDIR/fig2.json" "$WORKDIR/fig3.json"
grep -q '"memory/ours/m=25000"' "$WORKDIR/baseline.json"
grep -q '"protein/test1/ours/eps=0.1"' "$WORKDIR/baseline.json"

# Identical files must compare clean.
python3 "$BENCHDIFF" diff "$WORKDIR/baseline.json" "$WORKDIR/baseline.json"

# A 20% throughput drop (50000 -> 40000 rows/s) must exit non-zero.
sed 's/"rows_per_sec":50000/"rows_per_sec":40000/' \
    "$WORKDIR/baseline.json" > "$WORKDIR/regressed.json"
if python3 "$BENCHDIFF" diff "$WORKDIR/baseline.json" \
    "$WORKDIR/regressed.json" > "$WORKDIR/diff.log"; then
  echo "benchdiff failed to flag a 20% throughput regression" >&2
  cat "$WORKDIR/diff.log" >&2
  exit 1
fi
grep -q "REGRESSED" "$WORKDIR/diff.log"

# An accuracy collapse must also be flagged.
sed 's/"accuracy":0.72/"accuracy":0.5/' \
    "$WORKDIR/baseline.json" > "$WORKDIR/acc.json"
if python3 "$BENCHDIFF" diff "$WORKDIR/baseline.json" \
    "$WORKDIR/acc.json" > /dev/null; then
  echo "benchdiff failed to flag an accuracy drop" >&2
  exit 1
fi

# A small (5%) wobble inside the threshold must pass.
sed 's/"rows_per_sec":50000/"rows_per_sec":47500/' \
    "$WORKDIR/baseline.json" > "$WORKDIR/wobble.json"
python3 "$BENCHDIFF" diff "$WORKDIR/baseline.json" "$WORKDIR/wobble.json"

# Profile-carrying rows: an old baseline WITHOUT the optional "profile"
# field must merge and diff cleanly against a candidate that has it, and a
# regression whose both sides carry profiles gets a hottest-frame note.
cat > "$WORKDIR/prof_new.json" <<'EOF'
{"schema":"boltondp-bench-v1","results":[
 {"figure":"fig2_scalability","name":"memory/ours/m=25000","dataset":"two_gaussians","algo":"ours","epsilon":0,"wall_seconds":0.5,"rows_per_sec":50000,"accuracy":-1,"profile":{"schema":"boltondp-profile-v1","hz":97,"samples":100,"dropped":0,"duration_ns":1000,"leaf_symbolized_pct":95.0,"any_symbolized_pct":100.0,"frames":[{"name":"bolton::Dot","self":60,"self_pct":60.0,"total":60,"total_pct":60.0}]}}
]}
EOF
# Old baseline (no profile anywhere) vs profiled candidate: clean diff.
python3 "$BENCHDIFF" diff "$WORKDIR/fig2.json" "$WORKDIR/prof_new.json"
# Profiled rows survive a merge byte-for-byte usable.
python3 "$BENCHDIFF" merge "$WORKDIR/prof_merged.json" \
    "$WORKDIR/prof_new.json" "$WORKDIR/fig3.json"
grep -q '"boltondp-profile-v1"' "$WORKDIR/prof_merged.json"
python3 "$BENCHDIFF" diff "$WORKDIR/prof_merged.json" "$WORKDIR/prof_merged.json"
# Regression with profiles on both sides carries the hottest-frame note.
sed 's/"rows_per_sec":50000/"rows_per_sec":30000/; s/"name":"bolton::Dot"/"name":"bolton::Axpy"/' \
    "$WORKDIR/prof_new.json" > "$WORKDIR/prof_regressed.json"
if python3 "$BENCHDIFF" diff "$WORKDIR/prof_new.json" \
    "$WORKDIR/prof_regressed.json" > "$WORKDIR/prof_diff.log"; then
  echo "benchdiff failed to flag a profiled regression" >&2
  exit 1
fi
grep -q "hottest:" "$WORKDIR/prof_diff.log"
grep -q "bolton::Axpy" "$WORKDIR/prof_diff.log"

echo "benchdiff test passed"
