#include "data/loaders.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace bolton {
namespace {

class LoadersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "loaders_test_file.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(LoadersTest, LibsvmRoundTrip) {
  Dataset ds(3, 2);
  ds.Add(Example{Vector{0.5, 0.0, -1.25}, +1});
  ds.Add(Example{Vector{0.0, 2.0, 0.0}, -1});
  ASSERT_TRUE(SaveLibsvm(ds, path_).ok());

  auto loaded = LoadLibsvm(path_, 3);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].x, ds[0].x);
  EXPECT_EQ(loaded.value()[0].label, +1);
  EXPECT_EQ(loaded.value()[1].x, ds[1].x);
  EXPECT_EQ(loaded.value()[1].label, -1);
}

TEST_F(LoadersTest, LibsvmInfersDimension) {
  WriteFile("1 1:0.5 4:1.0\n-1 2:0.25\n");
  auto loaded = LoadLibsvm(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().dim(), 4u);
  EXPECT_DOUBLE_EQ(loaded.value()[0].x[3], 1.0);
  EXPECT_DOUBLE_EQ(loaded.value()[1].x[1], 0.25);
}

TEST_F(LoadersTest, LibsvmMapsZeroOneLabels) {
  WriteFile("0 1:1.0\n1 1:2.0\n");
  auto loaded = LoadLibsvm(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0].label, -1);
  EXPECT_EQ(loaded.value()[1].label, +1);
}

TEST_F(LoadersTest, LibsvmSkipsCommentsAndBlanks) {
  WriteFile("# header comment\n\n1 1:1.0\n");
  auto loaded = LoadLibsvm(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
}

TEST_F(LoadersTest, LibsvmRejectsMalformedFeature) {
  WriteFile("1 1-0.5\n");
  EXPECT_FALSE(LoadLibsvm(path_).ok());
}

TEST_F(LoadersTest, LibsvmRejectsZeroBasedIndex) {
  WriteFile("1 0:0.5\n");
  EXPECT_FALSE(LoadLibsvm(path_).ok());
}

TEST_F(LoadersTest, LibsvmRejectsIndexBeyondDeclaredDim) {
  WriteFile("1 5:0.5\n");
  EXPECT_EQ(LoadLibsvm(path_, 3).status().code(), StatusCode::kOutOfRange);
}

TEST_F(LoadersTest, LibsvmMissingFileIsIOError) {
  EXPECT_EQ(LoadLibsvm("/nonexistent/file").status().code(),
            StatusCode::kIOError);
}

TEST_F(LoadersTest, LibsvmEmptyFileIsError) {
  WriteFile("");
  EXPECT_FALSE(LoadLibsvm(path_).ok());
}

TEST_F(LoadersTest, CsvParsesDenseRows) {
  WriteFile("0.5,1.5,-1\n0.25,0.75,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().dim(), 2u);
  EXPECT_EQ(loaded.value()[0].x, (Vector{0.5, 1.5}));
  EXPECT_EQ(loaded.value()[0].label, -1);
  EXPECT_EQ(loaded.value()[1].label, +1);
}

TEST_F(LoadersTest, CsvSkipsHeaderRow) {
  WriteFile("f1,f2,label\n0.5,1.5,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
}

TEST_F(LoadersTest, CsvMapsZeroOneLabels) {
  WriteFile("1.0,0\n2.0,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0].label, -1);
  EXPECT_EQ(loaded.value()[1].label, +1);
}

TEST_F(LoadersTest, CsvRejectsRaggedRows) {
  WriteFile("1.0,2.0,1\n3.0,1\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(LoadersTest, CsvRejectsFractionalLabels) {
  WriteFile("1.0,0.5\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(LoadersTest, CsvMulticlassKeepsClassIds) {
  WriteFile("1.0,0\n2.0,1\n3.0,2\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_classes(), 3);
  EXPECT_EQ(loaded.value()[2].label, 2);
}

// ---------------------------------------------------------------------------
// Robustness regressions: malformed rows must fail with row/column context
// instead of silently skipping, and non-finite values must never reach the
// gradient path.
// ---------------------------------------------------------------------------

TEST_F(LoadersTest, LibsvmRejectsNonFiniteValuesWithLineContext) {
  // strtod happily parses these; the loader must not.
  for (const char* bad : {"1 1:nan\n", "1 1:inf\n", "1 1:-inf\n"}) {
    WriteFile(bad);
    auto loaded = LoadLibsvm(path_);
    ASSERT_FALSE(loaded.ok()) << bad;
    EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos)
        << loaded.status().ToString();
    EXPECT_NE(loaded.status().message().find("non-finite"),
              std::string::npos);
  }
  // The line number counts physical lines, comments included.
  WriteFile("# comment\n1 1:0.5\n1 2:nan\n");
  auto loaded = LoadLibsvm(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
}

TEST_F(LoadersTest, LibsvmRejectsNonFiniteLabel) {
  WriteFile("nan 1:0.5\n");
  EXPECT_FALSE(LoadLibsvm(path_).ok());
}

TEST_F(LoadersTest, CsvRejectsNonFiniteValuesWithRowColumnContext) {
  WriteFile("0.5,1.5,1\n0.25,nan,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2, column 2"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("non-finite"), std::string::npos);

  WriteFile("inf,1\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(LoadersTest, CsvMalformedDataRowErrorsInsteadOfSilentSkip) {
  // The first row carries numeric fields, so it is DATA with a bad column —
  // the old header heuristic silently dropped it.
  WriteFile("0.5,oops,1\n0.25,0.75,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1, column 2"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("non-numeric"), std::string::npos);
}

TEST_F(LoadersTest, CsvMalformedLaterRowReportsRowAndColumn) {
  WriteFile("f1,f2,label\n0.5,1.5,1\n0.25,zebra,0\n");
  auto loaded = LoadCsv(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3, column 2"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(LoadersTest, CsvStillSkipsAllTextHeader) {
  // A genuine header (no numeric field) on row one is still skipped; a
  // second header-looking row is an error.
  WriteFile("alpha,beta,label\n1.0,2.0,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 1u);

  WriteFile("alpha,beta,label\nalpha,beta,label\n1.0,2.0,1\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(LoadersTest, LoaderFailpointsInjectIOErrors) {
  WriteFile("1 1:0.5\n-1 2:0.25\n");
  ASSERT_TRUE(FailpointRegistry::Default().Configure("loader.open:error").ok());
  auto open_fail = LoadLibsvm(path_);
  ASSERT_FALSE(open_fail.ok());
  EXPECT_EQ(open_fail.status().code(), StatusCode::kIOError);
  EXPECT_NE(open_fail.status().message().find("failpoint"),
            std::string::npos);

  // "1in2" fires on the second data row of this file.
  ASSERT_TRUE(FailpointRegistry::Default().Configure("loader.row:1in2").ok());
  EXPECT_FALSE(LoadLibsvm(path_).ok());
  FailpointRegistry::Default().Clear();
  EXPECT_TRUE(LoadLibsvm(path_).ok());
}

}  // namespace
}  // namespace bolton
