#include "data/loaders.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace bolton {
namespace {

class LoadersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "loaders_test_file.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(LoadersTest, LibsvmRoundTrip) {
  Dataset ds(3, 2);
  ds.Add(Example{Vector{0.5, 0.0, -1.25}, +1});
  ds.Add(Example{Vector{0.0, 2.0, 0.0}, -1});
  ASSERT_TRUE(SaveLibsvm(ds, path_).ok());

  auto loaded = LoadLibsvm(path_, 3);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].x, ds[0].x);
  EXPECT_EQ(loaded.value()[0].label, +1);
  EXPECT_EQ(loaded.value()[1].x, ds[1].x);
  EXPECT_EQ(loaded.value()[1].label, -1);
}

TEST_F(LoadersTest, LibsvmInfersDimension) {
  WriteFile("1 1:0.5 4:1.0\n-1 2:0.25\n");
  auto loaded = LoadLibsvm(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().dim(), 4u);
  EXPECT_DOUBLE_EQ(loaded.value()[0].x[3], 1.0);
  EXPECT_DOUBLE_EQ(loaded.value()[1].x[1], 0.25);
}

TEST_F(LoadersTest, LibsvmMapsZeroOneLabels) {
  WriteFile("0 1:1.0\n1 1:2.0\n");
  auto loaded = LoadLibsvm(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0].label, -1);
  EXPECT_EQ(loaded.value()[1].label, +1);
}

TEST_F(LoadersTest, LibsvmSkipsCommentsAndBlanks) {
  WriteFile("# header comment\n\n1 1:1.0\n");
  auto loaded = LoadLibsvm(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
}

TEST_F(LoadersTest, LibsvmRejectsMalformedFeature) {
  WriteFile("1 1-0.5\n");
  EXPECT_FALSE(LoadLibsvm(path_).ok());
}

TEST_F(LoadersTest, LibsvmRejectsZeroBasedIndex) {
  WriteFile("1 0:0.5\n");
  EXPECT_FALSE(LoadLibsvm(path_).ok());
}

TEST_F(LoadersTest, LibsvmRejectsIndexBeyondDeclaredDim) {
  WriteFile("1 5:0.5\n");
  EXPECT_EQ(LoadLibsvm(path_, 3).status().code(), StatusCode::kOutOfRange);
}

TEST_F(LoadersTest, LibsvmMissingFileIsIOError) {
  EXPECT_EQ(LoadLibsvm("/nonexistent/file").status().code(),
            StatusCode::kIOError);
}

TEST_F(LoadersTest, LibsvmEmptyFileIsError) {
  WriteFile("");
  EXPECT_FALSE(LoadLibsvm(path_).ok());
}

TEST_F(LoadersTest, CsvParsesDenseRows) {
  WriteFile("0.5,1.5,-1\n0.25,0.75,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().dim(), 2u);
  EXPECT_EQ(loaded.value()[0].x, (Vector{0.5, 1.5}));
  EXPECT_EQ(loaded.value()[0].label, -1);
  EXPECT_EQ(loaded.value()[1].label, +1);
}

TEST_F(LoadersTest, CsvSkipsHeaderRow) {
  WriteFile("f1,f2,label\n0.5,1.5,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
}

TEST_F(LoadersTest, CsvMapsZeroOneLabels) {
  WriteFile("1.0,0\n2.0,1\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0].label, -1);
  EXPECT_EQ(loaded.value()[1].label, +1);
}

TEST_F(LoadersTest, CsvRejectsRaggedRows) {
  WriteFile("1.0,2.0,1\n3.0,1\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(LoadersTest, CsvRejectsFractionalLabels) {
  WriteFile("1.0,0.5\n");
  EXPECT_FALSE(LoadCsv(path_).ok());
}

TEST_F(LoadersTest, CsvMulticlassKeepsClassIds) {
  WriteFile("1.0,0\n2.0,1\n3.0,2\n");
  auto loaded = LoadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_classes(), 3);
  EXPECT_EQ(loaded.value()[2].label, 2);
}

}  // namespace
}  // namespace bolton
