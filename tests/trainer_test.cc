#include "ml/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"

namespace bolton {
namespace {

Dataset MakeData(size_t m = 800, uint64_t seed = 181) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 10;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(AlgorithmEnumTest, NamesRoundTrip) {
  for (Algorithm a : {Algorithm::kNoiseless, Algorithm::kBoltOn,
                      Algorithm::kScs13, Algorithm::kBst14,
                      Algorithm::kObjective}) {
    auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
  }
  EXPECT_TRUE(ParseAlgorithm("bolt-on").ok());
  EXPECT_FALSE(ParseAlgorithm("dpsgd").ok());
}

TEST(MakeLossForConfigTest, RadiusTiedToLambda) {
  TrainerConfig config;
  config.lambda = 0.01;
  auto loss = MakeLossForConfig(config);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(loss.value()->radius(), 100.0);
  EXPECT_TRUE(loss.value()->IsStronglyConvex());

  config.lambda = 0.0;
  loss = MakeLossForConfig(config);
  ASSERT_TRUE(loss.ok());
  EXPECT_TRUE(std::isinf(loss.value()->radius()));
}

TEST(MakeLossForConfigTest, HuberModelSelected) {
  TrainerConfig config;
  config.model = ModelKind::kHuberSvm;
  config.huber_h = 0.1;
  auto loss = MakeLossForConfig(config);
  ASSERT_TRUE(loss.ok());
  EXPECT_NE(loss.value()->name().find("huber"), std::string::npos);
}

// All four algorithms train through the same surface, for every test
// scenario of §4.3 that supports them.
struct TrainerCase {
  Algorithm algorithm;
  bool strongly_convex;
  bool with_delta;
  const char* label;
};

class TrainerSweep : public ::testing::TestWithParam<TrainerCase> {};

TEST_P(TrainerSweep, ProducesFiniteModel) {
  const TrainerCase c = GetParam();
  Dataset data = MakeData();
  TrainerConfig config;
  config.algorithm = c.algorithm;
  config.lambda = c.strongly_convex ? 1e-3 : 0.0;
  config.passes = 5;
  config.batch_size = 50;
  config.privacy =
      c.with_delta ? PrivacyParams{0.5, 1e-6} : PrivacyParams{0.5, 0.0};
  Rng rng(1);
  auto model = TrainBinary(data, config, &rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().dim(), data.dim());
  for (size_t i = 0; i < model.value().dim(); ++i) {
    EXPECT_TRUE(std::isfinite(model.value()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TrainerSweep,
    ::testing::Values(
        TrainerCase{Algorithm::kNoiseless, false, false, "noiseless_c"},
        TrainerCase{Algorithm::kNoiseless, true, false, "noiseless_sc"},
        TrainerCase{Algorithm::kBoltOn, false, false, "ours_c_pure"},
        TrainerCase{Algorithm::kBoltOn, false, true, "ours_c_approx"},
        TrainerCase{Algorithm::kBoltOn, true, false, "ours_sc_pure"},
        TrainerCase{Algorithm::kBoltOn, true, true, "ours_sc_approx"},
        TrainerCase{Algorithm::kScs13, false, false, "scs13_c_pure"},
        TrainerCase{Algorithm::kScs13, true, true, "scs13_sc_approx"},
        TrainerCase{Algorithm::kBst14, false, true, "bst14_c"},
        TrainerCase{Algorithm::kBst14, true, true, "bst14_sc"}),
    [](const ::testing::TestParamInfo<TrainerCase>& info) {
      return info.param.label;
    });

TEST(TrainerTest, ObjectivePerturbationThroughTrainer) {
  Dataset data = MakeData(400, 187);
  TrainerConfig config;
  config.algorithm = Algorithm::kObjective;
  config.lambda = 0.01;
  config.passes = 5;
  config.batch_size = 10;
  config.privacy = PrivacyParams{4.0, 0.0};
  Rng rng(8);
  auto model = TrainBinary(data, config, &rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(BinaryAccuracy(model.value(), data), 0.8);

  // (ε, δ) and Huber are out of the classic mechanism's scope.
  config.privacy = PrivacyParams{0.5, 1e-6};
  EXPECT_EQ(TrainBinary(data, config, &rng).status().code(),
            StatusCode::kFailedPrecondition);
  config.privacy = PrivacyParams{4.0, 0.0};
  config.model = ModelKind::kHuberSvm;
  EXPECT_EQ(TrainBinary(data, config, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TrainerTest, Bst14PureEpsilonRejected) {
  Dataset data = MakeData(200, 182);
  TrainerConfig config;
  config.algorithm = Algorithm::kBst14;
  config.privacy = PrivacyParams{1.0, 0.0};
  config.passes = 1;
  config.batch_size = 10;
  Rng rng(2);
  EXPECT_FALSE(TrainBinary(data, config, &rng).ok());
}

TEST(TrainerTest, NoiselessBeatsHeavyNoiseAtTinyEpsilon) {
  Dataset data = MakeData(1000, 183);
  Rng rng_a(3), rng_b(4);
  TrainerConfig noiseless;
  noiseless.algorithm = Algorithm::kNoiseless;
  noiseless.passes = 10;
  noiseless.batch_size = 50;
  double clean_acc =
      BinaryAccuracy(TrainBinary(data, noiseless, &rng_a).value(), data);

  TrainerConfig noisy = noiseless;
  noisy.algorithm = Algorithm::kScs13;
  noisy.privacy = PrivacyParams{0.001, 0.0};
  double noisy_acc =
      BinaryAccuracy(TrainBinary(data, noisy, &rng_b).value(), data);
  EXPECT_GT(clean_acc, noisy_acc);
}

TEST(TrainerTest, HuberSvmTrainsAccurately) {
  Dataset data = MakeData(1000, 184);
  TrainerConfig config;
  config.algorithm = Algorithm::kNoiseless;
  config.model = ModelKind::kHuberSvm;
  config.passes = 10;
  config.batch_size = 10;
  Rng rng(5);
  auto model = TrainBinary(data, config, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(BinaryAccuracy(model.value(), data), 0.9);
}

TEST(TrainerTest, MulticlassSplitsBudget) {
  SyntheticConfig sc;
  sc.num_examples = 600;
  sc.dim = 10;
  sc.num_classes = 3;
  sc.margin = 3.0;
  sc.noise_stddev = 0.5;
  sc.seed = 185;
  Dataset data = GenerateSynthetic(sc).MoveValue();
  TrainerConfig config;
  config.algorithm = Algorithm::kBoltOn;
  config.lambda = 1e-3;
  config.passes = 5;
  config.batch_size = 20;
  config.privacy = PrivacyParams{30.0, 0.0};
  Rng rng(6);
  auto model = TrainMulticlass(data, config, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_classes(), 3);
  EXPECT_GT(MulticlassAccuracy(model.value(), data), 0.6);
}

TEST(TrainerTest, AverageModelsOptionWorks) {
  Dataset data = MakeData(300, 186);
  TrainerConfig config;
  config.algorithm = Algorithm::kNoiseless;
  config.passes = 3;
  config.batch_size = 10;
  Rng rng_a(7), rng_b(7);
  auto last = TrainBinary(data, config, &rng_a);
  config.output = OutputMode::kAverageAll;
  auto averaged = TrainBinary(data, config, &rng_b);
  ASSERT_TRUE(last.ok() && averaged.ok());
  EXPECT_GT(Distance(last.value(), averaged.value()), 0.0);
}

}  // namespace
}  // namespace bolton
