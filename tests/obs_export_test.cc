#include "obs/export.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace bolton {
namespace obs {
namespace {

class ObsExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Default().Reset();
    SetMetricsEnabled(true);
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    MetricsRegistry::Default().Reset();
  }
};

// Helper: the snapshot entry for one histogram by name.
MetricsSnapshot::HistogramData FindHistogram(const MetricsSnapshot& snapshot,
                                             const std::string& name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return h;
  }
  ADD_FAILURE() << "histogram not in snapshot: " << name;
  return {};
}

TEST_F(ObsExportTest, PrometheusNameSanitizesIllegalChars) {
  EXPECT_EQ(PrometheusName("psgd.pass_seconds"), "psgd_pass_seconds");
  EXPECT_EQ(PrometheusName("dp_noise.laplace_draws"),
            "dp_noise_laplace_draws");
  EXPECT_EQ(PrometheusName("9lives"), "_lives");  // leading digit illegal
  EXPECT_EQ(PrometheusName("a-b c"), "a_b_c");
}

// The satellite contract: exposition buckets must be cumulative, end in
// +Inf, and carry _sum/_count that agree with the raw observations.
TEST_F(ObsExportTest, PrometheusHistogramIsCumulativeWithInfAndSumCount) {
  Histogram* h = MetricsRegistry::Default().GetHistogram(
      "export.hist", {1.0, 10.0, 100.0});
  const std::vector<double> observations = {0.5, 1.0, 5.0, 50.0, 1000.0,
                                            2000.0};
  double expected_sum = 0.0;
  for (double v : observations) {
    h->Observe(v);
    expected_sum += v;
  }
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  std::string text = RenderPrometheus(snapshot);

  // Raw per-bucket counts are {2,1,1,2}; the exposition must be their
  // running total.
  EXPECT_NE(text.find("export_hist_bucket{le=\"1\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("export_hist_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("export_hist_bucket{le=\"100\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("export_hist_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("export_hist_count 6\n"), std::string::npos);
  // _sum must agree with what was observed.
  const size_t sum_at = text.find("export_hist_sum ");
  ASSERT_NE(sum_at, std::string::npos);
  const double rendered_sum =
      std::stod(text.substr(sum_at + std::string("export_hist_sum ").size()));
  EXPECT_DOUBLE_EQ(rendered_sum, expected_sum);
  // And the +Inf bucket must equal _count (every observation is <= +Inf).
  const MetricsSnapshot::HistogramData data =
      FindHistogram(snapshot, "export.hist");
  uint64_t cumulative = 0;
  for (uint64_t c : data.bucket_counts) cumulative += c;
  EXPECT_EQ(cumulative, data.count);
}

TEST_F(ObsExportTest, PrometheusCountersGaugesAndTypeLines) {
  MetricsRegistry::Default().GetCounter("export.count")->Increment(7);
  MetricsRegistry::Default().GetGauge("privacy.epsilon_spent")->Set(0.25);
  std::string text = RenderPrometheus(MetricsRegistry::Default().Snapshot());
  EXPECT_NE(text.find("# TYPE export_count counter\nexport_count 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE privacy_epsilon_spent gauge\n"
                      "privacy_epsilon_spent 0.25\n"),
            std::string::npos);
}

TEST_F(ObsExportTest, QuantilesInterpolateWithinBuckets) {
  MetricsSnapshot::HistogramData h;
  h.name = "q";
  h.bounds = {10.0, 20.0, 30.0};
  // 10 observations in (10,20], none elsewhere.
  h.bucket_counts = {0, 10, 0, 0};
  h.count = 10;
  // p50 = rank 5 of 10 → halfway through the (10,20] bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 20.0);
  // All mass in the overflow bucket clamps to the largest finite bound.
  MetricsSnapshot::HistogramData overflow = h;
  overflow.bucket_counts = {0, 0, 0, 10};
  EXPECT_DOUBLE_EQ(HistogramQuantile(overflow, 0.5), 30.0);
  // Empty histogram yields 0.
  MetricsSnapshot::HistogramData empty;
  empty.bounds = {1.0};
  empty.bucket_counts = {0, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(empty, 0.99), 0.0);
}

TEST_F(ObsExportTest, PrometheusEmitsQuantileGauges) {
  Histogram* h =
      MetricsRegistry::Default().GetHistogram("lat", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h->Observe(1.5);
  std::string text = RenderPrometheus(MetricsRegistry::Default().Snapshot());
  EXPECT_NE(text.find("# TYPE lat_p50 gauge\n"), std::string::npos);
  EXPECT_NE(text.find("lat_p95 "), std::string::npos);
  EXPECT_NE(text.find("lat_p99 "), std::string::npos);
}

TEST_F(ObsExportTest, LedgerTotalsSplitByKindAndAcceptance) {
  std::vector<LedgerEvent> events;
  LedgerEvent draw;
  draw.kind = "noise_draw";
  draw.epsilon = 1.0;
  events.push_back(draw);
  LedgerEvent charge;
  charge.kind = "accountant_charge";
  charge.epsilon = 0.5;
  charge.delta = 1e-6;
  events.push_back(charge);
  LedgerEvent rejected = charge;
  rejected.accepted = false;
  events.push_back(rejected);
  LedgerEvent calibration;
  calibration.kind = "calibration";
  events.push_back(calibration);

  LedgerTotals totals = SummarizeLedger(events);
  EXPECT_EQ(totals.events, 4u);
  EXPECT_EQ(totals.noise_draws, 1u);
  EXPECT_EQ(totals.charges, 2u);
  EXPECT_EQ(totals.rejected, 1u);
  EXPECT_EQ(totals.calibrations, 1u);
  // Only the accepted charge spends budget — draws and rejections do not.
  EXPECT_DOUBLE_EQ(totals.epsilon_charged, 0.5);
  EXPECT_DOUBLE_EQ(totals.delta_charged, 1e-6);
}

// The refactor contract: the legacy member serializers and the shared
// renderers are the same bytes.
TEST_F(ObsExportTest, MemberSerializersDelegateToSharedRenderers) {
  MetricsRegistry::Default().GetCounter("export.same")->Increment(3);
  MetricsRegistry::Default()
      .GetHistogram("export.same_hist", {1.0})
      ->Observe(0.5);
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snapshot.ToText(), RenderMetricsText(snapshot));
  EXPECT_EQ(snapshot.ToJsonl(), RenderMetricsJsonl(snapshot));

  LedgerEvent event;
  event.kind = "noise_draw";
  event.mechanism = "laplace";
  event.label = "test";
  EXPECT_EQ(RenderLedgerJsonl({event}),
            RenderLedgerEventJson(event) + "\n");

  SpanRecord span;
  span.name = "test.span";
  span.id = 1;
  EXPECT_EQ(RenderSpansJsonl({span}), RenderSpanJson(span) + "\n");
}

// Golden output for the Chrome/Perfetto trace-event export: a JSON array
// holding process/thread metadata ("M") events followed by one complete
// ("X") event per span, with ts/dur converted ns -> us and counter deltas
// in args. Byte-for-byte so any schema drift is a conscious change.
TEST_F(ObsExportTest, ChromeTraceGoldenOutput) {
  SpanRecord root;
  root.name = "solver.run";
  root.id = 1;
  root.start_ns = 1000;
  root.duration_ns = 500000;
  root.thread_id = 1;
  root.thread_name = "main";

  SpanRecord shard;
  shard.name = "psgd.shard";
  shard.id = 2;
  shard.parent_id = 1;
  shard.depth = 1;
  shard.start_ns = 2500;
  shard.duration_ns = 250000;
  shard.count = 1;
  shard.thread_id = 2;
  shard.thread_name = "psgd-shard-0";
  shard.has_counters = true;
  shard.counters.task_clock_ns = 240000;

  const std::string trace = RenderChromeTrace({root, shard});
  EXPECT_EQ(trace,
            "[{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
            "\"args\":{\"name\":\"boltondp\"}},\n"
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"main\"}},\n"
            "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"psgd-shard-0\"}},\n"
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"solver.run\","
            "\"ts\":1.000,\"dur\":500.000,\"args\":{\"count\":1}},\n"
            "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"name\":\"psgd.shard\","
            "\"ts\":2.500,\"dur\":250.000,\"args\":{\"count\":1,"
            "\"counters\":{\"available\":false,"
            "\"task_clock_ns\":240000}}}]\n");
}

// Spans from the same thread share one metadata event; unnamed threads
// get the "thread" placeholder rather than an empty track name.
TEST_F(ObsExportTest, ChromeTraceDeduplicatesThreadsAndNamesUnnamed) {
  SpanRecord a;
  a.name = "a";
  a.thread_id = 9;
  SpanRecord b;
  b.name = "b";
  b.thread_id = 9;
  const std::string trace = RenderChromeTrace({a, b});
  size_t metadata_events = 0;
  for (size_t at = trace.find("\"thread_name\""); at != std::string::npos;
       at = trace.find("\"thread_name\"", at + 1)) {
    ++metadata_events;
  }
  EXPECT_EQ(metadata_events, 1u);
  EXPECT_NE(trace.find("\"args\":{\"name\":\"thread\"}"), std::string::npos)
      << trace;
}

// An empty snapshot still renders a valid document (process metadata
// only), so `--trace-chrome-out` never writes malformed JSON.
TEST_F(ObsExportTest, ChromeTraceEmptySnapshotIsValidArray) {
  const std::string trace = RenderChromeTrace({});
  EXPECT_EQ(trace,
            "[{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
            "\"args\":{\"name\":\"boltondp\"}}]\n");
}

}  // namespace
}  // namespace obs
}  // namespace bolton
