#include "obs/http_server.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/build_info.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/net.h"
#include "util/strings.h"

namespace bolton {
namespace obs {
namespace {

/// Raw-socket HTTP client: one GET, reads to EOF, splits head from body.
struct HttpResponse {
  int status = 0;
  std::string head;
  std::string body;
};

HttpResponse Get(int port, const std::string& target) {
  HttpResponse out;
  auto fd = net::ConnectTcp(static_cast<uint16_t>(port));
  if (!fd.ok()) {
    ADD_FAILURE() << "connect: " << fd.status().ToString();
    return out;
  }
  const std::string request = StrFormat(
      "GET %s HTTP/1.0\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n",
      target.c_str());
  Status sent = net::SendAll(fd.value(), request.data(), request.size());
  if (!sent.ok()) {
    ADD_FAILURE() << "send: " << sent.ToString();
    net::CloseFd(fd.value());
    return out;
  }
  auto response = net::RecvAll(fd.value(), 16 * 1024 * 1024);
  net::CloseFd(fd.value());
  if (!response.ok()) {
    ADD_FAILURE() << "recv: " << response.status().ToString();
    return out;
  }
  const std::string& text = response.value();
  const size_t split = text.find("\r\n\r\n");
  out.head = split == std::string::npos ? text : text.substr(0, split);
  out.body = split == std::string::npos ? "" : text.substr(split + 4);
  // "HTTP/1.0 200 OK" -> 200.
  std::vector<std::string> parts = StrSplit(out.head, ' ');
  if (parts.size() >= 2) {
    auto code = ParseInt(parts[1]);
    if (code.ok()) out.status = static_cast<int>(code.value());
  }
  return out;
}

/// One parsed exposition sample: name, optional {label="value"} pairs, and
/// the sample value.
struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Small Prometheus text-exposition parser: skips # comment lines,
/// validates sample-line shape, returns samples in order. Marks
/// `*parse_ok` false on any malformed line.
std::vector<Sample> ParseExposition(const std::string& body, bool* parse_ok) {
  *parse_ok = true;
  std::vector<Sample> samples;
  for (const std::string& line : StrSplit(body, '\n')) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Comment lines must be "# TYPE <name> <kind>" or "# HELP ...".
      if (!StartsWith(line, "# TYPE ") && !StartsWith(line, "# HELP ")) {
        *parse_ok = false;
      }
      continue;
    }
    Sample sample;
    std::string rest = line;
    const size_t brace = rest.find('{');
    const size_t space = rest.find(' ');
    if (brace != std::string::npos && brace < space) {
      const size_t close = rest.find('}');
      if (close == std::string::npos || close + 2 > rest.size()) {
        *parse_ok = false;
        continue;
      }
      sample.name = rest.substr(0, brace);
      // label="value" pairs, comma-separated.
      for (const std::string& pair :
           StrSplit(rest.substr(brace + 1, close - brace - 1), ',')) {
        const size_t eq = pair.find("=\"");
        if (eq == std::string::npos || pair.back() != '"') {
          *parse_ok = false;
          continue;
        }
        sample.labels[pair.substr(0, eq)] =
            pair.substr(eq + 2, pair.size() - eq - 3);
      }
      rest = rest.substr(close + 1);
      if (!rest.empty() && rest[0] == ' ') rest = rest.substr(1);
    } else {
      if (space == std::string::npos) {
        *parse_ok = false;
        continue;
      }
      sample.name = rest.substr(0, space);
      rest = rest.substr(space + 1);
    }
    char* end = nullptr;
    sample.value = std::strtod(rest.c_str(), &end);
    if (end == rest.c_str()) *parse_ok = false;
    samples.push_back(std::move(sample));
  }
  return samples;
}

class ObsHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Default().Reset();
    PrivacyLedger::Default().Clear();
    TraceRecorder::Default().Clear();
    SetAllEnabled(true);
    auto server = ObsServer::Start(0);  // ephemeral port
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server.MoveValue();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override {
    server_.reset();
    SetAllEnabled(false);
    MetricsRegistry::Default().Reset();
    PrivacyLedger::Default().Clear();
    TraceRecorder::Default().Clear();
  }

  std::unique_ptr<ObsServer> server_;
};

TEST_F(ObsHttpTest, MetricsScrapeIsValidExposition) {
  MetricsRegistry::Default().GetCounter("gradient_evaluations")
      ->Increment(123);
  MetricsRegistry::Default().GetGauge("privacy.epsilon_spent")->Set(0.75);
  Histogram* h = MetricsRegistry::Default().GetHistogram(
      "psgd.pass_seconds", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(10.0);

  HttpResponse response = Get(server_->port(), "/metrics");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("text/plain; version=0.0.4"),
            std::string::npos)
      << response.head;

  bool parse_ok = false;
  std::vector<Sample> samples = ParseExposition(response.body, &parse_ok);
  EXPECT_TRUE(parse_ok) << response.body;
  ASSERT_FALSE(samples.empty());

  std::map<std::string, Sample> by_key;
  std::vector<double> buckets;  // psgd_pass_seconds cumulative series
  for (const Sample& s : samples) {
    std::string key = s.name;
    for (const auto& [k, v] : s.labels) key += "{" + k + "=" + v + "}";
    by_key[key] = s;
    if (s.name == "psgd_pass_seconds_bucket") buckets.push_back(s.value);
  }
  EXPECT_EQ(by_key["gradient_evaluations"].value, 123);
  EXPECT_EQ(by_key["privacy_epsilon_spent"].value, 0.75);

  // Histogram contract: cumulative non-decreasing buckets, +Inf == _count,
  // _sum matches the observations.
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 1);  // <= 0.1
  EXPECT_EQ(buckets[1], 2);  // <= 1.0 (cumulative)
  EXPECT_EQ(buckets[2], 3);  // +Inf
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]);
  }
  EXPECT_EQ(by_key["psgd_pass_seconds_bucket{le=+Inf}"].value,
            by_key["psgd_pass_seconds_count"].value);
  EXPECT_DOUBLE_EQ(by_key["psgd_pass_seconds_sum"].value, 10.55);
  // Derived quantile gauges ride along.
  EXPECT_TRUE(by_key.count("psgd_pass_seconds_p50"));
  EXPECT_TRUE(by_key.count("psgd_pass_seconds_p95"));
  EXPECT_TRUE(by_key.count("psgd_pass_seconds_p99"));
}

TEST_F(ObsHttpTest, HealthzReportsLivenessAndSpendTotals) {
  LedgerEvent charge;
  charge.kind = "accountant_charge";
  charge.epsilon = 0.5;
  PrivacyLedger::Default().Record(charge);
  LedgerEvent draw;
  draw.kind = "noise_draw";
  draw.epsilon = 1.0;
  PrivacyLedger::Default().Record(draw);

  HttpResponse response = Get(server_->port(), "/healthz");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("application/json"), std::string::npos);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"uptime_ns\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"noise_draws\":1"), std::string::npos);
  EXPECT_NE(response.body.find("\"charges\":1"), std::string::npos);
  EXPECT_NE(response.body.find("\"epsilon_charged\":0.5"),
            std::string::npos);
}

TEST_F(ObsHttpTest, LedgerTailReturnsLastNEvents) {
  for (int i = 0; i < 5; ++i) {
    LedgerEvent event;
    event.kind = "noise_draw";
    event.label = StrFormat("draw%d", i);
    PrivacyLedger::Default().Record(event);
  }
  HttpResponse response = Get(server_->port(), "/ledger?tail=2");
  ASSERT_EQ(response.status, 200);
  std::vector<std::string> lines;
  for (const std::string& line : StrSplit(response.body, '\n')) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u) << response.body;
  EXPECT_NE(lines[0].find("\"seq\":4"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"label\":\"draw4\""), std::string::npos);

  // tail=0 means everything.
  HttpResponse all = Get(server_->port(), "/ledger?tail=0");
  int count = 0;
  for (const std::string& line : StrSplit(all.body, '\n')) {
    if (!line.empty()) ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST_F(ObsHttpTest, LedgerTailRejectsMalformedValues) {
  EXPECT_EQ(Get(server_->port(), "/ledger?tail=abc").status, 400);
  EXPECT_EQ(Get(server_->port(), "/ledger?tail=-1").status, 400);
  EXPECT_EQ(Get(server_->port(), "/ledger?tail=").status, 400);
  HttpResponse response = Get(server_->port(), "/ledger?tail=abc");
  EXPECT_NE(response.body.find("tail must be"), std::string::npos)
      << response.body;
  // A well-formed request still works afterwards.
  EXPECT_EQ(Get(server_->port(), "/ledger?tail=10").status, 200);
}

TEST_F(ObsHttpTest, ProfileRejectsMalformedParams) {
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=abc").status, 400);
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=-1").status, 400);
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=61").status, 400);
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=1&hz=0").status, 400);
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=1&hz=2000").status, 400);
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=1&top=0").status, 400);
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=1&format=xml").status,
            400);
}

TEST_F(ObsHttpTest, ProfileSnapshotWithoutRunningProfilerIs400) {
  HttpResponse response = Get(server_->port(), "/profile?seconds=0");
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("none is running"), std::string::npos)
      << response.body;
}

TEST_F(ObsHttpTest, ProfileTimedRequestIs503WhileProfilerBusy) {
  // An externally started session occupies the one global profiler; a
  // timed request must answer 503 instead of silently stealing it, while
  // seconds=0 reads the live session.
  ASSERT_TRUE(Profiler::Default().Start().ok());
  EXPECT_EQ(Get(server_->port(), "/profile?seconds=5").status, 503);
  HttpResponse live = Get(server_->port(), "/profile?seconds=0&format=json");
  EXPECT_EQ(live.status, 200);
  EXPECT_NE(live.body.find("\"schema\":\"boltondp-profile-v1\""),
            std::string::npos)
      << live.body;
  ASSERT_TRUE(Profiler::Default().Stop().ok());
}

TEST_F(ObsHttpTest, ProfileTimedWindowReturnsCollapsedStacks) {
  // Keep the server's request thread sampled: the window covers whatever
  // the process does during it, which here is this thread burning CPU.
  std::atomic<bool> done{false};
  std::thread burner([&done] {
    ProfiledThreadScope scope;
    volatile double acc = 0.0;
    while (!done.load()) {
      for (int i = 0; i < 4000; ++i) acc = acc + i * 0.5;
    }
  });
  HttpResponse response = Get(server_->port(), "/profile?seconds=1&hz=499");
  done.store(true);
  burner.join();
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("text/plain"), std::string::npos);
  // Collapsed line shape: "frame;frame;... COUNT".
  EXPECT_FALSE(response.body.empty());
  const std::string first_line =
      response.body.substr(0, response.body.find('\n'));
  EXPECT_NE(first_line.rfind(' '), std::string::npos) << first_line;
  EXPECT_FALSE(Profiler::Default().running());
}

TEST_F(ObsHttpTest, SpansEndpointDumpsCompletedSpans) {
  { ScopedSpan span("http_test.work"); }
  HttpResponse response = Get(server_->port(), "/spans");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"name\":\"http_test.work\""),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"start_ns\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"parent\":"), std::string::npos);
}

TEST_F(ObsHttpTest, SpansChromeFormatRendersTraceEventJson) {
  SetCurrentThreadName("http-test");
  { ScopedSpan span("http_test.chrome"); }
  HttpResponse response = Get(server_->port(), "/spans?format=chrome");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("application/json"), std::string::npos);
  EXPECT_EQ(response.body.front(), '[');
  EXPECT_NE(response.body.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(response.body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"http-test\""), std::string::npos)
      << response.body;

  // Unknown formats are a client error, not silently the default.
  EXPECT_EQ(Get(server_->port(), "/spans?format=nope").status, 400);
}

TEST_F(ObsHttpTest, LogzServesRecentLogsAsJsonl) {
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "logz marker info";
  BOLTON_LOG(kWarning) << "logz marker warning";
  ::testing::internal::GetCapturedStderr();

  HttpResponse response = Get(server_->port(), "/logz");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("application/jsonl"), std::string::npos);
  EXPECT_NE(response.body.find("logz marker info"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("logz marker warning"), std::string::npos);
  EXPECT_NE(response.body.find("\"mono_ns\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"level\":\"W\""), std::string::npos);

  // tail caps the event count; level filters below-threshold events out.
  HttpResponse one = Get(server_->port(), "/logz?tail=1");
  ASSERT_EQ(one.status, 200);
  int lines = 0;
  for (const std::string& line : StrSplit(one.body, '\n')) {
    if (!line.empty()) ++lines;
  }
  EXPECT_EQ(lines, 1);
  HttpResponse warnings = Get(server_->port(), "/logz?level=W");
  ASSERT_EQ(warnings.status, 200);
  EXPECT_EQ(warnings.body.find("\"level\":\"I\""), std::string::npos)
      << warnings.body;
  EXPECT_NE(warnings.body.find("logz marker warning"), std::string::npos);
}

TEST_F(ObsHttpTest, LogzRejectsMalformedParams) {
  EXPECT_EQ(Get(server_->port(), "/logz?tail=abc").status, 400);
  EXPECT_EQ(Get(server_->port(), "/logz?tail=-1").status, 400);
  EXPECT_EQ(Get(server_->port(), "/logz?level=verbose").status, 400);
  // A well-formed request still works afterwards.
  EXPECT_EQ(Get(server_->port(), "/logz?tail=5&level=D").status, 200);
}

TEST_F(ObsHttpTest, FlightRecorderEndpointDumpsRingsAndMetrics) {
  MetricsRegistry::Default().GetCounter("flightrec.test_counter")
      ->Increment(3);
  ::testing::internal::CaptureStderr();
  BOLTON_LOG(kInfo) << "flightrecorder marker";
  ::testing::internal::GetCapturedStderr();
  { ScopedSpan span("flightrec.span"); }

  HttpResponse response = Get(server_->port(), "/flightrecorder");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("application/json"), std::string::npos);
  EXPECT_NE(response.body.find("\"schema\":\"bolton-flightrecorder-v1\""),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"log_ring\":{"), std::string::npos);
  EXPECT_NE(response.body.find("\"span_ring\":{"), std::string::npos);
  EXPECT_NE(response.body.find("flightrecorder marker"), std::string::npos);
  EXPECT_NE(response.body.find("flightrec.span"), std::string::npos);
  // The endpoint refreshes the metrics snapshot before rendering.
  EXPECT_NE(response.body.find("flightrec.test_counter"), std::string::npos);
}

TEST_F(ObsHttpTest, BuildzReportsBuildIdentity) {
  HttpResponse response = Get(server_->port(), "/buildz");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("application/json"), std::string::npos);
  EXPECT_NE(response.body.find("\"git_sha\":\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(response.body.find("\"simd\":\""), std::string::npos);
  EXPECT_NE(response.body.find("\"perf_tier\":\""), std::string::npos);
  // The body matches the library's own rendering (one rendering path).
  EXPECT_EQ(response.body, RenderBuildInfoJson() + "\n");
}

TEST_F(ObsHttpTest, UnknownPathIs404AndPostIs405) {
  EXPECT_EQ(Get(server_->port(), "/nope").status, 404);

  auto fd = net::ConnectTcp(static_cast<uint16_t>(server_->port()));
  ASSERT_TRUE(fd.ok());
  const std::string request =
      "POST /metrics HTTP/1.0\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  ASSERT_TRUE(net::SendAll(fd.value(), request.data(), request.size()).ok());
  auto response = net::RecvAll(fd.value(), 1 << 20);
  net::CloseFd(fd.value());
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("405"), std::string::npos);
}

TEST_F(ObsHttpTest, QuitEndpointUnblocksWaitForQuit) {
  EXPECT_FALSE(server_->quit_requested());
  EXPECT_FALSE(server_->WaitForQuit(10));  // times out, no quit yet
  EXPECT_EQ(Get(server_->port(), "/quitquitquit").status, 200);
  EXPECT_TRUE(server_->WaitForQuit(5000));
  EXPECT_TRUE(server_->quit_requested());
}

TEST_F(ObsHttpTest, ScrapesWhileRecordingThreadsAreHot) {
  // The TSan pass leans on this: scrape repeatedly while other threads
  // hammer the lock-free recording paths.
  Counter* c = MetricsRegistry::Default().GetCounter("hot.counter");
  Histogram* h =
      MetricsRegistry::Default().GetHistogram("hot.hist", {1.0, 2.0});
  std::atomic<bool> done{false};
  std::thread writer([&] {
    while (!done.load()) {
      c->Increment();
      h->Observe(1.5);
      LedgerEvent event;
      event.kind = "noise_draw";
      PrivacyLedger::Default().Record(event);
    }
  });
  for (int i = 0; i < 20; ++i) {
    HttpResponse response = Get(server_->port(), "/metrics");
    EXPECT_EQ(response.status, 200);
  }
  done.store(true);
  writer.join();
  HttpResponse response = Get(server_->port(), "/metrics");
  EXPECT_NE(response.body.find("hot_counter"), std::string::npos);
}

TEST_F(ObsHttpTest, SilentClientIsDroppedAndServerStaysResponsive) {
  // A slow-loris peer: connects, never sends a byte. With a short
  // per-connection deadline the server must hang up on it and keep
  // serving other clients instead of wedging its accept loop.
  auto short_server = ObsServer::Start(0, /*io_timeout_ms=*/100);
  ASSERT_TRUE(short_server.ok()) << short_server.status().ToString();
  const int port = short_server.value()->port();

  auto silent = net::ConnectTcp(static_cast<uint16_t>(port));
  ASSERT_TRUE(silent.ok());
  // The server drops us without an answer: EOF, not a 2s client timeout.
  auto nothing = net::RecvAll(silent.value(), 1 << 20, /*timeout_ms=*/2000);
  net::CloseFd(silent.value());
  ASSERT_TRUE(nothing.ok()) << nothing.status().ToString();
  EXPECT_TRUE(nothing.value().empty());

  // And the next client is served normally.
  EXPECT_EQ(Get(port, "/healthz").status, 200);
}

TEST_F(ObsHttpTest, ClientStallingMidRequestHeadIsDropped) {
  // Worse than the silent peer: this one sends HALF a request line and
  // then stalls, so the server is already inside its head-read loop when
  // the poll deadline has to fire.
  auto short_server = ObsServer::Start(0, /*io_timeout_ms=*/100);
  ASSERT_TRUE(short_server.ok()) << short_server.status().ToString();
  const int port = short_server.value()->port();

  auto staller = net::ConnectTcp(static_cast<uint16_t>(port));
  ASSERT_TRUE(staller.ok());
  const std::string partial = "GET /metr";
  ASSERT_TRUE(
      net::SendAll(staller.value(), partial.data(), partial.size()).ok());
  // No terminator ever arrives; the server must hang up (EOF) within its
  // deadline, well before our 2s client-side cap.
  auto nothing = net::RecvAll(staller.value(), 1 << 20, /*timeout_ms=*/2000);
  net::CloseFd(staller.value());
  ASSERT_TRUE(nothing.ok()) << nothing.status().ToString();
  EXPECT_TRUE(nothing.value().empty()) << nothing.value();

  // The accept loop survived: the next request is answered.
  EXPECT_EQ(Get(port, "/healthz").status, 200);
}

TEST_F(ObsHttpTest, UnterminatedOversizedHeadIsRejectedWith400) {
  auto fd = net::ConnectTcp(static_cast<uint16_t>(server_->port()));
  ASSERT_TRUE(fd.ok());
  // 17 KiB of header with no terminating blank line: over the 16 KiB cap.
  std::string junk = "GET /metrics HTTP/1.0\r\nX-Junk: ";
  junk.append(17 * 1024, 'a');
  ASSERT_TRUE(
      net::SendAll(fd.value(), junk.data(), junk.size(), 5000).ok());
  auto response = net::RecvAll(fd.value(), 1 << 20, /*timeout_ms=*/5000);
  net::CloseFd(fd.value());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response.value().find("400"), std::string::npos)
      << response.value();
  EXPECT_NE(response.value().find("exceeds"), std::string::npos);
}

TEST_F(ObsHttpTest, StartRejectsNonPositiveIoTimeout) {
  EXPECT_FALSE(ObsServer::Start(0, 0).ok());
  EXPECT_FALSE(ObsServer::Start(0, -5).ok());
}

TEST_F(ObsHttpTest, StopIsIdempotentAndFreesThePort) {
  const int port = server_->port();
  server_->Stop();
  server_->Stop();
  // The port is free again: a second server can bind it.
  auto second = ObsServer::Start(port);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value()->port(), port);
}

}  // namespace
}  // namespace obs
}  // namespace bolton
