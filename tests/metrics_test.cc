#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(BinaryAccuracyTest, CountsCorrectSigns) {
  Dataset test(2, 2);
  test.Add(Example{Vector{1.0, 0.0}, +1});   // score +1 -> correct
  test.Add(Example{Vector{-1.0, 0.0}, -1});  // score -1 -> correct
  test.Add(Example{Vector{1.0, 0.0}, -1});   // score +1 -> wrong
  test.Add(Example{Vector{0.0, 1.0}, +1});   // score 0 -> predicts +1, correct
  Vector model{1.0, 0.0};
  EXPECT_DOUBLE_EQ(BinaryAccuracy(model, test), 0.75);
}

TEST(BinaryAccuracyTest, EmptySetIsZero) {
  EXPECT_DOUBLE_EQ(BinaryAccuracy(Vector{1.0}, Dataset(1, 2)), 0.0);
}

TEST(MulticlassAccuracyTest, ArgmaxScoring) {
  MulticlassModel model;
  model.weights = {Vector{1.0, 0.0}, Vector{0.0, 1.0}};
  Dataset test(2, 2);
  test.Add(Example{Vector{1.0, 0.1}, 0});
  test.Add(Example{Vector{0.1, 1.0}, 1});
  test.Add(Example{Vector{1.0, 0.0}, 1});  // wrong
  EXPECT_NEAR(MulticlassAccuracy(model, test), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, RecordsAndSummarizes) {
  ConfusionMatrix confusion(3);
  confusion.Record(0, 0);
  confusion.Record(0, 0);
  confusion.Record(0, 1);
  confusion.Record(1, 1);
  confusion.Record(2, 0);
  EXPECT_EQ(confusion.At(0, 0), 2u);
  EXPECT_EQ(confusion.At(0, 1), 1u);
  EXPECT_EQ(confusion.At(2, 0), 1u);
  EXPECT_EQ(confusion.At(2, 2), 0u);
  EXPECT_NEAR(confusion.Accuracy(), 3.0 / 5.0, 1e-12);
  std::string table = confusion.ToString();
  EXPECT_NE(table.find("true\\pred"), std::string::npos);
}

TEST(ConfusionMatrixTest, EmptyAccuracyIsZero) {
  EXPECT_DOUBLE_EQ(ConfusionMatrix(2).Accuracy(), 0.0);
}

TEST(ComputeConfusionTest, MatchesAccuracy) {
  MulticlassModel model;
  model.weights = {Vector{1.0, 0.0}, Vector{0.0, 1.0}};
  Dataset test(2, 2);
  test.Add(Example{Vector{1.0, 0.1}, 0});
  test.Add(Example{Vector{0.1, 1.0}, 1});
  test.Add(Example{Vector{1.0, 0.0}, 1});
  ConfusionMatrix confusion = ComputeConfusion(model, test);
  EXPECT_DOUBLE_EQ(confusion.Accuracy(), MulticlassAccuracy(model, test));
  EXPECT_EQ(confusion.At(1, 0), 1u);
}

}  // namespace
}  // namespace bolton
