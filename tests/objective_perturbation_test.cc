#include "core/objective_perturbation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/trainer.h"

namespace bolton {
namespace {

Dataset MakeData(size_t m = 800, uint64_t seed = 291) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 10;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(ObjectivePerturbationTest, BudgetSplitMatchesCms11) {
  Dataset data = MakeData();
  ObjectivePerturbationOptions options;
  options.epsilon = 1.0;
  options.lambda = 0.01;
  options.passes = 2;
  Rng rng(1);
  auto out = RunObjectivePerturbation(data, options, &rng);
  ASSERT_TRUE(out.ok());
  double expected =
      1.0 - 2.0 * std::log(1.0 + 0.25 / (800.0 * 0.01));
  EXPECT_NEAR(out.value().epsilon_prime, expected, 1e-12);
  EXPECT_DOUBLE_EQ(out.value().effective_lambda, 0.01);
}

TEST(ObjectivePerturbationTest, TinyLambdaIsRaised) {
  Dataset data = MakeData(100, 292);
  ObjectivePerturbationOptions options;
  options.epsilon = 0.1;
  options.lambda = 1e-9;  // leaves no budget for the noise term
  options.passes = 2;
  Rng rng(2);
  auto out = RunObjectivePerturbation(data, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.value().effective_lambda, 1e-9);
  EXPECT_DOUBLE_EQ(out.value().epsilon_prime, 0.05);  // ε/2
}

TEST(ObjectivePerturbationTest, LargeEpsilonApproachesNoiseless) {
  Dataset data = MakeData(1500, 293);
  ObjectivePerturbationOptions options;
  options.epsilon = 50.0;
  options.lambda = 1e-3;
  options.passes = 20;
  Rng rng(3);
  auto out = RunObjectivePerturbation(data, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(BinaryAccuracy(out.value().model, data), 0.9);
}

TEST(ObjectivePerturbationTest, NoiseNormShrinksWithEpsilon) {
  Dataset data = MakeData(400, 294);
  auto mean_norm = [&](double eps) {
    double total = 0.0;
    for (uint64_t seed = 0; seed < 20; ++seed) {
      ObjectivePerturbationOptions options;
      options.epsilon = eps;
      options.lambda = 0.01;
      options.passes = 1;
      Rng rng(100 + seed);
      total +=
          RunObjectivePerturbation(data, options, &rng).value()
              .perturbation_norm;
    }
    return total / 20.0;
  };
  // ‖b‖ ~ Gamma(d, 2/ε'): mean ∝ 1/ε'.
  EXPECT_GT(mean_norm(0.5), 3.0 * mean_norm(4.0));
}

TEST(ObjectivePerturbationTest, ModelRespectsRadius) {
  Dataset data = MakeData(300, 295);
  ObjectivePerturbationOptions options;
  options.epsilon = 0.5;
  options.lambda = 0.05;
  options.passes = 5;
  Rng rng(4);
  auto out = RunObjectivePerturbation(data, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out.value().model.Norm(),
            1.0 / out.value().effective_lambda + 1e-9);
}

TEST(ObjectivePerturbationTest, Validation) {
  Dataset data = MakeData(50, 296);
  Dataset empty(10, 2);
  Rng rng(5);
  ObjectivePerturbationOptions options;
  EXPECT_FALSE(RunObjectivePerturbation(empty, options, &rng).ok());
  options.epsilon = 0.0;
  EXPECT_FALSE(RunObjectivePerturbation(data, options, &rng).ok());
  options = ObjectivePerturbationOptions{};
  options.lambda = -1.0;
  EXPECT_FALSE(RunObjectivePerturbation(data, options, &rng).ok());
  options = ObjectivePerturbationOptions{};
  options.passes = 0;
  EXPECT_FALSE(RunObjectivePerturbation(data, options, &rng).ok());
}

}  // namespace
}  // namespace bolton
