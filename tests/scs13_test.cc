#include "core/scs13.h"

#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeData(size_t m = 500, uint64_t seed = 121) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 10;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(Scs13Test, SamplesNoiseEveryUpdate) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Scs13Options options;
  options.privacy = PrivacyParams{1.0, 0.0};
  options.passes = 4;
  options.batch_size = 25;  // 20 updates per pass
  Rng rng(1);
  auto out = RunScs13(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  // This is the white-box cost the paper measures: one draw per update.
  EXPECT_EQ(out.value().stats.noise_samples, 80u);
  EXPECT_EQ(out.value().stats.updates, 80u);
}

TEST(Scs13Test, LaplaceScaleMatchesPerStepBudget) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Scs13Options options;
  options.privacy = PrivacyParams{2.0, 0.0};
  options.passes = 10;
  options.batch_size = 50;
  Rng rng(2);
  auto out = RunScs13(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  // Sensitivity 2L/b, per-pass budget ε/k: scale = (2L/b)/(ε/k).
  double expected = (2.0 * loss->lipschitz() / 50.0) / (2.0 / 10.0);
  EXPECT_DOUBLE_EQ(out.value().per_step_noise_scale, expected);
}

TEST(Scs13Test, GaussianVariantRuns) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Scs13Options options;
  options.privacy = PrivacyParams{0.5, 1e-6};
  options.passes = 2;
  options.batch_size = 50;
  Rng rng(3);
  auto out = RunScs13(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.value().per_step_noise_scale, 0.0);
}

TEST(Scs13Test, StronglyConvexProjectsToRadius) {
  Dataset data = MakeData();
  const double lambda = 0.1;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  Scs13Options options;
  options.privacy = PrivacyParams{0.1, 0.0};  // heavy noise
  options.passes = 3;
  options.batch_size = 10;
  Rng rng(4);
  auto out = RunScs13(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out.value().model.Norm(), 1.0 / lambda + 1e-9);
}

TEST(Scs13Test, LargeEpsilonApproachesNoNoiseBehavior) {
  Dataset data = MakeData(2000, 122);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Scs13Options options;
  options.privacy = PrivacyParams{1e6, 0.0};
  options.passes = 10;
  options.batch_size = 50;
  Rng rng(5);
  auto out = RunScs13(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(BinaryAccuracy(out.value().model, data), 0.9);
}

TEST(Scs13Test, MoreNoiseAtSmallerEpsilon) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Scs13Options small, large;
  small.privacy = PrivacyParams{0.01, 0.0};
  large.privacy = PrivacyParams{10.0, 0.0};
  Rng rng(6);
  double scale_small =
      RunScs13(data, *loss, small, &rng).value().per_step_noise_scale;
  double scale_large =
      RunScs13(data, *loss, large, &rng).value().per_step_noise_scale;
  EXPECT_GT(scale_small, scale_large);
}

TEST(Scs13Test, Validation) {
  Dataset data = MakeData();
  Dataset empty(10, 2);
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Rng rng(7);
  Scs13Options options;
  options.privacy = PrivacyParams{0.0, 0.0};
  EXPECT_FALSE(RunScs13(data, *loss, options, &rng).ok());
  options.privacy = PrivacyParams{1.0, 0.0};
  EXPECT_FALSE(RunScs13(empty, *loss, options, &rng).ok());
  options.passes = 0;
  EXPECT_FALSE(RunScs13(data, *loss, options, &rng).ok());
}

}  // namespace
}  // namespace bolton
