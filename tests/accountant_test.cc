#include "core/accountant.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bolton {
namespace {

TEST(BasicCompositionTest, SumsBudgets) {
  PrivacyParams total = BasicComposition(
      {{0.1, 1e-6}, {0.2, 2e-6}, {0.3, 0.0}});
  EXPECT_DOUBLE_EQ(total.epsilon, 0.6);
  EXPECT_DOUBLE_EQ(total.delta, 3e-6);
  PrivacyParams empty = BasicComposition({});
  EXPECT_DOUBLE_EQ(empty.epsilon, 0.0);
}

TEST(ParallelCompositionTest, TakesMax) {
  PrivacyParams total = ParallelComposition(
      {{0.1, 1e-6}, {0.5, 1e-8}, {0.3, 2e-6}});
  EXPECT_DOUBLE_EQ(total.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(total.delta, 2e-6);
}

TEST(AdvancedCompositionTest, MatchesFormula) {
  PrivacyParams per_step{0.01, 1e-8};
  const size_t k = 100;
  const double delta_prime = 1e-6;
  auto total = AdvancedComposition(per_step, k, delta_prime);
  ASSERT_TRUE(total.ok());
  double expected_eps =
      std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) * 0.01 +
      k * 0.01 * (std::exp(0.01) - 1.0);
  EXPECT_NEAR(total.value().epsilon, expected_eps, 1e-12);
  EXPECT_DOUBLE_EQ(total.value().delta, k * 1e-8 + delta_prime);
}

TEST(AdvancedCompositionTest, BeatsBasicForManySteps) {
  // The whole point: for many small steps, √k scaling beats k scaling.
  PrivacyParams per_step{0.01, 0.0};
  const size_t k = 10000;
  auto advanced = AdvancedComposition(per_step, k, 1e-6);
  ASSERT_TRUE(advanced.ok());
  double basic_eps = k * per_step.epsilon;  // = 100
  EXPECT_LT(advanced.value().epsilon, basic_eps);
}

TEST(AdvancedCompositionTest, Validation) {
  EXPECT_FALSE(AdvancedComposition({0.0, 0.0}, 10, 1e-6).ok());
  EXPECT_FALSE(AdvancedComposition({0.1, 0.0}, 0, 1e-6).ok());
  EXPECT_FALSE(AdvancedComposition({0.1, 0.0}, 10, 0.0).ok());
  EXPECT_FALSE(AdvancedComposition({0.1, 0.0}, 10, 1.0).ok());
}

TEST(PerStepEpsilonTest, InvertsAdvancedComposition) {
  const double total = 1.0;
  const double delta_prime = 1e-7;
  const size_t k = 500;
  auto per_step = PerStepEpsilonForAdvancedComposition(total, delta_prime, k);
  ASSERT_TRUE(per_step.ok());
  auto recomposed =
      AdvancedComposition({per_step.value(), 0.0}, k, delta_prime);
  ASSERT_TRUE(recomposed.ok());
  EXPECT_NEAR(recomposed.value().epsilon, total, 1e-6);
}

TEST(PrivacyAccountantTest, ChargesWithinBudget) {
  PrivacyAccountant accountant({1.0, 1e-6});
  EXPECT_TRUE(accountant.Charge({0.4, 0.0}, "model-a").ok());
  EXPECT_TRUE(accountant.Charge({0.4, 5e-7}, "model-b").ok());
  EXPECT_EQ(accountant.num_charges(), 2u);
  EXPECT_NEAR(accountant.Spent().epsilon, 0.8, 1e-12);
  EXPECT_NEAR(accountant.Remaining().epsilon, 0.2, 1e-12);
}

TEST(PrivacyAccountantTest, RefusesOverBudgetEpsilon) {
  PrivacyAccountant accountant({1.0, 0.0});
  EXPECT_TRUE(accountant.Charge({0.9, 0.0}, "big").ok());
  Status refused = accountant.Charge({0.2, 0.0}, "too-much");
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  // The refused charge is NOT recorded.
  EXPECT_EQ(accountant.num_charges(), 1u);
  EXPECT_NEAR(accountant.Spent().epsilon, 0.9, 1e-12);
}

TEST(PrivacyAccountantTest, RefusesOverBudgetDelta) {
  PrivacyAccountant accountant({10.0, 1e-6});
  EXPECT_TRUE(accountant.Charge({0.1, 9e-7}, "a").ok());
  EXPECT_FALSE(accountant.Charge({0.1, 5e-7}, "b").ok());
}

TEST(PrivacyAccountantTest, ExactlyExhaustingBudgetIsAllowed) {
  PrivacyAccountant accountant({1.0, 0.0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(accountant.Charge({0.1, 0.0}, "slice").ok()) << i;
  }
  EXPECT_FALSE(accountant.Charge({0.01, 0.0}, "extra").ok());
}

TEST(PrivacyAccountantTest, LedgerListsCharges) {
  PrivacyAccountant accountant({1.0, 0.0});
  accountant.Charge({0.25, 0.0}, "first-release").CheckOK();
  std::string ledger = accountant.LedgerToString();
  EXPECT_NE(ledger.find("first-release"), std::string::npos);
  EXPECT_NE(ledger.find("remaining"), std::string::npos);
}

TEST(PrivacyAccountantTest, InvalidChargeRejected) {
  PrivacyAccountant accountant({1.0, 0.0});
  EXPECT_FALSE(accountant.Charge({0.0, 0.0}, "zero-eps").ok());
  EXPECT_FALSE(accountant.Charge({-1.0, 0.0}, "negative").ok());
}

}  // namespace
}  // namespace bolton
