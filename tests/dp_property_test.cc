// Empirical differential-privacy property tests: run the WHOLE private
// pipeline many times on neighboring datasets S ~ S′ and verify the defining
// inequality Pr[A(S) ∈ E] ≤ e^ε · Pr[A(S′) ∈ E] on a family of events E
// (histogram bins of a 1-D projection of the output model).
//
// A sampling-based check can only ever refute DP, not prove it, so the
// assertions carry statistical slack; but they reliably catch calibration
// bugs of the "forgot to divide by ε" magnitude, which unit tests of the
// formulas alone cannot.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/private_sgd.h"
#include "data/synthetic.h"
#include "optim/schedule.h"
#include "random/distributions.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Histograms `samples` into `bins` equal-width cells over [lo, hi], with
// underflow/overflow collapsed into the edge cells.
std::vector<double> Histogram(const std::vector<double>& samples, double lo,
                              double hi, size_t bins) {
  std::vector<double> counts(bins, 0.0);
  for (double s : samples) {
    double t = (s - lo) / (hi - lo);
    auto bin = static_cast<long>(std::floor(t * static_cast<double>(bins)));
    bin = std::max(0l, std::min(static_cast<long>(bins) - 1, bin));
    counts[static_cast<size_t>(bin)] += 1.0;
  }
  for (double& c : counts) c /= static_cast<double>(samples.size());
  return counts;
}

// Largest log-likelihood ratio over bins where both sides have enough mass
// for the estimate to be meaningful.
double MaxLogRatio(const std::vector<double>& p, const std::vector<double>& q,
                   double min_mass) {
  double worst = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < min_mass || q[i] < min_mass) continue;
    worst = std::max(worst, std::abs(std::log(p[i] / q[i])));
  }
  return worst;
}

class DpPropertyTest : public ::testing::Test {
 protected:
  static Dataset MakeSmallData() {
    SyntheticConfig config;
    config.num_examples = 60;
    config.dim = 4;
    config.margin = 1.5;
    config.noise_stddev = 0.6;
    config.seed = 301;
    return GenerateSynthetic(config).MoveValue();
  }

  // Draws `runs` private models on `data` and returns their projections
  // onto a fixed direction.
  static std::vector<double> SampleOutputs(const Dataset& data,
                                           const BoltOnOptions& options,
                                           const Vector& direction,
                                           int runs, uint64_t seed_base) {
    std::vector<double> projections;
    projections.reserve(runs);
    auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
    for (int r = 0; r < runs; ++r) {
      Rng rng(seed_base + r);
      auto out = PrivateConvexPsgd(data, *loss, options, &rng);
      out.status().CheckOK();
      projections.push_back(Dot(out.value().model, direction));
    }
    return projections;
  }
};

TEST_F(DpPropertyTest, LikelihoodRatioBoundedByEpsilon) {
  Dataset data = MakeSmallData();
  Dataset neighbor = data;
  Example flipped = data[10];
  flipped.label = -flipped.label;
  neighbor.Replace(10, flipped);

  BoltOnOptions options;
  options.privacy = PrivacyParams{0.5, 0.0};
  options.passes = 2;
  options.batch_size = 1;

  Rng dir_rng(5);
  Vector direction = SampleUnitSphere(data.dim(), &dir_rng);
  const int runs = 4000;
  std::vector<double> on_s = SampleOutputs(data, options, direction, runs, 1);
  std::vector<double> on_s_prime =
      SampleOutputs(neighbor, options, direction, runs, 100001);

  // Common support for the histograms.
  double lo = 1e300, hi = -1e300;
  for (double v : on_s) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : on_s_prime) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<double> p = Histogram(on_s, lo, hi, 12);
  std::vector<double> q = Histogram(on_s_prime, lo, hi, 12);

  // The defining ε-DP bound, with sampling slack: with 4000 samples per
  // side and bins holding ≥ 2% mass, the per-bin ratio estimate is accurate
  // to ~±0.25 in log space at 5+ sigmas.
  double worst = MaxLogRatio(p, q, /*min_mass=*/0.02);
  EXPECT_LE(worst, options.privacy.epsilon + 0.35)
      << "observed log-likelihood ratio incompatible with eps="
      << options.privacy.epsilon;
}

TEST_F(DpPropertyTest, NeighborsAreDistinguishableWithoutNoise) {
  // Sanity check of the test's own power: with NO privacy noise the two
  // output distributions are point masses at different locations, so the
  // same statistic blows past the ε bound. (If this ever fails, the
  // likelihood-ratio test above has lost its teeth.)
  Dataset data = MakeSmallData();
  Dataset neighbor = data;
  Example flipped = data[10];
  flipped.label = -flipped.label;
  neighbor.Replace(10, flipped);

  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto schedule = MakeConstantStep(0.2).MoveValue();
  PsgdOptions options;
  options.passes = 2;
  Rng rng_a(7), rng_b(7);
  auto run_a = RunPsgd(data, *loss, *schedule, options, &rng_a);
  auto run_b = RunPsgd(neighbor, *loss, *schedule, options, &rng_b);
  ASSERT_TRUE(run_a.ok() && run_b.ok());
  EXPECT_GT(Distance(run_a.value().model, run_b.value().model), 0.0);
}

TEST_F(DpPropertyTest, OutputDistributionWidensAsEpsilonShrinks) {
  Dataset data = MakeSmallData();
  Rng dir_rng(9);
  Vector direction = SampleUnitSphere(data.dim(), &dir_rng);

  auto spread = [&](double epsilon) {
    BoltOnOptions options;
    options.privacy = PrivacyParams{epsilon, 0.0};
    options.passes = 2;
    options.batch_size = 1;
    std::vector<double> outs =
        SampleOutputs(data, options, direction, 500, 42);
    double mean = 0.0;
    for (double v : outs) mean += v;
    mean /= outs.size();
    double var = 0.0;
    for (double v : outs) var += (v - mean) * (v - mean);
    return var / outs.size();
  };
  EXPECT_GT(spread(0.1), 4.0 * spread(2.0));
}

}  // namespace
}  // namespace bolton
