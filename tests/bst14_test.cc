#include "core/bst14.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeData(size_t m = 500, uint64_t seed = 131) {
  SyntheticConfig config;
  config.num_examples = m;
  config.dim = 10;
  config.margin = 2.0;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config).MoveValue();
}

TEST(SolveEpsilon1Test, SatisfiesLine5Equation) {
  const double epsilon = 0.5;
  const size_t T = 5000;
  const double delta1 = 1e-6 / T;
  auto eps1 = SolveBst14Epsilon1(epsilon, delta1, T);
  ASSERT_TRUE(eps1.ok());
  double e1 = eps1.value();
  EXPECT_GT(e1, 0.0);
  double lhs = T * e1 * (std::exp(e1) - 1.0) +
               std::sqrt(2.0 * T * std::log(1.0 / delta1)) * e1;
  EXPECT_NEAR(lhs, epsilon, 1e-9);
}

TEST(SolveEpsilon1Test, MonotoneInEpsilon) {
  const size_t T = 1000;
  const double delta1 = 1e-8;
  double prev = 0.0;
  for (double eps : {0.1, 0.5, 1.0, 4.0}) {
    double e1 = SolveBst14Epsilon1(eps, delta1, T).value();
    EXPECT_GT(e1, prev);
    prev = e1;
  }
}

TEST(SolveEpsilon1Test, Validation) {
  EXPECT_FALSE(SolveBst14Epsilon1(0.0, 1e-6, 100).ok());
  EXPECT_FALSE(SolveBst14Epsilon1(1.0, 0.0, 100).ok());
  EXPECT_FALSE(SolveBst14Epsilon1(1.0, 1.5, 100).ok());
  EXPECT_FALSE(SolveBst14Epsilon1(1.0, 1e-6, 0).ok());
}

TEST(Bst14Test, RequiresPositiveDelta) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Bst14Options options;
  options.privacy = PrivacyParams{1.0, 0.0};  // pure ε: unsupported
  options.radius = 5.0;
  Rng rng(1);
  EXPECT_EQ(RunBst14Convex(data, *loss, options, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Bst14Test, ConvexNeedsFiniteRadius) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Bst14Options options;
  options.privacy = PrivacyParams{0.5, 1e-6};
  options.radius = 0.0;  // falls back to the loss's +inf radius
  Rng rng(2);
  EXPECT_EQ(RunBst14Convex(data, *loss, options, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Bst14Test, ConvexRunProducesCalibration) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Bst14Options options;
  options.privacy = PrivacyParams{0.5, 1e-6};
  options.passes = 2;
  options.batch_size = 25;
  options.radius = 5.0;
  Rng rng(3);
  auto out = RunBst14Convex(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.value().epsilon1, 0.0);
  EXPECT_GT(out.value().epsilon2, 0.0);
  EXPECT_LE(out.value().epsilon2, 1.0);
  EXPECT_GT(out.value().sigma_squared, 0.0);
  // Noise drawn at every update: T = k·⌈m/b⌉ = 2·20 = 40.
  EXPECT_EQ(out.value().stats.noise_samples, 40u);
  // Projection keeps the model inside R.
  EXPECT_LE(out.value().model.Norm(), 5.0 + 1e-9);
}

TEST(Bst14Test, StronglyConvexRuns) {
  Dataset data = MakeData();
  const double lambda = 0.01;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  Bst14Options options;
  options.privacy = PrivacyParams{0.5, 1e-6};
  options.passes = 2;
  options.batch_size = 25;
  Rng rng(4);
  auto out = RunBst14StronglyConvex(data, *loss, options, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out.value().model.Norm(), 1.0 / lambda + 1e-9);
}

TEST(Bst14Test, DispatchMatchesConvexity) {
  Dataset data = MakeData();
  auto convex = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto strong = MakeLogisticLoss(0.01, 100.0).MoveValue();
  Bst14Options options;
  options.privacy = PrivacyParams{0.5, 1e-6};
  options.passes = 1;
  options.batch_size = 50;
  options.radius = 5.0;
  Rng rng(5);
  EXPECT_TRUE(RunBst14(data, *convex, options, &rng).ok());
  EXPECT_TRUE(RunBst14(data, *strong, options, &rng).ok());
  // Wrong algorithm for the loss is rejected.
  EXPECT_FALSE(RunBst14Convex(data, *strong, options, &rng).ok());
  EXPECT_FALSE(RunBst14StronglyConvex(data, *convex, options, &rng).ok());
}

TEST(Bst14Test, MoreIterationsMeanSmallerPerStepBudget) {
  // The constant-epoch extension's point: fewer iterations ⇒ less noise per
  // iteration. ε₁ must shrink as T grows.
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Bst14Options few, many;
  few.privacy = many.privacy = PrivacyParams{0.5, 1e-6};
  few.passes = 1;
  many.passes = 10;
  few.batch_size = many.batch_size = 10;
  few.radius = many.radius = 5.0;
  Rng rng_a(6), rng_b(7);
  double eps1_few = RunBst14Convex(data, *loss, few, &rng_a).value().epsilon1;
  double eps1_many =
      RunBst14Convex(data, *loss, many, &rng_b).value().epsilon1;
  EXPECT_GT(eps1_few, eps1_many);
}

TEST(Bst14Test, LargerBatchReducesNoiseVariance) {
  Dataset data = MakeData();
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Bst14Options small, large;
  small.privacy = large.privacy = PrivacyParams{0.5, 1e-6};
  small.passes = large.passes = 2;
  small.batch_size = 1;
  large.batch_size = 50;
  small.radius = large.radius = 5.0;
  Rng rng_a(8), rng_b(9);
  double sigma2_small =
      RunBst14Convex(data, *loss, small, &rng_a).value().sigma_squared;
  double sigma2_large =
      RunBst14Convex(data, *loss, large, &rng_b).value().sigma_squared;
  EXPECT_GT(sigma2_small, sigma2_large);
}

}  // namespace
}  // namespace bolton
