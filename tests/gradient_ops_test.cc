#include "optim/gradient_ops.h"

#include <limits>

#include <gtest/gtest.h>

#include "random/distributions.h"
#include "random/rng.h"

namespace bolton {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GradientUpdateTest, MatchesManualStep) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  Vector w{0.5, -0.5};
  Example e{Vector{1.0, 0.0}, +1};
  double eta = 0.1;
  Vector updated = GradientUpdate(*loss, e, eta, w);
  Vector expected = w - eta * loss->Gradient(w, e);
  EXPECT_NEAR(Distance(updated, expected), 0.0, 1e-12);
}

// Lemma 1.1: convex + η ≤ 2/β ⇒ the update operator is 1-expansive.
// Verified empirically on random hypothesis pairs.
TEST(ExpansivenessTest, ConvexOperatorIsOneExpansive) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  auto rho = ExpansivenessBound(*loss, 1.0);  // η = 1 ≤ 2/β = 2
  ASSERT_TRUE(rho.ok());
  EXPECT_DOUBLE_EQ(rho.value(), 1.0);

  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    Vector u = SampleGaussianVector(4, 2.0, &rng);
    Vector v = SampleGaussianVector(4, 2.0, &rng);
    Example e{SampleUnitSphere(4, &rng), (trial % 2 == 0) ? +1 : -1};
    double before = Distance(u, v);
    double after = Distance(GradientUpdate(*loss, e, 1.0, u),
                            GradientUpdate(*loss, e, 1.0, v));
    EXPECT_LE(after, before + 1e-9);
  }
}

// Lemma 2: γ-strongly convex + η ≤ 1/β ⇒ (1 − ηγ)-expansive; the operator
// contracts.
TEST(ExpansivenessTest, StronglyConvexOperatorContracts) {
  const double lambda = 0.1;
  auto loss = MakeLogisticLoss(lambda, 10.0).MoveValue();
  const double eta = 0.5 / loss->smoothness();
  auto rho = ExpansivenessBound(*loss, eta);
  ASSERT_TRUE(rho.ok());
  EXPECT_DOUBLE_EQ(rho.value(), 1.0 - eta * lambda);
  EXPECT_LT(rho.value(), 1.0);

  Rng rng(72);
  for (int trial = 0; trial < 200; ++trial) {
    Vector u = SampleGaussianVector(4, 2.0, &rng);
    Vector v = SampleGaussianVector(4, 2.0, &rng);
    Example e{SampleUnitSphere(4, &rng), (trial % 2 == 0) ? +1 : -1};
    double before = Distance(u, v);
    double after = Distance(GradientUpdate(*loss, e, eta, u),
                            GradientUpdate(*loss, e, eta, v));
    EXPECT_LE(after, rho.value() * before + 1e-9);
  }
}

TEST(ExpansivenessTest, IntermediateEtaUsesLemma12Bound) {
  const double lambda = 0.5;
  auto loss = MakeLogisticLoss(lambda, 2.0).MoveValue();
  const double beta = loss->smoothness();
  const double gamma = loss->strong_convexity();
  // Pick η between 1/β and 2/(β+γ).
  const double eta = 0.5 * (1.0 / beta + 2.0 / (beta + gamma));
  auto rho = ExpansivenessBound(*loss, eta);
  ASSERT_TRUE(rho.ok());
  EXPECT_DOUBLE_EQ(rho.value(), 1.0 - 2.0 * eta * beta * gamma / (beta + gamma));
}

TEST(ExpansivenessTest, RejectsOutOfRegimeEta) {
  auto convex = MakeLogisticLoss(0.0, kInf).MoveValue();
  EXPECT_FALSE(ExpansivenessBound(*convex, 2.1).ok());  // > 2/β = 2
  EXPECT_FALSE(ExpansivenessBound(*convex, 0.0).ok());

  auto strong = MakeLogisticLoss(0.1, 10.0).MoveValue();
  double too_big = 2.0 / (strong->smoothness() + strong->strong_convexity()) +
                   0.01;
  EXPECT_FALSE(ExpansivenessBound(*strong, too_big).ok());
}

// Lemma 3: G is (ηL)-bounded — ‖G(w) − w‖ ≤ ηL.
TEST(BoundednessTest, UpdateDisplacementWithinEtaL) {
  auto loss = MakeLogisticLoss(0.0, kInf).MoveValue();
  const double eta = 0.7;
  const double sigma = BoundednessBound(*loss, eta);
  EXPECT_DOUBLE_EQ(sigma, eta * loss->lipschitz());

  Rng rng(73);
  for (int trial = 0; trial < 200; ++trial) {
    Vector w = SampleGaussianVector(5, 3.0, &rng);
    Example e{SampleUnitSphere(5, &rng), (trial % 2 == 0) ? +1 : -1};
    Vector updated = GradientUpdate(*loss, e, eta, w);
    EXPECT_LE(Distance(updated, w), sigma + 1e-9);
  }
}

TEST(GrowthRecursionTest, MatchesLemma4Cases) {
  // Same operator: δ_t ≤ ρ δ_{t−1}.
  EXPECT_DOUBLE_EQ(GrowthRecursionStep(2.0, 0.9, 0.1, /*same_operator=*/true),
                   1.8);
  // Different operators: δ_t ≤ min(ρ,1) δ_{t−1} + 2σ.
  EXPECT_DOUBLE_EQ(GrowthRecursionStep(2.0, 0.9, 0.1, /*same_operator=*/false),
                   1.8 + 0.2);
  // Expansive ρ > 1 is clamped by min(ρ, 1) in the differing case.
  EXPECT_DOUBLE_EQ(GrowthRecursionStep(2.0, 1.5, 0.1, /*same_operator=*/false),
                   2.0 + 0.2);
  EXPECT_DOUBLE_EQ(GrowthRecursionStep(0.0, 1.0, 0.5, false), 1.0);
}

// Unrolling Lemma 4 over a 1-pass trajectory reproduces Corollary 1's 2Lη.
TEST(GrowthRecursionTest, UnrollingGivesTwoLEta) {
  const double rho = 1.0, eta = 0.25, L = 1.0;
  const size_t m = 50, differing = 20;
  double delta = 0.0;
  for (size_t t = 0; t < m; ++t) {
    delta = GrowthRecursionStep(delta, rho, eta * L, t != differing);
  }
  EXPECT_DOUBLE_EQ(delta, 2.0 * L * eta);
}

}  // namespace
}  // namespace bolton
