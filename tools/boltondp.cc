// boltondp — command-line front end for the library.
//
//   boltondp train    --data train.libsvm --algo ours --epsilon 1
//                     --model out.model [--lambda 0.01] [--passes 10] ...
//   boltondp evaluate --data test.libsvm --model out.model
//   boltondp datagen  --dataset protein --scale 0.1 --out train.libsvm
//   boltondp scrape   --port 9464 [--endpoint /metrics]
//   boltondp profile  --port 9464 --seconds 2 [--format collapsed|json]
//   boltondp serve    --port 8080 --state-dir /var/lib/boltondp
//                     [--budget-epsilon 1 --budget-delta 1e-6] ...
//   boltondp call     --port 8080 --path /v1/train --body '{"tenant":"t1"}'
//   boltondp version
//   boltondp postmortem finalize --dir crashdir
//
// `--data` accepts LIBSVM (default) or CSV (by .csv suffix); `--dataset`
// generates one of the built-in synthetic stand-ins instead. Multiclass
// datasets train one-vs-all automatically.
#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "core/checkpoint.h"
#include "data/loaders.h"
#include "data/projection.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "ml/binary_stats.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "ml/trainer.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/daemon.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/net.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace bolton {
namespace {

struct CommonDataFlags {
  std::string data;
  std::string dataset;
  double scale = 0.1;
  int64_t seed = 7;
  bool standardize = false;
  int64_t project_dim = 0;
};

void AddDataFlags(FlagParser* parser, CommonDataFlags* flags) {
  parser->AddString("data", &flags->data, "LIBSVM or .csv input file");
  parser->AddString("dataset", &flags->dataset,
                    "built-in synthetic dataset "
                    "(mnist|protein|covertype|higgs|kddcup)");
  parser->AddDouble("scale", &flags->scale, "synthetic dataset scale");
  parser->AddInt("seed", &flags->seed, "RNG seed");
  parser->AddBool("standardize", &flags->standardize,
                  "standardize features before unit-ball normalization");
  parser->AddInt("project", &flags->project_dim,
                 "Gaussian-random-project features to this dimension (0=off)");
}

Result<Dataset> LoadTrainingData(const CommonDataFlags& flags) {
  Dataset data;
  if (!flags.data.empty()) {
    if (flags.data.size() > 4 &&
        flags.data.substr(flags.data.size() - 4) == ".csv") {
      BOLTON_ASSIGN_OR_RETURN(data, LoadCsv(flags.data));
    } else {
      BOLTON_ASSIGN_OR_RETURN(data, LoadLibsvm(flags.data));
    }
  } else if (!flags.dataset.empty()) {
    BOLTON_ASSIGN_OR_RETURN(
        auto split, GenerateByName(flags.dataset, flags.scale, flags.seed));
    data = std::move(split.first);
  } else {
    return Status::InvalidArgument("pass --data FILE or --dataset NAME");
  }

  if (flags.standardize) {
    BOLTON_ASSIGN_OR_RETURN(Standardizer standardizer,
                            Standardizer::Fit(data));
    BOLTON_ASSIGN_OR_RETURN(data, standardizer.Apply(data));
  }
  if (flags.project_dim > 0) {
    BOLTON_ASSIGN_OR_RETURN(
        auto projection,
        GaussianRandomProjection::Create(
            data.dim(), static_cast<size_t>(flags.project_dim),
            flags.seed + 1));
    BOLTON_ASSIGN_OR_RETURN(data, projection.Apply(data));
  }
  data.NormalizeToUnitBall();
  return data;
}

int Train(int argc, char** argv) {
  CommonDataFlags data_flags;
  std::string algo = "ours";
  std::string model_kind = "logistic";
  std::string model_path = "model.txt";
  double epsilon = 1.0, delta = 0.0, lambda = 0.0, huber_h = 0.1;
  int64_t passes = 10, batch = 50, shards = 1, threads = 0;
  bool metrics = false;
  std::string trace_out, trace_chrome_out, ledger_out;
  int64_t serve_obs = -1, serve_obs_linger = 0;
  std::string checkpoint_dir;
  int64_t checkpoint_every = 1;
  bool resume = false;
  std::string profile_out;
  int64_t profile_hz = 97;
  std::string log_jsonl, postmortem_dir;

  FlagParser parser;
  AddDataFlags(&parser, &data_flags);
  parser.AddString("algo", &algo, "noiseless|ours|scs13|bst14");
  parser.AddString("loss", &model_kind, "logistic|huber");
  parser.AddString("model", &model_path, "output model file");
  parser.AddDouble("epsilon", &epsilon, "privacy budget epsilon");
  parser.AddDouble("delta", &delta, "privacy budget delta (0 = pure eps-DP)");
  parser.AddDouble("lambda", &lambda, "L2 regularization (0 = convex)");
  parser.AddDouble("huber", &huber_h, "Huber smoothing width");
  parser.AddInt("passes", &passes, "SGD passes");
  parser.AddInt("batch", &batch, "mini-batch size");
  parser.AddInt("shards", &shards,
                "disjoint data shards trained in parallel and averaged "
                "(noiseless/ours only; 1 = serial)");
  parser.AddInt("threads", &threads,
                "cap on concurrent shard workers dispatched to the "
                "process thread pool (0 = auto: one per shard, up to the "
                "pool's capacity); never changes the released model, only "
                "speed");
  parser.AddBool("metrics", &metrics, "print a metrics dump after training");
  parser.AddString("trace-out", &trace_out,
                   "write trace spans as JSONL to this file");
  parser.AddString("trace-chrome-out", &trace_chrome_out,
                   "write the span timeline as Chrome trace-event JSON "
                   "(loadable in chrome://tracing / ui.perfetto.dev)");
  parser.AddString("ledger-out", &ledger_out,
                   "write the privacy-spend ledger as JSONL to this file");
  parser.AddInt("serve-obs", &serve_obs,
                "serve live observability HTTP on 127.0.0.1:PORT "
                "(0 = ephemeral port, -1 = off)");
  parser.AddInt("serve-obs-linger", &serve_obs_linger,
                "after training, keep the obs server up this many ms "
                "(or until GET /quitquitquit)");
  parser.AddString("checkpoint-dir", &checkpoint_dir,
                   "write pass-boundary training checkpoints into this "
                   "existing directory (binary serial noiseless/ours only)");
  parser.AddInt("checkpoint-every", &checkpoint_every,
                "checkpoint after every N completed passes");
  parser.AddBool("resume", &resume,
                 "continue from the checkpoint in --checkpoint-dir instead "
                 "of starting fresh");
  parser.AddString("profile-out", &profile_out,
                   "sample the whole training run and write a collapsed-"
                   "stack profile (flamegraph.pl input) to this file");
  parser.AddInt("profile-hz", &profile_hz,
                "per-thread sampling frequency for --profile-out");
  parser.AddString("log-jsonl", &log_jsonl,
                   "also write every log event as structured JSONL to this "
                   "file");
  parser.AddString("postmortem-dir", &postmortem_dir,
                   "arm the crash handler: on a fatal signal or failed "
                   "check, write a bolton-postmortem-v1 report into this "
                   "directory (finish a signal crash with `boltondp "
                   "postmortem finalize --dir DIR`)");
  parser.Parse(argc, argv).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp train");
    return 0;
  }

  obs::SetCurrentThreadName("main");
  if (!log_jsonl.empty()) OpenLogJsonlFile(log_jsonl).CheckOK();
  if (!postmortem_dir.empty()) {
    obs::PostmortemOptions postmortem;
    postmortem.dir = postmortem_dir;
    obs::InstallCrashHandler(postmortem).CheckOK();
  }
  if (metrics) obs::SetMetricsEnabled(true);
  if (!trace_out.empty() || !trace_chrome_out.empty()) {
    obs::TraceRecorder::Default().SetEnabled(true);
  }
  if (!ledger_out.empty()) obs::PrivacyLedger::Default().SetEnabled(true);
  // Hardware counters ride along with whichever pillar is on: spans gain
  // counter deltas, the metrics dump gains the perf_* gauges.
  if (metrics || !trace_out.empty() || !trace_chrome_out.empty()) {
    obs::SetPerfCountersEnabled(true);
  }
  // Injected faults (BOLTON_FAILPOINTS) show up in the metrics snapshot and
  // the privacy ledger; free when no failpoint is armed.
  obs::InstallFailpointObsBridge();

  std::unique_ptr<obs::ObsServer> obs_server;
  if (serve_obs >= 0) {
    // A live endpoint with nothing recording would scrape all zeros, so
    // --serve-obs implies every pillar.
    obs::SetAllEnabled(true);
    auto server = obs::ObsServer::Start(static_cast<int>(serve_obs));
    server.status().CheckOK();
    obs_server = server.MoveValue();
    std::printf("obs server listening on 127.0.0.1:%d\n",
                obs_server->port());
    std::fflush(stdout);
  }

  auto data = LoadTrainingData(data_flags);
  data.status().CheckOK();
  std::printf("loaded %s\n", data.value().Summary("train").c_str());

  TrainerConfig config;
  config.algorithm = ParseAlgorithm(algo).MoveValue();
  config.model =
      model_kind == "huber" ? ModelKind::kHuberSvm : ModelKind::kLogistic;
  config.lambda = lambda;
  config.huber_h = huber_h;
  config.passes = static_cast<size_t>(passes);
  config.batch_size = static_cast<size_t>(batch);
  config.shards = static_cast<size_t>(shards);
  config.executor.max_threads = static_cast<size_t>(threads);
  config.privacy = PrivacyParams{epsilon, delta};

  // The profiler brackets the training call itself: sampling starts after
  // data loading so the flamegraph answers "where does TRAINING time go",
  // not "how slow is the loader". Worker threads self-register via
  // ProfiledThreadScope inside the sharded executor.
  const bool profiling = !profile_out.empty();
  if (profiling) {
    obs::ProfilerOptions profile_options;
    profile_options.hz = static_cast<int>(profile_hz);
    obs::Profiler::Default().Start(profile_options).CheckOK();
  }

  Rng rng(data_flags.seed + 2);
  Stopwatch watch;
  if (!checkpoint_dir.empty()) {
    // Crash-safe path: same model as the plain run (checkpointing only
    // observes pass boundaries), but a SIGKILL mid-train can be resumed
    // with --resume for a bit-identical released model.
    if (data.value().num_classes() > 2) {
      std::fprintf(stderr,
                   "--checkpoint-dir supports binary models only\n");
      return 1;
    }
    auto loss = MakeLossForConfig(config);
    loss.status().CheckOK();
    CheckpointOptions ckpt;
    ckpt.dir = checkpoint_dir;
    ckpt.every_passes = static_cast<size_t>(checkpoint_every);
    ckpt.resume = resume;
    auto run = RunSolverWithCheckpoints(config.algorithm, data.value(),
                                        *loss.value(), SolverSpecForConfig(config),
                                        &rng, ckpt);
    run.status().CheckOK();
    SaveModel(run.value().model, model_path).CheckOK();
    std::printf("trained binary %s model with %s in %.2fs%s -> %s\n",
                model_kind.c_str(), AlgorithmName(config.algorithm),
                watch.ElapsedSeconds(), resume ? " (resumed)" : "",
                model_path.c_str());
    std::printf("train %s\n",
                ComputeBinaryStats(run.value().model, data.value())
                    .ToString()
                    .c_str());
  } else if (data.value().num_classes() > 2) {
    auto model = TrainMulticlass(data.value(), config, &rng);
    model.status().CheckOK();
    SaveModel(model.value(), model_path).CheckOK();
    std::printf("trained %d-class %s model with %s in %.2fs -> %s\n",
                model.value().num_classes(), model_kind.c_str(),
                AlgorithmName(config.algorithm), watch.ElapsedSeconds(),
                model_path.c_str());
    std::printf("train accuracy: %.4f\n",
                MulticlassAccuracy(model.value(), data.value()));
  } else {
    auto model = TrainBinary(data.value(), config, &rng);
    model.status().CheckOK();
    SaveModel(model.value(), model_path).CheckOK();
    std::printf("trained binary %s model with %s in %.2fs -> %s\n",
                model_kind.c_str(), AlgorithmName(config.algorithm),
                watch.ElapsedSeconds(), model_path.c_str());
    std::printf("train %s\n",
                ComputeBinaryStats(model.value(), data.value())
                    .ToString()
                    .c_str());
  }

  if (profiling) {
    obs::Profiler::Default().Stop();
    const obs::ProfileDump dump = obs::Profiler::Default().Dump();
    obs::internal::WriteStringToFile(profile_out, obs::RenderCollapsed(dump))
        .CheckOK();
    std::printf(
        "wrote profile (%llu samples @ %dHz, %.0f%% symbolized, "
        "%llu dropped) -> %s\n",
        static_cast<unsigned long long>(dump.samples), dump.hz,
        dump.leaf_symbolized_fraction * 100.0,
        static_cast<unsigned long long>(dump.dropped), profile_out.c_str());
  }

  if (metrics) {
    obs::UpdateProcessMemoryGauges();
    obs::UpdatePerfGauges();
    std::printf("%s", obs::MetricsRegistry::Default().Snapshot()
                          .ToText()
                          .c_str());
  }
  if (!trace_out.empty()) {
    obs::TraceRecorder::Default().WriteJsonl(trace_out).CheckOK();
    std::printf("wrote %zu trace spans -> %s\n",
                obs::TraceRecorder::Default().size(), trace_out.c_str());
  }
  if (!trace_chrome_out.empty()) {
    obs::internal::WriteStringToFile(
        trace_chrome_out,
        obs::RenderChromeTrace(obs::TraceRecorder::Default().Snapshot()))
        .CheckOK();
    std::printf("wrote %zu spans as Chrome trace -> %s\n",
                obs::TraceRecorder::Default().size(),
                trace_chrome_out.c_str());
  }
  if (!ledger_out.empty()) {
    obs::PrivacyLedger::Default().WriteJsonl(ledger_out).CheckOK();
    std::printf("wrote %zu ledger events -> %s\n",
                obs::PrivacyLedger::Default().size(), ledger_out.c_str());
  }
  if (obs_server != nullptr && serve_obs_linger > 0) {
    // Keep the scrape surface up past training so an external collector
    // (or the smoke test) can read the final state; /quitquitquit ends the
    // linger early.
    std::printf("obs server lingering up to %lldms (GET /quitquitquit to "
                "stop)\n",
                static_cast<long long>(serve_obs_linger));
    std::fflush(stdout);
    obs_server->WaitForQuit(serve_obs_linger);
  }
  return 0;
}

struct HttpGetReply {
  std::string head;  // status line + headers
  std::string body;
  bool ok200 = false;
};

// Raw-TCP HTTP request against a local server with a bounded retry loop:
// the server may still be binding (the smoke test races it) or wedged, so
// refused connections and timeouts are retried kAttempts times with
// exponential backoff plus jitter before declaring the request dead.
// Shared by `scrape`, `profile`, and `call`; exists so shell tests can
// talk to the server without needing curl in the image. Retrying a POST is
// safe against THIS server: a connection that failed before the response
// never reached a handler (requests are parsed before dispatch), and the
// failure modes retried here are connect/timeout, not half-done work.
Result<HttpGetReply> HttpCallWithRetry(int64_t port, const std::string& method,
                                       const std::string& path,
                                       const std::string& body,
                                       int io_timeout_ms) {
  std::string request = StrFormat(
      "%s %s HTTP/1.0\r\nHost: 127.0.0.1\r\nConnection: close\r\n",
      method.c_str(), path.c_str());
  if (!body.empty() || method == "POST") {
    request += StrFormat("Content-Type: application/json\r\n"
                         "Content-Length: %zu\r\n",
                         body.size());
  }
  request += "\r\n";
  request += body;

  constexpr int kAttempts = 3;
  constexpr int kBackoffBaseMs = 200;
  Rng jitter_rng(static_cast<uint64_t>(port) ^ 0x626f6c746f6e6a74ull);
  Status last_error = Status::OK();
  std::string text;
  bool have_response = false;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    if (attempt > 1) {
      const int64_t base_ms = static_cast<int64_t>(kBackoffBaseMs)
                              << (attempt - 2);
      const int64_t sleep_ms = static_cast<int64_t>(
          static_cast<double>(base_ms) * jitter_rng.UniformDouble(1.0, 1.5));
      std::fprintf(stderr,
                   "scrape attempt %d/%d failed (%s); retrying in %lldms\n",
                   attempt - 1, kAttempts, last_error.message().c_str(),
                   static_cast<long long>(sleep_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    auto fd = net::ConnectTcp(static_cast<uint16_t>(port));
    if (!fd.ok()) {
      last_error = fd.status();
      continue;
    }
    Status sent =
        net::SendAll(fd.value(), request.data(), request.size(), io_timeout_ms);
    if (!sent.ok()) {
      last_error = sent;
      net::CloseFd(fd.value());
      continue;
    }
    auto response = net::RecvAll(fd.value(), 16 * 1024 * 1024, io_timeout_ms);
    net::CloseFd(fd.value());
    if (!response.ok()) {
      last_error = response.status();
      continue;
    }
    text = response.MoveValue();
    have_response = true;
    break;
  }
  if (!have_response) {
    return last_error.WithContext(
        StrFormat("giving up on 127.0.0.1:%lld%s after %d attempts",
                  static_cast<long long>(port), path.c_str(), kAttempts));
  }
  HttpGetReply reply;
  const size_t body_at = text.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    reply.head = text;
  } else {
    reply.head = text.substr(0, body_at);
    reply.body = text.substr(body_at + 4);
  }
  reply.ok200 = reply.head.find(" 200 ") != std::string::npos;
  return reply;
}

Result<HttpGetReply> HttpGetWithRetry(int64_t port, const std::string& path,
                                      int io_timeout_ms) {
  return HttpCallWithRetry(port, "GET", path, "", io_timeout_ms);
}

// Prints the response body; exits non-zero unless the status line says 200.
int Scrape(int argc, char** argv) {
  int64_t port = 0;
  int64_t timeout_ms = 5000;
  std::string path = "/metrics";
  FlagParser parser;
  parser.AddInt("port", &port, "obs server port on 127.0.0.1");
  parser.AddString("path", &path, "request path, e.g. /metrics or /healthz");
  parser.AddString("endpoint", &path,
                   "alias for --path (e.g. /profile?seconds=1)");
  parser.AddInt("timeout-ms", &timeout_ms,
                "per-attempt IO deadline; raise it for blocking endpoints "
                "like /profile");
  parser.Parse(argc, argv).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp scrape");
    return 0;
  }

  auto reply = HttpGetWithRetry(port, path, static_cast<int>(timeout_ms));
  if (!reply.ok()) {
    std::fprintf(stderr, "scrape: %s\n", reply.status().message().c_str());
    return 1;
  }
  std::printf("%s", reply.value().body.c_str());
  return reply.value().ok200 ? 0 : 1;
}

// Asks a live obs server to run its sampling profiler and prints (or
// writes) the result — `boltondp profile --port N --seconds 2` is the
// flamegraph front door for an already-running `train --serve-obs` process.
int Profile(int argc, char** argv) {
  int64_t port = 0;
  int64_t seconds = 2, hz = 97, top = 30;
  std::string format = "collapsed";
  std::string out;
  FlagParser parser;
  parser.AddInt("port", &port, "obs server port on 127.0.0.1");
  parser.AddInt("seconds", &seconds,
                "sampling window; 0 snapshots a profiler the server "
                "already has running");
  parser.AddInt("hz", &hz, "sampling frequency per thread");
  parser.AddString("format", &format,
                   "collapsed (flamegraph.pl input) or json (top-frame "
                   "summary)");
  parser.AddInt("top", &top, "frames in the json summary");
  parser.AddString("out", &out, "write the profile here instead of stdout");
  parser.Parse(argc, argv).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp profile");
    return 0;
  }

  const std::string path = StrFormat(
      "/profile?seconds=%lld&hz=%lld&format=%s&top=%lld",
      static_cast<long long>(seconds), static_cast<long long>(hz),
      format.c_str(), static_cast<long long>(top));
  // The endpoint blocks for the whole sampling window, so the IO deadline
  // must outlast it.
  const int timeout_ms = static_cast<int>(seconds) * 1000 + 5000;
  auto reply = HttpGetWithRetry(port, path, timeout_ms);
  if (!reply.ok()) {
    std::fprintf(stderr, "profile: %s\n", reply.status().message().c_str());
    return 1;
  }
  if (!reply.value().ok200) {
    std::fprintf(stderr, "profile: server answered non-200:\n%s\n",
                 reply.value().body.c_str());
    return 1;
  }
  if (out.empty()) {
    std::printf("%s", reply.value().body.c_str());
    return 0;
  }
  obs::internal::WriteStringToFile(out, reply.value().body).CheckOK();
  std::printf("wrote profile -> %s\n", out.c_str());
  return 0;
}

int Evaluate(int argc, char** argv) {
  CommonDataFlags data_flags;
  std::string model_path = "model.txt";
  FlagParser parser;
  AddDataFlags(&parser, &data_flags);
  parser.AddString("model", &model_path, "model file to evaluate");
  parser.Parse(argc, argv).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp evaluate");
    return 0;
  }

  auto data = LoadTrainingData(data_flags);
  data.status().CheckOK();
  auto model = LoadMulticlassModel(model_path);
  model.status().CheckOK();

  if (model.value().num_classes() == 1) {
    const Vector& w = model.value().weights[0];
    BinaryStats stats = ComputeBinaryStats(w, data.value());
    std::printf("%s\n", stats.ToString().c_str());
    auto auc = RocAuc(w, data.value());
    if (auc.ok()) std::printf("auc=%.4f\n", auc.value());
  } else {
    ConfusionMatrix confusion = ComputeConfusion(model.value(), data.value());
    std::printf("%s", confusion.ToString().c_str());
    std::printf("accuracy=%.4f\n", confusion.Accuracy());
  }
  return 0;
}

int DataGen(int argc, char** argv) {
  std::string dataset = "protein";
  std::string out = "train.libsvm";
  double scale = 0.1;
  int64_t seed = 7;
  FlagParser parser;
  parser.AddString("dataset", &dataset,
                   "mnist|protein|covertype|higgs|kddcup");
  parser.AddString("out", &out, "output LIBSVM file");
  parser.AddDouble("scale", &scale, "dataset scale");
  parser.AddInt("seed", &seed, "RNG seed");
  parser.Parse(argc, argv).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp datagen");
    return 0;
  }

  auto split = GenerateByName(dataset, scale, seed);
  split.status().CheckOK();
  SaveLibsvm(split.value().first, out).CheckOK();
  SaveLibsvm(split.value().second, out + ".test").CheckOK();
  std::printf("wrote %s (%zu rows) and %s.test (%zu rows)\n", out.c_str(),
              split.value().first.size(), out.c_str(),
              split.value().second.size());
  return 0;
}

// SIGTERM/SIGINT latch for `serve`: the handler only sets a flag; the main
// thread notices and runs the graceful drain outside signal context.
std::atomic<bool> g_serve_stop{false};
void ServeSignalHandler(int) { g_serve_stop.store(true); }

// The multi-tenant daemon: mounts /v1/train, /v1/predict, /v1/aggregate,
// /v1/budget (plus the whole obs surface: /metrics, /ledger, /healthz, ...)
// and runs until SIGTERM/SIGINT or GET /quitquitquit, then drains in-flight
// requests before exiting.
int Serve(int argc, char** argv) {
  int64_t port = 0;
  std::string state_dir;
  double budget_epsilon = 1.0, budget_delta = 1e-6, max_scale = 1.0;
  int64_t handler_threads = 4, max_pending = 16;
  int64_t max_inflight = 8, max_inflight_per_tenant = 2;
  int64_t default_timeout_ms = 0, drain_timeout_ms = 5000;
  int64_t training_threads = 0;
  std::string ledger_out, log_jsonl;

  FlagParser parser;
  parser.AddInt("port", &port, "listen on 127.0.0.1:PORT (0 = ephemeral)");
  parser.AddString("state-dir", &state_dir,
                   "existing directory for the persisted per-tenant budget "
                   "state (empty = in-memory only; spend dies with the "
                   "process)");
  parser.AddDouble("budget-epsilon", &budget_epsilon,
                   "total epsilon granted to each new tenant");
  parser.AddDouble("budget-delta", &budget_delta,
                   "total delta granted to each new tenant");
  parser.AddInt("handler-threads", &handler_threads,
                "concurrent HTTP handler threads");
  parser.AddInt("max-pending", &max_pending,
                "accepted connections queued beyond this are shed with 503");
  parser.AddInt("max-inflight", &max_inflight,
                "requests executing at once across all tenants (503 beyond)");
  parser.AddInt("max-inflight-per-tenant", &max_inflight_per_tenant,
                "requests executing at once per tenant (429 beyond)");
  parser.AddInt("default-timeout-ms", &default_timeout_ms,
                "deadline for requests that send no timeout_ms (0 = none)");
  parser.AddInt("drain-timeout-ms", &drain_timeout_ms,
                "shutdown waits this long for in-flight requests before "
                "cancelling their solver runs");
  parser.AddInt("threads", &training_threads,
                "worker-pool thread cap per training request (0 = auto)");
  parser.AddDouble("max-scale", &max_scale,
                   "largest synthetic-dataset scale a request may ask for");
  parser.AddString("ledger-out", &ledger_out,
                   "write the tenant-keyed privacy ledger as JSONL here on "
                   "shutdown");
  parser.AddString("log-jsonl", &log_jsonl,
                   "also write every log event as structured JSONL to this "
                   "file");
  parser.Parse(argc, argv).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp serve");
    return 0;
  }

  obs::SetCurrentThreadName("main");
  if (!log_jsonl.empty()) OpenLogJsonlFile(log_jsonl).CheckOK();
  // A daemon without its audit trail is not worth running: every pillar on.
  obs::SetAllEnabled(true);
  obs::InstallFailpointObsBridge();

  serve::ServeOptions options;
  options.port = static_cast<int>(port);
  options.handler_threads = static_cast<size_t>(handler_threads);
  options.max_pending = static_cast<size_t>(max_pending);
  options.admission.max_inflight = static_cast<size_t>(max_inflight);
  options.admission.max_inflight_per_tenant =
      static_cast<size_t>(max_inflight_per_tenant);
  options.budget.default_budget = PrivacyParams{budget_epsilon, budget_delta};
  options.budget.state_dir = state_dir;
  options.default_timeout_ms = static_cast<uint64_t>(default_timeout_ms);
  options.drain_timeout_ms = static_cast<uint64_t>(drain_timeout_ms);
  options.max_training_threads = static_cast<size_t>(training_threads);
  options.max_dataset_scale = max_scale;

  auto daemon = serve::ServeDaemon::Start(options);
  daemon.status().CheckOK();

  struct sigaction action = {};
  action.sa_handler = ServeSignalHandler;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::printf("serve listening on 127.0.0.1:%d\n", daemon.value()->port());
  std::fflush(stdout);

  while (!g_serve_stop.load(std::memory_order_relaxed) &&
         !daemon.value()->server().quit_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("serve draining...\n");
  std::fflush(stdout);
  daemon.value()->Shutdown();
  if (!ledger_out.empty()) {
    obs::PrivacyLedger::Default().WriteJsonl(ledger_out).CheckOK();
    std::printf("wrote %zu ledger events -> %s\n",
                obs::PrivacyLedger::Default().size(), ledger_out.c_str());
  }
  std::printf("serve drained, exiting\n");
  return 0;
}

// One HTTP request against a running daemon — the curl stand-in the smoke
// tests (and quick-start examples) drive the /v1 API with.
int Call(int argc, char** argv) {
  int64_t port = 0;
  int64_t timeout_ms = 30000;
  std::string method = "POST", path = "/v1/train", body, body_file;
  FlagParser parser;
  parser.AddInt("port", &port, "daemon port on 127.0.0.1");
  parser.AddString("method", &method, "HTTP method (GET|POST)");
  parser.AddString("path", &path, "request path, e.g. /v1/train");
  parser.AddString("body", &body, "JSON request body");
  parser.AddString("body-file", &body_file,
                   "read the request body from this file instead");
  parser.AddInt("timeout-ms", &timeout_ms, "per-attempt IO deadline");
  parser.Parse(argc, argv).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp call");
    return 0;
  }
  if (!body_file.empty()) {
    std::ifstream in(body_file);
    if (!in) {
      std::fprintf(stderr, "call: cannot read %s\n", body_file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    body = buffer.str();
  }

  auto reply =
      HttpCallWithRetry(port, method, path, body, static_cast<int>(timeout_ms));
  if (!reply.ok()) {
    std::fprintf(stderr, "call: %s\n", reply.status().message().c_str());
    return 1;
  }
  // Status line to stderr (diagnostics), body to stdout (data): scripts can
  // pipe the JSON while still seeing the HTTP outcome.
  const size_t eol = reply.value().head.find("\r\n");
  std::fprintf(stderr, "%s\n",
               reply.value().head.substr(0, eol).c_str());
  std::printf("%s", reply.value().body.c_str());
  return reply.value().ok200 ? 0 : 1;
}

int Version() {
  std::printf("%s\n", obs::BuildInfoSummaryLine().c_str());
  return 0;
}

int Postmortem(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) != "finalize") {
    std::printf("usage: boltondp postmortem finalize --dir DIR\n");
    return 1;
  }
  std::string dir;
  FlagParser parser;
  parser.AddString("dir", &dir,
                   "directory holding postmortem.raw from a crashed run");
  parser.Parse(argc - 1, argv + 1).CheckOK();
  if (parser.help_requested()) {
    parser.PrintHelp("boltondp postmortem finalize");
    return 0;
  }
  if (dir.empty()) {
    std::fprintf(stderr, "--dir is required\n");
    return 1;
  }
  const Status status = obs::FinalizePostmortem(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s/postmortem.json\n", dir.c_str());
  return 0;
}

int Usage() {
  std::printf(
      "boltondp — bolt-on differentially private SGD analytics\n"
      "usage: boltondp <train|evaluate|datagen|serve|call|scrape|profile|"
      "version|postmortem> [flags]\n"
      "       boltondp <command> --help for per-command flags\n");
  return 1;
}

int Main(int argc, char** argv) {
  // Arm the flight recorder for every command: if anything crashes, the
  // recent-log ring must already be collecting.
  obs::FlightRecorder::Default();
  if (argc < 2) return Usage();
  std::string command = argv[1];
  // Shift argv so per-command parsers see only their flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "train") return Train(sub_argc, sub_argv);
  if (command == "evaluate") return Evaluate(sub_argc, sub_argv);
  if (command == "datagen") return DataGen(sub_argc, sub_argv);
  if (command == "serve") return Serve(sub_argc, sub_argv);
  if (command == "call") return Call(sub_argc, sub_argv);
  if (command == "scrape") return Scrape(sub_argc, sub_argv);
  if (command == "profile") return Profile(sub_argc, sub_argv);
  if (command == "version") return Version();
  if (command == "postmortem") return Postmortem(sub_argc, sub_argv);
  return Usage();
}

}  // namespace
}  // namespace bolton

int main(int argc, char** argv) { return bolton::Main(argc, argv); }
