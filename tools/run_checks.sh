#!/bin/sh
# Full verification sweep: a Debug + address/UB-sanitizer build of the whole
# tree, the entire ctest suite under the sanitizers, and a schema check of
# the telemetry JSONL the CLI emits. Wired to `cmake --build build -t check`;
# also runnable standalone from the repo root:
#
#   sh tools/run_checks.sh [build-dir]
#
# The sanitized build lives in its own directory (default build-asan/) so it
# never disturbs the primary build.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"

echo "== configure (Debug, -fsanitize=address,undefined) =="
cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  > "$BUILD.configure.log" 2>&1 || { cat "$BUILD.configure.log"; exit 1; }

echo "== build =="
cmake --build "$BUILD" -j

echo "== ctest (sanitized) =="
ctest --test-dir "$BUILD" --output-on-failure -j 4

echo "== telemetry schema check =="
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
CLI="$BUILD/tools/boltondp"
"$CLI" datagen --dataset protein --scale 0.02 --seed 3 \
    --out "$WORKDIR/train.libsvm" > /dev/null
"$CLI" train --data "$WORKDIR/train.libsvm" --algo scs13 \
    --epsilon 2 --lambda 0.01 --passes 3 --batch 10 \
    --model "$WORKDIR/model.txt" \
    --trace-out "$WORKDIR/trace.jsonl" \
    --ledger-out "$WORKDIR/ledger.jsonl" > /dev/null

# Every ledger line must be one JSON object carrying the full event schema.
awk '
  !/^\{"seq":[0-9]+,/ || !/\}$/ { bad = 1 }
  !/"kind":"(noise_draw|accountant_charge|calibration)"/ { bad = 1 }
  !/"epsilon":/ || !/"sensitivity":/ || !/"noise_norm":/ { bad = 1 }
  !/"rng_fingerprint":/ || !/"accepted":(true|false)/ { bad = 1 }
  bad { print "malformed ledger line " NR ": " $0; exit 1 }
  END { if (NR == 0) { print "empty ledger"; exit 1 } }
' "$WORKDIR/ledger.jsonl"

# Every trace line must be a span with an id and a duration.
awk '
  !/^\{"name":"/ || !/"id":[0-9]+/ || !/"dur_ns":[0-9]+/ {
    print "malformed trace line " NR ": " $0; exit 1
  }
  END { if (NR == 0) { print "empty trace"; exit 1 } }
' "$WORKDIR/trace.jsonl"

echo "all checks passed"
