#!/bin/sh
# Full verification sweep: a Debug + address/UB-sanitizer build of the whole
# tree, the entire ctest suite under the sanitizers, a schema check of the
# telemetry JSONL the CLI emits, and a ThreadSanitizer pass over the obs
# suites (the observability HTTP server scrapes the lock-free registries
# from a real background thread, and the sampling profiler fires SIGPROF
# into running threads), plus an end-to-end profiled train whose collapsed
# stacks and /profile JSON are schema-checked. Wired to
# `cmake --build build -t check`; also runnable standalone from the repo root:
#
#   sh tools/run_checks.sh [build-dir] [tsan-build-dir]
#
# The sanitized builds live in their own directories (default build-asan/
# and build-tsan/) so they never disturb the primary build.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"
TSAN_BUILD="${2:-$ROOT/build-tsan}"
PRIMARY_BUILD="${3:-$ROOT/build}"

echo "== configure (Debug, -fsanitize=address,undefined) =="
cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  > "$BUILD.configure.log" 2>&1 || { cat "$BUILD.configure.log"; exit 1; }

echo "== build =="
cmake --build "$BUILD" -j

echo "== ctest (sanitized) =="
ctest --test-dir "$BUILD" --output-on-failure -j 4

echo "== telemetry schema check =="
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
CLI="$BUILD/tools/boltondp"
"$CLI" datagen --dataset protein --scale 0.02 --seed 3 \
    --out "$WORKDIR/train.libsvm" > /dev/null
"$CLI" train --data "$WORKDIR/train.libsvm" --algo scs13 \
    --epsilon 2 --lambda 0.01 --passes 3 --batch 10 \
    --model "$WORKDIR/model.txt" \
    --trace-out "$WORKDIR/trace.jsonl" \
    --ledger-out "$WORKDIR/ledger.jsonl" > /dev/null

# Every ledger line must be one JSON object carrying the full event schema.
awk '
  !/^\{"seq":[0-9]+,/ || !/\}$/ { bad = 1 }
  !/"kind":"(noise_draw|accountant_charge|calibration|fault|retry|checkpoint|resume|budget_reserve|budget_commit|budget_refund|budget_refusal|budget_recover)"/ { bad = 1 }
  !/"epsilon":/ || !/"sensitivity":/ || !/"noise_norm":/ { bad = 1 }
  !/"rng_fingerprint":/ || !/"accepted":(true|false)/ { bad = 1 }
  bad { print "malformed ledger line " NR ": " $0; exit 1 }
  END { if (NR == 0) { print "empty ledger"; exit 1 } }
' "$WORKDIR/ledger.jsonl"

# Every trace line must be one JSON span carrying the full schema: name,
# id, parent link, start time, and duration (the parent/start fields are
# what the span-tree consumers key on).
awk '
  !/^\{"name":"/ || !/\}$/ { bad = 1 }
  !/"id":[0-9]+/ || !/"parent":[0-9]+/ { bad = 1 }
  !/"start_ns":[0-9]+/ || !/"dur_ns":[0-9]+/ { bad = 1 }
  !/"count":[0-9]+/ || !/"thread":[0-9]+/ { bad = 1 }
  bad { print "malformed trace line " NR ": " $0; exit 1 }
  END { if (NR == 0) { print "empty trace"; exit 1 } }
' "$WORKDIR/trace.jsonl"

# The live scrape surface must serve valid exposition during a train run.
"$CLI" train --data "$WORKDIR/train.libsvm" --algo scs13 \
    --epsilon 2 --lambda 0.01 --passes 3 --batch 10 \
    --model "$WORKDIR/model2.txt" \
    --serve-obs 0 --serve-obs-linger 30000 > "$WORKDIR/obs.log" 2>&1 &
obs_pid=$!
i=0
while [ $i -lt 300 ]; do
  grep -q "obs server lingering" "$WORKDIR/obs.log" && break
  i=$((i + 1)); sleep 0.1
done
port=$(sed -n 's/^obs server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$WORKDIR/obs.log" | head -1)
"$CLI" scrape --port "$port" --path /metrics \
    | grep -q 'psgd_pass_seconds_bucket{le="+Inf"}'
# The flight-recorder surfaces must serve during the same linger: /logz
# replays the recent-log ring as JSONL (the request-path rate-limited log
# guarantees at least one event by now), /buildz identifies the binary.
"$CLI" scrape --port "$port" --path "/logz?tail=50" | grep -q '"msg":'
"$CLI" scrape --port "$port" --path /flightrecorder \
    | grep -q '"schema":"bolton-flightrecorder-v1"'
"$CLI" scrape --port "$port" --path /buildz | grep -q '"git_sha":'
# The /profile endpoint must serve a valid timed profile of the live
# process (the lingering server thread is what gets sampled here; the
# point is the end-to-end path and the JSON schema, not hot frames).
"$CLI" profile --port "$port" --seconds 1 --hz 251 --format json \
    --out "$WORKDIR/live_profile.json" > /dev/null
grep -q '"schema":"boltondp-profile-v1"' "$WORKDIR/live_profile.json"
grep -q '"frames":\[' "$WORKDIR/live_profile.json"
"$CLI" scrape --port "$port" --path /quitquitquit > /dev/null
wait "$obs_pid"

echo "== profiler pass (collapsed stacks from a profiled train) =="
# A bigger dataset than the schema-check one: the profiled window must be
# long enough to collect samples even on a fast machine (≈0.5s unsanitized
# at 499 Hz ⇒ dozens of samples; the sanitized build only runs longer).
"$CLI" datagen --dataset protein --scale 0.3 --seed 3 \
    --out "$WORKDIR/prof_train.libsvm" > /dev/null
"$CLI" train --data "$WORKDIR/prof_train.libsvm" --algo ours \
    --epsilon 2 --lambda 0.01 --passes 30 --batch 10 \
    --model "$WORKDIR/prof_model.txt" \
    --profile-out "$WORKDIR/prof.collapsed" --profile-hz 499 \
    > "$WORKDIR/prof.log"
grep -q "wrote profile" "$WORKDIR/prof.log"
# Collapsed-stack format: every line is "frame;frame;...;leaf COUNT" —
# the last space-separated token must be the sample count.
awk '
  $NF !~ /^[0-9]+$/ { print "malformed collapsed line " NR ": " $0; exit 1 }
  END { if (NR == 0) { print "empty profile"; exit 1 } }
' "$WORKDIR/prof.collapsed"

echo "== perf-counter pass (hardware counters + Chrome trace export) =="
# A counter-enabled sharded train must produce (a) a Chrome/Perfetto trace
# that is valid JSON with named per-worker tracks and (b) perf_* gauges in
# the metrics dump. Counter availability depends on the environment
# (perf_event_paranoid, container PMU); the degradation contract is that
# everything below works either way, with hardware-specific assertions
# gated LOUDLY on the perf.available gauge.
"$CLI" train --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 2 --lambda 0.01 --passes 3 --batch 10 --shards 2 \
    --model "$WORKDIR/perf_model.txt" \
    --metrics --trace-chrome-out "$WORKDIR/trace_chrome.json" \
    > "$WORKDIR/perf.log" 2>&1
grep -q "wrote .* spans as Chrome trace" "$WORKDIR/perf.log"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORKDIR/trace_chrome.json" > /dev/null
else
  echo "note: python3 missing, skipping Chrome-trace JSON validation"
fi
grep -q '"name":"thread_name"' "$WORKDIR/trace_chrome.json"
grep -q 'psgd-shard-' "$WORKDIR/trace_chrome.json"
grep -q '"ph":"X"' "$WORKDIR/trace_chrome.json"
# The metrics dump must carry the perf gauge family whatever the tier.
grep -q 'perf\.available' "$WORKDIR/perf.log"
grep -q 'perf\.task_clock_seconds_total' "$WORKDIR/perf.log"
grep -q 'process\.peak_rss_bytes' "$WORKDIR/perf.log"
if grep -Eq '^perf\.available[[:space:]]+1' "$WORKDIR/perf.log"; then
  # Real PMU: the span counters must carry hardware counts.
  grep -q '"counters":{"available":true' "$WORKDIR/trace_chrome.json"
else
  echo "NOTE: hardware counters unavailable here (perf.available=0 —" \
       "perf_event_paranoid or missing PMU); task-clock-only checks ran," \
       "hardware-count assertions skipped"
fi

echo "== kernel-dispatch pass (BOLTON_SIMD tiers release identical models) =="
# The SIMD bit-identity contract, end to end: the same sharded train forced
# onto scalar, SSE2, and AVX2 gradient kernels must release byte-identical
# model files. An unsupported tier clamps to the best available with a
# warning (never fails), so this passes on any host — on a machine without
# AVX2 the avx2 leg simply re-runs the best supported tier.
"$CLI" version | grep -Eq 'scalar|sse2|avx2|avx512' \
    || { echo "version line does not name the SIMD tier"; exit 1; }
for tier in scalar sse2 avx2; do
  BOLTON_SIMD="$tier" "$CLI" train --data "$WORKDIR/train.libsvm" \
      --algo ours --epsilon 2 --lambda 0.01 --passes 3 --batch 10 \
      --shards 2 --model "$WORKDIR/model_simd_$tier.txt" > /dev/null
done
cmp "$WORKDIR/model_simd_scalar.txt" "$WORKDIR/model_simd_sse2.txt" \
    || { echo "sse2 kernels released a different model"; exit 1; }
cmp "$WORKDIR/model_simd_scalar.txt" "$WORKDIR/model_simd_avx2.txt" \
    || { echo "avx2 kernels released a different model"; exit 1; }

echo "== fault-injection pass (failpoints + checkpoint/resume, sanitized) =="
# An armed failpoint must abort the run with a clean injected error while
# leaving a resumable checkpoint behind. --ledger-out enables the ledger so
# the interrupted run's calibration survives into the checkpoint snapshot
# (the file itself is never written on the failing run).
CKPT="$WORKDIR/ckpt"
mkdir -p "$CKPT"
if BOLTON_FAILPOINTS="psgd.pass:error@3" "$CLI" train \
    --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 2 --lambda 0.01 --passes 5 --batch 10 \
    --model "$WORKDIR/fault_model.txt" \
    --checkpoint-dir "$CKPT" --checkpoint-every 1 \
    --ledger-out "$WORKDIR/fault_ledger.jsonl" \
    > "$WORKDIR/fault.log" 2>&1; then
  echo "train with armed failpoint unexpectedly succeeded"; exit 1
fi
grep -q "failpoint 'psgd.pass'" "$WORKDIR/fault.log"
[ -f "$CKPT/bolton.ckpt" ] || { echo "no checkpoint left behind"; exit 1; }
# Resume must finish the run and carry the whole fault-tolerance trail:
# the restored calibration, checkpoint + resume markers, and exactly one
# noise draw for the entire (interrupted + resumed) release.
"$CLI" train --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 2 --lambda 0.01 --passes 5 --batch 10 \
    --model "$WORKDIR/fault_model.txt" \
    --checkpoint-dir "$CKPT" --resume \
    --ledger-out "$WORKDIR/fault_ledger.jsonl" > /dev/null
grep -q '"kind":"resume"' "$WORKDIR/fault_ledger.jsonl"
grep -q '"kind":"checkpoint"' "$WORKDIR/fault_ledger.jsonl"
[ "$(grep -c '"kind":"calibration"' "$WORKDIR/fault_ledger.jsonl")" -eq 1 ]
[ "$(grep -c '"kind":"noise_draw"' "$WORKDIR/fault_ledger.jsonl")" -eq 1 ]
[ ! -f "$CKPT/bolton.ckpt" ] || { echo "checkpoint not cleaned up"; exit 1; }

echo "== serve chaos pass (crash between charge and persist, sanitized) =="
# The exactly-once-spend crash test the budget protocol exists for: a panic
# failpoint kills the daemon at the commit persist — after the in-memory
# charge, before the disk write, the worst possible instant. The state file
# still shows the write-ahead hold, so the restarted daemon must promote it
# to spend (once), leave the tenant charged, and say so on its ledger.
SERVEDIR="$WORKDIR/serve_state"
mkdir -p "$SERVEDIR"
BOLTON_FAILPOINTS="serve.budget_commit:panic@1" "$CLI" serve --port 0 \
    --state-dir "$SERVEDIR" --budget-epsilon 1.0 --budget-delta 1e-5 \
    > "$WORKDIR/serve_crash.log" 2>&1 &
serve_pid=$!
i=0
serve_port=""
while [ $i -lt 300 ]; do
  serve_port=$(sed -n 's/^serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORKDIR/serve_crash.log" | head -1)
  [ -n "$serve_port" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$serve_port" ] || { cat "$WORKDIR/serve_crash.log"; exit 1; }
# The train itself dies with the daemon; only the crash matters here.
"$CLI" call --port "$serve_port" --path /v1/train \
    --body '{"tenant":"acme","algorithm":"bolton","epsilon":0.3,"delta":1e-6,"passes":1,"scale":0.02}' \
    > /dev/null 2>&1 || true
if wait "$serve_pid" 2> /dev/null; then
  echo "serve survived an armed commit panic"; exit 1
fi
# Restart on the same state: the pending hold must promote to spend.
"$CLI" serve --port 0 --state-dir "$SERVEDIR" \
    --budget-epsilon 1.0 --budget-delta 1e-5 \
    --ledger-out "$WORKDIR/serve_recover.ledger.jsonl" \
    > "$WORKDIR/serve_recover.log" 2>&1 &
serve_pid=$!
i=0
serve_port=""
while [ $i -lt 300 ]; do
  serve_port=$(sed -n 's/^serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORKDIR/serve_recover.log" | head -1)
  [ -n "$serve_port" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$serve_port" ] || { cat "$WORKDIR/serve_recover.log"; exit 1; }
"$CLI" call --port "$serve_port" --method GET \
    --path "/v1/budget?tenant=acme" > "$WORKDIR/serve_recover.budget.json"
grep -q '"spent_epsilon":0.3' "$WORKDIR/serve_recover.budget.json" \
    || { echo "crash forgot the charged spend"; \
         cat "$WORKDIR/serve_recover.budget.json"; exit 1; }
grep -q '"recovered":1' "$WORKDIR/serve_recover.budget.json" \
    || { echo "hold was not promoted exactly once"; \
         cat "$WORKDIR/serve_recover.budget.json"; exit 1; }
grep -q "promoted 1 pending budget hold" "$WORKDIR/serve_recover.log"
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "recovered serve did not drain"; exit 1; }
grep '"kind":"budget_recover"' "$WORKDIR/serve_recover.ledger.jsonl" \
    | grep -q '"tenant":"acme"' \
    || { echo "no tenant-keyed budget_recover ledger event"; exit 1; }

echo "== postmortem pass (failpoint-panic'd train leaves a crash report) =="
# A train killed mid-run by an armed panic failpoint must leave a raw crash
# dump that `boltondp postmortem finalize` turns into a schema-valid
# bolton-postmortem-v1 report: symbolized backtrace, a non-empty recent-log
# ring, build identity, and the armed failpoint spec.
PM="$WORKDIR/pm"
PMCKPT="$WORKDIR/pm_ckpt"
mkdir -p "$PMCKPT"
if BOLTON_FAILPOINTS="psgd.pass:panic@2" "$CLI" train \
    --data "$WORKDIR/train.libsvm" --algo ours \
    --epsilon 2 --lambda 0.01 --passes 5 --batch 10 \
    --model "$WORKDIR/pm_model.txt" \
    --checkpoint-dir "$PMCKPT" --checkpoint-every 1 \
    --postmortem-dir "$PM" \
    > "$WORKDIR/pm.log" 2>&1; then
  echo "train with armed panic failpoint unexpectedly survived"; exit 1
fi
"$CLI" postmortem finalize --dir "$PM" > /dev/null
[ -f "$PM/postmortem.json" ] || { echo "no postmortem.json"; exit 1; }
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$PM/postmortem.json" > /dev/null
else
  echo "note: python3 missing, skipping postmortem JSON validation"
fi
grep -q '"schema":"bolton-postmortem-v1"' "$PM/postmortem.json"
grep -q '"backtrace":\[' "$PM/postmortem.json"
grep -q '"resolved":true' "$PM/postmortem.json"
grep -q '"recent_logs":\[{' "$PM/postmortem.json"
grep -q '"git_sha":"' "$PM/postmortem.json"
grep -q '"failpoints":"psgd.pass:panic@2"' "$PM/postmortem.json"
# Finalizing twice is safe; a crash-free armed run leaves nothing behind.
"$CLI" postmortem finalize --dir "$PM" > /dev/null

echo "== ThreadSanitizer pass (obs server, registries, pool, executor) =="
cmake -S "$ROOT" -B "$TSAN_BUILD" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
  > "$TSAN_BUILD.configure.log" 2>&1 || { cat "$TSAN_BUILD.configure.log"; exit 1; }
cmake --build "$TSAN_BUILD" -j \
  -t obs_metrics_test -t obs_ledger_test -t obs_export_test -t obs_http_test \
  -t profiler_test -t perf_counters_test -t thread_pool_test \
  -t parallel_executor_test -t solver_test -t failpoint_test \
  -t checkpoint_test -t logging_test -t postmortem_test \
  -t serve_budget_test -t serve_chaos_test -t serve_daemon_test
ctest --test-dir "$TSAN_BUILD" --output-on-failure \
  -R '^(obs_(metrics|ledger|export|http)|profiler|perf_counters|thread_pool|parallel_executor|solver|failpoint|checkpoint|logging|postmortem|serve_(budget|chaos|daemon))_test$'

echo "== bench regression gate (parallel scaling vs BENCH_PR9.json) =="
# Gate only when python3 and the baseline are available (the baseline rows
# were captured on the reference machine; the generous threshold absorbs
# machine-to-machine noise while still catching order-of-magnitude
# regressions in the sharded executor). BENCH_PR9 is the pooled-executor
# baseline and carries an explicit serial row per m.
if command -v python3 > /dev/null 2>&1 && [ -f "$ROOT/BENCH_PR9.json" ]; then
  # Run the unsanitized build — the baseline was captured without
  # sanitizers, so an ASan binary would always look like a regression.
  cmake -S "$ROOT" -B "$PRIMARY_BUILD" \
      > "$WORKDIR/primary.configure.log" 2>&1 \
      || { cat "$WORKDIR/primary.configure.log"; exit 1; }
  cmake --build "$PRIMARY_BUILD" -j -t bench_parallel_scaling
  "$PRIMARY_BUILD/bench/bench_parallel_scaling" --scale 0.05 \
      --json-out "$WORKDIR/parallel_scaling.json" > /dev/null
  # Every row must carry an explicit counters object — hardware counts or
  # a declared {"available":false,...}; silence is the one invalid state.
  python3 - "$WORKDIR/parallel_scaling.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = doc["results"]
assert rows, "no bench rows"
for row in rows:
    counters = row.get("counters")
    assert isinstance(counters, dict), f"row missing counters: {row['name']}"
    assert "available" in counters, f"counters missing 'available': {row['name']}"
    assert "task_clock_ns" in counters, f"counters missing task_clock_ns: {row['name']}"
    if counters["available"]:
        for field in ("cycles", "instructions", "ipc", "cache_miss_rate"):
            assert field in counters, f"counters missing {field}: {row['name']}"
print(f"checked counters on {len(rows)} bench rows")
EOF
  python3 "$ROOT/tools/benchdiff.py" diff \
      "$ROOT/BENCH_PR9.json" "$WORKDIR/parallel_scaling.json" \
      --threshold 0.75
else
  echo "skipped (python3 or BENCH_PR9.json missing)"
fi

echo "== bench regression gate (serve throughput vs BENCH_PR10.json) =="
# Same contract as above for the serve daemon: catch order-of-magnitude
# request-rate collapses, absorb host-to-host (and run-to-run; the daemon
# numbers are the noisiest in the suite) variance.
if command -v python3 > /dev/null 2>&1 && [ -f "$ROOT/BENCH_PR10.json" ]; then
  cmake --build "$PRIMARY_BUILD" -j -t bench_serve_throughput
  "$PRIMARY_BUILD/bench/bench_serve_throughput" \
      --json-out "$WORKDIR/serve_throughput.json" > /dev/null 2>&1
  python3 "$ROOT/tools/benchdiff.py" diff \
      "$ROOT/BENCH_PR10.json" "$WORKDIR/serve_throughput.json" \
      --threshold 0.75
else
  echo "skipped (python3 or BENCH_PR10.json missing)"
fi

echo "all checks passed"
