#!/usr/bin/env python3
"""Compare and aggregate boltondp bench-result JSON files.

The bench binaries write machine-readable rows with --json-out=FILE
(schema "boltondp-bench-v1": {"schema": ..., "results": [{figure, name,
dataset, algo, epsilon, wall_seconds, rows_per_sec, accuracy}, ...]}).
This tool turns those into a perf trajectory:

  # Merge per-bench outputs into one baseline at the repo root:
  tools/benchdiff.py merge BENCH_PR3.json fig2.json fig3.json ...

  # Diff a new run against a baseline; exits 1 on >10% throughput
  # regression (or accuracy loss beyond --accuracy-drop):
  tools/benchdiff.py diff BENCH_PR3.json BENCH_PR4.json
  tools/benchdiff.py diff old.json new.json --threshold 0.10

Rows are matched on (figure, name). Throughput regression means
rows_per_sec fell by more than --threshold relative to the baseline; for
rows without a throughput (accuracy-only figures), wall_seconds growing by
more than the threshold counts instead, but only when both sides measured
a meaningful duration (>= --min-seconds, default 0.05s — sub-50ms rows are
noise at this scale).

Rows may carry an optional "profile" object (schema boltondp-profile-v1,
written when a bench ran under the sampling profiler). It is passed
through merge untouched, and a throughput regression whose two sides both
carry one gets a "hottest:" diagnostic line showing how the top self-time
frame shifted. Rows without the field — every baseline predating the
profiler — merge and diff exactly as before.

Rows may also carry an optional "counters" object (hardware-counter delta
for the row's work: ipc, cache_miss_rate, branch_miss_rate, plus the raw
counts, or {"available": false, ...} where the PMU was unreachable). A
throughput regression whose two sides both carry available counters gets a
"counters:" diagnostic line showing the IPC and cache-miss-rate shift —
distinguishing "got memory-bound" from "doing more work". Counter-less
baselines (for example BENCH_PR4.json) diff exactly as before.
"""

import argparse
import json
import sys

SCHEMA = "boltondp-bench-v1"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as err:
        sys.exit(f"cannot read {path}: {err.strerror or err}")
    except json.JSONDecodeError as err:
        sys.exit(f"{path}: not valid JSON ({err})")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"{path}: expected schema '{SCHEMA}', got {doc.get('schema')!r}")
    results = doc.get("results")
    if not isinstance(results, list):
        sys.exit(f"{path}: missing 'results' array")
    return results


def row_key(row):
    return (row.get("figure", ""), row.get("name", ""))


def cmd_merge(args):
    merged, seen = [], set()
    for path in args.inputs:
        for row in load(path):
            key = row_key(row)
            if key in seen:
                print(f"warning: duplicate row {key} from {path}, keeping first",
                      file=sys.stderr)
                continue
            seen.add(key)
            merged.append(row)
    with open(args.output, "w") as f:
        json.dump({"schema": SCHEMA, "results": merged}, f,
                  indent=1, separators=(",", ":"))
        f.write("\n")
    print(f"merged {len(merged)} rows from {len(args.inputs)} file(s) "
          f"-> {args.output}")
    return 0


def pct(new, old):
    return 100.0 * (new - old) / old


def top_frame(row):
    """(name, self_pct) of the hottest frame in a row's profile, or None.

    Tolerant by design: profiles are optional and may be malformed (e.g. a
    truncated run); any shape surprise means "no profile" rather than a
    crash.
    """
    profile = row.get("profile")
    if not isinstance(profile, dict):
        return None
    frames = profile.get("frames")
    if not isinstance(frames, list) or not frames:
        return None
    frame = frames[0]
    if not isinstance(frame, dict) or "name" not in frame:
        return None
    return (str(frame["name"]), float(frame.get("self_pct", 0.0)))


def profile_note(base_row, new_row):
    """Human-readable hottest-frame shift, or None when either side lacks
    a usable profile."""
    b, n = top_frame(base_row), top_frame(new_row)
    if b is None or n is None:
        return None
    if b[0] == n[0]:
        return f"hottest: {n[0]} (self {b[1]:.1f}% -> {n[1]:.1f}%)"
    return (f"hottest: {b[0]} ({b[1]:.1f}%) -> {n[0]} ({n[1]:.1f}%)")


def counters_note(base_row, new_row):
    """Human-readable IPC / cache-miss shift, or None when either side
    lacks available hardware counters. Tolerant like top_frame: malformed
    counter objects mean "no note", never a crash."""
    try:
        b, n = base_row.get("counters"), new_row.get("counters")
        if not (isinstance(b, dict) and isinstance(n, dict)):
            return None
        if not (b.get("available") and n.get("available")):
            return None
        return (f"counters: ipc {float(b['ipc']):.2f} -> "
                f"{float(n['ipc']):.2f}, cache-miss "
                f"{100 * float(b['cache_miss_rate']):.2f}% -> "
                f"{100 * float(n['cache_miss_rate']):.2f}%")
    except (KeyError, TypeError, ValueError):
        return None


def cmd_diff(args):
    base = {row_key(r): r for r in load(args.baseline)}
    new = {row_key(r): r for r in load(args.candidate)}
    common = sorted(set(base) & set(new))
    if not common:
        sys.exit("no common (figure, name) rows between the two files")

    regressions, improvements = [], []
    for key in common:
        b, n = base[key], new[key]
        b_tp, n_tp = b.get("rows_per_sec", 0), n.get("rows_per_sec", 0)
        if b_tp > 0 and n_tp > 0:
            if n_tp < b_tp * (1.0 - args.threshold):
                line = (f"{key[0]}/{key[1]}: throughput {b_tp:.1f} -> "
                        f"{n_tp:.1f} rows/s ({pct(n_tp, b_tp):+.1f}%)")
                for note in (profile_note(b, n), counters_note(b, n)):
                    if note is not None:
                        line += f"\n             {note}"
                regressions.append(line)
            elif n_tp > b_tp * (1.0 + args.threshold):
                improvements.append(
                    f"{key[0]}/{key[1]}: throughput {pct(n_tp, b_tp):+.1f}%")
        else:
            b_s, n_s = b.get("wall_seconds", 0), n.get("wall_seconds", 0)
            if (b_s >= args.min_seconds and n_s >= args.min_seconds
                    and n_s > b_s * (1.0 + args.threshold)):
                regressions.append(
                    f"{key[0]}/{key[1]}: wall {b_s:.3f}s -> {n_s:.3f}s "
                    f"({pct(n_s, b_s):+.1f}%)")
        b_acc, n_acc = b.get("accuracy", -1), n.get("accuracy", -1)
        if b_acc >= 0 and n_acc >= 0 and n_acc < b_acc - args.accuracy_drop:
            regressions.append(
                f"{key[0]}/{key[1]}: accuracy {b_acc:.4f} -> {n_acc:.4f}")

    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))
    print(f"compared {len(common)} rows "
          f"({len(only_base)} only in baseline, {len(only_new)} only in candidate)")
    for line in improvements:
        print(f"  improved:  {line}")
    for line in regressions:
        print(f"  REGRESSED: {line}")
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) beyond "
              f"{100 * args.threshold:.0f}%")
        return 1
    print("OK: no regressions beyond threshold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    merge = sub.add_parser("merge", help="merge bench JSON files into one")
    merge.add_argument("output")
    merge.add_argument("inputs", nargs="+")
    merge.set_defaults(fn=cmd_merge)

    diff = sub.add_parser("diff", help="compare candidate against baseline")
    diff.add_argument("baseline")
    diff.add_argument("candidate")
    diff.add_argument("--threshold", type=float, default=0.10,
                      help="relative regression tolerance (default 0.10)")
    diff.add_argument("--accuracy-drop", type=float, default=0.05,
                      help="absolute accuracy drop tolerance (default 0.05)")
    diff.add_argument("--min-seconds", type=float, default=0.05,
                      help="ignore wall-time rows shorter than this")
    diff.set_defaults(fn=cmd_diff)

    args = parser.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
