#ifndef BOLTON_RANDOM_RNG_H_
#define BOLTON_RANDOM_RNG_H_

#include <cstdint>

namespace bolton {

/// A serialized Rng: the four xoshiro256** state words plus the Gaussian
/// cache. Checkpoints persist this so a resumed run continues the exact
/// random stream — permutations, splits, and noise draws — bit-identically
/// to an uninterrupted run (core/checkpoint.h).
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

/// Deterministic pseudo-random generator: xoshiro256** seeded via splitmix64.
///
/// One small, fast, well-tested engine is used everywhere in the library so
/// that experiments are reproducible from a single seed. The class satisfies
/// C++'s UniformRandomBitGenerator requirements, so it can also drive
/// standard-library distributions, though the library ships its own
/// (random/distributions.h) to keep results identical across standard-library
/// implementations.
///
/// Not cryptographically secure. Differential privacy formally requires
/// cryptographic randomness in adversarial deployments; swapping the engine
/// is a one-line change and none of the calibration logic depends on it.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` using splitmix64,
  /// which guarantees a non-degenerate (not all zero) state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next 64 random bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal deviate (mean 0, variance 1), via the polar
  /// (Marsaglia) method with one cached value.
  double Gaussian();

  /// Forks an independently seeded generator; used to give each
  /// worker/sub-task its own stream derived from the parent seed.
  Rng Split();

  /// 64-bit digest of the current engine state. Consumes no randomness;
  /// recorded by the privacy ledger (obs/ledger.h) so every noise draw in a
  /// dump is attributable to the generator state that produced it.
  uint64_t StateFingerprint() const;

  /// Captures / restores the full generator state (including the Gaussian
  /// cache). RestoreState(SaveState()) is an exact no-op: the subsequent
  /// stream is bit-identical. Consumes no randomness.
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace bolton

#endif  // BOLTON_RANDOM_RNG_H_
