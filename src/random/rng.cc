#include "random/rng.h"

#include <cmath>

#include "util/logging.h"

namespace bolton {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  BOLTON_CHECK(n > 0);
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: two deviates per accepted point.
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

Rng Rng::Split() { return Rng(Next()); }

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.words[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.words[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Rng::StateFingerprint() const {
  // Fold the four state words through splitmix64 so nearby states map to
  // unrelated digests. Read-only: the generator sequence is unaffected.
  uint64_t digest = 0;
  for (uint64_t word : s_) {
    uint64_t sm = digest ^ word;
    digest = SplitMix64(&sm);
  }
  return digest;
}

}  // namespace bolton
