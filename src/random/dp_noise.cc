#include "random/dp_noise.h"

#include <cmath>

#include "random/distributions.h"
#include "util/strings.h"

namespace bolton {

Result<Vector> SampleSphericalLaplace(size_t dim, double sensitivity,
                                      double epsilon, Rng* rng) {
  if (dim < 1) return Status::InvalidArgument("noise dimension must be >= 1");
  if (sensitivity < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be > 0 for epsilon-DP noise");
  }
  if (sensitivity == 0.0) return Vector(dim);
  // Appendix E: direction uniform on the sphere, magnitude ~ Gamma(d, Δ₂/ε).
  Vector direction = SampleUnitSphere(dim, rng);
  double magnitude =
      SampleGamma(static_cast<double>(dim), sensitivity / epsilon, rng);
  direction *= magnitude;
  return direction;
}

Result<double> GaussianMechanismSigma(double sensitivity, double epsilon,
                                      double delta) {
  if (sensitivity < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "Gaussian mechanism (Theorem 3) requires epsilon in (0,1); got %g",
        epsilon));
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("delta must be in (0,1); got %g", delta));
  }
  const double c = std::sqrt(2.0 * std::log(1.25 / delta));
  return c * sensitivity / epsilon;
}

Result<Vector> SampleGaussianMechanism(size_t dim, double sensitivity,
                                       double epsilon, double delta,
                                       Rng* rng) {
  if (dim < 1) return Status::InvalidArgument("noise dimension must be >= 1");
  BOLTON_ASSIGN_OR_RETURN(double sigma,
                          GaussianMechanismSigma(sensitivity, epsilon, delta));
  return SampleGaussianVector(dim, sigma, rng);
}

double LaplaceNoiseNormBound(size_t dim, double sensitivity, double epsilon,
                             double gamma) {
  double d = static_cast<double>(dim);
  return d * std::log(d / gamma) * sensitivity / epsilon;
}

Result<Vector> SampleDpNoise(NoiseMechanism mechanism, size_t dim,
                             double sensitivity, double epsilon, double delta,
                             Rng* rng) {
  switch (mechanism) {
    case NoiseMechanism::kLaplace:
      return SampleSphericalLaplace(dim, sensitivity, epsilon, rng);
    case NoiseMechanism::kGaussian:
      return SampleGaussianMechanism(dim, sensitivity, epsilon, delta, rng);
  }
  return Status::Internal("unknown noise mechanism");
}

}  // namespace bolton
