#include "random/dp_noise.h"

#include <cmath>

#include "obs/ledger.h"
#include "obs/metrics.h"
#include "random/distributions.h"
#include "util/strings.h"

namespace bolton {

namespace {

/// One ledger event per mechanism draw, with the parameters actually used.
/// `fingerprint` must be captured from the rng BEFORE the draw consumed it.
void RecordDrawEvent(const char* mechanism, const char* label, size_t dim,
                     double sensitivity, double epsilon, double delta,
                     double noise_scale, double noise_norm,
                     uint64_t fingerprint) {
  obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
  if (!ledger.enabled()) return;
  obs::LedgerEvent event;
  event.kind = "noise_draw";
  event.mechanism = mechanism;
  event.label = label;
  event.epsilon = epsilon;
  event.delta = delta;
  event.sensitivity = sensitivity;
  event.noise_scale = noise_scale;
  event.noise_norm = noise_norm;
  event.dim = dim;
  event.rng_fingerprint = fingerprint;
  ledger.Record(std::move(event));
}

}  // namespace

Result<Vector> SampleSphericalLaplace(size_t dim, double sensitivity,
                                      double epsilon, Rng* rng) {
  if (dim < 1) return Status::InvalidArgument("noise dimension must be >= 1");
  if (sensitivity < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be > 0 for epsilon-DP noise");
  }
  static obs::Counter* draws =
      obs::MetricsRegistry::Default().GetCounter("dp_noise.laplace_draws");
  draws->Increment();
  const bool audit = obs::PrivacyLedger::Default().enabled();
  const uint64_t fingerprint = audit ? rng->StateFingerprint() : 0;
  if (sensitivity == 0.0) {
    RecordDrawEvent("laplace", "dp_noise.spherical_laplace", dim,
                    sensitivity, epsilon, 0.0, 0.0, 0.0, fingerprint);
    return Vector(dim);
  }
  // Appendix E: direction uniform on the sphere, magnitude ~ Gamma(d, Δ₂/ε).
  Vector direction = SampleUnitSphere(dim, rng);
  double magnitude =
      SampleGamma(static_cast<double>(dim), sensitivity / epsilon, rng);
  direction *= magnitude;
  RecordDrawEvent("laplace", "dp_noise.spherical_laplace", dim, sensitivity,
                  epsilon, 0.0, sensitivity / epsilon, magnitude, fingerprint);
  return direction;
}

Result<double> GaussianMechanismSigma(double sensitivity, double epsilon,
                                      double delta) {
  if (sensitivity < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "Gaussian mechanism (Theorem 3) requires epsilon in (0,1); got %g",
        epsilon));
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("delta must be in (0,1); got %g", delta));
  }
  const double c = std::sqrt(2.0 * std::log(1.25 / delta));
  return c * sensitivity / epsilon;
}

Result<Vector> SampleGaussianMechanism(size_t dim, double sensitivity,
                                       double epsilon, double delta,
                                       Rng* rng) {
  if (dim < 1) return Status::InvalidArgument("noise dimension must be >= 1");
  BOLTON_ASSIGN_OR_RETURN(double sigma,
                          GaussianMechanismSigma(sensitivity, epsilon, delta));
  static obs::Counter* draws =
      obs::MetricsRegistry::Default().GetCounter("dp_noise.gaussian_draws");
  draws->Increment();
  const bool audit = obs::PrivacyLedger::Default().enabled();
  const uint64_t fingerprint = audit ? rng->StateFingerprint() : 0;
  Vector noise = SampleGaussianVector(dim, sigma, rng);
  RecordDrawEvent("gaussian", "dp_noise.gaussian_mechanism", dim, sensitivity,
                  epsilon, delta, sigma, noise.Norm(), fingerprint);
  return noise;
}

double LaplaceNoiseNormBound(size_t dim, double sensitivity, double epsilon,
                             double gamma) {
  double d = static_cast<double>(dim);
  return d * std::log(d / gamma) * sensitivity / epsilon;
}

Result<Vector> SampleDpNoise(NoiseMechanism mechanism, size_t dim,
                             double sensitivity, double epsilon, double delta,
                             Rng* rng) {
  switch (mechanism) {
    case NoiseMechanism::kLaplace:
      return SampleSphericalLaplace(dim, sensitivity, epsilon, rng);
    case NoiseMechanism::kGaussian:
      return SampleGaussianMechanism(dim, sensitivity, epsilon, delta, rng);
  }
  return Status::Internal("unknown noise mechanism");
}

}  // namespace bolton
