#include "random/distributions.h"

#include <cmath>

#include "util/logging.h"

namespace bolton {

namespace {

// Marsaglia & Tsang (2000), "A simple method for generating gamma variables".
// Valid for shape >= 1, scale 1.
double SampleGammaShapeGE1(double shape, Rng* rng) {
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = rng->Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    double u = rng->UniformDouble();
    if (u == 0.0) continue;
    double x2 = x * x;
    // Squeeze check first (cheap), then the full log check.
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

double SampleGamma(double shape, double scale, Rng* rng) {
  BOLTON_CHECK(shape > 0.0);
  BOLTON_CHECK(scale > 0.0);
  if (shape >= 1.0) return scale * SampleGammaShapeGE1(shape, rng);
  // Boost: if G ~ Gamma(shape+1) and U ~ Uniform(0,1), then
  // G * U^{1/shape} ~ Gamma(shape).
  double g = SampleGammaShapeGE1(shape + 1.0, rng);
  double u;
  do {
    u = rng->UniformDouble();
  } while (u == 0.0);
  return scale * g * std::pow(u, 1.0 / shape);
}

double SampleExponential(double scale, Rng* rng) {
  BOLTON_CHECK(scale > 0.0);
  double u;
  do {
    u = rng->UniformDouble();
  } while (u == 0.0);
  return -scale * std::log(u);
}

double SampleLaplace(double scale, Rng* rng) {
  // Difference of two iid exponentials is Laplace.
  return SampleExponential(scale, rng) - SampleExponential(scale, rng);
}

Vector SampleUnitSphere(size_t dim, Rng* rng) {
  BOLTON_CHECK(dim >= 1);
  // Normalizing iid Gaussians gives the uniform distribution on the sphere;
  // this is the standard trick referenced by the paper's Appendix E ([8]).
  Vector v(dim);
  double norm2;
  do {
    for (size_t i = 0; i < dim; ++i) v[i] = rng->Gaussian();
    norm2 = v.SquaredNorm();
  } while (norm2 == 0.0);
  v *= 1.0 / std::sqrt(norm2);
  return v;
}

Vector SampleUnitBall(size_t dim, Rng* rng) {
  Vector v = SampleUnitSphere(dim, rng);
  double r = std::pow(rng->UniformDouble(), 1.0 / static_cast<double>(dim));
  v *= r;
  return v;
}

Vector SampleGaussianVector(size_t dim, double sigma, Rng* rng) {
  BOLTON_CHECK(sigma >= 0.0);
  Vector v(dim);
  for (size_t i = 0; i < dim; ++i) v[i] = sigma * rng->Gaussian();
  return v;
}

}  // namespace bolton
