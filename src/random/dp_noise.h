#ifndef BOLTON_RANDOM_DP_NOISE_H_
#define BOLTON_RANDOM_DP_NOISE_H_

#include <cstddef>

#include "linalg/vector.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// The two output-perturbation mechanisms of the paper.
///
/// * `kLaplace` — pure ε-differential privacy via the spherical Laplace
///   ("gamma") mechanism of Theorem 1 / Appendix E: density
///   p(κ) ∝ exp(−ε‖κ‖ / Δ₂). Sampled as (direction uniform on the unit
///   sphere) × (magnitude ~ Gamma(d, Δ₂/ε)).
/// * `kGaussian` — (ε, δ)-differential privacy via the Gaussian mechanism of
///   Theorem 3: iid N(0, σ²) per coordinate with
///   σ = √(2 ln(1.25/δ)) · Δ₂ / ε, requiring ε ∈ (0, 1).
enum class NoiseMechanism { kLaplace, kGaussian };

/// Draws κ with density p(κ) ∝ exp(−ε‖κ‖/Δ₂) in R^dim (Theorem 1).
/// ‖κ‖ is then Gamma(dim, Δ₂/ε)-distributed, matching Theorem 2's tail
/// bound. Requires dim ≥ 1, sensitivity ≥ 0, epsilon > 0. A zero
/// sensitivity yields the zero vector (nothing to hide).
Result<Vector> SampleSphericalLaplace(size_t dim, double sensitivity,
                                      double epsilon, Rng* rng);

/// The Gaussian-mechanism noise scale of Theorem 3:
/// σ = √(2 ln(1.25/δ)) · Δ₂ / ε. Requires ε ∈ (0, 1) and δ ∈ (0, 1).
Result<double> GaussianMechanismSigma(double sensitivity, double epsilon,
                                      double delta);

/// Draws iid N(0, σ²) noise per Theorem 3. Same argument requirements as
/// GaussianMechanismSigma.
Result<Vector> SampleGaussianMechanism(size_t dim, double sensitivity,
                                       double epsilon, double delta, Rng* rng);

/// Theorem 2's high-probability bound on the Laplace-mechanism noise norm:
/// with probability ≥ 1−γ, ‖κ‖ ≤ d ln(d/γ) Δ₂ / ε. Used by tests and by the
/// utility analysis in EXPERIMENTS.md.
double LaplaceNoiseNormBound(size_t dim, double sensitivity, double epsilon,
                             double gamma);

/// Convenience dispatcher: samples noise for the selected mechanism.
/// `delta` is ignored for kLaplace.
Result<Vector> SampleDpNoise(NoiseMechanism mechanism, size_t dim,
                             double sensitivity, double epsilon, double delta,
                             Rng* rng);

}  // namespace bolton

#endif  // BOLTON_RANDOM_DP_NOISE_H_
