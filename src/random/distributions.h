#ifndef BOLTON_RANDOM_DISTRIBUTIONS_H_
#define BOLTON_RANDOM_DISTRIBUTIONS_H_

#include <cstddef>

#include "linalg/vector.h"
#include "random/rng.h"

namespace bolton {

/// Draws from Gamma(shape, scale) with density
///   p(x) ∝ x^{shape-1} e^{-x/scale},  mean = shape * scale.
/// Uses Marsaglia–Tsang squeeze for shape >= 1 and the boosting identity
/// Gamma(a) = Gamma(a+1) * U^{1/a} for shape < 1. Requires shape > 0 and
/// scale > 0.
double SampleGamma(double shape, double scale, Rng* rng);

/// Draws from Exponential(scale) (mean = scale). Requires scale > 0.
double SampleExponential(double scale, Rng* rng);

/// Draws from the classic scalar Laplace(0, scale) distribution.
double SampleLaplace(double scale, Rng* rng);

/// A point uniformly distributed on the surface of the unit sphere in R^d:
/// a vector of iid Gaussians, normalized. Requires dim >= 1.
Vector SampleUnitSphere(size_t dim, Rng* rng);

/// A point uniformly distributed inside the unit ball in R^d (direction on
/// the sphere, radius U^{1/d}).
Vector SampleUnitBall(size_t dim, Rng* rng);

/// A vector of iid N(0, sigma^2) components.
Vector SampleGaussianVector(size_t dim, double sigma, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_RANDOM_DISTRIBUTIONS_H_
