#ifndef BOLTON_RANDOM_PERMUTATION_H_
#define BOLTON_RANDOM_PERMUTATION_H_

#include <cstddef>
#include <vector>

#include "random/rng.h"

namespace bolton {

/// A uniformly random permutation of {0, 1, ..., n-1} (Fisher–Yates).
/// This is the permutation τ sampled once at the start of PSGD, and the
/// engine's equivalent of Bismarck's `ORDER BY RANDOM()` shuffle.
std::vector<size_t> RandomPermutation(size_t n, Rng* rng);

/// Shuffles `items` in place with Fisher–Yates.
template <typename T>
void ShuffleInPlace(std::vector<T>* items, Rng* rng) {
  if (items->size() < 2) return;
  for (size_t i = items->size() - 1; i > 0; --i) {
    size_t j = rng->UniformInt(i + 1);
    std::swap((*items)[i], (*items)[j]);
  }
}

}  // namespace bolton

#endif  // BOLTON_RANDOM_PERMUTATION_H_
