#include "random/permutation.h"

#include <numeric>

namespace bolton {

std::vector<size_t> RandomPermutation(size_t n, Rng* rng) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  ShuffleInPlace(&perm, rng);
  return perm;
}

}  // namespace bolton
