#include "ml/metrics.h"

#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

double BinaryAccuracy(const Vector& model, const Dataset& test) {
  if (test.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const Example& e = test[i];
    int predicted = Dot(model, e.x) >= 0.0 ? +1 : -1;
    if (predicted == e.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double MulticlassAccuracy(const MulticlassModel& model, const Dataset& test) {
  if (test.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (model.Predict(test[i].x) == test[i].label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

ConfusionMatrix::ConfusionMatrix(int num_classes) {
  BOLTON_CHECK(num_classes >= 2);
  counts_.assign(num_classes, std::vector<size_t>(num_classes, 0));
}

void ConfusionMatrix::Record(int true_class, int predicted_class) {
  BOLTON_CHECK(true_class >= 0 && true_class < num_classes());
  BOLTON_CHECK(predicted_class >= 0 && predicted_class < num_classes());
  ++counts_[true_class][predicted_class];
}

size_t ConfusionMatrix::At(int true_class, int predicted_class) const {
  BOLTON_CHECK(true_class >= 0 && true_class < num_classes());
  BOLTON_CHECK(predicted_class >= 0 && predicted_class < num_classes());
  return counts_[true_class][predicted_class];
}

double ConfusionMatrix::Accuracy() const {
  size_t correct = 0;
  size_t total = 0;
  for (int r = 0; r < num_classes(); ++r) {
    for (int c = 0; c < num_classes(); ++c) {
      total += counts_[r][c];
      if (r == c) correct += counts_[r][c];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

std::string ConfusionMatrix::ToString() const {
  std::string out = "true\\pred";
  for (int c = 0; c < num_classes(); ++c) out += StrFormat("%8d", c);
  out += "\n";
  for (int r = 0; r < num_classes(); ++r) {
    out += StrFormat("%9d", r);
    for (int c = 0; c < num_classes(); ++c) {
      out += StrFormat("%8zu", counts_[r][c]);
    }
    out += "\n";
  }
  return out;
}

ConfusionMatrix ComputeConfusion(const MulticlassModel& model,
                                 const Dataset& test) {
  ConfusionMatrix confusion(model.num_classes());
  for (size_t i = 0; i < test.size(); ++i) {
    confusion.Record(test[i].label, model.Predict(test[i].x));
  }
  return confusion;
}

}  // namespace bolton
