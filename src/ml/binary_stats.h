#ifndef BOLTON_ML_BINARY_STATS_H_
#define BOLTON_ML_BINARY_STATS_H_

#include <cstddef>
#include <string>

#include "data/dataset.h"
#include "linalg/vector.h"
#include "util/result.h"

namespace bolton {

/// Threshold-based counts and derived metrics for a ±1 binary linear model
/// (score ≥ 0 predicts +1). Accuracy alone can mislead on the imbalanced
/// one-vs-all views the multiclass pipeline produces (1:9 on MNIST), so the
/// evaluation tooling also reports precision/recall/F1 and ROC AUC.
struct BinaryStats {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  size_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }
  double Accuracy() const;
  /// TP / (TP + FP); 1 when no positive predictions were made.
  double Precision() const;
  /// TP / (TP + FN); 1 when there are no positives.
  double Recall() const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double F1() const;

  std::string ToString() const;
};

/// Confusion counts of `model` on `test`.
BinaryStats ComputeBinaryStats(const Vector& model, const Dataset& test);

/// Area under the ROC curve of the model's raw scores ⟨w, x⟩ — the
/// probability a random positive outscores a random negative, computed via
/// the rank statistic with midrank tie handling. Requires at least one
/// positive and one negative example.
Result<double> RocAuc(const Vector& model, const Dataset& test);

}  // namespace bolton

#endif  // BOLTON_ML_BINARY_STATS_H_
