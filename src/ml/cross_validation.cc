#include "ml/cross_validation.h"

#include <cmath>

#include "util/strings.h"

namespace bolton {

Result<std::vector<Fold>> KFoldSplit(const Dataset& data, size_t k,
                                     Rng* rng) {
  if (k < 2) return Status::InvalidArgument("k-fold needs k >= 2");
  if (k > data.size()) {
    return Status::InvalidArgument(
        StrFormat("k=%zu folds exceed %zu examples", k, data.size()));
  }
  Dataset shuffled = data;
  shuffled.Shuffle(rng);
  std::vector<Dataset> parts = shuffled.SplitEven(k);

  std::vector<Fold> folds;
  folds.reserve(k);
  for (size_t f = 0; f < k; ++f) {
    Fold fold;
    fold.validation = parts[f];
    fold.train = Dataset(data.dim(), data.num_classes());
    for (size_t p = 0; p < k; ++p) {
      if (p == f) continue;
      for (size_t i = 0; i < parts[p].size(); ++i) fold.train.Add(parts[p][i]);
    }
    folds.push_back(std::move(fold));
  }
  return folds;
}

Result<CrossValidationResult> CrossValidate(const Dataset& data, size_t k,
                                            const FoldTrainFn& train_fn,
                                            const FoldScoreFn& score_fn,
                                            Rng* rng) {
  if (!train_fn || !score_fn) {
    return Status::InvalidArgument("null train/score function");
  }
  BOLTON_ASSIGN_OR_RETURN(std::vector<Fold> folds, KFoldSplit(data, k, rng));

  CrossValidationResult result;
  result.fold_scores.reserve(folds.size());
  for (const Fold& fold : folds) {
    Rng fold_rng = rng->Split();
    BOLTON_ASSIGN_OR_RETURN(Vector model, train_fn(fold.train, &fold_rng));
    result.fold_scores.push_back(score_fn(model, fold.validation));
  }

  double sum = 0.0;
  for (double s : result.fold_scores) sum += s;
  result.mean = sum / static_cast<double>(result.fold_scores.size());
  double var = 0.0;
  for (double s : result.fold_scores) {
    var += (s - result.mean) * (s - result.mean);
  }
  result.stddev =
      std::sqrt(var / static_cast<double>(result.fold_scores.size()));
  return result;
}

}  // namespace bolton
