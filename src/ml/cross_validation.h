#ifndef BOLTON_ML_CROSS_VALIDATION_H_
#define BOLTON_ML_CROSS_VALIDATION_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "linalg/vector.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// One fold of a k-fold split: train on everything except the fold,
/// validate on the fold.
struct Fold {
  Dataset train;
  Dataset validation;
};

/// Shuffles (with `rng`) and splits `data` into k folds. Requires
/// 2 ≤ k ≤ data.size(). NOT differentially private by itself — use it for
/// noiseless model development or on public data; private selection goes
/// through Algorithm 3 (core/private_tuning.h).
Result<std::vector<Fold>> KFoldSplit(const Dataset& data, size_t k, Rng* rng);

/// Trains on each fold's train split and scores on its validation split.
using FoldTrainFn =
    std::function<Result<Vector>(const Dataset& train, Rng* rng)>;
using FoldScoreFn =
    std::function<double(const Vector& model, const Dataset& validation)>;

/// Cross-validation summary.
struct CrossValidationResult {
  std::vector<double> fold_scores;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs k-fold cross-validation: train with `train_fn` per fold, score with
/// `score_fn` (e.g., BinaryAccuracy). Deterministic given the seed.
Result<CrossValidationResult> CrossValidate(const Dataset& data, size_t k,
                                            const FoldTrainFn& train_fn,
                                            const FoldScoreFn& score_fn,
                                            Rng* rng);

}  // namespace bolton

#endif  // BOLTON_ML_CROSS_VALIDATION_H_
