#ifndef BOLTON_ML_MODEL_IO_H_
#define BOLTON_ML_MODEL_IO_H_

#include <string>

#include "core/multiclass.h"
#include "linalg/vector.h"
#include "util/result.h"

namespace bolton {

/// Plain-text model persistence.
///
/// Format (one value per line, '#' comments allowed):
///   bolton-model v1
///   <num_classes>            (1 for a binary weight vector)
///   <dim>
///   <weight values, num_classes * dim lines>
///
/// Text keeps models diff-able and inspectable; doubles round-trip exactly
/// via max_digits10 formatting. A privately trained model is safe to
/// persist and share — that is the point of differential privacy — but the
/// diagnostics in PrivateSgdOutput (noiseless model, noise norm) are NOT;
/// only the perturbed weights pass through here.

/// Saves a binary linear model.
Status SaveModel(const Vector& model, const std::string& path);

/// Saves a one-vs-all multiclass model.
Status SaveModel(const MulticlassModel& model, const std::string& path);

/// Loads a binary model; fails if the file holds a multiclass model.
Result<Vector> LoadBinaryModel(const std::string& path);

/// Loads any model as multiclass (a binary file yields one weight vector).
Result<MulticlassModel> LoadMulticlassModel(const std::string& path);

}  // namespace bolton

#endif  // BOLTON_ML_MODEL_IO_H_
