#include "ml/model_io.h"

#include <fstream>
#include <iomanip>
#include <limits>

#include "util/failpoint.h"
#include "util/strings.h"

namespace bolton {

namespace {

constexpr char kMagic[] = "bolton-model v1";

Status WriteModelFile(const std::vector<const Vector*>& weights,
                      const std::string& path) {
  BOLTON_FAILPOINT("model_io.save");
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << kMagic << "\n";
  out << weights.size() << "\n";
  out << weights[0]->dim() << "\n";
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const Vector* w : weights) {
    for (size_t i = 0; i < w->dim(); ++i) out << (*w)[i] << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

struct ParsedModel {
  size_t num_classes;
  size_t dim;
  std::vector<Vector> weights;
};

Result<ParsedModel> ReadModelFile(const std::string& path) {
  BOLTON_FAILPOINT("model_io.load");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  auto next_line = [&in](std::string* line) -> bool {
    while (std::getline(in, *line)) {
      std::string_view stripped = StripWhitespace(*line);
      if (stripped.empty() || stripped[0] == '#') continue;
      *line = std::string(stripped);
      return true;
    }
    return false;
  };

  std::string line;
  if (!next_line(&line) || line != kMagic) {
    return Status::InvalidArgument(path + " is not a bolton-model v1 file");
  }
  if (!next_line(&line)) return Status::InvalidArgument("truncated header");
  BOLTON_ASSIGN_OR_RETURN(int64_t num_classes, ParseInt(line));
  if (!next_line(&line)) return Status::InvalidArgument("truncated header");
  BOLTON_ASSIGN_OR_RETURN(int64_t dim, ParseInt(line));
  if (num_classes < 1 || dim < 1) {
    return Status::InvalidArgument("non-positive model dimensions");
  }

  ParsedModel model;
  model.num_classes = static_cast<size_t>(num_classes);
  model.dim = static_cast<size_t>(dim);
  model.weights.reserve(model.num_classes);
  for (size_t c = 0; c < model.num_classes; ++c) {
    Vector w(model.dim);
    for (size_t i = 0; i < model.dim; ++i) {
      if (!next_line(&line)) {
        return Status::InvalidArgument(
            StrFormat("truncated weights: expected %zu x %zu values",
                      model.num_classes, model.dim));
      }
      BOLTON_ASSIGN_OR_RETURN(w[i], ParseDouble(line));
    }
    model.weights.push_back(std::move(w));
  }
  return model;
}

}  // namespace

Status SaveModel(const Vector& model, const std::string& path) {
  if (model.empty()) return Status::InvalidArgument("empty model");
  return WriteModelFile({&model}, path);
}

Status SaveModel(const MulticlassModel& model, const std::string& path) {
  if (model.weights.empty()) return Status::InvalidArgument("empty model");
  std::vector<const Vector*> weights;
  weights.reserve(model.weights.size());
  for (const Vector& w : model.weights) {
    if (w.dim() != model.weights[0].dim()) {
      return Status::InvalidArgument("inconsistent per-class dimensions");
    }
    weights.push_back(&w);
  }
  return WriteModelFile(weights, path);
}

Result<Vector> LoadBinaryModel(const std::string& path) {
  BOLTON_ASSIGN_OR_RETURN(ParsedModel model, ReadModelFile(path));
  if (model.num_classes != 1) {
    return Status::InvalidArgument(
        StrFormat("%s holds a %zu-class model, not a binary weight vector",
                  path.c_str(), model.num_classes));
  }
  return std::move(model.weights[0]);
}

Result<MulticlassModel> LoadMulticlassModel(const std::string& path) {
  BOLTON_ASSIGN_OR_RETURN(ParsedModel parsed, ReadModelFile(path));
  MulticlassModel model;
  model.weights = std::move(parsed.weights);
  return model;
}

}  // namespace bolton
