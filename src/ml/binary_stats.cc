#include "ml/binary_stats.h"

#include <algorithm>

#include "util/strings.h"

namespace bolton {

double BinaryStats::Accuracy() const {
  size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(n);
}

double BinaryStats::Precision() const {
  size_t predicted_positive = true_positives + false_positives;
  if (predicted_positive == 0) return 1.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(predicted_positive);
}

double BinaryStats::Recall() const {
  size_t actual_positive = true_positives + false_negatives;
  if (actual_positive == 0) return 1.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(actual_positive);
}

double BinaryStats::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string BinaryStats::ToString() const {
  return StrFormat(
      "tp=%zu fp=%zu tn=%zu fn=%zu acc=%.4f prec=%.4f rec=%.4f f1=%.4f",
      true_positives, false_positives, true_negatives, false_negatives,
      Accuracy(), Precision(), Recall(), F1());
}

BinaryStats ComputeBinaryStats(const Vector& model, const Dataset& test) {
  BinaryStats stats;
  for (size_t i = 0; i < test.size(); ++i) {
    const Example& e = test[i];
    bool predicted_positive = Dot(model, e.x) >= 0.0;
    bool actually_positive = e.label == +1;
    if (predicted_positive && actually_positive) ++stats.true_positives;
    if (predicted_positive && !actually_positive) ++stats.false_positives;
    if (!predicted_positive && !actually_positive) ++stats.true_negatives;
    if (!predicted_positive && actually_positive) ++stats.false_negatives;
  }
  return stats;
}

Result<double> RocAuc(const Vector& model, const Dataset& test) {
  // AUC = (rank-sum of positives − n⁺(n⁺+1)/2) / (n⁺ n⁻), with midranks
  // for tied scores.
  std::vector<std::pair<double, int>> scored;
  scored.reserve(test.size());
  size_t positives = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    scored.emplace_back(Dot(model, test[i].x), test[i].label);
    if (test[i].label == +1) ++positives;
  }
  size_t negatives = scored.size() - positives;
  if (positives == 0 || negatives == 0) {
    return Status::InvalidArgument(
        "AUC needs at least one positive and one negative example");
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < scored.size()) {
    size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    // Midrank of the tie group [i, j): 1-based ranks i+1..j.
    double midrank = 0.5 * static_cast<double>(i + 1 + j);
    for (size_t t = i; t < j; ++t) {
      if (scored[t].second == +1) positive_rank_sum += midrank;
    }
    i = j;
  }
  double np = static_cast<double>(positives);
  double nn = static_cast<double>(negatives);
  return (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

}  // namespace bolton
