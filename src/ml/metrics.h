#ifndef BOLTON_ML_METRICS_H_
#define BOLTON_ML_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/multiclass.h"
#include "data/dataset.h"
#include "linalg/vector.h"

namespace bolton {

/// Test accuracy of a ±1 binary linear model: fraction of examples with
/// sign⟨w, x⟩ == y (score 0 predicts +1). Returns 0 on an empty set.
double BinaryAccuracy(const Vector& model, const Dataset& test);

/// Test accuracy of a one-vs-all multiclass model.
double MulticlassAccuracy(const MulticlassModel& model, const Dataset& test);

/// Row-per-true-class confusion counts.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Record(int true_class, int predicted_class);

  size_t At(int true_class, int predicted_class) const;
  int num_classes() const { return static_cast<int>(counts_.size()); }

  /// Overall accuracy = trace / total. 0 when nothing recorded.
  double Accuracy() const;

  /// Pretty-printed table for reports.
  std::string ToString() const;

 private:
  std::vector<std::vector<size_t>> counts_;
};

/// Confusion matrix of a multiclass model over a test set.
ConfusionMatrix ComputeConfusion(const MulticlassModel& model,
                                 const Dataset& test);

}  // namespace bolton

#endif  // BOLTON_ML_METRICS_H_
