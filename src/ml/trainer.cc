#include "ml/trainer.h"

#include <limits>
#include <utility>

namespace bolton {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<std::unique_ptr<LossFunction>> MakeLossForConfig(
    const TrainerConfig& config) {
  // §4.3: R = 1/λ for the strongly convex tests; unconstrained otherwise.
  const double radius = config.lambda > 0.0 ? 1.0 / config.lambda : kInf;
  switch (config.model) {
    case ModelKind::kLogistic:
      return MakeLogisticLoss(config.lambda, radius);
    case ModelKind::kHuberSvm:
      return MakeHuberSvmLoss(config.huber_h, config.lambda, radius);
  }
  return Status::Internal("unknown model kind");
}

SolverSpec SolverSpecForConfig(const TrainerConfig& config) {
  SolverSpec spec;
  spec.run() = config.run();
  spec.privacy = config.privacy;
  spec.bst14_convex_radius = config.bst14_convex_radius;
  return spec;
}

Result<Vector> TrainBinary(const Dataset& train, const TrainerConfig& config,
                           Rng* rng) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  BOLTON_ASSIGN_OR_RETURN(auto loss, MakeLossForConfig(config));
  BOLTON_ASSIGN_OR_RETURN(
      SolverOutput out, RunPrivateSolver(config.algorithm, train, *loss,
                                         SolverSpecForConfig(config), rng));
  return std::move(out.model);
}

Result<MulticlassModel> TrainMulticlass(const Dataset& train,
                                        const TrainerConfig& config,
                                        Rng* rng) {
  BinaryTrainFn train_fn = [&config](const Dataset& binary,
                                     const PrivacyParams& budget,
                                     Rng* sub_rng) -> Result<Vector> {
    TrainerConfig sub = config;
    sub.privacy = budget;
    return TrainBinary(binary, sub, sub_rng);
  };
  // Noiseless training needs no budget split but flows through the same
  // machinery; hand it a placeholder budget that Validate() accepts.
  PrivacyParams budget = config.privacy;
  if (config.algorithm == Algorithm::kNoiseless && budget.epsilon <= 0.0) {
    budget = PrivacyParams{1.0, 0.0};
  }
  return TrainOneVsAll(train, budget, train_fn, rng,
                       config.training_threads);
}

}  // namespace bolton
