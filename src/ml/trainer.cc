#include "ml/trainer.h"

#include <cmath>
#include <limits>

#include "core/bst14.h"
#include "core/objective_perturbation.h"
#include "core/private_sgd.h"
#include "core/scs13.h"
#include "optim/psgd.h"
#include "optim/schedule.h"
#include "util/strings.h"

namespace bolton {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Result<Vector> TrainNoiseless(const Dataset& train, const LossFunction& loss,
                              const TrainerConfig& config, Rng* rng) {
  std::unique_ptr<StepSizeSchedule> schedule;
  if (loss.IsStronglyConvex()) {
    // Table 4: noiseless strongly convex uses 1/(γt), no 1/β cap.
    BOLTON_ASSIGN_OR_RETURN(
        schedule, MakeInverseTimeStep(loss.strong_convexity(), kInf));
  } else {
    BOLTON_ASSIGN_OR_RETURN(
        schedule,
        MakeConstantStep(1.0 / std::sqrt(static_cast<double>(train.size()))));
  }
  PsgdOptions options;
  options.passes = config.passes;
  options.batch_size = config.batch_size;
  options.radius = loss.radius();
  options.output = config.average_models ? OutputMode::kAverageAll
                                         : OutputMode::kLastIterate;
  BOLTON_ASSIGN_OR_RETURN(PsgdOutput run,
                          RunPsgd(train, loss, *schedule, options, rng));
  return std::move(run.model);
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNoiseless:
      return "noiseless";
    case Algorithm::kBoltOn:
      return "ours";
    case Algorithm::kScs13:
      return "scs13";
    case Algorithm::kBst14:
      return "bst14";
    case Algorithm::kObjective:
      return "objective";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "noiseless") return Algorithm::kNoiseless;
  if (name == "ours" || name == "bolton" || name == "bolt-on") {
    return Algorithm::kBoltOn;
  }
  if (name == "scs13") return Algorithm::kScs13;
  if (name == "bst14") return Algorithm::kBst14;
  if (name == "objective") return Algorithm::kObjective;
  return Status::NotFound("unknown algorithm '" + name +
                          "' (noiseless|ours|scs13|bst14|objective)");
}

Result<std::unique_ptr<LossFunction>> MakeLossForConfig(
    const TrainerConfig& config) {
  // §4.3: R = 1/λ for the strongly convex tests; unconstrained otherwise.
  const double radius = config.lambda > 0.0 ? 1.0 / config.lambda : kInf;
  switch (config.model) {
    case ModelKind::kLogistic:
      return MakeLogisticLoss(config.lambda, radius);
    case ModelKind::kHuberSvm:
      return MakeHuberSvmLoss(config.huber_h, config.lambda, radius);
  }
  return Status::Internal("unknown model kind");
}

Result<Vector> TrainBinary(const Dataset& train, const TrainerConfig& config,
                           Rng* rng) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  BOLTON_ASSIGN_OR_RETURN(auto loss, MakeLossForConfig(config));

  switch (config.algorithm) {
    case Algorithm::kNoiseless:
      return TrainNoiseless(train, *loss, config, rng);

    case Algorithm::kBoltOn: {
      BoltOnOptions options;
      options.privacy = config.privacy;
      options.passes = config.passes;
      options.batch_size = config.batch_size;
      options.output = config.average_models ? OutputMode::kAverageAll
                                             : OutputMode::kLastIterate;
      BOLTON_ASSIGN_OR_RETURN(PrivateSgdOutput out,
                              PrivatePsgd(train, *loss, options, rng));
      return std::move(out.model);
    }

    case Algorithm::kScs13: {
      Scs13Options options;
      options.privacy = config.privacy;
      options.passes = config.passes;
      options.batch_size = config.batch_size;
      BOLTON_ASSIGN_OR_RETURN(Scs13Output out,
                              RunScs13(train, *loss, options, rng));
      return std::move(out.model);
    }

    case Algorithm::kObjective: {
      if (config.model != ModelKind::kLogistic) {
        return Status::FailedPrecondition(
            "objective perturbation is implemented for logistic loss only");
      }
      if (!config.privacy.IsPure()) {
        return Status::FailedPrecondition(
            "objective perturbation provides pure eps-DP only");
      }
      ObjectivePerturbationOptions options;
      options.epsilon = config.privacy.epsilon;
      options.lambda = config.lambda;
      options.passes = config.passes;
      options.batch_size = config.batch_size;
      BOLTON_ASSIGN_OR_RETURN(ObjectivePerturbationOutput out,
                              RunObjectivePerturbation(train, options, rng));
      return std::move(out.model);
    }

    case Algorithm::kBst14: {
      Bst14Options options;
      options.privacy = config.privacy;
      options.passes = config.passes;
      options.batch_size = config.batch_size;
      if (!loss->IsStronglyConvex()) {
        options.radius = config.bst14_convex_radius;
      }
      BOLTON_ASSIGN_OR_RETURN(Bst14Output out,
                              RunBst14(train, *loss, options, rng));
      return std::move(out.model);
    }
  }
  return Status::Internal("unknown algorithm");
}

Result<MulticlassModel> TrainMulticlass(const Dataset& train,
                                        const TrainerConfig& config,
                                        Rng* rng) {
  BinaryTrainFn train_fn = [&config](const Dataset& binary,
                                     const PrivacyParams& budget,
                                     Rng* sub_rng) -> Result<Vector> {
    TrainerConfig sub = config;
    sub.privacy = budget;
    return TrainBinary(binary, sub, sub_rng);
  };
  // Noiseless training needs no budget split but flows through the same
  // machinery; hand it a placeholder budget that Validate() accepts.
  PrivacyParams budget = config.privacy;
  if (config.algorithm == Algorithm::kNoiseless && budget.epsilon <= 0.0) {
    budget = PrivacyParams{1.0, 0.0};
  }
  return TrainOneVsAll(train, budget, train_fn, rng,
                       config.training_threads);
}

}  // namespace bolton
