#ifndef BOLTON_ML_TRAINER_H_
#define BOLTON_ML_TRAINER_H_

#include <memory>
#include <string>

#include "core/multiclass.h"
#include "core/privacy.h"
#include "core/solver.h"
#include "data/dataset.h"
#include "optim/loss.h"
#include "optim/sgd_spec.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

// Algorithm, AlgorithmName, and ParseAlgorithm live in core/solver.h (the
// unified dispatch layer); this header re-exports them for the existing
// trainer call sites.

/// The two model families evaluated (§4.3 and Appendix B).
enum class ModelKind { kLogistic, kHuberSvm };

/// One experiment's training configuration — the uniform surface every
/// bench and example drives. Embeds the shared SgdRunSpec (passes, batch
/// size, output mode, fresh permutation, shards) with the training defaults
/// k = 10, b = 50; set `output = OutputMode::kAverageAll` to average all
/// iterates, and `shards > 1` to run the noiseless / bolt-on algorithms on
/// the shard-parallel executor. The Table 4 step-size conventions are
/// applied automatically per (algorithm, convexity).
struct TrainerConfig : SgdRunSpec {
  TrainerConfig() : SgdRunSpec(/*passes=*/10, /*batch_size=*/50) {}

  Algorithm algorithm = Algorithm::kNoiseless;
  ModelKind model = ModelKind::kLogistic;
  /// λ = 0 selects the convex tests (plain loss, unconstrained);
  /// λ > 0 selects the strongly convex tests with R = 1/λ (§4.3).
  double lambda = 0.0;
  /// Huber smoothing width (Appendix B uses h = 0.1).
  double huber_h = 0.1;
  /// Ignored for kNoiseless. delta == 0 ⇒ pure ε-DP (not supported by
  /// BST14); delta > 0 ⇒ (ε, δ)-DP.
  PrivacyParams privacy;
  /// Hypothesis radius handed to BST14 in the convex case, where the loss
  /// itself is unconstrained but Algorithm 4 needs a finite R.
  double bst14_convex_radius = 10.0;
  /// Threads for one-vs-all sub-model training (1 = serial; results are
  /// bit-identical at any thread count).
  size_t training_threads = 1;
};

/// Builds the loss for a config: logistic or Huber SVM, with L2 strength
/// `lambda` and radius R = 1/λ when λ > 0 (+inf otherwise).
Result<std::unique_ptr<LossFunction>> MakeLossForConfig(
    const TrainerConfig& config);

/// The SolverSpec a config denotes — the conversion TrainBinary uses to
/// delegate to RunPrivateSolver. Exposed so callers that already hold the
/// loss can drive the core dispatch directly.
SolverSpec SolverSpecForConfig(const TrainerConfig& config);

/// Trains one ±1 binary linear model per the config: builds the loss and
/// delegates to core/RunPrivateSolver. Step sizes follow Table 4:
///   noiseless: convex 1/√m, strongly convex 1/(γt);
///   bolt-on:   convex 1/√m, strongly convex min(1/β, 1/(γt));
///   SCS13:     1/√t;
///   BST14:     Algorithm 4/5 schedules.
Result<Vector> TrainBinary(const Dataset& train, const TrainerConfig& config,
                           Rng* rng);

/// Trains a one-vs-all multiclass model, splitting the privacy budget
/// evenly across the K binary sub-models (§4.3).
Result<MulticlassModel> TrainMulticlass(const Dataset& train,
                                        const TrainerConfig& config, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_ML_TRAINER_H_
