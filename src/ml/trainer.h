#ifndef BOLTON_ML_TRAINER_H_
#define BOLTON_ML_TRAINER_H_

#include <memory>
#include <string>

#include "core/multiclass.h"
#include "core/privacy.h"
#include "data/dataset.h"
#include "optim/loss.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// The four training algorithms the paper's figures compare, plus the
/// classic objective-perturbation alternative (§5's [13]) as an extra
/// baseline. kObjective supports pure ε-DP logistic regression only.
enum class Algorithm { kNoiseless, kBoltOn, kScs13, kBst14, kObjective };

const char* AlgorithmName(Algorithm algorithm);
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// The two model families evaluated (§4.3 and Appendix B).
enum class ModelKind { kLogistic, kHuberSvm };

/// One experiment's training configuration — the uniform surface every
/// bench and example drives. The Table 4 step-size conventions are applied
/// automatically per (algorithm, convexity).
struct TrainerConfig {
  Algorithm algorithm = Algorithm::kNoiseless;
  ModelKind model = ModelKind::kLogistic;
  /// λ = 0 selects the convex tests (plain loss, unconstrained);
  /// λ > 0 selects the strongly convex tests with R = 1/λ (§4.3).
  double lambda = 0.0;
  /// Huber smoothing width (Appendix B uses h = 0.1).
  double huber_h = 0.1;
  /// Ignored for kNoiseless. delta == 0 ⇒ pure ε-DP (not supported by
  /// BST14); delta > 0 ⇒ (ε, δ)-DP.
  PrivacyParams privacy;
  size_t passes = 10;
  size_t batch_size = 50;
  /// Average all iterates instead of returning the last (bolt-on and
  /// noiseless runs only).
  bool average_models = false;
  /// Hypothesis radius handed to BST14 in the convex case, where the loss
  /// itself is unconstrained but Algorithm 4 needs a finite R.
  double bst14_convex_radius = 10.0;
  /// Threads for one-vs-all sub-model training (1 = serial; results are
  /// bit-identical at any thread count).
  size_t training_threads = 1;
};

/// Builds the loss for a config: logistic or Huber SVM, with L2 strength
/// `lambda` and radius R = 1/λ when λ > 0 (+inf otherwise).
Result<std::unique_ptr<LossFunction>> MakeLossForConfig(
    const TrainerConfig& config);

/// Trains one ±1 binary linear model per the config. Step sizes follow
/// Table 4:
///   noiseless: convex 1/√m, strongly convex 1/(γt);
///   bolt-on:   convex 1/√m, strongly convex min(1/β, 1/(γt));
///   SCS13:     1/√t;
///   BST14:     Algorithm 4/5 schedules.
Result<Vector> TrainBinary(const Dataset& train, const TrainerConfig& config,
                           Rng* rng);

/// Trains a one-vs-all multiclass model, splitting the privacy budget
/// evenly across the K binary sub-models (§4.3).
Result<MulticlassModel> TrainMulticlass(const Dataset& train,
                                        const TrainerConfig& config, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_ML_TRAINER_H_
