#include "optim/schedule.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace bolton {

namespace {

class ConstantStep final : public StepSizeSchedule {
 public:
  explicit ConstantStep(double eta) : eta_(eta) {}
  double StepSize(size_t) const override { return eta_; }
  double MaxStepSize() const override { return eta_; }
  std::string name() const override { return StrFormat("constant(%g)", eta_); }
  std::unique_ptr<StepSizeSchedule> Clone() const override {
    return std::make_unique<ConstantStep>(*this);
  }

 private:
  double eta_;
};

class InverseTimeStep final : public StepSizeSchedule {
 public:
  InverseTimeStep(double gamma, double beta) : gamma_(gamma), beta_(beta) {}
  double StepSize(size_t t) const override {
    double inv_t = 1.0 / (gamma_ * static_cast<double>(t));
    return std::isfinite(beta_) ? std::min(1.0 / beta_, inv_t) : inv_t;
  }
  double MaxStepSize() const override { return StepSize(1); }
  std::string name() const override {
    return StrFormat("inverse_time(gamma=%g,beta=%g)", gamma_, beta_);
  }
  std::unique_ptr<StepSizeSchedule> Clone() const override {
    return std::make_unique<InverseTimeStep>(*this);
  }

 private:
  double gamma_;
  double beta_;
};

class InverseSqrtStep final : public StepSizeSchedule {
 public:
  explicit InverseSqrtStep(double c) : c_(c) {}
  double StepSize(size_t t) const override {
    return c_ / std::sqrt(static_cast<double>(t));
  }
  double MaxStepSize() const override { return c_; }
  std::string name() const override {
    return StrFormat("inverse_sqrt(%g)", c_);
  }
  std::unique_ptr<StepSizeSchedule> Clone() const override {
    return std::make_unique<InverseSqrtStep>(*this);
  }

 private:
  double c_;
};

class DecreasingStep final : public StepSizeSchedule {
 public:
  DecreasingStep(double beta, size_t m, double c)
      : beta_(beta), offset_(std::pow(static_cast<double>(m), c)), m_(m), c_(c) {}
  double StepSize(size_t t) const override {
    return 2.0 / (beta_ * (static_cast<double>(t) + offset_));
  }
  double MaxStepSize() const override { return StepSize(1); }
  std::string name() const override {
    return StrFormat("decreasing(beta=%g,m=%zu,c=%g)", beta_, m_, c_);
  }
  std::unique_ptr<StepSizeSchedule> Clone() const override {
    return std::make_unique<DecreasingStep>(*this);
  }

 private:
  double beta_;
  double offset_;
  size_t m_;
  double c_;
};

class SqrtOffsetStep final : public StepSizeSchedule {
 public:
  SqrtOffsetStep(double beta, size_t m, double c)
      : beta_(beta), offset_(std::pow(static_cast<double>(m), c)), m_(m), c_(c) {}
  double StepSize(size_t t) const override {
    return 2.0 / (beta_ * (std::sqrt(static_cast<double>(t)) + offset_));
  }
  double MaxStepSize() const override { return StepSize(1); }
  std::string name() const override {
    return StrFormat("sqrt_offset(beta=%g,m=%zu,c=%g)", beta_, m_, c_);
  }
  std::unique_ptr<StepSizeSchedule> Clone() const override {
    return std::make_unique<SqrtOffsetStep>(*this);
  }

 private:
  double beta_;
  double offset_;
  size_t m_;
  double c_;
};

}  // namespace

Result<std::unique_ptr<StepSizeSchedule>> MakeConstantStep(double eta) {
  if (eta <= 0.0) return Status::InvalidArgument("step size must be > 0");
  return std::unique_ptr<StepSizeSchedule>(new ConstantStep(eta));
}

Result<std::unique_ptr<StepSizeSchedule>> MakeInverseTimeStep(double gamma,
                                                              double beta) {
  if (gamma <= 0.0) return Status::InvalidArgument("gamma must be > 0");
  if (beta <= 0.0) return Status::InvalidArgument("beta must be > 0");
  return std::unique_ptr<StepSizeSchedule>(new InverseTimeStep(gamma, beta));
}

Result<std::unique_ptr<StepSizeSchedule>> MakeInverseSqrtStep(double c) {
  if (c <= 0.0) return Status::InvalidArgument("scale must be > 0");
  return std::unique_ptr<StepSizeSchedule>(new InverseSqrtStep(c));
}

Result<std::unique_ptr<StepSizeSchedule>> MakeDecreasingStep(double beta,
                                                             size_t m,
                                                             double c) {
  if (beta <= 0.0) return Status::InvalidArgument("beta must be > 0");
  if (m == 0) return Status::InvalidArgument("m must be >= 1");
  if (c < 0.0 || c >= 1.0) {
    return Status::InvalidArgument("c must be in [0, 1) (Corollary 2)");
  }
  return std::unique_ptr<StepSizeSchedule>(new DecreasingStep(beta, m, c));
}

Result<std::unique_ptr<StepSizeSchedule>> MakeSqrtOffsetStep(double beta,
                                                             size_t m,
                                                             double c) {
  if (beta <= 0.0) return Status::InvalidArgument("beta must be > 0");
  if (m == 0) return Status::InvalidArgument("m must be >= 1");
  if (c < 0.0 || c >= 1.0) {
    return Status::InvalidArgument("c must be in [0, 1) (Corollary 3)");
  }
  return std::unique_ptr<StepSizeSchedule>(new SqrtOffsetStep(beta, m, c));
}

}  // namespace bolton
