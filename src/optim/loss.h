#ifndef BOLTON_OPTIM_LOSS_H_
#define BOLTON_OPTIM_LOSS_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "linalg/vector.h"
#include "util/result.h"

namespace bolton {

/// A per-example convex loss ℓ(w, (x, y)) together with the optimization
/// constants the paper's analysis consumes:
///
///  * `lipschitz()`     — L:  ‖∇ℓ(u) − ∇ℓ(v)‖-free bound ‖∇ℓ(w)‖ ≤ L.
///  * `smoothness()`    — β:  ‖∇ℓ(u) − ∇ℓ(v)‖ ≤ β‖u − v‖.
///  * `strong_convexity()` — γ: H(ℓ) ⪰ γI (0 when merely convex).
///
/// The constants follow the paper's §2 derivations, which assume every
/// feature vector is normalized to ‖x‖ ≤ 1 (Dataset::NormalizeToUnitBall)
/// and, when γ > 0, that hypotheses live in a ball of radius `radius()`.
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  /// ℓ(w, example).
  virtual double Loss(const Vector& w, const Example& example) const = 0;

  /// Accumulates scale · ∇ℓ(w, example) into *grad (which must have w's
  /// dimension). Accumulation form avoids per-step allocations in the
  /// mini-batch inner loop.
  virtual void AddGradient(const Vector& w, const Example& example,
                           double scale, Vector* grad) const = 0;

  /// ∇ℓ(w, example) as a fresh vector.
  Vector Gradient(const Vector& w, const Example& example) const;

  virtual double lipschitz() const = 0;
  virtual double smoothness() const = 0;
  virtual double strong_convexity() const = 0;

  /// Radius R of the hypothesis ball used to derive the constants;
  /// +infinity when unconstrained (λ = 0 case).
  virtual double radius() const = 0;

  /// True when strong_convexity() > 0.
  bool IsStronglyConvex() const { return strong_convexity() > 0.0; }

  virtual std::string name() const = 0;
  virtual std::unique_ptr<LossFunction> Clone() const = 0;

  /// Mean loss over a dataset: the empirical risk L_S(w).
  double EmpiricalRisk(const Vector& w, const Dataset& dataset) const;
};

/// Logistic loss, optionally L2-regularized (paper Eq. 1):
///   ℓ(w,(x,y)) = ln(1 + exp(−y⟨w,x⟩)) + (λ/2)‖w‖²,  y ∈ {±1}.
/// Constants (paper §2): λ = 0 ⇒ L = β = 1, γ = 0;
/// λ > 0 with ‖w‖ ≤ R ⇒ L = 1 + λR, β = 1 + λ, γ = λ.
/// `radius` must be finite and positive when λ > 0.
Result<std::unique_ptr<LossFunction>> MakeLogisticLoss(double lambda,
                                                       double radius);

/// Huber-smoothed hinge loss for the SVM (paper Appendix B), optionally
/// L2-regularized. With z = y⟨w,x⟩ and smoothing width h:
///   ℓ = 0 if z > 1+h;  (1+h−z)²/(4h) if |1−z| ≤ h;  1−z if z < 1−h.
/// Constants: λ = 0 ⇒ L = 1, β = 1/(2h), γ = 0;
/// λ > 0 ⇒ L = 1 + λR, β = 1/(2h) + λ, γ = λ.
Result<std::unique_ptr<LossFunction>> MakeHuberSvmLoss(double h, double lambda,
                                                       double radius);

/// Squared loss (½(⟨w,x⟩ − y)²), an extension beyond the paper's two models
/// for regression-style analytics. With ‖x‖ ≤ 1, |y| ≤ 1 and ‖w‖ ≤ R:
/// L = R + 1 (+λR), β = 1 (+λ), γ = λ.
Result<std::unique_ptr<LossFunction>> MakeSquaredLoss(double lambda,
                                                      double radius);

}  // namespace bolton

#endif  // BOLTON_OPTIM_LOSS_H_
