#include "optim/parallel_executor.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "linalg/simd.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/thread_pool.h"
#include "random/permutation.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

namespace {

/// Exponential backoff with jitter before retry `attempt` (1-based). The
/// jitter rng is a timing-only stream: it never feeds shard results.
void SleepBeforeRetry(const ShardRetryPolicy& retry, size_t attempt,
                      Rng* jitter_rng) {
  if (retry.backoff_base_ms == 0) return;
  const size_t shift = std::min<size_t>(attempt - 1, 20);
  double ms = static_cast<double>(retry.backoff_base_ms) *
              static_cast<double>(uint64_t{1} << shift);
  if (retry.jitter_frac > 0.0) {
    ms *= 1.0 + jitter_rng->UniformDouble(0.0, retry.jitter_frac);
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// "retry" audit event: shard `shard` is being re-attempted (step = the
/// attempt number about to run, 1-based).
void RecordRetryEvent(const char* label, size_t shard, size_t attempt,
                      size_t shards) {
  obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
  if (!ledger.enabled()) return;
  obs::LedgerEvent event;
  event.kind = "retry";
  event.label = StrFormat("%s.shard%zu", label, shard);
  event.step = attempt;
  event.shards = shards;
  ledger.Record(std::move(event));
}

Status ValidateShardedOptions(const Dataset& data, const PsgdOptions& options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.shards > data.size()) {
    return Status::InvalidArgument(
        StrFormat("shards %zu exceeds training size %zu", options.shards,
                  data.size()));
  }
  if (options.sampling != SamplingMode::kPermutation) {
    return Status::InvalidArgument(
        "sharded execution requires permutation sampling (the bolt-on "
        "analysis is stated for PSGD)");
  }
  const size_t min_shard = data.size() / options.shards;
  if (options.batch_size > min_shard) {
    return Status::InvalidArgument(
        StrFormat("batch_size %zu exceeds the smallest shard size %zu "
                  "(m=%zu, shards=%zu)",
                  options.batch_size, min_shard, data.size(),
                  options.shards));
  }
  return Status::OK();
}

}  // namespace

uint64_t ShardSeed(uint64_t seed_base, size_t shard) {
  // Golden-ratio stride; Rng's splitmix64 seeding decorrelates the linear
  // sequence into independent streams.
  return seed_base + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(shard) + 1);
}

Result<ShardedPsgdOutput> RunShardedPsgd(const Dataset& data,
                                         const LossFunction& loss,
                                         const StepSizeSchedule& schedule,
                                         const PsgdOptions& options, Rng* rng) {
  BOLTON_RETURN_IF_ERROR(ValidateShardedOptions(data, options));
  const ExecutorConfig& executor = options.executor;
  const ShardRetryPolicy& retry = executor.retry;
  if (retry.max_attempts < 1) {
    return Status::InvalidArgument("executor.retry.max_attempts must be >= 1");
  }
  // SIMD-tier override (test hook). Installed before the serial delegation
  // so shards = 1 honors it too; restored on every return path. Safe even
  // with concurrent runs: all tiers are bit-identical, so a race can only
  // change speed.
  std::optional<ScopedSimdTier> simd_scope;
  if (executor.simd != SimdTier::kAuto) {
    if (!SimdTierSupported(executor.simd)) {
      return Status::InvalidArgument(
          StrFormat("executor.simd tier %s is not supported on this CPU "
                    "(detected %s)",
                    SimdTierName(executor.simd),
                    SimdTierName(DetectedSimdTier())));
    }
    simd_scope.emplace(executor.simd);
  }

  if (options.shards == 1) {
    // Bit-identical serial path: same code, same rng consumption.
    BOLTON_ASSIGN_OR_RETURN(PsgdOutput run,
                            RunPsgd(data, loss, schedule, options, rng));
    ShardedPsgdOutput out;
    out.model = std::move(run.model);
    out.stats = run.stats;
    out.shards = 1;
    out.shard_sizes = {data.size()};
    return out;
  }

  obs::ScopedSpan run_span("psgd.sharded_run");

  const size_t m = data.size();
  const size_t s = options.shards;

  // Partition permutation and the per-shard seed base are drawn from the
  // parent stream BEFORE any worker starts, so results depend only on the
  // seed and shard count — never on thread count or scheduling.
  const uint64_t shuffle_start_ns = obs::MonotonicNanos();
  std::vector<size_t> order;
  {
    obs::ScopedSpan shuffle_span("psgd.shard_partition");
    order = RandomPermutation(m, rng);
  }
  const uint64_t seed_base = rng->Next();

  // Balanced contiguous split of the permutation: the first m mod s shards
  // take ⌈m/s⌉ indices, the rest ⌊m/s⌋.
  std::vector<Dataset> shard_data;
  std::vector<size_t> shard_sizes;
  shard_data.reserve(s);
  shard_sizes.reserve(s);
  {
    obs::ScopedSpan split_span("psgd.shard_split");
    const size_t base = m / s;
    const size_t remainder = m % s;
    size_t offset = 0;
    for (size_t j = 0; j < s; ++j) {
      const size_t size_j = base + (j < remainder ? 1 : 0);
      std::vector<size_t> indices(order.begin() + offset,
                                  order.begin() + offset + size_j);
      shard_data.push_back(data.Subset(indices));
      shard_sizes.push_back(size_j);
      offset += size_j;
    }
  }
  const uint64_t partition_end_ns = obs::MonotonicNanos();

  PsgdOptions shard_options = options;
  shard_options.shards = 1;

  // Metrics are registered up front so workers only touch the lock-free
  // counters.
  obs::Counter* shard_runs =
      obs::MetricsRegistry::Default().GetCounter("psgd.shard_runs");
  obs::Counter* shard_failures =
      obs::MetricsRegistry::Default().GetCounter("psgd.shard_failures");
  obs::Counter* shard_retries =
      obs::MetricsRegistry::Default().GetCounter("psgd.shard_retries");
  obs::Counter* shard_redispatches =
      obs::MetricsRegistry::Default().GetCounter("psgd.shard_redispatches");
  obs::Gauge* shard_count =
      obs::MetricsRegistry::Default().GetGauge("psgd.shard_count");
  obs::Histogram* shard_seconds = obs::MetricsRegistry::Default().GetHistogram(
      "psgd.shard_seconds", obs::LatencySecondsBuckets());
  // Worker-utilization accounting (the WorkerUtilization section of
  // /metrics): where worker wall time went, so "shards lose to serial" is
  // attributable to spawn cost vs. idle/imbalance vs. actual shard work.
  obs::Histogram* worker_busy = obs::MetricsRegistry::Default().GetHistogram(
      "psgd.worker_busy_seconds", obs::LatencySecondsBuckets());
  obs::Histogram* worker_idle = obs::MetricsRegistry::Default().GetHistogram(
      "psgd.worker_idle_seconds", obs::LatencySecondsBuckets());
  obs::Histogram* worker_spawn = obs::MetricsRegistry::Default().GetHistogram(
      "psgd.worker_spawn_seconds", obs::LatencySecondsBuckets());
  obs::Histogram* shard_queue_wait =
      obs::MetricsRegistry::Default().GetHistogram(
          "psgd.shard_queue_wait_seconds", obs::LatencySecondsBuckets());
  obs::Gauge* worker_count_gauge =
      obs::MetricsRegistry::Default().GetGauge("psgd.worker_count");
  obs::Gauge* worker_busy_frac =
      obs::MetricsRegistry::Default().GetGauge("psgd.worker_busy_frac");
  // Per-worker hardware-counter distributions (only observed when the PMU
  // delivered real counts — a task-clock-only run records nothing here).
  obs::Histogram* worker_ipc = obs::MetricsRegistry::Default().GetHistogram(
      "psgd.worker_ipc",
      {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0});
  obs::Histogram* worker_cache_miss_rate =
      obs::MetricsRegistry::Default().GetHistogram(
          "psgd.worker_cache_miss_rate",
          {0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7});
  shard_count->Set(static_cast<double>(s));

  // One attempt: fault-injection gate, then PSGD from the shard's
  // counter-based seed. Re-seeding per attempt makes a retried success
  // bit-identical to a first-try success.
  auto attempt_shard = [&](size_t j) -> Result<PsgdOutput> {
    BOLTON_FAILPOINT("shard.worker");
    Rng shard_rng(ShardSeed(seed_base, j));
    return RunPsgd(shard_data[j], loss, schedule, shard_options, &shard_rng);
  };

  std::vector<Result<PsgdOutput>> results(s, Result<PsgdOutput>(PsgdOutput()));
  auto run_shard = [&](size_t j) {
    obs::ScopedSpan shard_span("psgd.shard");
    obs::CounterScope shard_counters(&shard_span);
    const uint64_t start_ns = obs::MonotonicNanos();
    // Timing-only stream for backoff jitter, decorrelated from the shard
    // stream by a distinct tweak word.
    Rng jitter_rng(ShardSeed(seed_base ^ 0x626f6c746f6e6a74ull, j));
    Result<PsgdOutput> result = attempt_shard(j);
    for (size_t attempt = 2;
         !result.ok() &&
         result.status().code() != StatusCode::kCancelled &&
         attempt <= retry.max_attempts;
         ++attempt) {
      SleepBeforeRetry(retry, attempt - 1, &jitter_rng);
      shard_retries->Increment();
      RecordRetryEvent("psgd.shard_retry", j, attempt, s);
      // Rate-limited: a flapping shard under an aggressive retry budget
      // must not flood stderr with one line per attempt.
      BOLTON_LOG_EVERY_N(kWarning, 10)
          << "shard " << j << " failed (" << result.status().ToString()
          << "); retrying, attempt " << attempt << "/"
          << retry.max_attempts;
      result = attempt_shard(j);
    }
    results[j] = std::move(result);
    shard_seconds->Observe(
        static_cast<double>(obs::MonotonicNanos() - start_ns) * 1e-9);
    shard_runs->Increment();
    if (!results[j].ok()) shard_failures->Increment();
  };

  // The pool the slices will run on (injected or process-wide). Resolved
  // before worker_count: the auto policy sizes slices to the workers that
  // can actually run them — more slices than pool workers adds a dispatch
  // wakeup per slice and zero parallelism (on a single-core host that
  // overhead alone used to double the sharded wall time).
  ThreadPool& pool =
      executor.pool != nullptr ? *executor.pool : GlobalThreadPool();
  const size_t worker_count =
      executor.max_threads == 0
          ? std::min(pool.max_threads(), s)
          : std::min(executor.max_threads, s);
  std::vector<WorkerStats> worker_stats(std::max<size_t>(worker_count, 1));
  const uint64_t dispatch_start_ns = obs::MonotonicNanos();
  // One worker slice's round-robin shards, with wall-time attribution:
  // spawn (pool submit -> first instruction of the slice, i.e. dispatch
  // latency), busy (inside run_shard), queue wait (ready but not yet
  // running the next shard), idle (slice lifetime - busy). A "worker" row
  // is a slice, not an OS thread: the pool may run several slices on one
  // parked worker thread, and attribution follows the slice.
  auto run_worker = [&](size_t w) {
    WorkerStats& stats = worker_stats[w];
    stats.worker = w;
    const uint64_t worker_start_ns = obs::MonotonicNanos();
    stats.spawn_ns = worker_start_ns - dispatch_start_ns;
    obs::ScopedSpan worker_span("psgd.worker");
    // Counters over the slice's whole lifetime, on the executing pool
    // thread (perf events are per-thread: the caller cannot observe
    // cycles spent here; pool workers pre-open their counters on attach).
    // The scope closes before the span below.
    obs::CounterScope worker_counters(&worker_span, &stats.counters);
    for (size_t j = w; j < s; j += worker_count) {
      const uint64_t shard_start_ns = obs::MonotonicNanos();
      shard_queue_wait->Observe(
          static_cast<double>(shard_start_ns - dispatch_start_ns) * 1e-9);
      const uint64_t ready_gap_ns =
          shard_start_ns - worker_start_ns - stats.busy_ns;
      stats.queue_wait_ns += ready_gap_ns;
      run_shard(j);
      stats.busy_ns += obs::MonotonicNanos() - shard_start_ns;
      ++stats.shards_run;
    }
    const uint64_t lifetime_ns = obs::MonotonicNanos() - worker_start_ns;
    stats.idle_ns = lifetime_ns > stats.busy_ns ? lifetime_ns - stats.busy_ns
                                                : 0;
  };
  if (worker_count <= 1) {
    // Serial fallback is accounted as one slice with zero dispatch cost
    // (no pool involved; run_worker measures from its own start). It still
    // takes the slice name so trace/profile readers find psgd-shard-0
    // whether or not a pool thread ran it.
    const std::string caller_name = obs::CurrentThreadName();
    obs::SetCurrentThreadName("psgd-shard-0");
    run_worker(0);
    obs::SetCurrentThreadName(caller_name);
    worker_stats[0].spawn_ns = 0;
  } else {
    // Static round-robin: shard j runs on slice j % worker_count, so the
    // assignment (though not the result — shards are independent) is also
    // deterministic. Slices go onto the persistent pool: a warm pool's
    // parked workers start them without thread creation.
    pool.ParallelRun(worker_count, [&](size_t w) {
      // Named per slice, not per pool thread: run_checks' trace audit (and
      // any profile reader) looks for psgd-shard-N regardless of which
      // pool worker picked the slice up. The pool restores its own thread
      // name after the task.
      obs::SetCurrentThreadName(StrFormat("psgd-shard-%zu", w));
      run_worker(w);
    });
  }
  const uint64_t dispatch_end_ns = obs::MonotonicNanos();

  // Degradation phase: shards whose worker exhausted its attempts get one
  // re-dispatch on this (surviving) thread with a fresh attempt budget —
  // covers a wedged/died worker without changing results (same seeds).
  // Only active when retry is enabled, so the default path is untouched.
  if (retry.max_attempts > 1) {
    for (size_t j = 0; j < s; ++j) {
      if (results[j].ok()) continue;
      // A cancelled shard is not a failure to recover from: the caller
      // withdrew the run. Retrying or re-dispatching would just burn time
      // against a deadline that has already passed.
      if (results[j].status().code() == StatusCode::kCancelled) continue;
      shard_redispatches->Increment();
      RecordRetryEvent("psgd.shard_redispatch", j, 1, s);
      run_shard(j);
    }
  }

  // HARD POLICY: any shard still failing fails the whole release. Lemma
  // 10 calibrates the released average to all s shard models; a partial
  // average is never produced.
  for (size_t j = 0; j < s; ++j) {
    if (!results[j].ok()) {
      return results[j].status().WithContext(
          retry.max_attempts > 1
              ? StrFormat("psgd shard %zu of %zu (retries exhausted; "
                          "refusing to average a partial run)",
                          j, s)
              : StrFormat("psgd shard %zu of %zu", j, s));
    }
  }

  // Uniform model average in shard order (Lemma 10). Fixed order keeps the
  // floating-point sum, and therefore the result, thread-count independent.
  const uint64_t average_start_ns = obs::MonotonicNanos();
  ShardedPsgdOutput out;
  out.shards = s;
  out.shard_sizes = std::move(shard_sizes);
  Vector average(data.dim());
  for (size_t j = 0; j < s; ++j) {
    average += results[j].value().model;
    out.stats.gradient_evaluations +=
        results[j].value().stats.gradient_evaluations;
    out.stats.updates += results[j].value().stats.updates;
    out.stats.noise_samples += results[j].value().stats.noise_samples;
  }
  average *= 1.0 / static_cast<double>(s);
  out.model = std::move(average);

  // Publish the run's utilization: per-worker rows in the output, and the
  // psgd.worker_* metrics family for /metrics scrapes.
  out.utilization.workers = std::move(worker_stats);
  out.utilization.partition_ns = partition_end_ns - shuffle_start_ns;
  out.utilization.dispatch_ns = dispatch_end_ns - dispatch_start_ns;
  out.utilization.average_ns = obs::MonotonicNanos() - average_start_ns;
  uint64_t total_busy_ns = 0, total_alive_ns = 0;
  for (const WorkerStats& stats : out.utilization.workers) {
    worker_busy->Observe(static_cast<double>(stats.busy_ns) * 1e-9);
    worker_idle->Observe(static_cast<double>(stats.idle_ns) * 1e-9);
    worker_spawn->Observe(static_cast<double>(stats.spawn_ns) * 1e-9);
    if (stats.counters.available) {
      worker_ipc->Observe(stats.counters.Ipc());
      worker_cache_miss_rate->Observe(stats.counters.CacheMissRate());
    }
    total_busy_ns += stats.busy_ns;
    total_alive_ns += stats.busy_ns + stats.idle_ns;
  }
  out.utilization.busy_fraction =
      total_alive_ns > 0 ? static_cast<double>(total_busy_ns) /
                               static_cast<double>(total_alive_ns)
                         : 0.0;
  worker_count_gauge->Set(
      static_cast<double>(out.utilization.workers.size()));
  worker_busy_frac->Set(out.utilization.busy_fraction);
  return out;
}

}  // namespace bolton
