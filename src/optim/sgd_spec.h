#ifndef BOLTON_OPTIM_SGD_SPEC_H_
#define BOLTON_OPTIM_SGD_SPEC_H_

#include <cstddef>
#include <cstdint>

#include "linalg/simd.h"

namespace bolton {

class CancellationToken;
class ThreadPool;

/// Graceful degradation policy for shard workers.
///
/// A failed shard attempt is retried in place up to `max_attempts` total
/// attempts, with exponential backoff (base << attempt) plus uniform
/// jitter between attempts; shards that exhaust their worker's budget are
/// re-dispatched once onto the main (surviving) thread with a fresh
/// attempt budget. Every attempt reconstructs the shard rng from the same
/// ShardSeed, so a shard that eventually succeeds produces a result
/// bit-identical to one that succeeded first try — the jitter rng is a
/// separate stream that only affects timing, never results.
///
/// HARD POLICY: a shard that never succeeds fails the WHOLE run. Lemma
/// 10's sensitivity argument calibrates the released average to all s
/// shard models; averaging a subset would both change the release and
/// void the calibration, so a partial average is never produced.
struct ShardRetryPolicy {
  /// Total attempts per shard per dispatch; 1 disables retry (and the
  /// re-dispatch phase), reproducing the fail-fast behavior exactly.
  size_t max_attempts = 1;
  /// Backoff before retry a (1-based) is base·2^(a−1) ms; 0 retries
  /// immediately.
  uint64_t backoff_base_ms = 0;
  /// Each backoff is stretched by a uniform factor in [1, 1 + jitter_frac].
  double jitter_frac = 0.0;
};

/// How a sharded run executes — everything about the release is in the
/// rest of the spec; everything here can only change speed and fault
/// tolerance, never results (the executor's determinism contract).
///
/// This replaces the old positional `max_threads` / `retry` parameters of
/// RunShardedPsgd. It rides inside SgdRunSpec, so it flows CLI →
/// TrainerConfig → SolverSpec → BoltOnOptions → PsgdOptions through the
/// existing one-line `dst.run() = src.run()` conversions.
struct ExecutorConfig {
  /// Pool to dispatch shard slices onto; nullptr = the process-wide
  /// GlobalThreadPool(). Injecting a pool is for tests and embedders that
  /// want isolated sizing.
  ThreadPool* pool = nullptr;
  /// Caps concurrent worker slices (shards are assigned round-robin to
  /// slices). 0 = auto: one slice per shard, clamped to the pool's worker
  /// capacity — slices beyond the workers that can run them would each pay
  /// a dispatch wakeup for zero added parallelism. Results are
  /// bit-identical at ANY value; this only shapes parallelism and the
  /// WorkerStats rows.
  size_t max_threads = 0;
  /// Per-shard retry/backoff/re-dispatch policy.
  ShardRetryPolicy retry;
  /// Force a SIMD kernel tier for this run (test hook; every tier is
  /// bit-identical to scalar). kAuto = use the process default. An
  /// unsupported tier fails the run with InvalidArgument.
  SimdTier simd = SimdTier::kAuto;
  /// Cooperative cancellation (util/cancellation.h): the pass/batch loops
  /// and the shard retry machinery poll it and abandon the run with
  /// Status::Cancelled. nullptr = never cancelled. Like everything else
  /// here it cannot change a released result — a cancelled run releases
  /// nothing. The token must outlive the run.
  const CancellationToken* cancel = nullptr;
};

/// Which hypothesis a run returns.
enum class OutputMode {
  /// The final iterate w_T.
  kLastIterate,
  /// The uniform average (1/T)·Σ w_t of all iterates (paper §3.2.3 "Model
  /// Averaging"; sensitivity is no worse than the last iterate's).
  kAverageAll,
};

/// The run parameters every SGD-driving surface in the library shares.
///
/// PsgdOptions, BoltOnOptions, TrainerConfig, and SolverSpec all embed this
/// spec (by inheritance, so existing `options.passes`-style call sites stay
/// one-line) instead of re-declaring the fields; converting between layers
/// is a single `dst.run() = src.run();` assignment.
struct SgdRunSpec {
  /// Number of passes over the data (k).
  size_t passes = 1;
  /// Mini-batch size (b). In permutation mode each pass is partitioned into
  /// ⌈m/b⌉ consecutive chunks of the shuffled order.
  size_t batch_size = 1;
  /// Last iterate vs. uniform iterate average (§3.2.3 "Model Averaging").
  OutputMode output = OutputMode::kLastIterate;
  /// Sample a fresh permutation at every pass (analysis is unchanged,
  /// §3.2.3 "Fresh Permutation at Each Pass").
  bool fresh_permutation_each_pass = false;
  /// Shard-parallel execution (§3.2.3 Lemma 10): partition the permutation
  /// into `shards` disjoint shards, run black-box PSGD per shard on its own
  /// worker, and average the shard models. 1 = the serial path,
  /// bit-identical to RunPsgd. Only the black-box algorithms (noiseless,
  /// bolt-on) support shards > 1; the white-box baselines reject it.
  size_t shards = 1;
  /// How (not what) a sharded run executes: pool, slice cap, retry policy,
  /// SIMD-tier override. Never affects released results.
  ExecutorConfig executor;

  SgdRunSpec() = default;
  SgdRunSpec(size_t passes, size_t batch_size)
      : passes(passes), batch_size(batch_size) {}

  /// The shared-spec slice of any embedding struct, for one-line conversion
  /// between option surfaces: `psgd.run() = config.run();`.
  SgdRunSpec& run() { return *this; }
  const SgdRunSpec& run() const { return *this; }
};

}  // namespace bolton

#endif  // BOLTON_OPTIM_SGD_SPEC_H_
