#ifndef BOLTON_OPTIM_SGD_SPEC_H_
#define BOLTON_OPTIM_SGD_SPEC_H_

#include <cstddef>

namespace bolton {

/// Which hypothesis a run returns.
enum class OutputMode {
  /// The final iterate w_T.
  kLastIterate,
  /// The uniform average (1/T)·Σ w_t of all iterates (paper §3.2.3 "Model
  /// Averaging"; sensitivity is no worse than the last iterate's).
  kAverageAll,
};

/// The run parameters every SGD-driving surface in the library shares.
///
/// PsgdOptions, BoltOnOptions, TrainerConfig, and SolverSpec all embed this
/// spec (by inheritance, so existing `options.passes`-style call sites stay
/// one-line) instead of re-declaring the fields; converting between layers
/// is a single `dst.run() = src.run();` assignment.
struct SgdRunSpec {
  /// Number of passes over the data (k).
  size_t passes = 1;
  /// Mini-batch size (b). In permutation mode each pass is partitioned into
  /// ⌈m/b⌉ consecutive chunks of the shuffled order.
  size_t batch_size = 1;
  /// Last iterate vs. uniform iterate average (§3.2.3 "Model Averaging").
  OutputMode output = OutputMode::kLastIterate;
  /// Sample a fresh permutation at every pass (analysis is unchanged,
  /// §3.2.3 "Fresh Permutation at Each Pass").
  bool fresh_permutation_each_pass = false;
  /// Shard-parallel execution (§3.2.3 Lemma 10): partition the permutation
  /// into `shards` disjoint shards, run black-box PSGD per shard on its own
  /// worker, and average the shard models. 1 = the serial path,
  /// bit-identical to RunPsgd. Only the black-box algorithms (noiseless,
  /// bolt-on) support shards > 1; the white-box baselines reject it.
  size_t shards = 1;

  SgdRunSpec() = default;
  SgdRunSpec(size_t passes, size_t batch_size)
      : passes(passes), batch_size(batch_size) {}

  /// The shared-spec slice of any embedding struct, for one-line conversion
  /// between option surfaces: `psgd.run() = config.run();`.
  SgdRunSpec& run() { return *this; }
  const SgdRunSpec& run() const { return *this; }
};

}  // namespace bolton

#endif  // BOLTON_OPTIM_SGD_SPEC_H_
