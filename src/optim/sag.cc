#include "optim/sag.h"

#include <cmath>
#include <vector>

namespace bolton {

Result<PsgdOutput> RunSag(const Dataset& data, const LossFunction& loss,
                          const SagOptions& options, Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options.radius <= 0.0) {
    return Status::InvalidArgument("radius must be > 0 (may be +inf)");
  }
  const size_t m = data.size();
  const size_t dim = data.dim();
  const size_t updates = options.updates == 0 ? 5 * m : options.updates;
  const double eta =
      options.step > 0.0 ? options.step : 1.0 / (16.0 * loss.smoothness());
  if (!(eta > 0.0) || !std::isfinite(eta)) {
    return Status::InvalidArgument("invalid step size");
  }
  const bool project = std::isfinite(options.radius);

  PsgdOutput out;
  Vector w(dim);
  // Per-example gradient memory, initialized to zero (the standard cold
  // start; the average warms up over the first pass).
  std::vector<Vector> memory(m, Vector(dim));
  Vector average(dim);  // (1/m) Σ_j g_j, maintained incrementally
  Vector fresh(dim);

  for (size_t t = 0; t < updates; ++t) {
    size_t i = rng->UniformInt(m);  // data-independent: non-adaptive
    fresh.SetZero();
    loss.AddGradient(w, data[i], 1.0, &fresh);
    ++out.stats.gradient_evaluations;

    // average += (fresh − memory[i]) / m, then swap the memory slot.
    average.Axpy(1.0 / static_cast<double>(m), fresh);
    average.Axpy(-1.0 / static_cast<double>(m), memory[i]);
    memory[i] = fresh;

    w.Axpy(-eta, average);
    if (project) ProjectToL2BallInPlace(&w, options.radius);
    ++out.stats.updates;
  }
  out.model = std::move(w);
  return out;
}

}  // namespace bolton
