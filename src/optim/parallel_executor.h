#ifndef BOLTON_OPTIM_PARALLEL_EXECUTOR_H_
#define BOLTON_OPTIM_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "linalg/vector.h"
#include "obs/perf_counters.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/schedule.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Where one worker thread's wall time went during a sharded run — the
/// scheduler-level attribution that answers "why do shards lose to serial":
/// spawn cost (thread creation to first instruction), busy time (inside
/// shard PSGD), and idle time (alive but waiting — load imbalance or
/// serialization on an undersubscribed machine). All nanoseconds on the
/// obs monotonic clock. Exposed as psgd.worker_* histograms//metrics and
/// aggregated here in the run output.
struct WorkerStats {
  size_t worker = 0;       // worker slice index (0-based)
  /// Pool-dispatch latency: ParallelRun submit -> first instruction of the
  /// slice on a pool worker. Warm pools make this microseconds; before the
  /// pool existed this was per-run thread creation and dominated small
  /// sharded runs.
  uint64_t spawn_ns = 0;
  uint64_t busy_ns = 0;    // total time executing shard attempts
  uint64_t idle_ns = 0;    // lifetime - busy (scheduling gaps, imbalance)
  /// Gap time between the worker being ready and each of its shards
  /// starting, net of time spent on earlier shards — nonzero when the OS
  /// descheduled the worker between shards (oversubscription).
  uint64_t queue_wait_ns = 0;
  size_t shards_run = 0;   // shards this worker executed
  /// Hardware-counter delta over the worker's whole lifetime (IPC and miss
  /// rates via the obs::PerfCounterDelta accessors). available=false when
  /// the PMU is unreachable or the perf pillar is disabled; task_clock_ns
  /// still carries the worker's on-CPU time at any perf tier.
  obs::PerfCounterDelta counters;
};

/// Aggregate utilization over a sharded run: per-worker rows plus the
/// run-level phases that are not attributable to any worker.
struct WorkerUtilization {
  std::vector<WorkerStats> workers;
  uint64_t partition_ns = 0;  // permutation draw + shard split
  uint64_t dispatch_ns = 0;   // pool submit to last slice completion
  uint64_t average_ns = 0;    // fixed-order model averaging
  /// Σ busy / Σ (busy + idle) over all workers; 1.0 when every worker was
  /// doing shard work its whole life, lower when spawn/imbalance dominate.
  double busy_fraction = 0.0;
};

/// Result of a sharded (or, at shards = 1, serial) PSGD run.
struct ShardedPsgdOutput {
  /// The released hypothesis: at shards = 1 the serial RunPsgd model,
  /// otherwise the uniform average (1/s)·Σ_j w_j of the shard models.
  Vector model;
  /// Engine counters summed across all shards.
  PsgdStats stats;
  /// Shards actually run (1 for the serial fallback).
  size_t shards = 1;
  /// |S_j| per shard, in shard order. The balanced contiguous partition:
  /// the first m mod s shards get ⌈m/s⌉ examples, the rest ⌊m/s⌋.
  std::vector<size_t> shard_sizes;
  /// Wall-time attribution for the run's workers (empty for the shards = 1
  /// serial delegation, which has no workers to account).
  WorkerUtilization utilization;
};

/// Deterministic per-shard RNG seed: counter-based (seed_base + shard
/// index through the golden-ratio increment, decorrelated by the Rng's
/// splitmix64 seeding), so shard streams depend only on (parent stream,
/// shard index) — never on worker scheduling order.
uint64_t ShardSeed(uint64_t seed_base, size_t shard);

/// Shard-parallel black-box PSGD (paper §3.2.3, Lemma 10):
///
///   1. draw one permutation τ of [m] from `rng` and partition it into
///      `options.shards` disjoint contiguous shards (shared-nothing);
///   2. run black-box RunPsgd per shard on its own worker thread, each with
///      an independent counter-seeded RNG stream (ShardSeed);
///   3. release the uniform average of the shard models.
///
/// Privacy-wise this is exactly the hook the bolt-on analysis allows: each
/// shard is an independent PSGD run over its own m_j ≈ m/s examples, so
/// Corollary 1 / Lemma 8 bound each shard model's sensitivity with m
/// replaced by m_j, a neighboring dataset perturbs exactly one shard, and
/// Lemma 10's averaging argument bounds the released average by the max
/// per-shard sensitivity (see core/sensitivity.h, ShardedMaxSensitivity).
///
/// Execution (pool, slice cap, retry policy, SIMD-tier override) is
/// governed by `options.executor` (ExecutorConfig in sgd_spec.h — the old
/// positional `max_threads` / `retry` parameters are gone). Worker slices
/// are dispatched onto options.executor.pool — GlobalThreadPool() when
/// null — so repeated runs reuse warm, parked workers instead of spawning
/// threads per call; WorkerStats::spawn_ns is therefore the pool dispatch
/// latency (submit → slice start), not thread creation.
///
/// Contracts:
///  * shards = 1 delegates to RunPsgd — bit-identical to the serial path,
///    consuming `rng` identically;
///  * for a fixed seed and shard count the result is bit-identical at ANY
///    executor config — max_threads, pool size, warm vs. fresh pool, SIMD
///    tier (partition and seeds are drawn before workers start, shard
///    outputs are averaged in shard order, and every SIMD tier is
///    bit-identical to the scalar reference);
///  * a failing shard surfaces through the returned Result<> (no abort);
///    after `executor.retry` is exhausted the first failing shard's status
///    is returned with shard context and NO model is released (never a
///    partial average — see ShardRetryPolicy);
///  * retried attempts re-seed the shard rng identically, so recovery
///    does not perturb the released model.
///
/// `executor.max_threads` caps the worker slices (0 = auto: one per shard,
/// clamped to the pool's worker capacity);
/// shards are assigned round-robin. Requires permutation sampling and no
/// per-update noise source (sharding is for the black-box algorithms; the
/// white-box baselines compose their budgets per update and have no
/// shard-level analysis here).
Result<ShardedPsgdOutput> RunShardedPsgd(const Dataset& data,
                                         const LossFunction& loss,
                                         const StepSizeSchedule& schedule,
                                         const PsgdOptions& options, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_OPTIM_PARALLEL_EXECUTOR_H_
