#include "optim/sparse_psgd.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "random/permutation.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace bolton {

namespace {

// Numerically stable logistic sigmoid (matches optim/loss.cc).
double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Result<PsgdOutput> RunSparseLogisticPsgd(const SparseDataset& data,
                                         double lambda,
                                         const StepSizeSchedule& schedule,
                                         const PsgdOptions& options, Rng* rng,
                                         GradientNoiseSource* noise) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (options.passes < 1) return Status::InvalidArgument("passes must be >= 1");
  if (options.batch_size < 1 || options.batch_size > data.size()) {
    return Status::InvalidArgument("batch_size must be in [1, m]");
  }
  if (options.sampling != SamplingMode::kPermutation) {
    return Status::NotImplemented(
        "sparse path supports permutation sampling only");
  }

  obs::ScopedSpan run_span("sparse_psgd.run");
  obs::CounterScope run_counters(&run_span);

  const size_t m = data.size();
  const size_t dim = data.dim();
  const size_t b = options.batch_size;
  if (options.radius <= 0.0) {
    return Status::InvalidArgument("radius must be > 0 (may be +inf)");
  }
  const bool project = std::isfinite(options.radius);

  Vector w(dim);
  Vector grad(dim);
  Vector iterate_sum(dim);
  std::vector<size_t> touched;  // grad coordinates to reset after an update

  PsgdStats stats;
  std::vector<size_t> order;
  {
    obs::ScopedSpan shuffle_span("psgd.shuffle");
    order = RandomPermutation(m, rng);
  }

  size_t step = 0;
  for (size_t pass = 1; pass <= options.passes; ++pass) {
    BOLTON_FAILPOINT("sparse_psgd.pass");
    obs::ScopedSpan pass_span("psgd.pass");
    obs::CounterScope pass_counters(&pass_span);
    obs::PhaseAccumulator gradient_phase("psgd.gradient");
    obs::PhaseAccumulator noise_phase("psgd.noise_draw");
    obs::PhaseAccumulator projection_phase("psgd.projection");
    if (pass > 1 && options.fresh_permutation_each_pass) {
      obs::ScopedSpan shuffle_span("psgd.shuffle");
      order = RandomPermutation(m, rng);
    }
    for (size_t begin = 0; begin < m; begin += b) {
      const size_t batch_len = std::min(b, m - begin);
      ++step;

      {
        obs::PhaseTimer timer(&gradient_phase);
        const double scale = 1.0 / static_cast<double>(batch_len);
        touched.clear();
        for (size_t j = 0; j < batch_len; ++j) {
          const SparseExample& e = data[order[begin + j]];
          // ∇ℓ = −y·σ(−y⟨w,x⟩)·x (+ λw), exactly as the dense logistic loss.
          double margin = e.label * Dot(e.x, w);
          double coeff = -e.label * Sigmoid(-margin);
          e.x.AxpyInto(scale * coeff, &grad);
          for (const auto& [index, value] : e.x.entries()) {
            (void)value;
            touched.push_back(index);
          }
          if (lambda > 0.0) grad.Axpy(scale * lambda, w);
          ++stats.gradient_evaluations;
        }
      }

      if (noise != nullptr) {
        obs::PhaseTimer timer(&noise_phase);
        BOLTON_ASSIGN_OR_RETURN(Vector z, noise->Sample(step, dim, rng));
        grad += z;
        ++stats.noise_samples;
      }

      const double eta = schedule.StepSize(step);
      if (!(eta > 0.0) || !std::isfinite(eta)) {
        return Status::InvalidArgument(
            StrFormat("invalid step size %g at t=%zu", eta, step));
      }
      // The pure-sparse path (no regularizer/noise densifying the
      // gradient) applies the update and the scratch reset in O(touched);
      // untouched coordinates would only receive an exact −η·0. Examples in
      // a batch can share coordinates, so dedupe first — each coordinate
      // must be stepped exactly once.
      const bool grad_is_sparse = lambda == 0.0 && noise == nullptr;
      if (grad_is_sparse) {
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
      }
      if (grad_is_sparse) {
        for (size_t index : touched) w[index] += -eta * grad[index];
      } else {
        w.Axpy(-eta, grad);
      }
      if (project) {
        obs::PhaseTimer timer(&projection_phase);
        ProjectToL2BallInPlace(&w, options.radius);
      }
      if (grad_is_sparse) {
        for (size_t index : touched) grad[index] = 0.0;
      } else {
        grad.SetZero();
      }

      ++stats.updates;
      if (options.output == OutputMode::kAverageAll) iterate_sum += w;
    }
  }

  {
    static obs::Counter* gradient_evaluations =
        obs::MetricsRegistry::Default().GetCounter("gradient_evaluations");
    static obs::Counter* model_updates =
        obs::MetricsRegistry::Default().GetCounter("model_updates");
    static obs::Counter* noise_samples =
        obs::MetricsRegistry::Default().GetCounter("noise_samples");
    gradient_evaluations->Increment(stats.gradient_evaluations);
    model_updates->Increment(stats.updates);
    noise_samples->Increment(stats.noise_samples);
  }

  PsgdOutput out;
  out.stats = stats;
  if (options.output == OutputMode::kAverageAll && stats.updates > 0) {
    iterate_sum *= 1.0 / static_cast<double>(stats.updates);
    out.model = std::move(iterate_sum);
  } else {
    out.model = std::move(w);
  }
  return out;
}

}  // namespace bolton
