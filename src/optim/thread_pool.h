#ifndef BOLTON_OPTIM_THREAD_POOL_H_
#define BOLTON_OPTIM_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bolton {

namespace obs {
class Histogram;
class Counter;
class Gauge;
}  // namespace obs

/// Construction-time knobs for a ThreadPool.
struct ThreadPoolOptions {
  /// Upper bound on live worker threads. 0 = hardware concurrency (at
  /// least 1).
  size_t max_threads = 0;
  /// An idle worker parks on a condition variable; after this long with no
  /// work it retires (exits) and is respawned on demand, so an idle process
  /// carries no thread cost. 0 = park forever (workers only exit at pool
  /// destruction).
  uint64_t idle_timeout_ms = 2000;
  /// Worker threads are named "<name_prefix>-<slot>" (util/thread_name) so
  /// profiles and traces attribute pool time even between tasks.
  std::string name_prefix = "bolton-pool";
};

/// Point-in-time pool accounting (all monotonically accumulated except the
/// two level gauges). Exposed as the pool.* metrics family.
struct ThreadPoolStats {
  size_t max_threads = 0;
  size_t live_threads = 0;   // spawned and not yet exited
  size_t idle_threads = 0;   // parked waiting for work right now
  uint64_t threads_spawned = 0;
  uint64_t threads_retired = 0;  // exits via idle timeout (not shutdown)
  uint64_t tasks_run = 0;
  uint64_t batches_run = 0;  // ParallelRun calls that dispatched to workers
};

/// A persistent, reusable worker pool.
///
/// Workers are spawned lazily (first ParallelRun), parked idle on a
/// condition variable between batches, and spin down after
/// `idle_timeout_ms` without work — the pool holds no threads while nothing
/// is running, but a warm pool dispatches in microseconds instead of paying
/// thread creation per run (the spawn_ns cost the WorkerStats accounting
/// showed dominating sharded runs).
///
/// On attach every worker names itself, registers with the sampling
/// profiler for its lifetime (obs::ProfiledThreadScope), and pre-opens its
/// per-thread perf counters, so tasks inherit full observability without
/// per-dispatch setup. A task may rename its thread (the sharded executor
/// names slices "psgd-shard-N"); the worker restores its own name after
/// each task.
///
/// Determinism: the pool makes NO ordering promises — tasks of one batch may
/// run in any order, on any worker, interleaved with other callers'
/// batches. Callers needing deterministic results must make task outputs
/// independent of scheduling (the sharded executor writes results into
/// indexed slots and reduces in fixed order).
///
/// Thread-safe: concurrent ParallelRun calls from different threads are
/// fine and share the worker set. A task that calls ParallelRun on its own
/// pool runs the nested batch inline on the calling worker (no deadlock).
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = ThreadPoolOptions());
  /// Wakes everyone and joins all workers; pending tasks are still run
  /// (destruction with queued work is a caller bug only if the caller also
  /// abandoned the ParallelRun that queued it, which blocks — so in
  /// practice the queue is empty here).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t max_threads() const { return max_threads_; }

  /// Runs fn(0) .. fn(count-1) on pool workers and blocks until all
  /// complete. `fn` must not throw. Tasks may run concurrently; see the
  /// class comment for the (lack of) ordering contract.
  void ParallelRun(size_t count, const std::function<void(size_t)>& fn);

  ThreadPoolStats stats() const;

 private:
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t remaining = 0;
    std::condition_variable done_cv;
  };
  struct Task {
    Batch* batch = nullptr;
    size_t index = 0;
    uint64_t enqueue_ns = 0;
  };
  struct Slot {
    std::thread thread;
    bool occupied = false;  // a live (or not-yet-reaped) worker owns it
    bool exited = false;    // worker returned; thread is joinable garbage
  };

  void WorkerMain(size_t slot);
  /// Joins workers that retired on idle timeout, freeing their slots.
  void ReapExitedLocked();
  /// Spawns workers until queued tasks are covered by idle + new workers,
  /// or max_threads is reached.
  void EnsureWorkersLocked();

  const size_t max_threads_;
  const uint64_t idle_timeout_ms_;
  const std::string name_prefix_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  std::vector<Slot> slots_;
  size_t live_threads_ = 0;
  size_t idle_threads_ = 0;
  bool shutdown_ = false;
  ThreadPoolStats stats_{};

  // Cached metric handles (registered once in the constructor); the
  // pool.* family aggregates across every pool in the process.
  obs::Histogram* dispatch_wait_seconds_;
  obs::Counter* tasks_total_;
  obs::Counter* spawned_total_;
  obs::Counter* retired_total_;
  obs::Gauge* live_gauge_;
};

/// The process-wide default pool, created lazily on first use and shared by
/// every RunShardedPsgd whose ExecutorConfig does not inject a pool —
/// repeated solver calls (multiclass one-vs-rest, tuning sweeps, a future
/// serve mode) reuse warm workers instead of paying construction per run.
/// Size and idle timeout come from BOLTON_POOL_THREADS /
/// BOLTON_POOL_IDLE_MS when set. Intentionally never destroyed (workers
/// park or retire on their own; joining at static destruction would race
/// other singletons' teardown).
ThreadPool& GlobalThreadPool();

}  // namespace bolton

#endif  // BOLTON_OPTIM_THREAD_POOL_H_
