#ifndef BOLTON_OPTIM_SPARSE_PSGD_H_
#define BOLTON_OPTIM_SPARSE_PSGD_H_

#include "data/sparse_dataset.h"
#include "optim/psgd.h"
#include "optim/schedule.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Permutation-based SGD for L2-regularized logistic regression over SPARSE
/// features. Bit-for-bit equivalent to RunPsgd on the densified data with
/// the same seed (it mirrors the dense engine's loop and RNG usage
/// exactly), but the per-example gradient work is O(nnz) instead of O(d)
/// when λ = 0. With λ > 0 the regularizer term touches every coordinate,
/// so the sparse win applies to the convex (unregularized) setting — which
/// is exactly Algorithm 1's.
///
/// Because the output is identical to the dense black box, every
/// sensitivity bound and the bolt-on perturbation apply unchanged: run
/// this, then BoltOnPerturb() with the matching Δ₂.
/// `options.radius` controls projection, as in the dense engine; λ is
/// passed directly since the sparse path has no LossFunction object.
Result<PsgdOutput> RunSparseLogisticPsgd(const SparseDataset& data,
                                         double lambda,
                                         const StepSizeSchedule& schedule,
                                         const PsgdOptions& options, Rng* rng,
                                         GradientNoiseSource* noise = nullptr);

}  // namespace bolton

#endif  // BOLTON_OPTIM_SPARSE_PSGD_H_
