#include "optim/psgd.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "random/permutation.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace bolton {

namespace {

Status ValidateOptions(const Dataset& data, const PsgdOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options.passes < 1) return Status::InvalidArgument("passes must be >= 1");
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.batch_size > data.size()) {
    return Status::InvalidArgument(
        StrFormat("batch_size %zu exceeds training size %zu",
                  options.batch_size, data.size()));
  }
  if (options.radius <= 0.0) {
    return Status::InvalidArgument("radius must be > 0 (may be +inf)");
  }
  if (options.shards != 1) {
    return Status::InvalidArgument(
        "RunPsgd is the serial black box (shards must be 1); use "
        "RunShardedPsgd for shard-parallel execution");
  }
  return Status::OK();
}

/// One relaxed add per counter per run — never per example.
void FlushStats(const PsgdStats& stats) {
  static obs::Counter* gradient_evaluations =
      obs::MetricsRegistry::Default().GetCounter("gradient_evaluations");
  static obs::Counter* model_updates =
      obs::MetricsRegistry::Default().GetCounter("model_updates");
  static obs::Counter* noise_samples =
      obs::MetricsRegistry::Default().GetCounter("noise_samples");
  gradient_evaluations->Increment(stats.gradient_evaluations);
  model_updates->Increment(stats.updates);
  noise_samples->Increment(stats.noise_samples);
}

}  // namespace

Result<PsgdOutput> RunPsgd(
    const Dataset& data, const LossFunction& loss,
    const StepSizeSchedule& schedule, const PsgdOptions& options, Rng* rng,
    GradientNoiseSource* noise,
    const std::function<void(size_t, const Vector&)>& pass_callback,
    const PsgdCheckpointPlan* checkpoint) {
  BOLTON_RETURN_IF_ERROR(ValidateOptions(data, options));
  const PsgdResumeState* resume =
      checkpoint != nullptr ? checkpoint->resume : nullptr;
  if (checkpoint != nullptr &&
      (checkpoint->every_passes > 0 || resume != nullptr) &&
      options.sampling != SamplingMode::kPermutation) {
    return Status::InvalidArgument(
        "checkpoint/resume requires permutation sampling (the resume "
        "contract replays the permutation stream)");
  }

  obs::ScopedSpan run_span("psgd.run");
  obs::CounterScope run_counters(&run_span);

  const size_t m = data.size();
  const size_t dim = data.dim();
  const size_t b = options.batch_size;
  const bool project = std::isfinite(options.radius);

  Vector w(dim);
  Vector grad(dim);
  Vector iterate_sum(dim);

  PsgdStats stats;
  std::vector<size_t> order;
  size_t step = 0;  // 1-based after increment; indexes the schedule
  size_t first_pass = 1;
  if (resume != nullptr) {
    if (resume->w.dim() != dim) {
      return Status::InvalidArgument(
          StrFormat("resume state dim %zu does not match data dim %zu",
                    resume->w.dim(), dim));
    }
    if (resume->completed_passes >= options.passes) {
      return Status::InvalidArgument(
          StrFormat("resume state already holds %zu of %zu passes",
                    resume->completed_passes, options.passes));
    }
    if (resume->order.size() != m) {
      return Status::InvalidArgument(
          StrFormat("resume permutation covers %zu of %zu examples",
                    resume->order.size(), m));
    }
    if (!resume->iterate_sum.empty() && resume->iterate_sum.dim() != dim) {
      return Status::InvalidArgument("resume iterate_sum dim mismatch");
    }
    w = resume->w;
    if (!resume->iterate_sum.empty()) iterate_sum = resume->iterate_sum;
    stats = resume->stats;
    step = resume->step;
    order = resume->order;
    rng->RestoreState(resume->rng);
    first_pass = resume->completed_passes + 1;
  } else if (options.sampling == SamplingMode::kPermutation) {
    obs::ScopedSpan shuffle_span("psgd.shuffle");
    order = RandomPermutation(m, rng);
  } else {
    order.resize(b);  // reused scratch for with-replacement draws
  }

  static obs::Histogram* pass_seconds = obs::MetricsRegistry::Default()
      .GetHistogram("psgd.pass_seconds", obs::LatencySecondsBuckets());

  for (size_t pass = first_pass; pass <= options.passes; ++pass) {
    BOLTON_FAILPOINT("psgd.pass");
    obs::ScopedSpan pass_span("psgd.pass");
    obs::CounterScope pass_counters(&pass_span);
    obs::PhaseAccumulator gradient_phase("psgd.gradient");
    obs::PhaseAccumulator noise_phase("psgd.noise_draw");
    obs::PhaseAccumulator projection_phase("psgd.projection");
    const uint64_t pass_start = obs::MonotonicNanos();
    if (options.sampling == SamplingMode::kPermutation && pass > 1 &&
        options.fresh_permutation_each_pass) {
      obs::ScopedSpan shuffle_span("psgd.shuffle");
      order = RandomPermutation(m, rng);
    }
    for (size_t begin = 0; begin < m; begin += b) {
      // Batch-boundary cancellation poll: a serve request whose deadline
      // passed (or whose daemon is draining) abandons the run here, before
      // any further work — and long before any noise draw.
      if (options.executor.cancel != nullptr &&
          options.executor.cancel->Cancelled()) {
        return options.executor.cancel->Check("psgd run");
      }
      const size_t batch_len =
          options.sampling == SamplingMode::kPermutation
              ? std::min(b, m - begin)
              : b;
      ++step;

      grad.SetZero();
      {
        obs::PhaseTimer timer(&gradient_phase);
        const double scale = 1.0 / static_cast<double>(batch_len);
        for (size_t j = 0; j < batch_len; ++j) {
          size_t idx;
          if (options.sampling == SamplingMode::kPermutation) {
            idx = order[begin + j];
          } else {
            idx = rng->UniformInt(m);
          }
          loss.AddGradient(w, data[idx], scale, &grad);
          ++stats.gradient_evaluations;
        }
      }

      if (noise != nullptr) {
        obs::PhaseTimer timer(&noise_phase);
        BOLTON_ASSIGN_OR_RETURN(Vector z, noise->Sample(step, dim, rng));
        grad += z;
        ++stats.noise_samples;
      }

      const double eta = schedule.StepSize(step);
      if (!(eta > 0.0) || !std::isfinite(eta)) {
        return Status::InvalidArgument(
            StrFormat("schedule '%s' produced invalid step size %g at t=%zu",
                      schedule.name().c_str(), eta, step));
      }
      w.Axpy(-eta, grad);
      if (project) {
        obs::PhaseTimer timer(&projection_phase);
        ProjectToL2BallInPlace(&w, options.radius);
      }

      ++stats.updates;
      if (options.output == OutputMode::kAverageAll) iterate_sum += w;
    }
    pass_seconds->Observe(
        static_cast<double>(obs::MonotonicNanos() - pass_start) * 1e-9);
    if (pass_callback) pass_callback(pass, w);

    if (checkpoint != nullptr && checkpoint->every_passes > 0 &&
        checkpoint->sink && pass < options.passes &&
        pass % checkpoint->every_passes == 0) {
      obs::ScopedSpan checkpoint_span("psgd.checkpoint");
      PsgdResumeState snapshot;
      snapshot.completed_passes = pass;
      snapshot.step = step;
      snapshot.w = w;
      if (options.output == OutputMode::kAverageAll) {
        snapshot.iterate_sum = iterate_sum;
      }
      snapshot.stats = stats;
      snapshot.rng = rng->SaveState();
      snapshot.order = order;
      Status saved = checkpoint->sink(snapshot);
      if (!saved.ok()) {
        return saved.WithContext(
            StrFormat("checkpoint sink at pass %zu", pass));
      }
    }
  }

  FlushStats(stats);

  PsgdOutput out;
  out.stats = stats;
  if (options.output == OutputMode::kAverageAll && stats.updates > 0) {
    iterate_sum *= 1.0 / static_cast<double>(stats.updates);
    out.model = std::move(iterate_sum);
  } else {
    out.model = std::move(w);
  }
  return out;
}

}  // namespace bolton
