#include "optim/svrg.h"

#include <cmath>

namespace bolton {

Result<PsgdOutput> RunSvrg(const Dataset& data, const LossFunction& loss,
                           const SvrgOptions& options, Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options.outer_iterations < 1) {
    return Status::InvalidArgument("outer_iterations must be >= 1");
  }
  if (options.radius <= 0.0) {
    return Status::InvalidArgument("radius must be > 0 (may be +inf)");
  }
  const size_t m = data.size();
  const size_t dim = data.dim();
  const size_t inner = options.inner_updates == 0 ? m : options.inner_updates;
  const double eta =
      options.step > 0.0 ? options.step : 1.0 / (10.0 * loss.smoothness());
  if (!(eta > 0.0) || !std::isfinite(eta)) {
    return Status::InvalidArgument("invalid step size");
  }
  const bool project = std::isfinite(options.radius);

  PsgdOutput out;
  Vector snapshot(dim);  // w̃
  Vector w(dim);
  Vector snapshot_gradient(dim);  // μ̃ = ∇L_S(w̃)
  Vector correction(dim);

  for (size_t s = 0; s < options.outer_iterations; ++s) {
    // Full-gradient snapshot.
    snapshot_gradient.SetZero();
    const double scale = 1.0 / static_cast<double>(m);
    for (size_t i = 0; i < m; ++i) {
      loss.AddGradient(snapshot, data[i], scale, &snapshot_gradient);
      ++out.stats.gradient_evaluations;
    }

    w = snapshot;
    for (size_t t = 0; t < inner; ++t) {
      size_t i = rng->UniformInt(m);  // data-independent: non-adaptive
      // Variance-reduced direction: ∇ℓ_i(w) − ∇ℓ_i(w̃) + μ̃.
      correction = snapshot_gradient;
      loss.AddGradient(w, data[i], 1.0, &correction);
      loss.AddGradient(snapshot, data[i], -1.0, &correction);
      out.stats.gradient_evaluations += 2;

      w.Axpy(-eta, correction);
      if (project) ProjectToL2BallInPlace(&w, options.radius);
      ++out.stats.updates;
    }
    snapshot = w;
  }
  out.model = std::move(snapshot);
  return out;
}

}  // namespace bolton
