#include "optim/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

namespace {

/// Which pool (if any) the current thread is a worker of — lets a nested
/// ParallelRun on the same pool run inline instead of deadlocking (the
/// worker would otherwise block waiting for tasks only it could run).
thread_local const ThreadPool* t_worker_of = nullptr;

size_t ResolveMaxThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

uint64_t EnvOverrideU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    BOLTON_LOG(kWarning) << name << "=" << value
                         << " is not a number; using default";
    return fallback;
  }
  return static_cast<uint64_t>(parsed);
}

}  // namespace

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : max_threads_(ResolveMaxThreads(options.max_threads)),
      idle_timeout_ms_(options.idle_timeout_ms),
      name_prefix_(options.name_prefix) {
  stats_.max_threads = max_threads_;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  dispatch_wait_seconds_ = registry.GetHistogram(
      "pool.dispatch_wait_seconds", obs::LatencySecondsBuckets());
  tasks_total_ = registry.GetCounter("pool.tasks_total");
  spawned_total_ = registry.GetCounter("pool.threads_spawned_total");
  retired_total_ = registry.GetCounter("pool.threads_retired_total");
  live_gauge_ = registry.GetGauge("pool.threads_live");
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (Slot& slot : slots_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
}

void ThreadPool::ParallelRun(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (t_worker_of == this) {
    // Nested batch from one of our own workers: run inline. The worker is a
    // pool thread already, and parking it on done_cv could deadlock a pool
    // whose other workers are all doing the same.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.remaining = count;
  {
    std::unique_lock<std::mutex> lock(mu_);
    BOLTON_CHECK(!shutdown_);
    const uint64_t now_ns = obs::MonotonicNanos();
    for (size_t i = 0; i < count; ++i) {
      queue_.push_back(Task{&batch, i, now_ns});
    }
    ++stats_.batches_run;
    EnsureWorkersLocked();
    // notify while holding the lock: a worker that times out between our
    // unlock and notify could otherwise retire with work queued (benign —
    // EnsureWorkers spawned cover — but noisy).
    work_cv_.notify_all();
    batch.done_cv.wait(lock, [&] { return batch.remaining == 0; });
  }
}

void ThreadPool::ReapExitedLocked() {
  for (Slot& slot : slots_) {
    if (slot.occupied && slot.exited) {
      if (slot.thread.joinable()) slot.thread.join();
      slot.occupied = false;
      slot.exited = false;
    }
  }
}

void ThreadPool::EnsureWorkersLocked() {
  ReapExitedLocked();
  // Idle workers will be woken for queued tasks; spawn only the shortfall.
  const size_t target = std::min(max_threads_, queue_.size());
  size_t available = idle_threads_;
  while (available < target && live_threads_ < max_threads_) {
    size_t index = slots_.size();
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].occupied) {
        index = i;
        break;
      }
    }
    if (index == slots_.size()) slots_.emplace_back();
    Slot& slot = slots_[index];
    slot.occupied = true;
    slot.exited = false;
    ++live_threads_;
    ++stats_.threads_spawned;
    spawned_total_->Increment();
    live_gauge_->Set(static_cast<double>(live_threads_));
    slot.thread = std::thread([this, index] { WorkerMain(index); });
    ++available;
  }
}

void ThreadPool::WorkerMain(size_t slot) {
  const std::string worker_name = StrFormat("%s-%zu", name_prefix_.c_str(),
                                            slot);
  obs::SetCurrentThreadName(worker_name);
  t_worker_of = this;
  // Attach-time observability: register with the sampling profiler for the
  // thread's whole life, and pre-open this thread's perf counters so the
  // first task's CounterScope does not pay the lazy perf_event_open.
  obs::ProfiledThreadScope profile_scope;
  obs::ReadCurrentThreadPerf();

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty() && !shutdown_) {
      ++idle_threads_;
      bool timed_out = false;
      auto ready = [&] { return shutdown_ || !queue_.empty(); };
      if (idle_timeout_ms_ == 0) {
        work_cv_.wait(lock, ready);
      } else {
        timed_out = !work_cv_.wait_for(
            lock, std::chrono::milliseconds(idle_timeout_ms_), ready);
      }
      --idle_threads_;
      if (timed_out && queue_.empty() && !shutdown_) {
        // Idle spin-down: retire this worker; EnsureWorkersLocked respawns
        // on demand and reaps the joinable remains.
        ++stats_.threads_retired;
        retired_total_->Increment();
        break;
      }
    }
    if (shutdown_ && queue_.empty()) break;
    if (queue_.empty()) continue;

    Task task = queue_.front();
    queue_.pop_front();
    lock.unlock();

    dispatch_wait_seconds_->Observe(
        static_cast<double>(obs::MonotonicNanos() - task.enqueue_ns) * 1e-9);
    (*task.batch->fn)(task.index);
    // The task may have renamed the thread (psgd-shard-N); take the pool
    // name back so inter-task samples attribute to the pool, not a stale
    // shard.
    obs::SetCurrentThreadName(worker_name);

    lock.lock();
    ++stats_.tasks_run;
    tasks_total_->Increment();
    if (--task.batch->remaining == 0) task.batch->done_cv.notify_all();
  }
  --live_threads_;
  live_gauge_->Set(static_cast<double>(live_threads_));
  slots_[slot].exited = true;
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadPoolStats snapshot = stats_;
  snapshot.live_threads = live_threads_;
  snapshot.idle_threads = idle_threads_;
  return snapshot;
}

ThreadPool& GlobalThreadPool() {
  // Leaked on purpose (reachable, so LeakSanitizer-clean): joining workers
  // from a static destructor would race the teardown of the obs singletons
  // they touch. Parked workers either retire on idle timeout or die with
  // the process.
  static ThreadPool* pool = [] {
    ThreadPoolOptions options;
    options.max_threads = static_cast<size_t>(
        EnvOverrideU64("BOLTON_POOL_THREADS", 0));
    options.idle_timeout_ms =
        EnvOverrideU64("BOLTON_POOL_IDLE_MS", options.idle_timeout_ms);
    return new ThreadPool(options);
  }();
  return *pool;
}

}  // namespace bolton
