#ifndef BOLTON_OPTIM_GRADIENT_OPS_H_
#define BOLTON_OPTIM_GRADIENT_OPS_H_

#include "data/dataset.h"
#include "linalg/vector.h"
#include "optim/loss.h"
#include "util/result.h"

namespace bolton {

/// One application of the gradient-update operator (paper Eq. 2):
///   G_{ℓ,η}(w) = w − η ∇ℓ(w, example).
Vector GradientUpdate(const LossFunction& loss, const Example& example,
                      double eta, const Vector& w);

/// The theoretical expansiveness factor ρ of G_{ℓ,η} per Lemmas 1 and 2:
///  * convex (γ = 0), η ≤ 2/β            → ρ = 1
///  * γ-strongly convex, η ≤ 1/β         → ρ = 1 − ηγ   (Lemma 2)
///  * γ-strongly convex, 1/β < η ≤ 2/(β+γ) → ρ = 1 − 2ηβγ/(β+γ)  (Lemma 1.2)
/// Returns InvalidArgument when η exceeds the regime where the lemmas apply.
Result<double> ExpansivenessBound(const LossFunction& loss, double eta);

/// The boundedness bound σ of G_{ℓ,η} per Lemma 3: σ = ηL.
double BoundednessBound(const LossFunction& loss, double eta);

/// Growth-recursion step (Lemma 4): given δ_{t−1}, returns the bound on δ_t.
/// `same_operator` is true when both sequences apply the same G_t (the
/// non-differing data point); then δ_t ≤ ρ δ_{t−1}. Otherwise
/// δ_t ≤ min(ρ,1) δ_{t−1} + 2σ_t.
double GrowthRecursionStep(double delta_prev, double rho, double sigma,
                           bool same_operator);

}  // namespace bolton

#endif  // BOLTON_OPTIM_GRADIENT_OPS_H_
