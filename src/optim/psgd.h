#ifndef BOLTON_OPTIM_PSGD_H_
#define BOLTON_OPTIM_PSGD_H_

#include <functional>
#include <limits>

#include "data/dataset.h"
#include "linalg/vector.h"
#include "optim/loss.h"
#include "optim/schedule.h"
#include "optim/sgd_spec.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// How examples are drawn during SGD.
enum class SamplingMode {
  /// Permutation-based SGD (the paper's PSGD): shuffle once (or per pass)
  /// and cycle. Bismarck's native mode; required by the bolt-on analysis.
  kPermutation,
  /// Uniform with-replacement draws each step — BST14's sampling.
  kWithReplacement,
};

/// White-box extension point: per-update noise injected into the (averaged)
/// mini-batch gradient before the step is applied. The bolt-on algorithms
/// never use this; SCS13 and BST14 are implemented through it, mirroring how
/// they must patch the UDA transition function in Bismarck (§4.2).
class GradientNoiseSource {
 public:
  virtual ~GradientNoiseSource() = default;

  /// Noise for (1-based) update `step`; added to the averaged gradient.
  virtual Result<Vector> Sample(size_t step, size_t dim, Rng* rng) = 0;
};

/// Options for a PSGD run: the shared run spec (passes, batch size, output
/// mode, fresh permutation, shards) plus the fields only the optimizer
/// layer consumes.
struct PsgdOptions : SgdRunSpec {
  /// Radius R of the hypothesis ball; each update is projected onto it
  /// (rule (7)). +infinity disables projection (unconstrained).
  double radius = std::numeric_limits<double>::infinity();
  SamplingMode sampling = SamplingMode::kPermutation;
};

/// Counters describing a finished run; the runtime benches report these.
struct PsgdStats {
  /// Individual ∇ℓ_i evaluations (m·k for full passes).
  size_t gradient_evaluations = 0;
  /// Model updates applied (T = k·⌈m/b⌉).
  size_t updates = 0;
  /// Draws taken from the GradientNoiseSource (0 for black-box SGD).
  size_t noise_samples = 0;
};

/// The result of a PSGD run.
struct PsgdOutput {
  Vector model;
  PsgdStats stats;
};

/// Everything needed to continue a run from a pass boundary bit-identically
/// to a run that was never interrupted: iterate(s), cursor, engine counters,
/// the PSGD rng state, and the active permutation. Captured at pass
/// boundaries by the checkpoint plan below and persisted (atomically, with
/// an UNRELEASED_PRIVATE header — the iterate is NOT noised and must never
/// be released) by core/checkpoint.h.
struct PsgdResumeState {
  /// Passes fully applied to `w`; the run continues at pass
  /// completed_passes + 1.
  size_t completed_passes = 0;
  /// Updates applied so far (the 1-based schedule cursor after this pass).
  size_t step = 0;
  Vector w;
  /// Running Σ w_t for OutputMode::kAverageAll; empty otherwise is fine —
  /// dimension is validated against `w`.
  Vector iterate_sum;
  PsgdStats stats;
  /// The PSGD rng captured AFTER this pass's permutation draws, so a
  /// resumed run draws later fresh permutations identically.
  RngState rng;
  /// The permutation in effect (drawn once at start, or this pass's fresh
  /// draw); resuming replays it instead of re-drawing.
  std::vector<size_t> order;
};

/// Periodic checkpointing of a PSGD run (permutation sampling only).
struct PsgdCheckpointPlan {
  /// Invoke `sink` after every this-many completed passes (0 = never). The
  /// final pass is not checkpointed — the run is about to release.
  size_t every_passes = 0;
  /// Receives the pass-boundary state; a non-OK return aborts the run with
  /// that status (a checkpoint that cannot be persisted is a failed run,
  /// not a silently weaker one).
  std::function<Status(const PsgdResumeState&)> sink;
  /// When set, the run continues from this state instead of starting fresh:
  /// `rng` is restored, the permutation is replayed, and execution resumes
  /// at pass completed_passes + 1.
  const PsgdResumeState* resume = nullptr;
};

/// Runs k-pass mini-batch permutation-based SGD:
///
///   w_t = Π_R( w_{t−1} − η_t · [ (1/|B_t|) Σ_{i∈B_t} ∇ℓ_i(w_{t−1}) + z_t ] )
///
/// with z_t = 0 unless a GradientNoiseSource is supplied. Starts from w = 0.
/// This is the black box invoked at line 2 of Algorithms 1 and 2; with a
/// noise source it also hosts the SCS13/BST14 baselines.
///
/// `pass_callback`, when set, is invoked after each completed pass with the
/// (1-based) pass number and current iterate — used for convergence
/// tracking and the engine's convergence test.
///
/// `checkpoint`, when set, enables pass-boundary checkpointing and resume
/// (see PsgdCheckpointPlan); resuming from a sink-captured state continues
/// the permutation and rng streams bit-identically to an uninterrupted run.
///
/// This is the SERIAL black box: options.shards must be 1 (use
/// RunShardedPsgd in optim/parallel_executor.h for shard-parallel runs).
Result<PsgdOutput> RunPsgd(
    const Dataset& data, const LossFunction& loss,
    const StepSizeSchedule& schedule, const PsgdOptions& options, Rng* rng,
    GradientNoiseSource* noise = nullptr,
    const std::function<void(size_t, const Vector&)>& pass_callback = nullptr,
    const PsgdCheckpointPlan* checkpoint = nullptr);

}  // namespace bolton

#endif  // BOLTON_OPTIM_PSGD_H_
