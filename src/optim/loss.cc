#include "optim/loss.h"

#include <cmath>
#include <limits>

#include "util/strings.h"

namespace bolton {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Validates the (lambda, radius) pair shared by all regularized losses.
Status ValidateRegularization(double lambda, double radius) {
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (lambda > 0.0 && !(radius > 0.0 && std::isfinite(radius))) {
    return Status::InvalidArgument(
        "strongly convex losses (lambda > 0) need a finite positive radius R "
        "to bound the Lipschitz constant (paper §2)");
  }
  if (radius <= 0.0) {
    return Status::InvalidArgument("radius must be > 0 (may be +inf)");
  }
  return Status::OK();
}

// Numerically stable ln(1 + e^z).
double Log1pExp(double z) {
  if (z > 0.0) return z + std::log1p(std::exp(-z));
  return std::log1p(std::exp(z));
}

// Numerically stable logistic sigmoid 1 / (1 + e^{-z}).
double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

class LogisticLoss final : public LossFunction {
 public:
  LogisticLoss(double lambda, double radius) : lambda_(lambda), radius_(radius) {}

  double Loss(const Vector& w, const Example& example) const override {
    double z = -example.label * Dot(w, example.x);
    double loss = Log1pExp(z);
    if (lambda_ > 0.0) loss += 0.5 * lambda_ * w.SquaredNorm();
    return loss;
  }

  void AddGradient(const Vector& w, const Example& example, double scale,
                   Vector* grad) const override {
    // ∇ℓ = −y·σ(−y⟨w,x⟩)·x + λw.
    double margin = example.label * Dot(w, example.x);
    double coeff = -example.label * Sigmoid(-margin);
    grad->Axpy(scale * coeff, example.x);
    if (lambda_ > 0.0) grad->Axpy(scale * lambda_, w);
  }

  // Paper §2: λ=0 ⇒ (L, β, γ) = (1, 1, 0); λ>0 ⇒ (1+λR, 1+λ, λ).
  double lipschitz() const override {
    return lambda_ > 0.0 ? 1.0 + lambda_ * radius_ : 1.0;
  }
  double smoothness() const override { return 1.0 + lambda_; }
  double strong_convexity() const override { return lambda_; }
  double radius() const override { return radius_; }

  std::string name() const override {
    return StrFormat("logistic(lambda=%g)", lambda_);
  }
  std::unique_ptr<LossFunction> Clone() const override {
    return std::make_unique<LogisticLoss>(*this);
  }

 private:
  double lambda_;
  double radius_;
};

class HuberSvmLoss final : public LossFunction {
 public:
  HuberSvmLoss(double h, double lambda, double radius)
      : h_(h), lambda_(lambda), radius_(radius) {}

  double Loss(const Vector& w, const Example& example) const override {
    double z = example.label * Dot(w, example.x);
    double loss;
    if (z > 1.0 + h_) {
      loss = 0.0;
    } else if (z < 1.0 - h_) {
      loss = 1.0 - z;
    } else {
      double gap = 1.0 + h_ - z;
      loss = gap * gap / (4.0 * h_);
    }
    if (lambda_ > 0.0) loss += 0.5 * lambda_ * w.SquaredNorm();
    return loss;
  }

  void AddGradient(const Vector& w, const Example& example, double scale,
                   Vector* grad) const override {
    double z = example.label * Dot(w, example.x);
    double dz;  // dℓ/dz
    if (z > 1.0 + h_) {
      dz = 0.0;
    } else if (z < 1.0 - h_) {
      dz = -1.0;
    } else {
      dz = -(1.0 + h_ - z) / (2.0 * h_);
    }
    if (dz != 0.0) grad->Axpy(scale * dz * example.label, example.x);
    if (lambda_ > 0.0) grad->Axpy(scale * lambda_, w);
  }

  // Appendix B: L ≤ 1, β ≤ 1/(2h) for ‖x‖ ≤ 1; regularizer adds λR / λ / λ.
  double lipschitz() const override {
    return lambda_ > 0.0 ? 1.0 + lambda_ * radius_ : 1.0;
  }
  double smoothness() const override { return 1.0 / (2.0 * h_) + lambda_; }
  double strong_convexity() const override { return lambda_; }
  double radius() const override { return radius_; }

  std::string name() const override {
    return StrFormat("huber_svm(h=%g,lambda=%g)", h_, lambda_);
  }
  std::unique_ptr<LossFunction> Clone() const override {
    return std::make_unique<HuberSvmLoss>(*this);
  }

 private:
  double h_;
  double lambda_;
  double radius_;
};

class SquaredLoss final : public LossFunction {
 public:
  SquaredLoss(double lambda, double radius) : lambda_(lambda), radius_(radius) {}

  double Loss(const Vector& w, const Example& example) const override {
    double r = Dot(w, example.x) - example.label;
    double loss = 0.5 * r * r;
    if (lambda_ > 0.0) loss += 0.5 * lambda_ * w.SquaredNorm();
    return loss;
  }

  void AddGradient(const Vector& w, const Example& example, double scale,
                   Vector* grad) const override {
    double r = Dot(w, example.x) - example.label;
    grad->Axpy(scale * r, example.x);
    if (lambda_ > 0.0) grad->Axpy(scale * lambda_, w);
  }

  // |⟨w,x⟩ − y| ≤ R + 1 with ‖x‖ ≤ 1, |y| ≤ 1, ‖w‖ ≤ R.
  double lipschitz() const override {
    double base = std::isfinite(radius_) ? radius_ + 1.0 : kInf;
    return lambda_ > 0.0 ? base + lambda_ * radius_ : base;
  }
  double smoothness() const override { return 1.0 + lambda_; }
  double strong_convexity() const override { return lambda_; }
  double radius() const override { return radius_; }

  std::string name() const override {
    return StrFormat("squared(lambda=%g)", lambda_);
  }
  std::unique_ptr<LossFunction> Clone() const override {
    return std::make_unique<SquaredLoss>(*this);
  }

 private:
  double lambda_;
  double radius_;
};

}  // namespace

Vector LossFunction::Gradient(const Vector& w, const Example& example) const {
  Vector grad(w.dim());
  AddGradient(w, example, 1.0, &grad);
  return grad;
}

double LossFunction::EmpiricalRisk(const Vector& w,
                                   const Dataset& dataset) const {
  if (dataset.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < dataset.size(); ++i) acc += Loss(w, dataset[i]);
  return acc / static_cast<double>(dataset.size());
}

Result<std::unique_ptr<LossFunction>> MakeLogisticLoss(double lambda,
                                                       double radius) {
  BOLTON_RETURN_IF_ERROR(ValidateRegularization(lambda, radius));
  return std::unique_ptr<LossFunction>(new LogisticLoss(lambda, radius));
}

Result<std::unique_ptr<LossFunction>> MakeHuberSvmLoss(double h, double lambda,
                                                       double radius) {
  if (h <= 0.0 || h >= 1.0) {
    return Status::InvalidArgument("Huber width h must be in (0, 1)");
  }
  BOLTON_RETURN_IF_ERROR(ValidateRegularization(lambda, radius));
  return std::unique_ptr<LossFunction>(new HuberSvmLoss(h, lambda, radius));
}

Result<std::unique_ptr<LossFunction>> MakeSquaredLoss(double lambda,
                                                      double radius) {
  BOLTON_RETURN_IF_ERROR(ValidateRegularization(lambda, radius));
  if (!std::isfinite(radius)) {
    return Status::InvalidArgument(
        "squared loss needs a finite radius for a finite Lipschitz constant");
  }
  return std::unique_ptr<LossFunction>(new SquaredLoss(lambda, radius));
}

}  // namespace bolton
