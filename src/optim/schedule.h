#ifndef BOLTON_OPTIM_SCHEDULE_H_
#define BOLTON_OPTIM_SCHEDULE_H_

#include <memory>
#include <string>

#include "util/result.h"

namespace bolton {

/// A learning-rate schedule η_t. Steps are 1-based, matching the paper's
/// indexing (t = 1, 2, ..., T with T = km).
class StepSizeSchedule {
 public:
  virtual ~StepSizeSchedule() = default;

  /// η_t for step t ≥ 1.
  virtual double StepSize(size_t t) const = 0;

  /// Largest step size the schedule can emit (η_1 for the decreasing
  /// schedules). Sensitivity formulas for constant steps consume this.
  virtual double MaxStepSize() const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<StepSizeSchedule> Clone() const = 0;
};

/// η_t = η (paper's convex setting; Corollary 1). The paper's default for
/// both noiseless and private convex runs is η = 1/√m (Table 4).
Result<std::unique_ptr<StepSizeSchedule>> MakeConstantStep(double eta);

/// η_t = min(1/β, 1/(γt)) — Algorithm 2's strongly convex schedule
/// (Lemma 8). Pass beta = +inf for the paper's plain noiseless 1/(γt).
Result<std::unique_ptr<StepSizeSchedule>> MakeInverseTimeStep(double gamma,
                                                              double beta);

/// η_t = c/√t — SCS13's schedule (Table 4 uses c = 1).
Result<std::unique_ptr<StepSizeSchedule>> MakeInverseSqrtStep(double c);

/// η_t = 2/(β(t + m^c)) — Corollary 2's decreasing schedule.
Result<std::unique_ptr<StepSizeSchedule>> MakeDecreasingStep(double beta,
                                                             size_t m,
                                                             double c);

/// η_t = 2/(β(√t + m^c)) — Corollary 3's square-root schedule.
Result<std::unique_ptr<StepSizeSchedule>> MakeSqrtOffsetStep(double beta,
                                                             size_t m,
                                                             double c);

}  // namespace bolton

#endif  // BOLTON_OPTIM_SCHEDULE_H_
