#ifndef BOLTON_OPTIM_SVRG_H_
#define BOLTON_OPTIM_SVRG_H_

#include <limits>

#include "data/dataset.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Options for Stochastic Variance Reduced Gradient.
struct SvrgOptions {
  /// Outer iterations S (each recomputes a full-gradient snapshot).
  size_t outer_iterations = 5;
  /// Inner updates per outer iteration; 0 means m (one effective pass).
  size_t inner_updates = 0;
  /// Constant step size η; 0 selects the standard 1/(10β).
  double step = 0.0;
  /// Projection radius (+inf disables).
  double radius = std::numeric_limits<double>::infinity();
};

/// SVRG (Johnson & Zhang 2013) — one of the "more modern SGD variants"
/// the paper's §3.2 points out is NON-ADAPTIVE (Definition 7): its random
/// index choices never depend on data values, so Lemma 5's
/// randomness-one-at-a-time argument — and therefore output perturbation —
/// applies to it just as it does to PSGD. The paper does not derive an
/// analytical Δ₂ for SVRG; pair this optimizer with the empirical
/// sensitivity tooling (core/sensitivity.h's SimulateDeltaT) or derive a
/// bound before using it privately.
///
/// Update: w ← Π_R( w − η(∇ℓ_i(w) − ∇ℓ_i(w̃) + μ̃) ) with μ̃ = ∇L_S(w̃)
/// recomputed at each snapshot w̃. Returns the final snapshot.
Result<PsgdOutput> RunSvrg(const Dataset& data, const LossFunction& loss,
                           const SvrgOptions& options, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_OPTIM_SVRG_H_
