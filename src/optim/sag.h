#ifndef BOLTON_OPTIM_SAG_H_
#define BOLTON_OPTIM_SAG_H_

#include <limits>

#include "data/dataset.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Options for Stochastic Average Gradient.
struct SagOptions {
  /// Total updates T; 0 means 5·m (five effective passes).
  size_t updates = 0;
  /// Constant step size η; 0 selects the standard 1/(16β).
  double step = 0.0;
  /// Projection radius (+inf disables).
  double radius = std::numeric_limits<double>::infinity();
};

/// SAG (Le Roux, Schmidt & Bach 2012) — the other "more modern SGD
/// variant" the paper's §3.2 lists as NON-ADAPTIVE (Definition 7): index
/// choices are data-independent, so Lemma 5 and output perturbation apply
/// in principle. SAG keeps the most recent gradient of every example
/// (O(m·d) memory) and steps along their running average:
///
///   g_i ← ∇ℓ_i(w) for the drawn i;   w ← Π_R(w − η · (1/m) Σ_j g_j).
///
/// As with SVRG, the paper derives no analytical Δ₂ for SAG; use
/// SimulateDeltaT for empirical sensitivity measurements or derive a bound
/// before private use.
Result<PsgdOutput> RunSag(const Dataset& data, const LossFunction& loss,
                          const SagOptions& options, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_OPTIM_SAG_H_
