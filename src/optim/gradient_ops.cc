#include "optim/gradient_ops.h"

#include <algorithm>

#include "util/strings.h"

namespace bolton {

Vector GradientUpdate(const LossFunction& loss, const Example& example,
                      double eta, const Vector& w) {
  Vector out = w;
  loss.AddGradient(w, example, -eta, &out);
  return out;
}

Result<double> ExpansivenessBound(const LossFunction& loss, double eta) {
  if (eta <= 0.0) return Status::InvalidArgument("eta must be > 0");
  const double beta = loss.smoothness();
  const double gamma = loss.strong_convexity();
  if (gamma == 0.0) {
    if (eta > 2.0 / beta) {
      return Status::InvalidArgument(StrFormat(
          "eta=%g exceeds 2/beta=%g; Lemma 1.1 does not apply", eta,
          2.0 / beta));
    }
    return 1.0;
  }
  if (eta <= 1.0 / beta) {
    return 1.0 - eta * gamma;  // Lemma 2
  }
  if (eta <= 2.0 / (beta + gamma)) {
    return 1.0 - 2.0 * eta * beta * gamma / (beta + gamma);  // Lemma 1.2
  }
  return Status::InvalidArgument(StrFormat(
      "eta=%g exceeds 2/(beta+gamma)=%g; expansiveness lemmas do not apply",
      eta, 2.0 / (beta + gamma)));
}

double BoundednessBound(const LossFunction& loss, double eta) {
  return eta * loss.lipschitz();
}

double GrowthRecursionStep(double delta_prev, double rho, double sigma,
                           bool same_operator) {
  if (same_operator) return rho * delta_prev;
  return std::min(rho, 1.0) * delta_prev + 2.0 * sigma;
}

}  // namespace bolton
