#ifndef BOLTON_ENGINE_BOLT_ON_DRIVER_H_
#define BOLTON_ENGINE_BOLT_ON_DRIVER_H_

#include "core/private_sgd.h"
#include "engine/driver.h"

namespace bolton {

/// Result of a private in-engine training run.
struct BoltOnDriverOutput {
  /// The differentially private model and noise accounting.
  PrivateSgdOutput private_output;
  /// The underlying (non-private) driver run: epochs, timings, counters.
  DriverOutput driver;
};

/// Figure 1B — the paper's headline integration: run the engine's SGD
/// driver COMPLETELY UNCHANGED, then add one noise draw in the front-end
/// controller. This function is the C++ equivalent of the "about 10 lines
/// of Python" of §4.2; it contains no SGD logic of its own.
///
/// Convex losses (γ = 0) run Algorithm 1: constant step η (options.
/// constant_step, default 1/√m), exactly options.passes epochs (the driver's
/// convergence test is disabled because Δ₂ = 2kLη/b depends on the realized
/// epoch count k). Strongly convex losses run Algorithm 2: η_t =
/// min(1/β, 1/(γt)), projection onto R, and — because Δ₂ = 2L/(γmb) is
/// k-oblivious (§4.3 "the number of passes k is oblivious to private
/// SGD") — `tolerance` MAY be set to stop early on convergence with
/// options.passes as the cap K.
///
/// options.shards > 1 runs s copies of the unchanged black box over
/// disjoint shards of the table and averages them (Lemma 10), with the
/// noise calibrated to the max per-shard sensitivity; tolerance must then
/// be 0 (each shard runs fixed epochs).
Result<BoltOnDriverOutput> RunBoltOnPrivateDriver(Table* table,
                                                  const LossFunction& loss,
                                                  const BoltOnOptions& options,
                                                  double tolerance, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_ENGINE_BOLT_ON_DRIVER_H_
