#ifndef BOLTON_ENGINE_SGD_UDA_H_
#define BOLTON_ENGINE_SGD_UDA_H_

#include <cstddef>
#include <limits>

#include "engine/uda.h"
#include "obs/trace.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/schedule.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Configuration of the in-engine SGD aggregate.
struct SgdUdaOptions {
  /// Mini-batch size; updates fire every `batch_size` transitions (plus a
  /// flush of any partial batch at Terminate, matching Bismarck).
  size_t batch_size = 1;
  /// Projection radius (rule (7)); +inf disables projection.
  double radius = std::numeric_limits<double>::infinity();
};

/// The SGD UDA of Figure 1: aggregation state is the model vector w plus a
/// mini-batch gradient accumulator. `noise` is the white-box extension
/// point (Figure 1C) — when non-null, every mini-batch update first draws a
/// noise vector and adds it to the averaged gradient, exactly the deep
/// change SCS13/BST14 require inside the transition function. The bolt-on
/// algorithms leave it null and the UDA byte-for-byte matches noiseless SGD.
class SgdUda final : public Uda {
 public:
  /// `loss` and `schedule` must outlive the UDA. The UDA owns no data.
  SgdUda(const LossFunction& loss, const StepSizeSchedule& schedule,
         const SgdUdaOptions& options, GradientNoiseSource* noise = nullptr,
         Rng* noise_rng = nullptr);

  void Initialize(const Vector& state) override;
  void Transition(const Example& row) override;
  Vector Terminate() override;

  /// Cross-epoch counters (for the runtime benches).
  const PsgdStats& stats() const { return stats_; }

  /// The first error encountered while sampling white-box noise, if any.
  /// The UDA interface cannot return Status from Transition, so errors are
  /// latched here and surfaced by the driver after the epoch.
  const Status& status() const { return status_; }

 private:
  void ApplyUpdate();

  const LossFunction& loss_;
  const StepSizeSchedule& schedule_;
  SgdUdaOptions options_;
  GradientNoiseSource* noise_;
  Rng* noise_rng_;

  Vector model_;
  Vector batch_grad_;
  size_t batch_fill_ = 0;
  size_t step_ = 0;  // global update counter across epochs
  PsgdStats stats_;
  Status status_;

  // Per-epoch phase aggregates (obs/trace.h); flushed at Terminate so each
  // epoch's span tree carries one uda.* record per phase. No-ops while
  // tracing is disabled.
  obs::PhaseAccumulator gradient_phase_{"uda.gradient"};
  obs::PhaseAccumulator noise_phase_{"uda.noise_draw"};
  obs::PhaseAccumulator projection_phase_{"uda.projection"};
};

}  // namespace bolton

#endif  // BOLTON_ENGINE_SGD_UDA_H_
