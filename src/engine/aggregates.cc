#include "engine/aggregates.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace bolton {

Result<Vector> RunAggregate(const Table& table, Uda* uda,
                            const Vector& initial_state) {
  if (uda == nullptr) return Status::InvalidArgument("null UDA");
  uda->Initialize(initial_state);
  BOLTON_RETURN_IF_ERROR(
      table.Scan([uda](const Example& row) { uda->Transition(row); }));
  return uda->Terminate();
}

AvgUda::AvgUda(size_t dim) : dim_(dim), state_(dim + 1) {}

void AvgUda::Initialize(const Vector& state) {
  BOLTON_CHECK(state.dim() == dim_ + 1);
  state_ = state;
}

void AvgUda::Transition(const Example& row) {
  BOLTON_CHECK(row.x.dim() == dim_);
  for (size_t i = 0; i < dim_; ++i) state_[i] += row.x[i];
  state_[dim_] += 1.0;
}

Vector AvgUda::Terminate() {
  Vector means(dim_);
  double count = state_[dim_];
  if (count > 0.0) {
    for (size_t i = 0; i < dim_; ++i) means[i] = state_[i] / count;
  }
  return means;
}

LabelCountUda::LabelCountUda() : counts_(2) {}

void LabelCountUda::Initialize(const Vector& state) {
  BOLTON_CHECK(state.dim() == 2);
  counts_ = state;
}

void LabelCountUda::Transition(const Example& row) {
  if (row.label >= 0) {
    counts_[1] += 1.0;
  } else {
    counts_[0] += 1.0;
  }
}

Vector LabelCountUda::Terminate() { return counts_; }

NormStatsUda::NormStatsUda()
    : min_norm_(std::numeric_limits<double>::infinity()),
      max_norm_(0.0),
      sum_norm_(0.0),
      count_(0.0) {}

void NormStatsUda::Initialize(const Vector& state) {
  BOLTON_CHECK(state.dim() == 4 || state.empty());
  if (state.dim() == 4) {
    min_norm_ = state[0];
    max_norm_ = state[1];
    sum_norm_ = state[2];
    count_ = state[3];
  }
}

void NormStatsUda::Transition(const Example& row) {
  double n = row.x.Norm();
  min_norm_ = std::min(min_norm_, n);
  max_norm_ = std::max(max_norm_, n);
  sum_norm_ += n;
  count_ += 1.0;
}

Vector NormStatsUda::Terminate() {
  Vector out(3);
  if (count_ > 0.0) {
    out[0] = min_norm_;
    out[1] = max_norm_;
    out[2] = sum_norm_ / count_;
  }
  return out;
}

Result<Vector> TableFeatureMeans(const Table& table) {
  AvgUda uda(table.dim());
  return RunAggregate(table, &uda, Vector(table.dim() + 1));
}

Result<Vector> TableNormStats(const Table& table) {
  NormStatsUda uda;
  return RunAggregate(table, &uda, Vector());
}

}  // namespace bolton
