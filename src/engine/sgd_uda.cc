#include "engine/sgd_uda.h"

#include <cmath>

#include "util/strings.h"

namespace bolton {

SgdUda::SgdUda(const LossFunction& loss, const StepSizeSchedule& schedule,
               const SgdUdaOptions& options, GradientNoiseSource* noise,
               Rng* noise_rng)
    : loss_(loss),
      schedule_(schedule),
      options_(options),
      noise_(noise),
      noise_rng_(noise_rng) {
  BOLTON_CHECK(options_.batch_size >= 1);
  BOLTON_CHECK(noise_ == nullptr || noise_rng_ != nullptr);
}

void SgdUda::Initialize(const Vector& state) {
  model_ = state;
  batch_grad_ = Vector(state.dim());
  batch_fill_ = 0;
}

void SgdUda::Transition(const Example& row) {
  if (!status_.ok()) return;
  {
    obs::PhaseTimer timer(&gradient_phase_);
    loss_.AddGradient(model_, row, 1.0, &batch_grad_);
  }
  ++stats_.gradient_evaluations;
  ++batch_fill_;
  if (batch_fill_ == options_.batch_size) ApplyUpdate();
}

Vector SgdUda::Terminate() {
  // Flush a trailing partial batch, as Bismarck's terminate function does.
  if (status_.ok() && batch_fill_ > 0) ApplyUpdate();
  gradient_phase_.Flush();
  noise_phase_.Flush();
  projection_phase_.Flush();
  return model_;
}

void SgdUda::ApplyUpdate() {
  ++step_;
  batch_grad_ *= 1.0 / static_cast<double>(batch_fill_);
  if (noise_ != nullptr) {
    obs::PhaseTimer timer(&noise_phase_);
    auto z = noise_->Sample(step_, model_.dim(), noise_rng_);
    if (!z.ok()) {
      status_ = z.status().WithContext("white-box noise at transition");
      return;
    }
    batch_grad_ += z.value();
    ++stats_.noise_samples;
  }
  double eta = schedule_.StepSize(step_);
  model_.Axpy(-eta, batch_grad_);
  if (std::isfinite(options_.radius)) {
    obs::PhaseTimer timer(&projection_phase_);
    ProjectToL2BallInPlace(&model_, options_.radius);
  }
  ++stats_.updates;
  batch_grad_.SetZero();
  batch_fill_ = 0;
}

}  // namespace bolton
