#ifndef BOLTON_ENGINE_DRIVER_H_
#define BOLTON_ENGINE_DRIVER_H_

#include <limits>
#include <vector>

#include "engine/table.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/schedule.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Front-end controller options (the role of Bismarck's Python controller).
struct DriverOptions {
  /// Hard cap on epochs (the paper's K threshold).
  size_t max_epochs = 10;
  /// Convergence test: stop when the relative model movement
  /// ‖w_e − w_{e−1}‖ / max(1, ‖w_{e−1}‖) drops below this. 0 disables the
  /// test, running exactly max_epochs — required for the convex bolt-on
  /// algorithm, whose sensitivity depends on the realized epoch count.
  double tolerance = 0.0;
  /// Mini-batch size forwarded to the SGD UDA.
  size_t batch_size = 1;
  /// Projection radius forwarded to the SGD UDA.
  double radius = std::numeric_limits<double>::infinity();
};

/// What one driver run reports back.
struct DriverOutput {
  Vector model;
  size_t epochs_run = 0;
  /// Wall-clock seconds per epoch (the Figure 5 measurements).
  std::vector<double> epoch_seconds;
  /// Engine counters accumulated across all epochs.
  PsgdStats stats;
};

/// The epoch loop of Figure 1A: shuffle the table once, then per epoch
/// initialize the UDA with the previous model, scan the table through the
/// transition function, terminate, and apply the convergence test.
/// `noise` (with `noise_rng`) selects the white-box path of Figure 1C.
Result<DriverOutput> RunSgdDriver(Table* table, const LossFunction& loss,
                                  const StepSizeSchedule& schedule,
                                  const DriverOptions& options, Rng* rng,
                                  GradientNoiseSource* noise = nullptr);

}  // namespace bolton

#endif  // BOLTON_ENGINE_DRIVER_H_
