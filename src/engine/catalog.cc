#include "engine/catalog.h"

namespace bolton {

Status Catalog::Register(const std::string& name,
                         std::unique_ptr<Table> table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (name.empty()) return Status::InvalidArgument("empty table name");
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition("table '" + name + "' already exists");
  }
  return Status::OK();
}

Status Catalog::CreateTable(const std::string& name, const Dataset& data,
                            StorageMode mode, const std::string& spill_path) {
  BOLTON_ASSIGN_OR_RETURN(auto table, MakeTable(data, mode, spill_path));
  return Register(name, std::move(table));
}

Result<Table*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

bool Catalog::Contains(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace bolton
