#include "engine/private_aggregates.h"

#include <cmath>

#include "random/distributions.h"
#include "random/dp_noise.h"
#include "util/strings.h"

namespace bolton {

namespace {

// Scalar noise for the selected mechanism: Laplace(Δ/ε) for pure ε-DP,
// N(0, σ²) with Theorem 3's σ for (ε, δ)-DP.
Result<double> SampleScalarNoise(double sensitivity,
                                 const PrivacyParams& privacy, Rng* rng) {
  BOLTON_RETURN_IF_ERROR(privacy.Validate());
  if (privacy.IsPure()) {
    return SampleLaplace(sensitivity / privacy.epsilon, rng);
  }
  BOLTON_ASSIGN_OR_RETURN(
      double sigma,
      GaussianMechanismSigma(sensitivity, privacy.epsilon, privacy.delta));
  return sigma * rng->Gaussian();
}

}  // namespace

Result<PrivateScalar> PrivateCount(const Table& table,
                                   const PrivacyParams& privacy, Rng* rng) {
  PrivateScalar out;
  out.true_value = static_cast<double>(table.num_rows());
  BOLTON_ASSIGN_OR_RETURN(double noise,
                          SampleScalarNoise(1.0, privacy, rng));
  out.noisy = out.true_value + noise;
  return out;
}

Result<PrivateScalar> PrivateFeatureMean(const Table& table, size_t column,
                                         const PrivacyParams& privacy,
                                         Rng* rng) {
  if (column >= table.dim()) {
    return Status::OutOfRange(StrFormat("column %zu >= table dim %zu",
                                        column, table.dim()));
  }
  if (table.num_rows() == 0) return Status::InvalidArgument("empty table");

  double sum = 0.0;
  bool in_unit_ball = true;
  BOLTON_RETURN_IF_ERROR(table.Scan([&](const Example& row) {
    sum += row.x[column];
    if (std::abs(row.x[column]) > 1.0 + 1e-12) in_unit_ball = false;
  }));
  if (!in_unit_ball) {
    return Status::FailedPrecondition(
        "feature values must lie in [-1, 1] (run NormalizeToUnitBall); the "
        "2/m sensitivity calibration is invalid otherwise");
  }

  PrivateScalar out;
  out.true_value = sum / static_cast<double>(table.num_rows());
  const double sensitivity = 2.0 / static_cast<double>(table.num_rows());
  BOLTON_ASSIGN_OR_RETURN(double noise,
                          SampleScalarNoise(sensitivity, privacy, rng));
  out.noisy = out.true_value + noise;
  return out;
}

Result<Vector> PrivateFeatureMeans(const Table& table,
                                   const PrivacyParams& privacy, Rng* rng) {
  BOLTON_RETURN_IF_ERROR(privacy.Validate());
  if (table.num_rows() == 0) return Status::InvalidArgument("empty table");

  Vector sum(table.dim());
  bool in_unit_ball = true;
  BOLTON_RETURN_IF_ERROR(table.Scan([&](const Example& row) {
    sum += row.x;
    if (row.x.Norm() > 1.0 + 1e-12) in_unit_ball = false;
  }));
  if (!in_unit_ball) {
    return Status::FailedPrecondition(
        "feature vectors must satisfy ||x|| <= 1 (run NormalizeToUnitBall)");
  }
  sum *= 1.0 / static_cast<double>(table.num_rows());

  const double sensitivity = 2.0 / static_cast<double>(table.num_rows());
  NoiseMechanism mechanism = privacy.IsPure() ? NoiseMechanism::kLaplace
                                              : NoiseMechanism::kGaussian;
  BOLTON_ASSIGN_OR_RETURN(
      Vector noise,
      SampleDpNoise(mechanism, table.dim(), sensitivity, privacy.epsilon,
                    privacy.delta, rng));
  sum += noise;
  return sum;
}

}  // namespace bolton
