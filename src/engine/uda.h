#ifndef BOLTON_ENGINE_UDA_H_
#define BOLTON_ENGINE_UDA_H_

#include "data/dataset.h"
#include "linalg/vector.h"

namespace bolton {

/// The user-defined-aggregate contract of §4.2 — the three functions a
/// developer supplies to run an aggregation inside the engine, mirroring
/// the C UDA API Bismarck implements on PostgreSQL:
///
///  * `Initialize` — set the aggregation state from the front-end
///    controller's value (for SGD, the previous epoch's model).
///  * `Transition` — fold one row into the state.
///  * `Terminate`  — finish the epoch and emit the state.
///
/// One epoch of SGD = one aggregate invocation over a full table scan.
/// A UDA instance persists across epochs of one training run, so
/// implementations may keep cross-epoch counters (e.g., the global step
/// index t that decreasing step-size schedules consume).
class Uda {
 public:
  virtual ~Uda() = default;

  virtual void Initialize(const Vector& state) = 0;
  virtual void Transition(const Example& row) = 0;
  virtual Vector Terminate() = 0;
};

}  // namespace bolton

#endif  // BOLTON_ENGINE_UDA_H_
