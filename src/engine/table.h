#ifndef BOLTON_ENGINE_TABLE_H_
#define BOLTON_ENGINE_TABLE_H_

#include <functional>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Where a Table keeps its rows.
enum class StorageMode {
  /// Rows live in RAM — the warm-buffer-cache setting of the paper's
  /// runtime experiments (Figure 5, Figure 2a).
  kMemory,
  /// Rows live in a fixed-width binary file read page-by-page on every
  /// scan — the larger-than-memory setting of Figure 2b. Only one page is
  /// resident at a time.
  kDisk,
};

/// A training-data table, the engine's analogue of the PostgreSQL relation
/// Bismarck trains over. Rows are (feature vector, label) pairs of one
/// fixed dimension.
///
/// The access pattern matches Bismarck's: `Shuffle()` materializes a
/// random row order (the `ORDER BY RANDOM()` step, run once before
/// training), after which every epoch performs one sequential `Scan()`.
class Table {
 public:
  using RowFn = std::function<void(const Example&)>;

  virtual ~Table() = default;

  virtual size_t num_rows() const = 0;
  virtual size_t dim() const = 0;
  virtual StorageMode mode() const = 0;

  /// Materializes a uniformly random row order (Fisher–Yates for memory
  /// tables; for disk tables the shuffle rewrites the backing file so later
  /// scans stay sequential, like `CREATE TABLE ... AS SELECT ... ORDER BY
  /// RANDOM()`).
  virtual Status Shuffle(Rng* rng) = 0;

  /// One sequential pass over the rows in their current order.
  virtual Status Scan(const RowFn& fn) const = 0;

  /// Copies all rows (current order) into a Dataset. Primarily for tests.
  Result<Dataset> ToDataset(int num_classes = 2) const;
};

/// Creates a table from a dataset. `spill_path` names the backing file for
/// kDisk mode (required then; ignored for kMemory). `page_rows` is the
/// number of rows per I/O page for kDisk (default 1024).
Result<std::unique_ptr<Table>> MakeTable(const Dataset& data, StorageMode mode,
                                         const std::string& spill_path = "",
                                         size_t page_rows = 1024);

}  // namespace bolton

#endif  // BOLTON_ENGINE_TABLE_H_
