#ifndef BOLTON_ENGINE_CATALOG_H_
#define BOLTON_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/table.h"
#include "util/result.h"

namespace bolton {

/// A named-table registry — the engine's (single-session, unsynchronized)
/// analogue of a database catalog. Analytics sessions register training
/// tables once and refer to them by name afterwards, which is how the
/// example pipelines address data.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table` under `name`. Fails with FailedPrecondition if the
  /// name is taken.
  Status Register(const std::string& name, std::unique_ptr<Table> table);

  /// Creates and registers a table from a dataset in one step.
  Status CreateTable(const std::string& name, const Dataset& data,
                     StorageMode mode, const std::string& spill_path = "");

  /// Looks up a table; NotFound if absent. The catalog retains ownership.
  Result<Table*> Get(const std::string& name) const;

  /// True if `name` is registered.
  bool Contains(const std::string& name) const;

  /// Drops a table; NotFound if absent.
  Status Drop(const std::string& name);

  /// Registered names in sorted order.
  std::vector<std::string> ListTables() const;

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace bolton

#endif  // BOLTON_ENGINE_CATALOG_H_
