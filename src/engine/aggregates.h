#ifndef BOLTON_ENGINE_AGGREGATES_H_
#define BOLTON_ENGINE_AGGREGATES_H_

#include "engine/table.h"
#include "engine/uda.h"
#include "util/result.h"

namespace bolton {

/// Executes one aggregation query: initialize the UDA with `initial_state`,
/// stream every table row through Transition, and return Terminate's
/// output. This is the engine's equivalent of `SELECT agg(...) FROM t` —
/// the same scan loop the SGD driver uses for an epoch, reusable for any
/// aggregate.
Result<Vector> RunAggregate(const Table& table, Uda* uda,
                            const Vector& initial_state);

/// The AVG aggregate of §4.2's exposition, generalized per-dimension: state
/// is (sum_0..sum_{d−1}, count); Terminate emits the d feature means.
/// Initialize expects a (d+1)-dim state (normally zeros).
class AvgUda final : public Uda {
 public:
  explicit AvgUda(size_t dim);

  void Initialize(const Vector& state) override;
  void Transition(const Example& row) override;
  Vector Terminate() override;

 private:
  size_t dim_;
  Vector state_;  // d sums followed by the row count
};

/// COUNT(*) per class label sign: state is (negatives, positives).
/// Demonstrates a stateful aggregate whose output is not model-shaped.
class LabelCountUda final : public Uda {
 public:
  LabelCountUda();

  void Initialize(const Vector& state) override;
  void Transition(const Example& row) override;
  Vector Terminate() override;

 private:
  Vector counts_;
};

/// Feature-norm statistics: (min ‖x‖, max ‖x‖, Σ‖x‖, count); Terminate
/// emits (min, max, mean). Used to audit the unit-ball preprocessing the
/// privacy analysis assumes.
class NormStatsUda final : public Uda {
 public:
  NormStatsUda();

  void Initialize(const Vector& state) override;
  void Transition(const Example& row) override;
  Vector Terminate() override;

 private:
  double min_norm_;
  double max_norm_;
  double sum_norm_;
  double count_;
};

/// Convenience: per-dimension feature means of a table via AvgUda.
Result<Vector> TableFeatureMeans(const Table& table);

/// Convenience: (min, max, mean) feature norms of a table via NormStatsUda.
Result<Vector> TableNormStats(const Table& table);

}  // namespace bolton

#endif  // BOLTON_ENGINE_AGGREGATES_H_
