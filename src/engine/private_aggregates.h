#ifndef BOLTON_ENGINE_PRIVATE_AGGREGATES_H_
#define BOLTON_ENGINE_PRIVATE_AGGREGATES_H_

#include "core/privacy.h"
#include "engine/table.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Differentially private scalar/vector aggregates over engine tables.
///
/// Private SGD is one query an in-RDBMS analytics session asks; COUNT and
/// mean-style summaries are the others (§4.6's multi-query setting). These
/// helpers answer them under the same (ε, δ) machinery — Laplace for pure
/// ε-DP, Gaussian for (ε, δ)-DP — so a session can charge every release to
/// one PrivacyAccountant. Results are DP under the paper's neighboring
/// relation (replace one row), which keeps the table size m public: COUNT
/// is offered for completeness of the query surface, not because m needs
/// protecting under this relation.

/// A private release with its true value retained for diagnostics (the
/// true value is data-dependent: release only `noisy`).
struct PrivateScalar {
  double noisy = 0.0;
  double true_value = 0.0;  // diagnostic — do not release
};

/// Private row count. Under replace-one neighbors COUNT has sensitivity 0
/// (m is public), but the conventional add/remove-one semantics are what
/// callers usually want, so noise is calibrated to sensitivity 1.
Result<PrivateScalar> PrivateCount(const Table& table,
                                   const PrivacyParams& privacy, Rng* rng);

/// Private mean of one feature column. Requires the unit-ball
/// preprocessing (every |x_j| ≤ 1), giving replace-one sensitivity 2/m.
Result<PrivateScalar> PrivateFeatureMean(const Table& table, size_t column,
                                         const PrivacyParams& privacy,
                                         Rng* rng);

/// Private mean feature vector (all d columns at once): L2 sensitivity
/// 2/m under replace-one with ‖x‖ ≤ 1, perturbed with the same spherical
/// Laplace / Gaussian mechanisms as the SGD output. Returns the noisy
/// vector only (no diagnostics) to keep the API hard to misuse.
Result<Vector> PrivateFeatureMeans(const Table& table,
                                   const PrivacyParams& privacy, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_ENGINE_PRIVATE_AGGREGATES_H_
