#include "engine/driver.h"

#include <algorithm>

#include "engine/sgd_uda.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace bolton {

Result<DriverOutput> RunSgdDriver(Table* table, const LossFunction& loss,
                                  const StepSizeSchedule& schedule,
                                  const DriverOptions& options, Rng* rng,
                                  GradientNoiseSource* noise) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (table->num_rows() == 0) return Status::InvalidArgument("empty table");
  if (options.max_epochs < 1) {
    return Status::InvalidArgument("max_epochs must be >= 1");
  }
  if (options.batch_size < 1 || options.batch_size > table->num_rows()) {
    return Status::InvalidArgument("batch_size must be in [1, num_rows]");
  }

  obs::ScopedSpan run_span("engine.run");
  static obs::Counter* shuffles =
      obs::MetricsRegistry::Default().GetCounter("table_shuffles");
  static obs::Counter* epochs_run =
      obs::MetricsRegistry::Default().GetCounter("epochs_run");
  static obs::Histogram* epoch_seconds = obs::MetricsRegistry::Default()
      .GetHistogram("engine.epoch_seconds", obs::LatencySecondsBuckets());

  {
    // ORDER BY RANDOM(): one materialized shuffle before the epoch loop.
    obs::ScopedSpan shuffle_span("engine.shuffle");
    BOLTON_RETURN_IF_ERROR(table->Shuffle(rng));
    shuffles->Increment();
  }

  SgdUdaOptions uda_options;
  uda_options.batch_size = options.batch_size;
  uda_options.radius = options.radius;
  Rng noise_rng = rng->Split();
  SgdUda uda(loss, schedule, uda_options, noise,
             noise != nullptr ? &noise_rng : nullptr);

  DriverOutput out;
  Vector model(table->dim());
  for (size_t epoch = 1; epoch <= options.max_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("engine.epoch");
    Stopwatch watch;
    uda.Initialize(model);
    {
      obs::ScopedSpan scan_span("engine.scan");
      BOLTON_RETURN_IF_ERROR(
          table->Scan([&uda](const Example& row) { uda.Transition(row); }));
    }
    Vector next;
    {
      obs::ScopedSpan terminate_span("engine.terminate");
      next = uda.Terminate();
    }
    BOLTON_RETURN_IF_ERROR(uda.status());
    const double seconds = watch.ElapsedSeconds();
    epoch_seconds->Observe(seconds);
    epochs_run->Increment();
    out.epoch_seconds.push_back(seconds);
    out.epochs_run = epoch;

    if (options.tolerance > 0.0) {
      double movement =
          Distance(next, model) / std::max(1.0, model.Norm());
      model = std::move(next);
      if (movement < options.tolerance) break;
    } else {
      model = std::move(next);
    }
  }
  out.model = std::move(model);
  out.stats = uda.stats();

  {
    // One relaxed add per counter per run, mirroring RunPsgd's flush.
    static obs::Counter* gradient_evaluations =
        obs::MetricsRegistry::Default().GetCounter("gradient_evaluations");
    static obs::Counter* model_updates =
        obs::MetricsRegistry::Default().GetCounter("model_updates");
    static obs::Counter* noise_samples =
        obs::MetricsRegistry::Default().GetCounter("noise_samples");
    gradient_evaluations->Increment(out.stats.gradient_evaluations);
    model_updates->Increment(out.stats.updates);
    noise_samples->Increment(out.stats.noise_samples);
  }
  return out;
}

}  // namespace bolton
