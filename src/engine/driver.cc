#include "engine/driver.h"

#include <algorithm>

#include "engine/sgd_uda.h"
#include "util/stopwatch.h"

namespace bolton {

Result<DriverOutput> RunSgdDriver(Table* table, const LossFunction& loss,
                                  const StepSizeSchedule& schedule,
                                  const DriverOptions& options, Rng* rng,
                                  GradientNoiseSource* noise) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (table->num_rows() == 0) return Status::InvalidArgument("empty table");
  if (options.max_epochs < 1) {
    return Status::InvalidArgument("max_epochs must be >= 1");
  }
  if (options.batch_size < 1 || options.batch_size > table->num_rows()) {
    return Status::InvalidArgument("batch_size must be in [1, num_rows]");
  }

  // ORDER BY RANDOM(): one materialized shuffle before the epoch loop.
  BOLTON_RETURN_IF_ERROR(table->Shuffle(rng));

  SgdUdaOptions uda_options;
  uda_options.batch_size = options.batch_size;
  uda_options.radius = options.radius;
  Rng noise_rng = rng->Split();
  SgdUda uda(loss, schedule, uda_options, noise,
             noise != nullptr ? &noise_rng : nullptr);

  DriverOutput out;
  Vector model(table->dim());
  for (size_t epoch = 1; epoch <= options.max_epochs; ++epoch) {
    Stopwatch watch;
    uda.Initialize(model);
    BOLTON_RETURN_IF_ERROR(
        table->Scan([&uda](const Example& row) { uda.Transition(row); }));
    Vector next = uda.Terminate();
    BOLTON_RETURN_IF_ERROR(uda.status());
    out.epoch_seconds.push_back(watch.ElapsedSeconds());
    out.epochs_run = epoch;

    if (options.tolerance > 0.0) {
      double movement =
          Distance(next, model) / std::max(1.0, model.Norm());
      model = std::move(next);
      if (movement < options.tolerance) break;
    } else {
      model = std::move(next);
    }
  }
  out.model = std::move(model);
  out.stats = uda.stats();
  return out;
}

}  // namespace bolton
