#include "engine/table.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "random/permutation.h"
#include "util/strings.h"

namespace bolton {

namespace {

class MemoryTable final : public Table {
 public:
  explicit MemoryTable(std::vector<Example> rows, size_t dim)
      : rows_(std::move(rows)), dim_(dim) {}

  size_t num_rows() const override { return rows_.size(); }
  size_t dim() const override { return dim_; }
  StorageMode mode() const override { return StorageMode::kMemory; }

  Status Shuffle(Rng* rng) override {
    ShuffleInPlace(&rows_, rng);
    return Status::OK();
  }

  Status Scan(const RowFn& fn) const override {
    for (const Example& row : rows_) fn(row);
    return Status::OK();
  }

 private:
  std::vector<Example> rows_;
  size_t dim_;
};

// Fixed-width binary row: dim feature doubles followed by the label as a
// double. Pages of `page_rows` rows are the I/O unit.
class DiskTable final : public Table {
 public:
  DiskTable(std::string path, size_t num_rows, size_t dim, size_t page_rows)
      : path_(std::move(path)),
        num_rows_(num_rows),
        dim_(dim),
        page_rows_(page_rows) {}

  ~DiskTable() override { std::remove(path_.c_str()); }

  size_t num_rows() const override { return num_rows_; }
  size_t dim() const override { return dim_; }
  StorageMode mode() const override { return StorageMode::kDisk; }

  Status Shuffle(Rng* rng) override;
  Status Scan(const RowFn& fn) const override;

  Status WriteAll(const Dataset& data);

 private:
  size_t RowWidth() const { return dim_ + 1; }

  std::string path_;
  size_t num_rows_;
  size_t dim_;
  size_t page_rows_;
};

Status DiskTable::WriteAll(const Dataset& data) {
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create spill file " + path_);
  std::vector<double> row(RowWidth());
  for (size_t i = 0; i < data.size(); ++i) {
    const Example& e = data[i];
    for (size_t j = 0; j < dim_; ++j) row[j] = e.x[j];
    row[dim_] = static_cast<double>(e.label);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(double)));
  }
  if (!out) return Status::IOError("write failed for " + path_);
  return Status::OK();
}

Status DiskTable::Scan(const RowFn& fn) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IOError("cannot open spill file " + path_);
  const size_t row_width = RowWidth();
  std::vector<double> page(page_rows_ * row_width);
  size_t remaining = num_rows_;
  while (remaining > 0) {
    size_t batch = std::min(page_rows_, remaining);
    in.read(reinterpret_cast<char*>(page.data()),
            static_cast<std::streamsize>(batch * row_width * sizeof(double)));
    if (!in) return Status::IOError("short read from " + path_);
    for (size_t r = 0; r < batch; ++r) {
      const double* base = page.data() + r * row_width;
      Example e;
      e.x = Vector(std::vector<double>(base, base + dim_));
      e.label = static_cast<int>(base[dim_]);
      fn(e);
    }
    remaining -= batch;
  }
  return Status::OK();
}

Status DiskTable::Shuffle(Rng* rng) {
  // Two-pass external shuffle (uniform given each bucket fits in memory):
  //   pass 1 scatters rows into B temp buckets at random;
  //   pass 2 loads each bucket, Fisher–Yates shuffles it, and appends the
  //   buckets in random order to the new table file.
  constexpr size_t kMaxBuckets = 64;
  const size_t buckets =
      std::min(kMaxBuckets, std::max<size_t>(1, num_rows_ / page_rows_));
  const size_t row_width = RowWidth();

  std::vector<std::string> bucket_paths(buckets);
  std::vector<std::ofstream> bucket_files(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    bucket_paths[b] = StrFormat("%s.bucket%zu", path_.c_str(), b);
    bucket_files[b].open(bucket_paths[b], std::ios::binary | std::ios::trunc);
    if (!bucket_files[b]) {
      return Status::IOError("cannot create " + bucket_paths[b]);
    }
  }

  // Pass 1: scatter.
  Status scatter_status = Status::OK();
  std::vector<double> row(row_width);
  {
    std::ifstream in(path_, std::ios::binary);
    if (!in) return Status::IOError("cannot open spill file " + path_);
    for (size_t i = 0; i < num_rows_; ++i) {
      in.read(reinterpret_cast<char*>(row.data()),
              static_cast<std::streamsize>(row_width * sizeof(double)));
      if (!in) return Status::IOError("short read during shuffle");
      size_t b = rng->UniformInt(buckets);
      bucket_files[b].write(
          reinterpret_cast<const char*>(row.data()),
          static_cast<std::streamsize>(row_width * sizeof(double)));
    }
  }
  for (auto& f : bucket_files) {
    f.close();
    if (!f) scatter_status = Status::IOError("bucket write failed");
  }
  if (!scatter_status.ok()) return scatter_status;

  // Pass 2: shuffle each bucket in memory, append in random order.
  std::string shuffled_path = path_ + ".shuffled";
  std::ofstream out(shuffled_path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create " + shuffled_path);
  std::vector<size_t> bucket_order = RandomPermutation(buckets, rng);
  for (size_t b : bucket_order) {
    std::ifstream in(bucket_paths[b], std::ios::binary | std::ios::ate);
    if (!in) return Status::IOError("cannot reopen " + bucket_paths[b]);
    auto bytes = static_cast<size_t>(in.tellg());
    in.seekg(0);
    size_t rows_in_bucket = bytes / (row_width * sizeof(double));
    std::vector<std::vector<double>> bucket_rows(rows_in_bucket);
    for (auto& r : bucket_rows) {
      r.resize(row_width);
      in.read(reinterpret_cast<char*>(r.data()),
              static_cast<std::streamsize>(row_width * sizeof(double)));
      if (!in) return Status::IOError("short bucket read");
    }
    ShuffleInPlace(&bucket_rows, rng);
    for (const auto& r : bucket_rows) {
      out.write(reinterpret_cast<const char*>(r.data()),
                static_cast<std::streamsize>(row_width * sizeof(double)));
    }
    std::remove(bucket_paths[b].c_str());
  }
  out.close();
  if (!out) return Status::IOError("write failed for " + shuffled_path);

  if (std::remove(path_.c_str()) != 0) {
    return Status::IOError("cannot remove old table file " + path_);
  }
  if (std::rename(shuffled_path.c_str(), path_.c_str()) != 0) {
    return Status::IOError("cannot install shuffled table file");
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> Table::ToDataset(int num_classes) const {
  Dataset out(dim(), num_classes);
  Status scan = Scan([&out](const Example& e) { out.Add(e); });
  BOLTON_RETURN_IF_ERROR(scan);
  return out;
}

Result<std::unique_ptr<Table>> MakeTable(const Dataset& data, StorageMode mode,
                                         const std::string& spill_path,
                                         size_t page_rows) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (mode == StorageMode::kMemory) {
    std::vector<Example> rows(data.examples());
    return std::unique_ptr<Table>(
        new MemoryTable(std::move(rows), data.dim()));
  }
  if (spill_path.empty()) {
    return Status::InvalidArgument("disk tables need a spill_path");
  }
  if (page_rows < 1) return Status::InvalidArgument("page_rows must be >= 1");
  auto table = std::make_unique<DiskTable>(spill_path, data.size(), data.dim(),
                                           page_rows);
  BOLTON_RETURN_IF_ERROR(table->WriteAll(data));
  return std::unique_ptr<Table>(std::move(table));
}

}  // namespace bolton
