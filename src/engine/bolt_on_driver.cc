#include "engine/bolt_on_driver.h"

#include <cmath>

#include "core/sensitivity.h"
#include "obs/trace.h"
#include "optim/schedule.h"

namespace bolton {

Result<BoltOnDriverOutput> RunBoltOnPrivateDriver(Table* table,
                                                  const LossFunction& loss,
                                                  const BoltOnOptions& options,
                                                  double tolerance, Rng* rng) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  BOLTON_RETURN_IF_ERROR(options.privacy.Validate());
  const size_t m = table->num_rows();
  if (m == 0) return Status::InvalidArgument("empty table");

  obs::ScopedSpan train_span("bolton.train");

  DriverOptions driver_options;
  driver_options.max_epochs = options.passes;
  driver_options.batch_size = options.batch_size;
  driver_options.radius = loss.radius();

  std::unique_ptr<StepSizeSchedule> schedule;
  double eta = 0.0;
  if (loss.IsStronglyConvex()) {
    // Algorithm 2 on the engine: k-oblivious sensitivity allows the
    // convergence test.
    driver_options.tolerance = tolerance;
    BOLTON_ASSIGN_OR_RETURN(
        schedule,
        MakeInverseTimeStep(loss.strong_convexity(), loss.smoothness()));
  } else {
    // Algorithm 1 on the engine: the epoch count enters the sensitivity, so
    // it must be fixed up front.
    if (tolerance > 0.0) {
      return Status::FailedPrecondition(
          "convex bolt-on training must run a fixed number of epochs; "
          "convergence-based stopping would leak the realized pass count "
          "into the sensitivity (see Lemma 6)");
    }
    eta = options.constant_step > 0.0
              ? options.constant_step
              : 1.0 / std::sqrt(static_cast<double>(m));
    BOLTON_ASSIGN_OR_RETURN(schedule, MakeConstantStep(eta));
  }

  // --- The unmodified black box. ---
  BOLTON_ASSIGN_OR_RETURN(
      DriverOutput run,
      RunSgdDriver(table, loss, *schedule, driver_options, rng));

  // --- The bolt-on: compute Δ₂ for the run that actually happened, draw
  // one noise vector, add it in the front end. ---
  SensitivitySetup setup;
  setup.passes = run.epochs_run;
  setup.batch_size = options.batch_size;
  setup.num_examples = m;
  double sensitivity;
  {
    obs::ScopedSpan sensitivity_span("bolton.sensitivity");
    if (loss.IsStronglyConvex()) {
      BOLTON_ASSIGN_OR_RETURN(
          sensitivity,
          options.use_corrected_minibatch_sensitivity
              ? StronglyConvexDecreasingStepSensitivityCorrected(loss, setup)
              : StronglyConvexDecreasingStepSensitivity(loss, setup));
    } else {
      BOLTON_ASSIGN_OR_RETURN(
          sensitivity, ConvexConstantStepSensitivity(loss, eta, setup));
    }
  }

  BoltOnDriverOutput out;
  {
    obs::ScopedSpan perturb_span("bolton.perturb");
    BOLTON_ASSIGN_OR_RETURN(
        out.private_output,
        BoltOnPerturb(run.model, sensitivity, options.privacy, rng));
  }
  out.private_output.stats = run.stats;
  out.driver = std::move(run);
  return out;
}

}  // namespace bolton
