#include "engine/bolt_on_driver.h"

#include <cmath>
#include <utility>

#include "core/sensitivity.h"
#include "obs/trace.h"
#include "optim/parallel_executor.h"
#include "optim/schedule.h"

namespace bolton {

namespace {

/// Shard-parallel variant of the driver run: materializes the table into a
/// Dataset and hands it to RunShardedPsgd, so each shard runs the identical
/// serial black box over its slice. Epoch-level instrumentation
/// (epoch_seconds, convergence testing) is per-shard here and not surfaced,
/// so the driver reports exactly options.passes epochs.
Result<DriverOutput> RunShardedDriver(Table* table, const LossFunction& loss,
                                      const StepSizeSchedule& schedule,
                                      const BoltOnOptions& options, Rng* rng) {
  BOLTON_ASSIGN_OR_RETURN(Dataset data, table->ToDataset());
  PsgdOptions psgd;
  psgd.run() = options.run();
  psgd.radius = loss.radius();
  psgd.sampling = SamplingMode::kPermutation;
  BOLTON_ASSIGN_OR_RETURN(ShardedPsgdOutput run,
                          RunShardedPsgd(data, loss, schedule, psgd, rng));
  DriverOutput out;
  out.model = std::move(run.model);
  out.epochs_run = options.passes;
  out.stats = run.stats;
  return out;
}

}  // namespace

Result<BoltOnDriverOutput> RunBoltOnPrivateDriver(Table* table,
                                                  const LossFunction& loss,
                                                  const BoltOnOptions& options,
                                                  double tolerance, Rng* rng) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  BOLTON_RETURN_IF_ERROR(options.privacy.Validate());
  const size_t m = table->num_rows();
  if (m == 0) return Status::InvalidArgument("empty table");

  obs::ScopedSpan train_span("bolton.train");

  DriverOptions driver_options;
  driver_options.max_epochs = options.passes;
  driver_options.batch_size = options.batch_size;
  driver_options.radius = loss.radius();

  std::unique_ptr<StepSizeSchedule> schedule;
  double eta = 0.0;
  if (loss.IsStronglyConvex()) {
    // Algorithm 2 on the engine: k-oblivious sensitivity allows the
    // convergence test (serial path only — shards run fixed epochs).
    if (tolerance > 0.0 && options.shards > 1) {
      return Status::FailedPrecondition(
          "sharded bolt-on training runs a fixed number of epochs per "
          "shard; convergence-based stopping is serial-only (shards=1)");
    }
    driver_options.tolerance = tolerance;
    BOLTON_ASSIGN_OR_RETURN(
        schedule,
        MakeInverseTimeStep(loss.strong_convexity(), loss.smoothness()));
  } else {
    // Algorithm 1 on the engine: the epoch count enters the sensitivity, so
    // it must be fixed up front.
    if (tolerance > 0.0) {
      return Status::FailedPrecondition(
          "convex bolt-on training must run a fixed number of epochs; "
          "convergence-based stopping would leak the realized pass count "
          "into the sensitivity (see Lemma 6)");
    }
    eta = options.constant_step > 0.0
              ? options.constant_step
              : 1.0 / std::sqrt(static_cast<double>(m));
    BOLTON_ASSIGN_OR_RETURN(schedule, MakeConstantStep(eta));
  }

  // --- The unmodified black box: the serial engine driver, or s parallel
  // copies of it over disjoint shards (Lemma 10). ---
  DriverOutput run;
  if (options.shards > 1) {
    BOLTON_ASSIGN_OR_RETURN(
        run, RunShardedDriver(table, loss, *schedule, options, rng));
  } else {
    BOLTON_ASSIGN_OR_RETURN(
        run, RunSgdDriver(table, loss, *schedule, driver_options, rng));
  }

  // --- The bolt-on: compute Δ₂ for the run that actually happened, draw
  // one noise vector, add it in the front end. ---
  SensitivitySetup setup;
  setup.passes = run.epochs_run;
  setup.batch_size = options.batch_size;
  setup.num_examples = m;
  BOLTON_ASSIGN_OR_RETURN(
      double sensitivity,
      BoltOnSensitivity(loss, eta, setup, options.shards,
                        options.use_corrected_minibatch_sensitivity,
                        options.privacy));

  BoltOnDriverOutput out;
  {
    obs::ScopedSpan perturb_span("bolton.perturb");
    BOLTON_ASSIGN_OR_RETURN(
        out.private_output,
        BoltOnPerturb(run.model, sensitivity, options.privacy, rng));
  }
  out.private_output.stats = run.stats;
  out.private_output.shards = options.shards;
  out.driver = std::move(run);
  return out;
}

}  // namespace bolton
