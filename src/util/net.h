#ifndef BOLTON_UTIL_NET_H_
#define BOLTON_UTIL_NET_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace bolton {
namespace net {

/// Thin POSIX-socket helpers shared by the observability HTTP server and
/// its raw-socket clients (the `boltondp scrape` subcommand, obs_http_test).
/// Loopback only: the observability surface is an operator port, not a
/// public listener, so every helper binds/connects to 127.0.0.1.

/// Creates a TCP listener on 127.0.0.1:`port` (SO_REUSEADDR, backlog 16).
/// `port` 0 asks the kernel for an ephemeral port; recover the actual one
/// with LocalPort(). Returns the listening fd.
Result<int> ListenTcp(uint16_t port);

/// The locally bound port of a socket fd (after ListenTcp(0)).
Result<int> LocalPort(int fd);

/// Connects to 127.0.0.1:`port`. Returns the connected fd.
Result<int> ConnectTcp(uint16_t port);

/// Writes all `len` bytes, retrying on short writes and EINTR.
/// `timeout_ms` >= 0 bounds the TOTAL wall time (poll-based deadline): a
/// peer that stops reading yields IOError("... timed out") instead of
/// wedging the caller forever. -1 keeps the historical blocking behavior.
Status SendAll(int fd, const char* data, size_t len, int timeout_ms = -1);

/// Reads until EOF or `max_bytes`, whichever comes first. Used by clients
/// that scrape one response off a connection the server half-closes.
/// `timeout_ms` >= 0 bounds the total wall time, as in SendAll.
Result<std::string> RecvAll(int fd, size_t max_bytes, int timeout_ms = -1);

/// Reads until the blank line terminating an HTTP request head ("\r\n\r\n")
/// or until `max_bytes`/EOF. Bodies are not read: the observability
/// endpoints are all GET. `timeout_ms` >= 0 bounds the total wall time, as
/// in SendAll — a client that connects and goes silent cannot hold the
/// server's accept loop hostage.
Result<std::string> RecvHttpHead(int fd, size_t max_bytes,
                                 int timeout_ms = -1);

/// Appends exactly `want` more bytes from `fd` to `*out`. Used to read a
/// POST body after RecvHttpHead (which may already have consumed a body
/// prefix past the blank line). IOError on timeout or premature EOF — a
/// truncated body is never silently accepted.
Status RecvExact(int fd, size_t want, int timeout_ms, std::string* out);

/// close(2) ignoring EINTR; safe on -1.
void CloseFd(int fd);

/// Status::IOError carrying `context` plus strerror(errno).
Status ErrnoStatus(const char* context);

}  // namespace net
}  // namespace bolton

#endif  // BOLTON_UTIL_NET_H_
