#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/strings.h"

namespace bolton {

namespace {

Status ErrnoIOError(const std::string& what, const std::string& path) {
  return Status::IOError(StrFormat("%s %s: %s", what.c_str(), path.c_str(),
                                   std::strerror(errno)));
}

}  // namespace

Status AtomicWriteFile(const std::string& tmp_path, const std::string& path,
                       const std::string& dir, const std::string& content) {
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0600);
  if (fd < 0) return ErrnoIOError("cannot open", tmp_path);
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoIOError("write failed for", tmp_path);
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = ErrnoIOError("fsync failed for", tmp_path);
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) return ErrnoIOError("close failed for", tmp_path);
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return ErrnoIOError("rename failed for", path);
  }
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    // Durability of the rename itself; best-effort on filesystems that
    // reject directory fsync.
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::NotFound(StrFormat("no such file: %s", path.c_str()));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return ErrnoIOError("cannot open", path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return ErrnoIOError("read failed for", path);
  return content;
}

}  // namespace bolton
