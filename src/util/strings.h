#ifndef BOLTON_UTIL_STRINGS_H_
#define BOLTON_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bolton {

/// Splits `text` on `sep`, keeping empty fields. Splitting "" yields {""}.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a double / int with full-token validation (rejects trailing junk).
Result<double> ParseDouble(std::string_view text);
Result<int64_t> ParseInt(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes `s` for embedding inside a double-quoted JSON string. Lives in
/// util (not obs) so the structured-log JSONL sink can use it;
/// obs::JsonEscape forwards here.
std::string JsonEscape(const std::string& s);

}  // namespace bolton

#endif  // BOLTON_UTIL_STRINGS_H_
