#include "util/json.h"

#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace bolton {

namespace {

constexpr size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    BOLTON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at byte %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        BOLTON_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue::MakeNull();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      BOLTON_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      BOLTON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      BOLTON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            BOLTON_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            AppendUtf8(cp, &out);
            break;
          }
          default:
            --pos_;
            return Error("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return Error("raw control character in string");
      out += static_cast<char>(c);
      ++pos_;
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return Error("invalid value");
    }
    const size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    // RFC 8259: no leading zeros ("01" is two tokens, not a number).
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = int_start;
      return Error("leading zeros are not allowed");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits must follow decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits must follow exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("number out of range");
    }
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.array_ = std::move(items);
  return out;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.object_ = std::move(members);
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

Result<std::string> JsonValue::GetString(const std::string& key,
                                         const std::string& fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    return Status::InvalidArgument(
        StrFormat("field '%s' must be a string", key.c_str()));
  }
  return v->string_value();
}

Result<double> JsonValue::GetNumber(const std::string& key,
                                    double fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(
        StrFormat("field '%s' must be a number", key.c_str()));
  }
  return v->number_value();
}

Result<int64_t> JsonValue::GetInt(const std::string& key,
                                  int64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() ||
      v->number_value() != std::floor(v->number_value())) {
    return Status::InvalidArgument(
        StrFormat("field '%s' must be an integer", key.c_str()));
  }
  return static_cast<int64_t>(v->number_value());
}

Result<bool> JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument(
        StrFormat("field '%s' must be a boolean", key.c_str()));
  }
  return v->bool_value();
}

Result<JsonValue> ParseJson(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace bolton
