#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace bolton {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace bolton
