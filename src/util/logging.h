#ifndef BOLTON_UTIL_LOGGING_H_
#define BOLTON_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace bolton {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kInfo. Backed by a relaxed atomic, so it is safe to flip from any thread
/// while others are logging.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// When enabled, every log line carries a monotonic timestamp (seconds
/// since the first log call) and a small per-thread id, e.g.
/// "[I 0.001234s t1 psgd.cc:42] ...". Off by default; relaxed atomic.
void SetLogTimestamps(bool enabled);
bool GetLogTimestamps();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
/// Use via the BOLTON_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Logs "check failed: <expr>" at the given location and aborts.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);

}  // namespace internal

/// Usage: BOLTON_LOG(kInfo) << "trained in " << secs << "s";
#define BOLTON_LOG(severity)                                          \
  ::bolton::internal::LogMessage(::bolton::LogLevel::severity,        \
                                 __FILE__, __LINE__)

/// Debug-and-release invariant check; aborts with a message on failure.
/// Used for programmer errors (violated preconditions inside the library),
/// never for data-dependent failures, which return Status.
#define BOLTON_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) ::bolton::internal::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (false)

}  // namespace bolton

#endif  // BOLTON_UTIL_LOGGING_H_
