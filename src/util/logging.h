#ifndef BOLTON_UTIL_LOGGING_H_
#define BOLTON_UTIL_LOGGING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "util/status.h"

namespace bolton {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped (they reach no
/// sink, not even the flight-recorder ring). Defaults to kInfo. Backed by a
/// relaxed atomic, so it is safe to flip from any thread while others are
/// logging.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// When enabled, every stderr log line carries a monotonic timestamp
/// (seconds since the first log call) and the thread's name — or a small
/// stable per-thread id for threads that were never named, e.g.
/// "[I 0.001234s psgd-shard-3 psgd.cc:42] ..." / "[I 0.001234s t1 ...]".
/// Off by default; relaxed atomic. Structured sinks (JSONL, ring) always
/// carry the timestamp regardless of this switch.
void SetLogTimestamps(bool enabled);
bool GetLogTimestamps();

/// One-letter tag for a level: "D", "I", "W", "E".
const char* LogLevelTag(LogLevel level);

/// Parses "D"/"I"/"W"/"E" (case-insensitive) or "debug"/"info"/"warning"/
/// "error" into a level; false on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// One emitted log statement as structured data. The pointer fields are
/// only guaranteed valid for the duration of a sink's Write() call —
/// sinks that retain events must copy.
struct LogEvent {
  LogLevel level = LogLevel::kInfo;
  /// Nanoseconds since the process's first log call (monotonic clock).
  uint64_t mono_ns = 0;
  /// Small stable per-thread id (util/thread_name.h).
  uint64_t thread_id = 0;
  /// The name set via SetCurrentThreadName, "" when the thread was never
  /// named (render as "t<thread_id>").
  const char* thread_name = "";
  /// Basename of the emitting file (static storage, from __FILE__).
  const char* file = "";
  int line = 0;
  /// Innermost open trace span on the emitting thread (obs/trace.h), 0
  /// when none is open or tracing is disabled.
  uint64_t span_id = 0;
  const char* message = "";
  size_t message_len = 0;
};

/// A log destination. The built-in stderr text sink is always present (its
/// output format is the historical one, unchanged); additional sinks — the
/// JSONL file sink below, the obs flight-recorder ring — register here.
/// Write() may be called concurrently from any thread; dispatch serializes
/// calls under an internal mutex, so a sink needs no locking of its own
/// unless it has other entry points.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogEvent& event) = 0;
};

/// Registers / removes a sink. The sink is not owned and must stay alive
/// until removed. Adding the same sink twice is a no-op.
void AddLogSink(LogSink* sink);
void RemoveLogSink(LogSink* sink);

/// Opens `path` (truncating) and registers a process-lifetime sink that
/// writes every emitted event as one JSON object per line:
///   {"mono_ns":N,"level":"I","tid":1,"thread":"main","file":"x.cc",
///    "line":7,"span":0,"msg":"..."}
/// Wired to `boltondp train --log-jsonl=FILE` and the BOLTON_LOG_JSONL
/// environment variable (benches). Calling it again switches to the new
/// file.
Status OpenLogJsonlFile(const std::string& path);

namespace internal {

/// Stream-style log line; dispatches to the sinks on destruction.
/// Use via the BOLTON_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;  // already reduced to the basename
  int line_;
  std::ostringstream stream_;
};

/// Logs "check failed: <expr>" at the given location and aborts. The
/// failure is dispatched to the structured sinks (so it survives in the
/// flight-recorder ring) and handed to the fatal hook (the postmortem
/// writer) before abort().
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);

/// Builds the LogEvent envelope (timestamp, thread identity, span id) for
/// `message` and fans it out to the sinks. The level filter has already
/// been applied by the caller.
void Dispatch(LogLevel level, const char* file_basename, int line,
              const char* message, size_t message_len);

/// Nanoseconds since the first log call; the timestamp base every sink
/// shares.
uint64_t LogMonotonicNanos();

/// The trace layer (obs/trace.cc) installs a callback returning the
/// calling thread's innermost open span id, giving log<->span correlation
/// without a util->obs dependency. Relaxed atomic; nullptr = no provider.
using SpanIdProvider = uint64_t (*)();
void SetLogSpanIdProvider(SpanIdProvider provider);

/// Invoked by CheckFailed with the rendered "check failed: ... at f:l"
/// message, before abort(). The postmortem module installs a hook that
/// writes the crash report here, in normal (non-signal) context.
using FatalHook = void (*)(const char* message);
void SetFatalHook(FatalHook hook);

/// Helpers behind BOLTON_LOG_EVERY_N / BOLTON_LOG_FIRST_N. `counter` is
/// the call site's private hit counter.
inline bool LogEveryN(std::atomic<uint64_t>& counter, uint64_t n) {
  const uint64_t count = counter.fetch_add(1, std::memory_order_relaxed);
  return n <= 1 || count % n == 0;
}
inline bool LogFirstN(std::atomic<uint64_t>& counter, uint64_t n) {
  // Plain load first: after the first N hits this is one relaxed load.
  if (counter.load(std::memory_order_relaxed) >= n) return false;
  return counter.fetch_add(1, std::memory_order_relaxed) < n;
}

}  // namespace internal

/// Usage: BOLTON_LOG(kInfo) << "trained in " << secs << "s";
#define BOLTON_LOG(severity)                                          \
  ::bolton::internal::LogMessage(::bolton::LogLevel::severity,        \
                                 __FILE__, __LINE__)

/// Rate-limited variants for hot paths (the obs HTTP request loop, shard
/// retries): EVERY_N emits hits 1, N+1, 2N+1, ...; FIRST_N emits only the
/// first N hits. Hits are counted per call site, across all threads.
/// Usage: BOLTON_LOG_EVERY_N(kInfo, 100) << "served " << n << " requests";
#define BOLTON_LOG_EVERY_N(severity, n)                                   \
  for (bool _bolton_log_hit = ::bolton::internal::LogEveryN(              \
           []() -> ::std::atomic<uint64_t>& {                             \
             static ::std::atomic<uint64_t> _bolton_log_count{0};         \
             return _bolton_log_count;                                    \
           }(),                                                           \
           (n));                                                          \
       _bolton_log_hit; _bolton_log_hit = false)                          \
  BOLTON_LOG(severity)

#define BOLTON_LOG_FIRST_N(severity, n)                                   \
  for (bool _bolton_log_hit = ::bolton::internal::LogFirstN(              \
           []() -> ::std::atomic<uint64_t>& {                             \
             static ::std::atomic<uint64_t> _bolton_log_count{0};         \
             return _bolton_log_count;                                    \
           }(),                                                           \
           (n));                                                          \
       _bolton_log_hit; _bolton_log_hit = false)                          \
  BOLTON_LOG(severity)

/// Debug-and-release invariant check; aborts with a message on failure.
/// Used for programmer errors (violated preconditions inside the library),
/// never for data-dependent failures, which return Status.
#define BOLTON_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) ::bolton::internal::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (false)

}  // namespace bolton

#endif  // BOLTON_UTIL_LOGGING_H_
