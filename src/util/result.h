#ifndef BOLTON_UTIL_RESULT_H_
#define BOLTON_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/status.h"

namespace bolton {

/// A value-or-error type: holds either a `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`. Functions that produce a value but can fail
/// return `Result<T>`; callers either branch on `ok()` or use
/// `BOLTON_ASSIGN_OR_RETURN` to unwrap-with-early-return.
///
///     Result<Dataset> LoadCsv(const std::string& path);
///
///     Status Run() {
///       BOLTON_ASSIGN_OR_RETURN(Dataset ds, LoadCsv("train.csv"));
///       ...
///     }
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a failed result. `status` must not be OK; an OK status here
  /// indicates a logic error and is converted to an Internal error.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The held value. Requires `ok()`.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  /// Moves the value out. Requires `ok()`.
  T MoveValue() { return std::get<T>(std::move(rep_)); }

  /// Returns the value or `fallback` when this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// Internal: token pasting helpers for unique temporary names.
#define BOLTON_CONCAT_IMPL(x, y) x##y
#define BOLTON_CONCAT(x, y) BOLTON_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise declares `lhs` bound to the value.
#define BOLTON_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  BOLTON_ASSIGN_OR_RETURN_IMPL(BOLTON_CONCAT(_result_, __LINE__),    \
                               lhs, rexpr)

#define BOLTON_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

}  // namespace bolton

#endif  // BOLTON_UTIL_RESULT_H_
