#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace bolton {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level) {
  if (enabled_) {
    // Keep just the basename; full paths add noise to log lines.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[F %s:%d] check failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace bolton
