#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "util/strings.h"
#include "util/thread_name.h"

namespace bolton {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<bool> g_timestamps{false};
std::atomic<internal::SpanIdProvider> g_span_provider{nullptr};
std::atomic<internal::FatalHook> g_fatal_hook{nullptr};

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

/// The built-in stderr text sink. Its output is the project's historical
/// log format, byte for byte: "[I file.cc:42] msg" by default,
/// "[I 0.001234s <thread> file.cc:42] msg" with SetLogTimestamps(true),
/// where <thread> is the thread's name or "t<id>" when unnamed.
class StderrSink : public LogSink {
 public:
  void Write(const LogEvent& event) override {
    std::string line;
    line.reserve(event.message_len + 48);
    line += "[";
    line += LogLevelTag(event.level);
    line += " ";
    if (GetLogTimestamps()) {
      char stamp[96];
      if (event.thread_name[0] != '\0') {
        std::snprintf(stamp, sizeof(stamp), "%.6fs %s ",
                      static_cast<double>(event.mono_ns) * 1e-9,
                      event.thread_name);
      } else {
        std::snprintf(stamp, sizeof(stamp), "%.6fs t%llu ",
                      static_cast<double>(event.mono_ns) * 1e-9,
                      static_cast<unsigned long long>(event.thread_id));
      }
      line += stamp;
    }
    line += event.file;
    line += ":";
    line += std::to_string(event.line);
    line += "] ";
    line.append(event.message, event.message_len);
    line += "\n";
    std::fputs(line.c_str(), stderr);
  }
};

/// One JSON object per event, appended to a file. Registered through
/// OpenLogJsonlFile; Write() runs under the dispatch mutex so no lock of
/// its own is needed.
class JsonlFileSink : public LogSink {
 public:
  explicit JsonlFileSink(std::FILE* file) : file_(file) {}
  ~JsonlFileSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void Write(const LogEvent& event) override {
    const std::string thread =
        event.thread_name[0] != '\0'
            ? std::string(event.thread_name)
            : StrFormat("t%llu",
                        static_cast<unsigned long long>(event.thread_id));
    std::fprintf(
        file_,
        "{\"mono_ns\":%llu,\"level\":\"%s\",\"tid\":%llu,\"thread\":\"%s\","
        "\"file\":\"%s\",\"line\":%d,\"span\":%llu,\"msg\":\"%s\"}\n",
        static_cast<unsigned long long>(event.mono_ns),
        LogLevelTag(event.level),
        static_cast<unsigned long long>(event.thread_id),
        JsonEscape(thread).c_str(), JsonEscape(event.file).c_str(),
        event.line, static_cast<unsigned long long>(event.span_id),
        JsonEscape(std::string(event.message, event.message_len)).c_str());
    // Flushed per line: the JSONL file is a diagnostic artifact that must
    // survive a crash immediately after the write.
    std::fflush(file_);
  }

 private:
  std::FILE* file_;
};

struct SinkRegistry {
  std::mutex mu;
  StderrSink stderr_sink;
  std::vector<LogSink*> extra_sinks;
  std::unique_ptr<JsonlFileSink> jsonl_sink;  // owned; also in extra_sinks
};

SinkRegistry& Sinks() {
  // Leaked: sinks must stay usable during static destruction (atexit
  // handlers and late CheckFailed paths may still log).
  static SinkRegistry* registry = new SinkRegistry();
  return *registry;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogTimestamps(bool enabled) {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}
bool GetLogTimestamps() {
  return g_timestamps.load(std::memory_order_relaxed);
}

const char* LogLevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "d" || lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "i" || lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "w" || lower == "warning") {
    *out = LogLevel::kWarning;
  } else if (lower == "e" || lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void AddLogSink(LogSink* sink) {
  SinkRegistry& registry = Sinks();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (LogSink* existing : registry.extra_sinks) {
    if (existing == sink) return;
  }
  registry.extra_sinks.push_back(sink);
}

void RemoveLogSink(LogSink* sink) {
  SinkRegistry& registry = Sinks();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto it = registry.extra_sinks.begin();
       it != registry.extra_sinks.end(); ++it) {
    if (*it == sink) {
      registry.extra_sinks.erase(it);
      return;
    }
  }
}

Status OpenLogJsonlFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError(
        StrFormat("cannot open log JSONL file '%s'", path.c_str()));
  }
  SinkRegistry& registry = Sinks();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.jsonl_sink != nullptr) {
    // Switching files: drop the old sink from the fan-out first.
    for (auto it = registry.extra_sinks.begin();
         it != registry.extra_sinks.end(); ++it) {
      if (*it == registry.jsonl_sink.get()) {
        registry.extra_sinks.erase(it);
        break;
      }
    }
  }
  registry.jsonl_sink = std::make_unique<JsonlFileSink>(file);
  registry.extra_sinks.push_back(registry.jsonl_sink.get());
  return Status::OK();
}

namespace internal {

uint64_t LogMonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void SetLogSpanIdProvider(SpanIdProvider provider) {
  g_span_provider.store(provider, std::memory_order_relaxed);
}

void SetFatalHook(FatalHook hook) {
  g_fatal_hook.store(hook, std::memory_order_relaxed);
}

namespace {

/// A sink that logs (directly or transitively) must not re-enter the
/// dispatch path: recursive events are dropped instead of deadlocking on
/// the registry mutex.
bool& InDispatch() {
  thread_local bool in_dispatch = false;
  return in_dispatch;
}

LogEvent BuildEvent(LogLevel level, const char* file_basename, int line,
                    const char* message, size_t message_len) {
  LogEvent event;
  event.level = level;
  event.mono_ns = LogMonotonicNanos();
  event.thread_id = CurrentThreadSmallId();
  event.thread_name = internal::CurrentThreadNameCStr();
  event.file = file_basename;
  event.line = line;
  const SpanIdProvider provider =
      g_span_provider.load(std::memory_order_relaxed);
  event.span_id = provider != nullptr ? provider() : 0;
  event.message = message;
  event.message_len = message_len;
  return event;
}

void DispatchEvent(const LogEvent& event, bool include_stderr) {
  if (InDispatch()) return;
  InDispatch() = true;
  SinkRegistry& registry = Sinks();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (include_stderr) registry.stderr_sink.Write(event);
  for (LogSink* sink : registry.extra_sinks) sink->Write(event);
  InDispatch() = false;
}

}  // namespace

void Dispatch(LogLevel level, const char* file_basename, int line,
              const char* message, size_t message_len) {
  DispatchEvent(BuildEvent(level, file_basename, line, message, message_len),
                /*include_stderr=*/true);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()),
      level_(level),
      file_(Basename(file)),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string message = stream_.str();
  Dispatch(level_, file_, line_, message.c_str(), message.size());
}

void CheckFailed(const char* expr, const char* file, int line) {
  // The historical fatal line, byte-identical, straight to stderr (the
  // structured dispatch below deliberately skips the stderr sink so the
  // failure is printed exactly once).
  std::fprintf(stderr, "[F %s:%d] check failed: %s\n", file, line, expr);
  char message[512];
  std::snprintf(message, sizeof(message), "check failed: %s", expr);
  DispatchEvent(BuildEvent(LogLevel::kError, Basename(file), line, message,
                           std::strlen(message)),
                /*include_stderr=*/false);
  char fatal[640];
  std::snprintf(fatal, sizeof(fatal), "check failed: %s at %s:%d", expr,
                Basename(file), line);
  const FatalHook hook = g_fatal_hook.load(std::memory_order_relaxed);
  if (hook != nullptr) hook(fatal);
  std::abort();
}

}  // namespace internal
}  // namespace bolton
