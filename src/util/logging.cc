#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace bolton {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<bool> g_timestamps{false};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Seconds since the first logged line, on the monotonic clock. Kept local
// (rather than using obs/telemetry.h) so bolton_util stays dependency-free.
double MonotonicLogSeconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Small stable per-thread id; std::this_thread::get_id() is opaque and
// unreadably long in log lines.
uint64_t LogThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogTimestamps(bool enabled) {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}
bool GetLogTimestamps() {
  return g_timestamps.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    // Keep just the basename; full paths add noise to log lines.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level) << " ";
    if (GetLogTimestamps()) {
      char stamp[48];
      std::snprintf(stamp, sizeof(stamp), "%.6fs t%llu ",
                    MonotonicLogSeconds(),
                    static_cast<unsigned long long>(LogThreadId()));
      stream_ << stamp;
    }
    stream_ << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[F %s:%d] check failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace bolton
