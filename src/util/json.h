#ifndef BOLTON_UTIL_JSON_H_
#define BOLTON_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace bolton {

/// A minimal JSON document model + recursive-descent parser for the serve
/// request bodies. Scope is deliberately small: strict RFC 8259 input
/// (no comments, no trailing commas, UTF-8 passed through opaquely except
/// for \uXXXX escapes of BMP code points), a depth cap, and whole-input
/// validation — trailing garbage after the document is an error. Writing
/// JSON stays where it always was: StrFormat + JsonEscape.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors with defaults, for flat request bodies:
  /// absent key -> `fallback`; present with the wrong type ->
  /// InvalidArgument naming the key, so a handler can answer 400 with a
  /// useful message instead of silently coercing.
  Result<std::string> GetString(const std::string& key,
                                const std::string& fallback) const;
  Result<double> GetNumber(const std::string& key, double fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document covering the whole input. InvalidArgument with
/// byte offset on malformed input; nesting beyond 64 levels is rejected.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace bolton

#endif  // BOLTON_UTIL_JSON_H_
