#include "util/symbolize.h"

#include <cxxabi.h>
#include <elf.h>
#include <execinfo.h>
#include <link.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/strings.h"

namespace bolton {

namespace {

/// backtrace_symbols lines look like
///   "binary(_ZN6bolton3FooEv+0x1a) [0x55e1c2a4f3b0]"  (symbol found)
///   "binary() [0x55e1c2a4f3b0]"                        (no symbol)
///   "binary [0x55e1c2a4f3b0]"                          (no symbol table)
/// Extract the mangled name between '(' and '+' (or ')').
std::string ExtractMangled(const std::string& line) {
  const size_t open = line.find('(');
  if (open == std::string::npos) return "";
  const size_t plus = line.find('+', open);
  const size_t close = line.find(')', open);
  const size_t end = plus != std::string::npos && plus < close ? plus : close;
  if (end == std::string::npos || end <= open + 1) return "";
  return line.substr(open + 1, end - open - 1);
}

/// ---- In-process ELF symbol index.
///
/// backtrace_symbols(3) resolves through dladdr, which only sees .dynsym —
/// so static / anonymous-namespace functions in our own binary and the
/// internals of stripped system libraries (libm's exp kernels, libc's
/// memcpy variants) come back nameless. This index goes further, the way
/// perf does:
///
///   * the MAIN BINARY keeps its full .symtab (we are not stripped), which
///     names every local function, lambda, and anonymous-namespace helper;
///   * stripped DSOs still carry .dynsym; a PC landing past the end of an
///     exported function (an unexported kernel that follows it) is
///     attributed to the nearest preceding dynamic symbol, bounded by the
///     next symbol's start — approximate, clearly better than a raw hex
///     address, and standard practice for stripped libraries.
///
/// Built lazily on first use from dl_iterate_phdr (which hands us each
/// loaded object's relocation bias) plus a section-header walk of each ELF
/// file. Never touched from signal context.

struct FuncSymbol {
  uintptr_t addr = 0;  // absolute (load bias applied)
  uintptr_t size = 0;  // st_size; 0 = unknown
  std::string name;    // mangled
};

struct ExecRange {
  uintptr_t lo = 0;
  uintptr_t hi = 0;
  size_t module = 0;  // index into SymbolIndex::modules
};

struct ModuleInfo {
  std::string path;
  uintptr_t bias = 0;
};

struct SymbolIndex {
  std::vector<ModuleInfo> modules;
  std::vector<ExecRange> ranges;    // sorted by lo
  std::vector<FuncSymbol> symbols;  // sorted by addr
};

/// Appends every defined function symbol of `path` (both .symtab and
/// .dynsym when present), with `bias` applied, to `out`. Best-effort: any
/// parse trouble just yields fewer symbols.
void LoadElfSymbols(const std::string& path, uintptr_t bias,
                    std::vector<FuncSymbol>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;

  Elf64_Ehdr ehdr{};
  bool ok = std::fread(&ehdr, sizeof(ehdr), 1, f) == 1 &&
            std::memcmp(ehdr.e_ident, ELFMAG, SELFMAG) == 0 &&
            ehdr.e_ident[EI_CLASS] == ELFCLASS64 &&
            ehdr.e_shentsize == sizeof(Elf64_Shdr) && ehdr.e_shnum > 0;
  std::vector<Elf64_Shdr> sections;
  if (ok) {
    sections.resize(ehdr.e_shnum);
    ok = std::fseek(f, static_cast<long>(ehdr.e_shoff), SEEK_SET) == 0 &&
         std::fread(sections.data(), sizeof(Elf64_Shdr), sections.size(),
                    f) == sections.size();
  }
  if (ok) {
    for (const Elf64_Shdr& sec : sections) {
      if (sec.sh_type != SHT_SYMTAB && sec.sh_type != SHT_DYNSYM) continue;
      if (sec.sh_entsize != sizeof(Elf64_Sym) || sec.sh_link >= sections.size())
        continue;
      const Elf64_Shdr& strtab = sections[sec.sh_link];
      std::vector<Elf64_Sym> syms(sec.sh_size / sizeof(Elf64_Sym));
      std::vector<char> names(strtab.sh_size);
      if (std::fseek(f, static_cast<long>(sec.sh_offset), SEEK_SET) != 0 ||
          std::fread(syms.data(), sizeof(Elf64_Sym), syms.size(), f) !=
              syms.size() ||
          std::fseek(f, static_cast<long>(strtab.sh_offset), SEEK_SET) != 0 ||
          std::fread(names.data(), 1, names.size(), f) != names.size()) {
        continue;
      }
      for (const Elf64_Sym& sym : syms) {
        const unsigned type = ELF64_ST_TYPE(sym.st_info);
        if (type != STT_FUNC && type != STT_GNU_IFUNC) continue;
        if (sym.st_shndx == SHN_UNDEF || sym.st_value == 0) continue;
        if (sym.st_name >= names.size()) continue;
        const char* name = names.data() + sym.st_name;
        if (name[0] == '\0') continue;
        out->push_back(FuncSymbol{bias + sym.st_value, sym.st_size, name});
      }
    }
  }
  std::fclose(f);
}

int CollectPhdrModules(dl_phdr_info* info, size_t /*size*/, void* data) {
  SymbolIndex* index = static_cast<SymbolIndex*>(data);
  // The main executable reports an empty name; read it via /proc/self/exe
  // (its .symtab is what names our static functions).
  const std::string path =
      (info->dlpi_name == nullptr || info->dlpi_name[0] == '\0')
          ? "/proc/self/exe"
          : info->dlpi_name;
  const size_t module = index->modules.size();
  bool any_exec = false;
  for (int i = 0; i < info->dlpi_phnum; ++i) {
    const ElfW(Phdr)& phdr = info->dlpi_phdr[i];
    if (phdr.p_type != PT_LOAD || (phdr.p_flags & PF_X) == 0) continue;
    const uintptr_t lo = info->dlpi_addr + phdr.p_vaddr;
    index->ranges.push_back(ExecRange{lo, lo + phdr.p_memsz, module});
    any_exec = true;
  }
  // Modules with no executable mapping pushed no ranges; skipping the
  // modules entry keeps `module` indices dense.
  if (any_exec) index->modules.push_back(ModuleInfo{path, info->dlpi_addr});
  return 0;
}

SymbolIndex BuildSymbolIndex() {
  SymbolIndex index;
  ::dl_iterate_phdr(&CollectPhdrModules, &index);
  for (const ModuleInfo& module : index.modules) {
    LoadElfSymbols(module.path, module.bias, &index.symbols);
  }
  std::sort(index.ranges.begin(), index.ranges.end(),
            [](const ExecRange& a, const ExecRange& b) { return a.lo < b.lo; });
  std::sort(index.symbols.begin(), index.symbols.end(),
            [](const FuncSymbol& a, const FuncSymbol& b) {
              return a.addr < b.addr;
            });
  // Deduplicate identical addresses (.symtab and .dynsym overlap); prefer
  // the first name.
  index.symbols.erase(
      std::unique(index.symbols.begin(), index.symbols.end(),
                  [](const FuncSymbol& a, const FuncSymbol& b) {
                    return a.addr == b.addr;
                  }),
      index.symbols.end());
  return index;
}

const SymbolIndex& GetSymbolIndex() {
  static const SymbolIndex* index = new SymbolIndex(BuildSymbolIndex());
  return *index;
}

/// The executable mapping containing `pc`, or nullptr.
const ExecRange* FindRange(const SymbolIndex& index, uintptr_t pc) {
  auto it = std::upper_bound(
      index.ranges.begin(), index.ranges.end(), pc,
      [](uintptr_t value, const ExecRange& r) { return value < r.lo; });
  if (it == index.ranges.begin()) return nullptr;
  --it;
  return pc < it->hi ? &*it : nullptr;
}

/// Nearest function symbol at or before `pc`, bounded by the next symbol's
/// start: exact when pc is inside [addr, addr+size), approximate (still
/// returned) when pc falls in the gap before the next symbol — that is
/// where stripped libraries hide their unexported kernels.
const FuncSymbol* FindSymbol(const SymbolIndex& index, uintptr_t pc) {
  auto it = std::upper_bound(
      index.symbols.begin(), index.symbols.end(), pc,
      [](uintptr_t value, const FuncSymbol& s) { return value < s.addr; });
  if (it == index.symbols.begin()) return nullptr;
  const FuncSymbol* next = it != index.symbols.end() ? &*it : nullptr;
  --it;
  const FuncSymbol& sym = *it;
  if (sym.size > 0 && pc < sym.addr + sym.size) return &sym;
  // Gap attribution: only up to the next known symbol, and never across an
  // executable-mapping boundary (a gap cannot span modules).
  if (next != nullptr && pc >= next->addr) return nullptr;
  const ExecRange* range = FindRange(index, pc);
  if (range == nullptr || sym.addr < range->lo) return nullptr;
  return &sym;
}

/// Index-based resolution; falls back to an unresolved "module+offset" (or
/// bare address) placeholder.
SymbolizedPc ResolveViaIndex(void* pc) {
  SymbolizedPc out;
  out.pc = pc;
  const SymbolIndex& index = GetSymbolIndex();
  const uintptr_t addr = reinterpret_cast<uintptr_t>(pc);
  if (const FuncSymbol* sym = FindSymbol(index, addr)) {
    out.name = Demangle(sym->name);
    out.resolved = true;
    return out;
  }
  if (const ExecRange* range = FindRange(index, addr)) {
    const ModuleInfo& module = index.modules[range->module];
    const size_t slash = module.path.rfind('/');
    const std::string base = slash == std::string::npos
                                 ? module.path
                                 : module.path.substr(slash + 1);
    out.name = StrFormat("[%s+0x%zx]", base.c_str(),
                         static_cast<size_t>(addr - module.bias));
    return out;
  }
  out.name = StrFormat("[%p]", pc);
  return out;
}

}  // namespace

std::string Demangle(const std::string& mangled) {
  int status = 0;
  char* demangled =
      abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
  if (status != 0 || demangled == nullptr) {
    std::free(demangled);
    return mangled;
  }
  std::string out(demangled);
  std::free(demangled);
  return out;
}

SymbolizedPc SymbolizePc(void* pc) {
  SymbolizedPc out = ResolveViaIndex(pc);
  if (out.resolved) return out;
  // Fallback: dladdr via backtrace_symbols still wins when dl_iterate_phdr
  // missed the object (e.g. loaded after the index was built).
  void* addrs[1] = {pc};
  char** lines = ::backtrace_symbols(addrs, 1);
  if (lines != nullptr) {
    const std::string mangled = ExtractMangled(lines[0]);
    if (!mangled.empty()) {
      out.name = Demangle(mangled);
      out.resolved = true;
    }
    std::free(lines);
  }
  return out;
}

std::map<void*, SymbolizedPc> SymbolizePcs(const std::vector<void*>& pcs) {
  std::map<void*, SymbolizedPc> table;
  std::vector<void*> misses;
  for (void* pc : pcs) {
    auto [it, inserted] = table.emplace(pc, SymbolizedPc{});
    if (!inserted) continue;
    it->second = ResolveViaIndex(pc);
    if (!it->second.resolved) misses.push_back(pc);
  }
  if (misses.empty()) return table;
  // One batched backtrace_symbols call for everything the index missed.
  char** lines =
      ::backtrace_symbols(misses.data(), static_cast<int>(misses.size()));
  if (lines != nullptr) {
    for (size_t i = 0; i < misses.size(); ++i) {
      const std::string mangled = ExtractMangled(lines[i]);
      if (mangled.empty()) continue;
      SymbolizedPc& entry = table[misses[i]];
      entry.name = Demangle(mangled);
      entry.resolved = true;
    }
    std::free(lines);
  }
  return table;
}

}  // namespace bolton
