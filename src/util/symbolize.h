#ifndef BOLTON_UTIL_SYMBOLIZE_H_
#define BOLTON_UTIL_SYMBOLIZE_H_

#include <map>
#include <string>
#include <vector>

namespace bolton {

/// Offline symbolization for raw program-counter samples (the profiler's
/// dump path). None of this is signal-safe — it allocates freely — which is
/// exactly why the profiler defers it to dump time: signal handlers record
/// bare addresses, and these helpers turn them into names afterwards.

/// One resolved program counter.
struct SymbolizedPc {
  void* pc = nullptr;
  /// Demangled function name when the symbol resolved, else a stable
  /// "[0xADDR]" placeholder so collapsed stacks stay well-formed.
  std::string name;
  /// True when a real symbol (not the address placeholder) was found.
  bool resolved = false;
};

/// Resolves `pc` against an in-process ELF symbol index (the main binary's
/// full .symtab — which names static and anonymous-namespace functions —
/// plus every loaded DSO's .dynsym, with perf-style nearest-preceding-
/// symbol attribution for the unexported internals of stripped system
/// libraries), falling back to backtrace_symbols(3). C++ names are
/// demangled with abi::__cxa_demangle. Unresolved PCs inside a known
/// module render as "[module+0xOFF]", others as "[0xADDR]"; executables
/// are linked with -rdynamic globally (see the top-level CMakeLists) so
/// the dladdr fallback also works.
SymbolizedPc SymbolizePc(void* pc);

/// Batch form with per-address deduplication: each distinct pc is resolved
/// once. Returns a map so callers can render many stacks cheaply.
std::map<void*, SymbolizedPc> SymbolizePcs(const std::vector<void*>& pcs);

/// Demangles a mangled C++ identifier; returns the input unchanged when it
/// does not demangle (C symbols, already-demangled names).
std::string Demangle(const std::string& mangled);

}  // namespace bolton

#endif  // BOLTON_UTIL_SYMBOLIZE_H_
