#include "util/flags.h"

#include <cstdio>

#include "util/strings.h"

namespace bolton {

void FlagParser::AddDouble(const std::string& name, double* target,
                           std::string help) {
  entries_[name] = Entry{Kind::kDouble, target, std::move(help),
                         StrFormat("%g", *target)};
}

void FlagParser::AddInt(const std::string& name, int64_t* target,
                        std::string help) {
  entries_[name] = Entry{Kind::kInt, target, std::move(help),
                         StrFormat("%lld", static_cast<long long>(*target))};
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         std::string help) {
  entries_[name] =
      Entry{Kind::kBool, target, std::move(help), *target ? "true" : "false"};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           std::string help) {
  entries_[name] = Entry{Kind::kString, target, std::move(help), *target};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Entry& e = it->second;
  switch (e.kind) {
    case Kind::kDouble: {
      auto r = ParseDouble(value);
      if (!r.ok()) return r.status().WithContext("--" + name);
      *static_cast<double*>(e.target) = r.value();
      return Status::OK();
    }
    case Kind::kInt: {
      auto r = ParseInt(value);
      if (!r.ok()) return r.status().WithContext("--" + name);
      *static_cast<int64_t*>(e.target) = r.value();
      return Status::OK();
    }
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(e.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(e.target) = false;
      } else {
        return Status::InvalidArgument("--" + name + ": expected bool, got '" +
                                       value + "'");
      }
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(e.target) = value;
      return Status::OK();
  }
  return Status::Internal("corrupt flag entry");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      BOLTON_RETURN_IF_ERROR(SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // `--name value` form, except booleans which may stand alone.
    auto it = entries_.find(body);
    if (it == entries_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (it->second.kind == Kind::kBool) {
      BOLTON_RETURN_IF_ERROR(SetValue(body, ""));
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--" + body + " expects a value");
      }
      BOLTON_RETURN_IF_ERROR(SetValue(body, argv[++i]));
    }
  }
  return Status::OK();
}

void FlagParser::PrintHelp(const std::string& program) const {
  std::printf("usage: %s [flags]\n", program.c_str());
  for (const auto& [name, e] : entries_) {
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), e.help.c_str(),
                e.default_repr.c_str());
  }
}

}  // namespace bolton
