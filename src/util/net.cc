#include "util/net.h"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/strings.h"

namespace bolton {
namespace net {

Status ErrnoStatus(const char* context) {
  return Status::IOError(
      StrFormat("%s: %s", context, std::strerror(errno)));
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

namespace {

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

using Clock = std::chrono::steady_clock;

/// Deadline for a `timeout_ms` budget starting now; max() when unbounded.
Clock::time_point DeadlineFor(int timeout_ms) {
  if (timeout_ms < 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

/// Waits until `fd` is ready for `events` or the deadline passes.
/// OK(true) = ready, OK(false) = deadline expired.
Result<bool> WaitReady(int fd, short events, Clock::time_point deadline) {
  while (true) {
    int wait_ms = -1;
    if (deadline != Clock::time_point::max()) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (remaining.count() <= 0) return false;
      wait_ms = static_cast<int>(remaining.count()) + 1;
    }
    pollfd p{fd, events, 0};
    const int ready = ::poll(&p, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready > 0) return true;
    if (deadline == Clock::time_point::max()) continue;
  }
}

}  // namespace

Result<int> ListenTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = ErrnoStatus("bind");
    CloseFd(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status = ErrnoStatus("listen");
    CloseFd(fd);
    return status;
  }
  return fd;
}

Result<int> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = ErrnoStatus("connect");
    CloseFd(fd);
    return status;
  }
  return fd;
}

Status SendAll(int fd, const char* data, size_t len, int timeout_ms) {
  const Clock::time_point deadline = DeadlineFor(timeout_ms);
  size_t sent = 0;
  while (sent < len) {
    BOLTON_ASSIGN_OR_RETURN(bool ready, WaitReady(fd, POLLOUT, deadline));
    if (!ready) return Status::IOError("send timed out");
    ssize_t n = ::send(fd, data + sent, len - sent, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> RecvAll(int fd, size_t max_bytes, int timeout_ms) {
  const Clock::time_point deadline = DeadlineFor(timeout_ms);
  std::string out;
  char buf[4096];
  while (out.size() < max_bytes) {
    BOLTON_ASSIGN_OR_RETURN(bool ready, WaitReady(fd, POLLIN, deadline));
    if (!ready) return Status::IOError("recv timed out");
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

Result<std::string> RecvHttpHead(int fd, size_t max_bytes, int timeout_ms) {
  const Clock::time_point deadline = DeadlineFor(timeout_ms);
  std::string out;
  char buf[1024];
  while (out.size() < max_bytes &&
         out.find("\r\n\r\n") == std::string::npos) {
    BOLTON_ASSIGN_OR_RETURN(bool ready, WaitReady(fd, POLLIN, deadline));
    if (!ready) return Status::IOError("recv timed out");
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

Status RecvExact(int fd, size_t want, int timeout_ms, std::string* out) {
  const Clock::time_point deadline = DeadlineFor(timeout_ms);
  char buf[4096];
  size_t got = 0;
  while (got < want) {
    BOLTON_ASSIGN_OR_RETURN(bool ready, WaitReady(fd, POLLIN, deadline));
    if (!ready) return Status::IOError("recv timed out");
    const size_t chunk = std::min(want - got, sizeof(buf));
    ssize_t n = ::recv(fd, buf, chunk, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) {
      return Status::IOError(
          StrFormat("connection closed %zu bytes short of the declared body",
                    want - got));
    }
    out->append(buf, static_cast<size_t>(n));
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace bolton
