#include "util/thread_name.h"

#include <pthread.h>

#include <atomic>
#include <cstdio>

namespace bolton {

namespace {

/// Fixed-size mirror of the thread's name: std::string storage would not be
/// safely readable from a signal handler (heap pointers, SSO transitions),
/// a flat char buffer is.
constexpr size_t kNameBytes = 64;

char* NameBuffer() {
  thread_local char name[kNameBytes] = {0};
  return name;
}

}  // namespace

void SetCurrentThreadName(const std::string& name) {
  std::snprintf(NameBuffer(), kNameBytes, "%s", name.c_str());
  // The kernel limit is 16 bytes including the terminator.
  char truncated[16];
  std::snprintf(truncated, sizeof(truncated), "%s", name.c_str());
  ::pthread_setname_np(::pthread_self(), truncated);
}

std::string CurrentThreadName() {
  const char* set = NameBuffer();
  if (set[0] != '\0') return set;
  char kernel_name[16] = {0};
  if (::pthread_getname_np(::pthread_self(), kernel_name,
                           sizeof(kernel_name)) == 0 &&
      kernel_name[0] != '\0') {
    return kernel_name;
  }
  return "thread";
}

uint64_t CurrentThreadSmallId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

const char* CurrentThreadNameCStr() { return NameBuffer(); }

}  // namespace internal

}  // namespace bolton
