#ifndef BOLTON_UTIL_FLAGS_H_
#define BOLTON_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace bolton {

/// Minimal command-line flag parser for the bench and example binaries.
///
/// Accepts `--name=value` and `--name value` forms plus bare `--name` for
/// booleans. Unknown flags are an error so typos fail loudly. Positional
/// arguments are collected in order.
///
///     FlagParser flags;
///     double eps = 1.0;
///     flags.AddDouble("epsilon", &eps, "privacy budget");
///     flags.Parse(argc, argv).CheckOK();
class FlagParser {
 public:
  FlagParser() = default;
  FlagParser(const FlagParser&) = delete;
  FlagParser& operator=(const FlagParser&) = delete;

  /// Registers a flag bound to `*target` (which holds the default value).
  /// `help` is shown by PrintHelp(). Targets must outlive Parse().
  void AddDouble(const std::string& name, double* target, std::string help);
  void AddInt(const std::string& name, int64_t* target, std::string help);
  void AddBool(const std::string& name, bool* target, std::string help);
  void AddString(const std::string& name, std::string* target, std::string help);

  /// Parses argv; fills bound targets. Returns InvalidArgument on unknown
  /// flags or malformed values. Recognizes --help by setting help_requested().
  Status Parse(int argc, char** argv);

  /// True if --help was seen; caller should PrintHelp() and exit.
  bool help_requested() const { return help_requested_; }

  /// Writes a usage summary for all registered flags to stdout.
  void PrintHelp(const std::string& program) const;

  /// Arguments that were not flags, in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Kind { kDouble, kInt, kBool, kString };
  struct Entry {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace bolton

#endif  // BOLTON_UTIL_FLAGS_H_
