#ifndef BOLTON_UTIL_THREAD_NAME_H_
#define BOLTON_UTIL_THREAD_NAME_H_

#include <cstdint>
#include <string>

namespace bolton {

/// Process-wide thread identity, shared by the logger (util/logging.h) and
/// the telemetry pillars (obs/telemetry.h forwards here) so a thread is
/// called "psgd-shard-3" in stderr log lines, JSONL events, trace spans,
/// and crash postmortems alike — one naming authority instead of one id
/// counter per subsystem.

/// Names the calling thread. Also forwards to pthread_setname_np (truncated
/// to the kernel's 15-char limit) so the name shows up in /proc, debuggers,
/// and Perfetto tracks.
void SetCurrentThreadName(const std::string& name);

/// The name set via SetCurrentThreadName, else the kernel thread name from
/// pthread_getname_np, else "thread". Never empty.
std::string CurrentThreadName();

/// A small stable integer for the calling thread (1, 2, ... in first-use
/// order); the "t4" fallback label for threads that were never named.
uint64_t CurrentThreadSmallId();

namespace internal {

/// The explicitly set name as a NUL-terminated C string, "" when the thread
/// was never named. Points at a fixed-size thread-local buffer, so reading
/// it is async-signal-safe on the owning thread — the crash handler uses
/// this to label the crashing thread without touching std::string.
const char* CurrentThreadNameCStr();

}  // namespace internal

}  // namespace bolton

#endif  // BOLTON_UTIL_THREAD_NAME_H_
