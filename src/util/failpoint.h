#ifndef BOLTON_UTIL_FAILPOINT_H_
#define BOLTON_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "util/status.h"

namespace bolton {

/// Deterministic fault injection (RocksDB-style "failpoints").
///
/// Long multi-pass PSGD runs inside a production system must survive worker
/// crashes, I/O errors, and process restarts, and the recovery paths are
/// exactly the code that ordinary tests never execute. A failpoint is a
/// named site threaded through the loaders, the PSGD pass loop, the sharded
/// executor, noise calibration, and model/checkpoint I/O; a test (or an
/// operator, via the BOLTON_FAILPOINTS environment variable) arms sites
/// with actions and the site then fails deterministically:
///
///   BOLTON_FAILPOINTS="psgd.pass:error@2;loader.row:1in20;shard.worker:panic@1"
///
/// Grammar (sites separated by ';'):
///
///   entry  := site ':' action
///   action := 'error'            fire an injected IOError on every hit
///           | 'error@' N         fire on the Nth hit only (1-based)
///           | 'error*' N         fire on the first N hits
///           | '1in' N            fire on every Nth hit (N, 2N, ...)
///           | 'panic'            abort() on the first hit
///           | 'panic@' N         abort() on the Nth hit
///           | 'delay@' MS        sleep MS milliseconds on every hit
///           | 'off'              count hits, never fire
///
/// Everything is counter-based — "1in20" fires on hits 20, 40, ... rather
/// than with probability 1/20 — so a failing run replays identically, which
/// is what the crash/resume tests need.
///
/// With no sites configured the per-site cost is one relaxed atomic load
/// and a predictable branch (see BOLTON_FAILPOINT below); production runs
/// with BOLTON_FAILPOINTS unset pay nothing measurable.
class FailpointRegistry {
 public:
  /// Process-wide registry. On first use it arms itself from the
  /// BOLTON_FAILPOINTS environment variable (a malformed spec is logged and
  /// ignored rather than taking the process down).
  static FailpointRegistry& Default();

  /// Parses `spec` and replaces the active site set. An empty spec clears
  /// the registry. Returns InvalidArgument (and leaves the previous
  /// configuration armed) on a malformed spec.
  Status Configure(const std::string& spec);

  /// Configure() from the BOLTON_FAILPOINTS environment variable; an unset
  /// or empty variable clears the registry.
  Status ConfigureFromEnv();

  /// Disarms every site and resets hit counters.
  void Clear();

  /// True when at least one site is configured — the macro's fast path.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts a hit at `site` and applies its action: returns the injected
  /// Status for a firing error site, aborts for a firing panic site, sleeps
  /// for a delay site, and returns OK otherwise (including for sites that
  /// are not configured at all). Thread-safe.
  Status Evaluate(const char* site);

  /// Per-site counters, for tests and the obs bridge.
  struct SiteStats {
    uint64_t hits = 0;
    uint64_t fired = 0;
  };
  SiteStats Stats(const std::string& site) const;

  /// Invoked (outside the registry lock) every time a site fires, with the
  /// site name, the 1-based hit number, and the action name ("error",
  /// "panic", "delay"). The obs layer installs a bridge here so every
  /// injected fault lands in the metrics registry and privacy ledger; see
  /// obs/telemetry.h InstallFailpointObsBridge().
  using Observer =
      std::function<void(const char* site, uint64_t hit, const char* action)>;
  void SetObserver(Observer observer);

  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

 private:
  enum class Action { kOff, kErrorAlways, kErrorAtHit, kErrorFirstN,
                      kEveryNth, kPanic, kDelay };

  struct Site {
    Action action = Action::kOff;
    uint64_t n = 0;  // the @N / *N / 1inN / delay-ms operand
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  static Status ParseAction(const std::string& text, Site* site);

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  std::atomic<bool> armed_{false};
  Observer observer_;
};

/// The raw spec currently armed ("" when none), as a NUL-terminated C
/// string in fixed static storage — readable from a signal handler, which
/// is why this exists: crash postmortems record which faults were armed
/// when the process died. The pointer is always valid; the content is
/// updated by Configure()/Clear().
const char* ArmedFailpointSpecCStr();

/// Evaluates the failpoint `site` (a string literal) and returns the
/// injected error from the enclosing function when the site fires. Works in
/// any function returning Status or Result<T>. Compiles to a relaxed load +
/// branch when no failpoints are configured.
#define BOLTON_FAILPOINT(site)                                       \
  do {                                                               \
    if (::bolton::FailpointRegistry::Default().armed()) {            \
      ::bolton::Status _bolton_fp =                                  \
          ::bolton::FailpointRegistry::Default().Evaluate(site);     \
      if (!_bolton_fp.ok()) return _bolton_fp;                       \
    }                                                                \
  } while (false)

}  // namespace bolton

#endif  // BOLTON_UTIL_FAILPOINT_H_
