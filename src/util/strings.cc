#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace bolton {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) return Status::InvalidArgument("empty numeric field");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("numeric value out of double range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view text) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) return Status::InvalidArgument("empty integer field");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of int64 range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace bolton
