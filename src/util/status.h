#ifndef BOLTON_UTIL_STATUS_H_
#define BOLTON_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace bolton {

/// Machine-readable category for a `Status`.
///
/// The set mirrors the categories used by mature database codebases
/// (Arrow, RocksDB): a small stable enum that callers can switch on, with a
/// free-form human-readable message carried alongside.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kIOError = 4,
  kFailedPrecondition = 5,
  kNotImplemented = 6,
  kInternal = 7,
  /// The operation was abandoned before completion — the caller's deadline
  /// passed or it asked for cancellation. Distinct from kIOError/kInternal:
  /// nothing went wrong with the work itself, the caller stopped wanting it.
  kCancelled = 8,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...). Never returns nullptr.
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation.
///
/// Library code in this project never throws; every operation that can fail
/// returns a `Status` (or a `Result<T>`, see result.h). The OK status is
/// represented without allocation, so passing success around is free.
///
/// Typical use:
///
///     Status DoWork() {
///       if (bad) return Status::InvalidArgument("epsilon must be > 0");
///       return Status::OK();
///     }
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// separated by ": ". OK statuses are returned unchanged. Used to build
  /// error traces as a failure propagates up a call chain.
  Status WithContext(const std::string& context) const;

  /// Aborts the process with the status message if not OK. For use in
  /// examples and benches where an error is unrecoverable.
  void CheckOK() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  // nullptr means OK.
  std::unique_ptr<State> state_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is an error.
#define BOLTON_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::bolton::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (false)

}  // namespace bolton

#endif  // BOLTON_UTIL_STATUS_H_
