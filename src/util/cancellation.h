#ifndef BOLTON_UTIL_CANCELLATION_H_
#define BOLTON_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace bolton {

/// Cooperative cancellation for long-running work (a sharded PSGD run, a
/// queued serve request). The owner arms it — an explicit Cancel() or an
/// absolute steady-clock deadline — and workers poll Cancelled()/Check() at
/// natural yield points (pass boundaries, batch boundaries, retry loops).
///
/// The hot-path cost of an armed-but-untriggered token is one relaxed
/// atomic load, plus a clock read only when a deadline is set; a null
/// token pointer costs a branch. Once the deadline passes the flag latches,
/// so later polls never re-read the clock.
///
/// Tokens may be linked to a `parent` (e.g. every request token under the
/// daemon-wide drain token): a token reports cancelled when it OR any
/// ancestor is. Parents must outlive children; the chain is set at
/// construction and never mutated.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent, thread-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms a deadline `timeout_ms` from now; 0 disarms. Call before handing
  /// the token to workers (not thread-safe against concurrent polls).
  void SetTimeout(uint64_t timeout_ms) {
    deadline_ns_ = timeout_ms == 0 ? 0 : NowNanos() + timeout_ms * 1000000ull;
  }

  /// True once Cancel() was called, the deadline passed, or an ancestor is
  /// cancelled. Latches: a deadline crossed once stays crossed.
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (deadline_ns_ != 0 && NowNanos() >= deadline_ns_) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return parent_ != nullptr && parent_->Cancelled();
  }

  /// OK while live; Status::Cancelled naming the abandoned work otherwise.
  Status Check(const char* what) const {
    if (!Cancelled()) return Status::OK();
    return Status::Cancelled(std::string(what) +
                             " cancelled (deadline exceeded or caller gone)");
  }

 private:
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  mutable std::atomic<bool> cancelled_{false};
  uint64_t deadline_ns_ = 0;  // 0 = no deadline
  const CancellationToken* parent_ = nullptr;
};

}  // namespace bolton

#endif  // BOLTON_UTIL_CANCELLATION_H_
