#ifndef BOLTON_UTIL_SAMPLE_RING_H_
#define BOLTON_UTIL_SAMPLE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace bolton {

/// Lock-free buffer of raw stack samples, written from signal handlers.
///
/// The writer side is async-signal-safe by construction: Push() performs one
/// relaxed fetch_add to claim a slot, plain stores into memory that was
/// allocated before any signal could fire, and one release store to publish
/// the slot. No locks, no allocation, no syscalls. Claimed indices never
/// wrap: once the buffer is full further samples are counted as dropped
/// instead of overwriting older ones, so a reader never races a writer for
/// the same slot and the drop count is visible in the profile output rather
/// than silently biasing it.
///
/// The reader side (CopyCommitted) may run concurrently with writers; it
/// only reads slots whose committed flag is set (acquire), so it observes
/// fully written samples or skips the slot.
class StackSampleRing {
 public:
  /// Deepest stack recorded per sample; deeper frames are truncated at the
  /// root end (the leaf frames are what profiles attribute time to).
  static constexpr size_t kMaxDepth = 48;

  struct Sample {
    uint64_t thread_id = 0;  // kernel tid of the sampled thread
    uint32_t depth = 0;
    void* pcs[kMaxDepth];  // innermost (leaf) first, as backtrace(3) fills
  };

  StackSampleRing() = default;
  StackSampleRing(const StackSampleRing&) = delete;
  StackSampleRing& operator=(const StackSampleRing&) = delete;

  /// (Re)allocates `capacity` slots and resets all counters. NOT
  /// signal-safe: the caller must guarantee no writer can run concurrently
  /// (the profiler disarms its timers and drains in-flight handlers first).
  void Reset(size_t capacity) {
    samples_ = std::make_unique<Sample[]>(capacity);
    committed_ = std::make_unique<std::atomic<uint32_t>[]>(capacity);
    for (size_t i = 0; i < capacity; ++i) {
      committed_[i].store(0, std::memory_order_relaxed);
    }
    capacity_ = capacity;
    claimed_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  /// Signal-safe append. Returns false (and counts a drop) when full.
  bool Push(void* const* pcs, size_t depth, uint64_t thread_id) {
    const size_t index = claimed_.fetch_add(1, std::memory_order_relaxed);
    if (index >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Sample& slot = samples_[index];
    slot.thread_id = thread_id;
    const size_t n = depth < kMaxDepth ? depth : kMaxDepth;
    for (size_t i = 0; i < n; ++i) slot.pcs[i] = pcs[i];
    slot.depth = static_cast<uint32_t>(n);
    committed_[index].store(1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return capacity_; }

  /// Upper bound on the number of committed slots (some of the last few may
  /// still be in flight; CopyCommitted skips those).
  size_t Size() const {
    const size_t claimed = claimed_.load(std::memory_order_relaxed);
    return claimed < capacity_ ? claimed : capacity_;
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Appends committed samples with index in [begin, Size()) to `*out`.
  /// Safe to call while writers are active.
  template <typename Vector>
  void CopyCommitted(size_t begin, Vector* out) const {
    const size_t end = Size();
    for (size_t i = begin; i < end; ++i) {
      if (committed_[i].load(std::memory_order_acquire) == 0) continue;
      out->push_back(samples_[i]);
    }
  }

 private:
  std::unique_ptr<Sample[]> samples_;
  std::unique_ptr<std::atomic<uint32_t>[]> committed_;
  size_t capacity_ = 0;
  std::atomic<size_t> claimed_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace bolton

#endif  // BOLTON_UTIL_SAMPLE_RING_H_
