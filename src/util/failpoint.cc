#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

namespace {

/// The raw spec of the currently armed site set, mirrored into a fixed
/// buffer so the crash handler (obs/postmortem.cc) can embed it in a
/// postmortem with plain async-signal-safe loads — the registry's map and
/// mutex are off-limits in signal context. Written under the registry
/// lock; a torn read during a concurrent Configure garbles at worst the
/// text, never memory safety.
char g_armed_spec[256] = {0};

void StashArmedSpec(const std::string& spec) {
  const size_t n = spec.size() < sizeof(g_armed_spec) - 1
                       ? spec.size()
                       : sizeof(g_armed_spec) - 1;
  for (size_t i = 0; i < n; ++i) g_armed_spec[i] = spec[i];
  g_armed_spec[n] = '\0';
}

/// Parses the numeric operand after a fixed prefix ("error@", "1in", ...).
Result<uint64_t> ParseOperand(const std::string& action,
                              const std::string& text) {
  auto parsed = ParseInt(text);
  if (!parsed.ok() || parsed.value() < 1) {
    return Status::InvalidArgument(StrFormat(
        "failpoint action '%s' needs a positive integer operand, got '%s'",
        action.c_str(), text.c_str()));
  }
  return static_cast<uint64_t>(parsed.value());
}

}  // namespace

FailpointRegistry& FailpointRegistry::Default() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    Status status = r->ConfigureFromEnv();
    if (!status.ok()) {
      BOLTON_LOG(kWarning) << "ignoring malformed BOLTON_FAILPOINTS: "
                           << status.ToString();
    }
    return r;
  }();
  return *registry;
}

Status FailpointRegistry::ParseAction(const std::string& text, Site* site) {
  if (text == "off") {
    site->action = Action::kOff;
    return Status::OK();
  }
  if (text == "error") {
    site->action = Action::kErrorAlways;
    return Status::OK();
  }
  if (text == "panic") {
    site->action = Action::kPanic;
    site->n = 1;
    return Status::OK();
  }
  if (StartsWith(text, "error@")) {
    BOLTON_ASSIGN_OR_RETURN(site->n, ParseOperand("error@", text.substr(6)));
    site->action = Action::kErrorAtHit;
    return Status::OK();
  }
  if (StartsWith(text, "error*")) {
    BOLTON_ASSIGN_OR_RETURN(site->n, ParseOperand("error*", text.substr(6)));
    site->action = Action::kErrorFirstN;
    return Status::OK();
  }
  if (StartsWith(text, "1in")) {
    BOLTON_ASSIGN_OR_RETURN(site->n, ParseOperand("1in", text.substr(3)));
    site->action = Action::kEveryNth;
    return Status::OK();
  }
  if (StartsWith(text, "panic@")) {
    BOLTON_ASSIGN_OR_RETURN(site->n, ParseOperand("panic@", text.substr(6)));
    site->action = Action::kPanic;
    return Status::OK();
  }
  if (StartsWith(text, "delay@")) {
    BOLTON_ASSIGN_OR_RETURN(site->n, ParseOperand("delay@", text.substr(6)));
    site->action = Action::kDelay;
    return Status::OK();
  }
  return Status::InvalidArgument(StrFormat(
      "unknown failpoint action '%s' (error[@N|*N]|1inN|panic[@N]|delay@MS|"
      "off)",
      text.c_str()));
}

Status FailpointRegistry::Configure(const std::string& spec) {
  std::map<std::string, Site> parsed;
  for (const std::string& raw : StrSplit(spec, ';')) {
    const std::string entry(StripWhitespace(raw));
    if (entry.empty()) continue;
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status::InvalidArgument(
          StrFormat("failpoint entry '%s' is not site:action", entry.c_str()));
    }
    Site site;
    BOLTON_RETURN_IF_ERROR(ParseAction(entry.substr(colon + 1), &site));
    parsed[entry.substr(0, colon)] = site;
  }
  std::lock_guard<std::mutex> lock(mu_);
  sites_ = std::move(parsed);
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
  StashArmedSpec(spec);
  return Status::OK();
}

Status FailpointRegistry::ConfigureFromEnv() {
  const char* spec = std::getenv("BOLTON_FAILPOINTS");
  return Configure(spec == nullptr ? "" : spec);
}

void FailpointRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
  StashArmedSpec("");
}

const char* ArmedFailpointSpecCStr() { return g_armed_spec; }

Status FailpointRegistry::Evaluate(const char* site) {
  uint64_t hit = 0;
  uint64_t delay_ms = 0;
  const char* fired_action = nullptr;
  Observer observer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    Site& s = it->second;
    hit = ++s.hits;
    bool fire = false;
    switch (s.action) {
      case Action::kOff:
        break;
      case Action::kErrorAlways:
        fire = true;
        break;
      case Action::kErrorAtHit:
        fire = hit == s.n;
        break;
      case Action::kErrorFirstN:
        fire = hit <= s.n;
        break;
      case Action::kEveryNth:
        fire = hit % s.n == 0;
        break;
      case Action::kPanic:
        fire = hit == s.n;
        break;
      case Action::kDelay:
        fire = true;
        delay_ms = s.n;
        break;
    }
    if (!fire) return Status::OK();
    ++s.fired;
    fired_action = s.action == Action::kPanic
                       ? "panic"
                       : (s.action == Action::kDelay ? "delay" : "error");
    observer = observer_;
  }

  if (observer) observer(site, hit, fired_action);

  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return Status::OK();
  }
  if (std::string_view(fired_action) == "panic") {
    BOLTON_LOG(kError) << "failpoint '" << site << "': injected panic (hit "
                       << hit << ")";
    std::abort();
  }
  return Status::IOError(StrFormat(
      "failpoint '%s': injected error (hit %llu)", site,
      static_cast<unsigned long long>(hit)));
}

FailpointRegistry::SiteStats FailpointRegistry::Stats(
    const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return SiteStats{};
  return SiteStats{it->second.hits, it->second.fired};
}

void FailpointRegistry::SetObserver(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

}  // namespace bolton
