#ifndef BOLTON_UTIL_ATOMIC_FILE_H_
#define BOLTON_UTIL_ATOMIC_FILE_H_

#include <string>

#include "util/result.h"

namespace bolton {

/// Crash-safe whole-file replacement: write `content` to `tmp_path`
/// (created 0600), fsync, rename over `path`, then fsync `dir` so the
/// rename itself is durable. After a crash at any point the destination
/// holds either the old contents or the new, never a mix. Shared by the
/// checkpoint writer and the serve budget store.
Status AtomicWriteFile(const std::string& tmp_path, const std::string& path,
                       const std::string& dir, const std::string& content);

/// Reads a whole file into a string. NotFound when the path does not
/// exist (distinguishes "no state yet" from real I/O failures).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace bolton

#endif  // BOLTON_UTIL_ATOMIC_FILE_H_
