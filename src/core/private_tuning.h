#ifndef BOLTON_CORE_PRIVATE_TUNING_H_
#define BOLTON_CORE_PRIVATE_TUNING_H_

#include <functional>
#include <vector>

#include "core/privacy.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// One point of the hyperparameter grid tuned by Algorithm 3. The paper's
/// free parameters are the pass count k, mini-batch size b, and the L2
/// regularization strength λ (with R tied to 1/λ).
struct TuningCandidate {
  size_t passes = 10;
  size_t batch_size = 50;
  double lambda = 1e-4;
};

/// Builds the cartesian grid {passes} × {batch_sizes} × {lambdas} — the
/// "standard grid search" of §4.1.
std::vector<TuningCandidate> MakeTuningGrid(
    const std::vector<size_t>& passes, const std::vector<size_t>& batch_sizes,
    const std::vector<double>& lambdas);

/// Trains one hypothesis on a training portion with one candidate's
/// hyperparameters. The function must itself satisfy the DP guarantee
/// being claimed (pass the bolt-on/SCS13/BST14 trainers here).
using TuningTrainFn = std::function<Result<Vector>(
    const Dataset& portion, const TuningCandidate& candidate, Rng* rng)>;

/// Counts classification errors of `model` on `validation`. The default
/// (nullptr) counts binary sign errors: sign⟨w, x⟩ ≠ y.
using TuningErrorFn =
    std::function<size_t(const Vector& model, const Dataset& validation)>;

/// Output of the private tuning run.
struct TuningOutput {
  /// The privately selected hypothesis.
  Vector model;
  /// Which candidate won (index into the grid).
  size_t selected_index = 0;
  /// Validation error counts χ_i of every candidate (diagnostic; data-
  /// dependent, do not release).
  std::vector<size_t> error_counts;
};

/// Algorithm 3 — private hyperparameter tuning.
///
/// Splits S into l+1 equal portions; trains hypothesis w_i on portion S_i
/// with candidate θ_i via `train`; counts errors χ_i on the held-out
/// portion S_{l+1}; selects w_i with probability ∝ exp(−ε χ_i / 2) (the
/// exponential mechanism). Because the portions are disjoint, parallel
/// composition makes the whole procedure (ε, δ)-DP when each training call
/// is (ε, δ)-DP and the selection uses the same ε.
///
/// Requires at least l+1 examples and a non-empty grid.
Result<TuningOutput> PrivatelyTunedSgd(const Dataset& data,
                                       const std::vector<TuningCandidate>& grid,
                                       const PrivacyParams& privacy,
                                       const TuningTrainFn& train, Rng* rng,
                                       const TuningErrorFn& errors = nullptr);

/// The exponential-mechanism selection step of Algorithm 3 (line 5) on its
/// own: samples index i with probability ∝ exp(−ε χ_i / 2). Exposed so
/// callers with non-vector models (e.g., one-vs-all multiclass) can compose
/// their own split/train/count pipeline and still select privately.
/// Requires a non-empty count vector.
size_t SampleExponentialMechanism(const std::vector<size_t>& error_counts,
                                  double epsilon, Rng* rng);

/// Non-private grid search on a public validation set ("Tuning using Public
/// Data", §4.1): trains every candidate on `train_data` and returns the one
/// with the fewest validation errors. Only private if `validation` is
/// public data.
Result<TuningOutput> PublicGridSearch(const Dataset& train_data,
                                      const Dataset& validation,
                                      const std::vector<TuningCandidate>& grid,
                                      const TuningTrainFn& train, Rng* rng,
                                      const TuningErrorFn& errors = nullptr);

}  // namespace bolton

#endif  // BOLTON_CORE_PRIVATE_TUNING_H_
