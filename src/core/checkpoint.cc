#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>

#include "core/private_sgd.h"
#include "optim/schedule.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

namespace {

constexpr char kMagic[] = "bolton-checkpoint v1";
constexpr char kPrivacyMarker[] =
    "UNRELEASED_PRIVATE pre-noise training state; not differentially "
    "private; never release";

// ---------------------------------------------------------------------------
// Hashing.
// ---------------------------------------------------------------------------

uint64_t MixWord(uint64_t h, uint64_t v) {
  uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t MixDouble(uint64_t h, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return MixWord(h, bits);
}

uint64_t MixString(uint64_t h, const std::string& s) {
  uint64_t fnv = 14695981039346656037ull;
  for (unsigned char c : s) {
    fnv ^= c;
    fnv *= 1099511628211ull;
  }
  return MixWord(MixWord(h, s.size()), fnv);
}

uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Serialization helpers. The format is line-based text: space-separated
// tokens, doubles rendered with %.17g (round-trips exactly), a trailing
// FNV-1a checksum line over every preceding byte.
// ---------------------------------------------------------------------------

void AppendU64(std::string* out, uint64_t v) {
  *out += StrFormat(" %llu", static_cast<unsigned long long>(v));
}

void AppendDouble(std::string* out, double v) {
  *out += StrFormat(" %.17g", v);
}

/// Labels/kinds are dotted identifiers; "-" stands for the empty string
/// and embedded whitespace (never produced in practice) is made safe.
std::string EncodeToken(const std::string& s) {
  if (s.empty()) return "-";
  std::string out = s;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return out;
}

std::string DecodeToken(const std::string& s) { return s == "-" ? "" : s; }

Result<uint64_t> ParseU64(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty integer field");
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || text[0] == '-') {
    return Status::InvalidArgument(
        StrFormat("bad unsigned integer '%s'", text.c_str()));
  }
  return static_cast<uint64_t>(v);
}

void AppendRngState(std::string* out, const RngState& state) {
  for (uint64_t word : state.words) AppendU64(out, word);
  AppendU64(out, state.has_cached_gaussian ? 1 : 0);
  AppendDouble(out, state.cached_gaussian);
}

/// Consumes 6 tokens starting at *pos.
Status ParseRngState(const std::vector<std::string>& tokens, size_t* pos,
                     RngState* state) {
  if (tokens.size() < *pos + 6) {
    return Status::InvalidArgument("truncated rng state");
  }
  for (uint64_t& word : state->words) {
    BOLTON_ASSIGN_OR_RETURN(word, ParseU64(tokens[(*pos)++]));
  }
  BOLTON_ASSIGN_OR_RETURN(uint64_t cached, ParseU64(tokens[(*pos)++]));
  state->has_cached_gaussian = cached != 0;
  BOLTON_ASSIGN_OR_RETURN(state->cached_gaussian,
                          ParseDouble(tokens[(*pos)++]));
  return Status::OK();
}

void AppendVector(std::string* out, const char* key, const Vector& v) {
  *out += key;
  AppendU64(out, v.dim());
  for (size_t i = 0; i < v.dim(); ++i) AppendDouble(out, v[i]);
  *out += "\n";
}

Result<Vector> ParseVectorLine(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) return Status::InvalidArgument("bad vector line");
  BOLTON_ASSIGN_OR_RETURN(uint64_t dim, ParseU64(tokens[1]));
  if (tokens.size() != dim + 2) {
    return Status::InvalidArgument(
        StrFormat("vector line declares %llu values but carries %zu",
                  static_cast<unsigned long long>(dim), tokens.size() - 2));
  }
  Vector v(dim);
  for (size_t i = 0; i < dim; ++i) {
    BOLTON_ASSIGN_OR_RETURN(v[i], ParseDouble(tokens[i + 2]));
  }
  return v;
}

std::string RenderCheckpoint(const CheckpointData& data) {
  std::string out;
  out += kMagic;
  out += "\n";
  out += kPrivacyMarker;
  out += "\n";
  out += "spec_hash";
  AppendU64(&out, data.spec_hash);
  out += "\nalgorithm " + EncodeToken(data.algorithm);
  out += "\ncursor";
  AppendU64(&out, data.state.completed_passes);
  AppendU64(&out, data.state.step);
  out += "\nstats";
  AppendU64(&out, data.state.stats.gradient_evaluations);
  AppendU64(&out, data.state.stats.updates);
  AppendU64(&out, data.state.stats.noise_samples);
  out += "\nsensitivity";
  AppendDouble(&out, data.sensitivity);
  out += "\nrng";
  AppendRngState(&out, data.state.rng);
  out += "\nouter_rng";
  AppendU64(&out, data.has_outer_rng ? 1 : 0);
  if (data.has_outer_rng) AppendRngState(&out, data.outer_rng);
  out += "\n";
  AppendVector(&out, "w", data.state.w);
  AppendVector(&out, "iterate_sum", data.state.iterate_sum);
  out += "order";
  AppendU64(&out, data.state.order.size());
  for (size_t index : data.state.order) AppendU64(&out, index);
  out += "\nledger";
  AppendU64(&out, data.ledger.size());
  out += "\n";
  for (const obs::LedgerEvent& event : data.ledger) {
    out += "event";
    AppendU64(&out, event.seq);
    AppendU64(&out, event.time_ns);
    out += " " + EncodeToken(event.kind);
    out += " " + EncodeToken(event.mechanism);
    out += " " + EncodeToken(event.label);
    out += " " + EncodeToken(event.tenant);
    AppendDouble(&out, event.epsilon);
    AppendDouble(&out, event.delta);
    AppendDouble(&out, event.sensitivity);
    AppendDouble(&out, event.noise_scale);
    AppendDouble(&out, event.noise_norm);
    AppendU64(&out, event.dim);
    AppendU64(&out, event.step);
    AppendU64(&out, event.shards);
    AppendU64(&out, event.rng_fingerprint);
    AppendU64(&out, event.accepted ? 1 : 0);
    out += "\n";
  }
  out += StrFormat("checksum %016llx\n",
                   static_cast<unsigned long long>(
                       Fnv1a(out.data(), out.size())));
  return out;
}

Result<CheckpointData> ParseCheckpoint(const std::string& content,
                                       const std::string& path) {
  const size_t checksum_at = content.rfind("\nchecksum ");
  if (checksum_at == std::string::npos) {
    return Status::InvalidArgument(path + ": missing checksum line");
  }
  const size_t body_size = checksum_at + 1;  // include the preceding '\n'
  const std::string checksum_line(
      StripWhitespace(content.substr(body_size)));
  const std::string expected =
      StrFormat("checksum %016llx", static_cast<unsigned long long>(
                                        Fnv1a(content.data(), body_size)));
  if (checksum_line != expected) {
    return Status::IOError(
        path + ": checksum mismatch (corrupt or truncated checkpoint)");
  }

  std::vector<std::string> lines =
      StrSplit(content.substr(0, checksum_at), '\n');
  // Expected line order (see RenderCheckpoint): magic, privacy marker,
  // spec_hash, algorithm, cursor, stats, sensitivity, rng, outer_rng, w,
  // iterate_sum, order, ledger count, events.
  if (lines.size() < 13) {
    return Status::InvalidArgument(path + ": truncated checkpoint");
  }
  if (lines[0] != kMagic) {
    return Status::InvalidArgument(path + " is not a " + kMagic + " file");
  }
  if (!StartsWith(lines[1], "UNRELEASED_PRIVATE")) {
    return Status::InvalidArgument(path + ": missing UNRELEASED_PRIVATE marker");
  }

  auto tokens_for = [&lines, &path](size_t line_index,
                                    const char* key) -> Result<std::vector<std::string>> {
    std::vector<std::string> tokens = StrSplit(lines[line_index], ' ');
    if (tokens.empty() || tokens[0] != key) {
      return Status::InvalidArgument(StrFormat(
          "%s: expected '%s' on line %zu", path.c_str(), key, line_index + 1));
    }
    return tokens;
  };

  CheckpointData data;
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(2, "spec_hash"));
    if (tokens.size() != 2) return Status::InvalidArgument("bad spec_hash");
    BOLTON_ASSIGN_OR_RETURN(data.spec_hash, ParseU64(tokens[1]));
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(3, "algorithm"));
    if (tokens.size() != 2) return Status::InvalidArgument("bad algorithm");
    data.algorithm = DecodeToken(tokens[1]);
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(4, "cursor"));
    if (tokens.size() != 3) return Status::InvalidArgument("bad cursor");
    BOLTON_ASSIGN_OR_RETURN(uint64_t passes, ParseU64(tokens[1]));
    BOLTON_ASSIGN_OR_RETURN(uint64_t step, ParseU64(tokens[2]));
    data.state.completed_passes = passes;
    data.state.step = step;
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(5, "stats"));
    if (tokens.size() != 4) return Status::InvalidArgument("bad stats");
    BOLTON_ASSIGN_OR_RETURN(uint64_t ge, ParseU64(tokens[1]));
    BOLTON_ASSIGN_OR_RETURN(uint64_t updates, ParseU64(tokens[2]));
    BOLTON_ASSIGN_OR_RETURN(uint64_t noise, ParseU64(tokens[3]));
    data.state.stats.gradient_evaluations = ge;
    data.state.stats.updates = updates;
    data.state.stats.noise_samples = noise;
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(6, "sensitivity"));
    if (tokens.size() != 2) return Status::InvalidArgument("bad sensitivity");
    BOLTON_ASSIGN_OR_RETURN(data.sensitivity, ParseDouble(tokens[1]));
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(7, "rng"));
    size_t pos = 1;
    BOLTON_RETURN_IF_ERROR(ParseRngState(tokens, &pos, &data.state.rng));
    if (pos != tokens.size()) return Status::InvalidArgument("bad rng line");
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(8, "outer_rng"));
    if (tokens.size() < 2) return Status::InvalidArgument("bad outer_rng");
    BOLTON_ASSIGN_OR_RETURN(uint64_t has, ParseU64(tokens[1]));
    data.has_outer_rng = has != 0;
    size_t pos = 2;
    if (data.has_outer_rng) {
      BOLTON_RETURN_IF_ERROR(ParseRngState(tokens, &pos, &data.outer_rng));
    }
    if (pos != tokens.size()) {
      return Status::InvalidArgument("bad outer_rng line");
    }
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(9, "w"));
    BOLTON_ASSIGN_OR_RETURN(data.state.w, ParseVectorLine(tokens));
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(10, "iterate_sum"));
    BOLTON_ASSIGN_OR_RETURN(data.state.iterate_sum, ParseVectorLine(tokens));
  }
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(11, "order"));
    if (tokens.size() < 2) return Status::InvalidArgument("bad order line");
    BOLTON_ASSIGN_OR_RETURN(uint64_t count, ParseU64(tokens[1]));
    if (tokens.size() != count + 2) {
      return Status::InvalidArgument("order line length mismatch");
    }
    data.state.order.resize(count);
    for (size_t i = 0; i < count; ++i) {
      BOLTON_ASSIGN_OR_RETURN(uint64_t index, ParseU64(tokens[i + 2]));
      data.state.order[i] = index;
    }
  }
  uint64_t ledger_count = 0;
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(12, "ledger"));
    if (tokens.size() != 2) return Status::InvalidArgument("bad ledger line");
    BOLTON_ASSIGN_OR_RETURN(ledger_count, ParseU64(tokens[1]));
  }
  if (lines.size() < 13 + ledger_count) {
    return Status::InvalidArgument("truncated ledger events");
  }
  data.ledger.reserve(ledger_count);
  for (uint64_t i = 0; i < ledger_count; ++i) {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, tokens_for(13 + i, "event"));
    // 17 fields since the tenant column was added; 16-field events from
    // pre-tenant checkpoints parse with an empty tenant.
    if (tokens.size() != 16 && tokens.size() != 17) {
      return Status::InvalidArgument(
          StrFormat("ledger event %llu has %zu fields, want 16 or 17",
                    static_cast<unsigned long long>(i), tokens.size()));
    }
    const bool has_tenant = tokens.size() == 17;
    size_t t = 1;
    obs::LedgerEvent event;
    BOLTON_ASSIGN_OR_RETURN(event.seq, ParseU64(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.time_ns, ParseU64(tokens[t++]));
    event.kind = DecodeToken(tokens[t++]);
    event.mechanism = DecodeToken(tokens[t++]);
    event.label = DecodeToken(tokens[t++]);
    if (has_tenant) event.tenant = DecodeToken(tokens[t++]);
    BOLTON_ASSIGN_OR_RETURN(event.epsilon, ParseDouble(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.delta, ParseDouble(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.sensitivity, ParseDouble(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.noise_scale, ParseDouble(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.noise_norm, ParseDouble(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.dim, ParseU64(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.step, ParseU64(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.shards, ParseU64(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(event.rng_fingerprint, ParseU64(tokens[t++]));
    BOLTON_ASSIGN_OR_RETURN(uint64_t accepted, ParseU64(tokens[t++]));
    event.accepted = accepted != 0;
    data.ledger.push_back(std::move(event));
  }
  return data;
}

Status ErrnoIOError(const std::string& what, const std::string& path) {
  return Status::IOError(
      StrFormat("%s %s: %s", what.c_str(), path.c_str(), std::strerror(errno)));
}

}  // namespace

uint64_t SolverSpecHash(Algorithm algorithm, const SolverSpec& spec,
                        const LossFunction& loss, const Dataset& data) {
  uint64_t h = 0x626f6c746f6e6370ull;  // "boltoncp"
  h = MixString(h, AlgorithmName(algorithm));
  h = MixWord(h, spec.passes);
  h = MixWord(h, spec.batch_size);
  h = MixWord(h, static_cast<uint64_t>(spec.output));
  h = MixWord(h, spec.fresh_permutation_each_pass ? 1 : 0);
  h = MixWord(h, spec.shards);
  h = MixDouble(h, spec.privacy.epsilon);
  h = MixDouble(h, spec.privacy.delta);
  h = MixDouble(h, spec.constant_step);
  h = MixWord(h, spec.use_corrected_minibatch_sensitivity ? 1 : 0);
  h = MixString(h, loss.name());
  h = MixDouble(h, loss.lipschitz());
  h = MixDouble(h, loss.smoothness());
  h = MixDouble(h, loss.strong_convexity());
  h = MixDouble(h, loss.radius());
  h = MixWord(h, data.size());
  h = MixWord(h, data.dim());
  return h;
}

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {
  path_ = dir_ + "/bolton.ckpt";
  tmp_path_ = path_ + ".tmp";
}

Status CheckpointManager::Save(const CheckpointData& data) const {
  BOLTON_FAILPOINT("checkpoint.save");
  return AtomicWriteFile(tmp_path_, path_, dir_, RenderCheckpoint(data));
}

Result<CheckpointData> CheckpointManager::Load() const {
  BOLTON_FAILPOINT("checkpoint.load");
  std::ifstream in(path_, std::ios::binary);
  if (!in) return ErrnoIOError("cannot open checkpoint", path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return ErrnoIOError("read failed for", path_);
  return ParseCheckpoint(content, path_);
}

bool CheckpointManager::Exists() const {
  return ::access(path_.c_str(), F_OK) == 0;
}

Status CheckpointManager::Remove() const {
  if (std::remove(path_.c_str()) != 0 && errno != ENOENT) {
    return ErrnoIOError("cannot remove", path_);
  }
  return Status::OK();
}

Result<SolverOutput> RunSolverWithCheckpoints(
    Algorithm algorithm, const Dataset& data, const LossFunction& loss,
    const SolverSpec& spec, Rng* rng, const CheckpointOptions& checkpoint) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (checkpoint.dir.empty()) {
    return Status::InvalidArgument("checkpoint dir must not be empty");
  }
  if (checkpoint.every_passes < 1) {
    return Status::InvalidArgument("checkpoint every_passes must be >= 1");
  }
  const bool bolton = algorithm == Algorithm::kBoltOn;
  if (algorithm != Algorithm::kNoiseless && !bolton) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint/resume is defined for the black-box algorithms "
        "(noiseless, ours); '%s' perturbs inside the update loop and has "
        "no sound mid-run release point",
        AlgorithmName(algorithm)));
  }
  if (spec.shards != 1) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint/resume supports serial runs only (shards must be 1, "
        "got %zu)",
        spec.shards));
  }
  if (bolton) {
    BOLTON_RETURN_IF_ERROR(spec.privacy.Validate());
    if (loss.IsStronglyConvex() && !std::isfinite(loss.radius())) {
      return Status::FailedPrecondition(
          "Algorithm 2 runs constrained optimization; the loss must carry "
          "a finite radius (the paper uses R = 1/lambda)");
    }
  }

  const uint64_t spec_hash = SolverSpecHash(algorithm, spec, loss, data);
  CheckpointManager manager(checkpoint.dir);

  CheckpointData loaded;
  bool resuming = false;
  if (checkpoint.resume) {
    BOLTON_ASSIGN_OR_RETURN(loaded, manager.Load());
    if (loaded.spec_hash != spec_hash) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint %s was written under spec hash %016llx but this run "
          "hashes to %016llx (algorithm, run spec, privacy parameters, "
          "loss, or data shape changed); refusing to resume",
          manager.path().c_str(),
          static_cast<unsigned long long>(loaded.spec_hash),
          static_cast<unsigned long long>(spec_hash)));
    }
    if (bolton && !loaded.has_outer_rng) {
      return Status::FailedPrecondition(
          manager.path() +
          " carries no perturbation rng state; cannot resume a bolt-on run");
    }
    resuming = true;
  }

  // Step-size schedule and (for bolt-on) the sensitivity calibration,
  // mirroring RunPrivateSolver's Table 4 conventions exactly.
  std::unique_ptr<StepSizeSchedule> schedule;
  double sensitivity = 0.0;
  if (!bolton) {
    if (loss.IsStronglyConvex()) {
      BOLTON_ASSIGN_OR_RETURN(
          schedule,
          MakeInverseTimeStep(loss.strong_convexity(),
                              std::numeric_limits<double>::infinity()));
    } else {
      BOLTON_ASSIGN_OR_RETURN(
          schedule, MakeConstantStep(
                        1.0 / std::sqrt(static_cast<double>(data.size()))));
    }
  } else {
    double eta = 0.0;
    if (loss.IsStronglyConvex()) {
      BOLTON_ASSIGN_OR_RETURN(
          schedule,
          MakeInverseTimeStep(loss.strong_convexity(), loss.smoothness()));
    } else {
      eta = spec.constant_step > 0.0
                ? spec.constant_step
                : 1.0 / std::sqrt(static_cast<double>(data.size()));
      BOLTON_ASSIGN_OR_RETURN(schedule, MakeConstantStep(eta));
    }
    if (resuming) {
      // The original run calibrated (and ledger-recorded) this Δ₂; reuse it
      // rather than re-recording a duplicate calibration event.
      sensitivity = loaded.sensitivity;
    } else {
      SensitivitySetup setup;
      setup.passes = spec.passes;
      setup.batch_size = spec.batch_size;
      setup.num_examples = data.size();
      BOLTON_ASSIGN_OR_RETURN(
          sensitivity,
          BoltOnSensitivity(loss, eta, setup, /*shards=*/1,
                            spec.use_corrected_minibatch_sensitivity,
                            spec.privacy));
    }
  }

  if (resuming) {
    BOLTON_LOG(kInfo) << "resuming from checkpoint " << manager.path()
                      << " at pass " << loaded.state.completed_passes << "/"
                      << spec.passes;
    obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
    if (ledger.enabled()) {
      ledger.Restore(loaded.ledger);
      obs::LedgerEvent event;
      event.kind = "resume";
      event.label = "checkpoint.resume";
      event.step = loaded.state.completed_passes;
      ledger.Record(std::move(event));
    }
    // The perturbation draw must come from the same generator state the
    // uninterrupted run would have used (post-Split, untouched during
    // training).
    if (bolton) rng->RestoreState(loaded.outer_rng);
  }

  // The PSGD rng: bolt-on splits the caller stream exactly as PrivatePsgd
  // does; noiseless consumes the caller stream directly, matching the
  // shards == 1 delegation in RunShardedPsgd.
  Rng psgd_rng_storage(0);
  Rng* psgd_rng = rng;
  if (bolton) {
    if (!resuming) psgd_rng_storage = rng->Split();
    // On resume the storage state is irrelevant: RunPsgd restores it from
    // the checkpointed PsgdResumeState before consuming anything.
    psgd_rng = &psgd_rng_storage;
  }

  PsgdOptions options;
  options.run() = spec.run();
  options.radius = loss.radius();
  options.sampling = SamplingMode::kPermutation;

  auto sink = [&](const PsgdResumeState& state) -> Status {
    CheckpointData out;
    out.spec_hash = spec_hash;
    out.algorithm = AlgorithmName(algorithm);
    out.state = state;
    out.sensitivity = sensitivity;
    if (bolton) {
      out.has_outer_rng = true;
      out.outer_rng = rng->SaveState();
    }
    obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
    if (ledger.enabled()) {
      obs::LedgerEvent event;
      event.kind = "checkpoint";
      event.label = "checkpoint.save";
      event.step = state.completed_passes;
      ledger.Record(std::move(event));
      out.ledger = ledger.Snapshot();
    }
    Status saved = manager.Save(out);
    if (saved.ok()) {
      BOLTON_LOG(kInfo) << "checkpoint saved at pass "
                        << state.completed_passes << " ("
                        << manager.path() << ")";
    }
    return saved;
  };

  PsgdCheckpointPlan plan;
  plan.every_passes = checkpoint.every_passes;
  plan.sink = sink;
  if (resuming) plan.resume = &loaded.state;

  BOLTON_ASSIGN_OR_RETURN(
      PsgdOutput run, RunPsgd(data, loss, *schedule, options, psgd_rng,
                              /*noise=*/nullptr, /*pass_callback=*/nullptr,
                              &plan));

  SolverOutput out;
  if (bolton) {
    BOLTON_ASSIGN_OR_RETURN(
        PrivateSgdOutput priv,
        BoltOnPerturb(run.model, sensitivity, spec.privacy, rng));
    out.model = std::move(priv.model);
    out.sensitivity = sensitivity;
  } else {
    out.model = std::move(run.model);
  }
  out.stats = run.stats;
  out.shards = 1;

  Status removed = manager.Remove();
  if (!removed.ok()) {
    BOLTON_LOG(kWarning) << "run succeeded but checkpoint cleanup failed ("
                         << removed.ToString() << "); remove "
                         << manager.path()
                         << " manually - it holds the pre-noise iterate";
  }
  return out;
}

}  // namespace bolton
