#ifndef BOLTON_CORE_ACCOUNTANT_H_
#define BOLTON_CORE_ACCOUNTANT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/privacy.h"
#include "util/result.h"

namespace bolton {

/// Composition calculators for (ε, δ)-differential privacy.
///
/// The paper's §4.6 notes that a deployed analytics system answers many
/// private queries and must split its budget across them; this header
/// provides the standard tools for that bookkeeping. BST14's per-iteration
/// calibration (Algorithms 4/5, line 5) is an inverted use of
/// `AdvancedComposition`.

/// Basic (sequential) composition: k mechanisms, each (ε_i, δ_i)-DP, run on
/// the same data compose to (Σε_i, Σδ_i)-DP.
PrivacyParams BasicComposition(const std::vector<PrivacyParams>& parts);

/// Advanced composition (Dwork–Roth Thm 3.20): k runs of an (ε, δ)-DP
/// mechanism are (ε', kδ + δ')-DP with
///   ε' = √(2k ln(1/δ')) ε + k ε (e^ε − 1).
/// Requires δ' ∈ (0, 1).
Result<PrivacyParams> AdvancedComposition(const PrivacyParams& per_step,
                                          size_t k, double delta_prime);

/// Inverse of advanced composition: the largest per-step ε such that k
/// steps compose to at most `total` ε (with slack δ'). This is exactly the
/// ε₁ solve of BST14's line 5 (re-exported here for general use).
Result<double> PerStepEpsilonForAdvancedComposition(double total_epsilon,
                                                    double delta_prime,
                                                    size_t k);

/// Parallel composition: mechanisms applied to DISJOINT data partitions
/// compose to the max of their budgets (used implicitly by one-pass SCS13
/// and by Algorithm 3's per-portion training).
PrivacyParams ParallelComposition(const std::vector<PrivacyParams>& parts);

/// A budget ledger for multi-query sessions: construct with the total
/// budget, `Charge` each private release, and the accountant refuses
/// charges that would exceed the budget under basic composition.
///
///     PrivacyAccountant accountant({1.0, 1e-6});
///     BOLTON_RETURN_IF_ERROR(accountant.Charge({0.3, 0.0}, "model-v1"));
class PrivacyAccountant {
 public:
  explicit PrivacyAccountant(PrivacyParams total_budget);

  /// Records a charge. Fails with FailedPrecondition (and records nothing)
  /// if the running basic-composition total would exceed the budget.
  Status Charge(const PrivacyParams& cost, const std::string& label);

  /// Budget consumed so far (basic composition over all charges).
  PrivacyParams Spent() const;

  /// Budget still available.
  PrivacyParams Remaining() const;

  /// Number of recorded charges.
  size_t num_charges() const { return charges_.size(); }

  /// Human-readable ledger, one line per charge.
  std::string LedgerToString() const;

 private:
  struct Charged {
    PrivacyParams cost;
    std::string label;
  };

  PrivacyParams budget_;
  std::vector<Charged> charges_;
};

}  // namespace bolton

#endif  // BOLTON_CORE_ACCOUNTANT_H_
