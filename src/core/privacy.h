#ifndef BOLTON_CORE_PRIVACY_H_
#define BOLTON_CORE_PRIVACY_H_

#include <string>

#include "util/result.h"

namespace bolton {

/// A differential-privacy budget (ε, δ). δ = 0 means pure ε-DP.
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 0.0;

  /// True for pure ε-differential privacy.
  bool IsPure() const { return delta == 0.0; }

  /// Validates ε > 0, δ ∈ [0, 1). For (ε, δ)-DP via the Gaussian mechanism
  /// (Theorem 3) the caller must additionally have ε < 1, which the noise
  /// sampler enforces.
  Status Validate() const;

  /// Splits the budget evenly across `parts` sub-computations using basic
  /// composition (the paper's §4.3 multiclass strategy: "we used the
  /// simplest composition theorem and divide the privacy budget evenly").
  PrivacyParams SplitEvenly(int parts) const;

  std::string ToString() const;
};

}  // namespace bolton

#endif  // BOLTON_CORE_PRIVACY_H_
