#include "core/objective_perturbation.h"

#include <cmath>
#include <memory>

#include "optim/loss.h"
#include "optim/schedule.h"
#include "random/distributions.h"
#include "util/strings.h"

namespace bolton {

namespace {

// Numerically stable pieces shared with optim/loss.cc's logistic loss.
double Log1pExp(double z) {
  if (z > 0.0) return z + std::log1p(std::exp(-z));
  return std::log1p(std::exp(z));
}
double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

// Logistic loss + (λ/2)‖w‖² + ⟨b, w⟩/m per example, so the empirical risk
// is exactly CMS11's perturbed objective J(w).
class PerturbedLogisticLoss final : public LossFunction {
 public:
  PerturbedLogisticLoss(double lambda, double radius, Vector b, size_t m)
      : lambda_(lambda), radius_(radius), b_(std::move(b)),
        inv_m_(1.0 / static_cast<double>(m)) {}

  double Loss(const Vector& w, const Example& example) const override {
    double loss = Log1pExp(-example.label * Dot(w, example.x));
    loss += 0.5 * lambda_ * w.SquaredNorm();
    loss += inv_m_ * Dot(b_, w);
    return loss;
  }

  void AddGradient(const Vector& w, const Example& example, double scale,
                   Vector* grad) const override {
    double margin = example.label * Dot(w, example.x);
    grad->Axpy(scale * -example.label * Sigmoid(-margin), example.x);
    grad->Axpy(scale * lambda_, w);
    grad->Axpy(scale * inv_m_, b_);
  }

  double lipschitz() const override {
    return 1.0 + lambda_ * radius_ + b_.Norm() * inv_m_;
  }
  double smoothness() const override { return 1.0 + lambda_; }
  double strong_convexity() const override { return lambda_; }
  double radius() const override { return radius_; }
  std::string name() const override {
    return StrFormat("perturbed_logistic(lambda=%g)", lambda_);
  }
  std::unique_ptr<LossFunction> Clone() const override {
    return std::make_unique<PerturbedLogisticLoss>(*this);
  }

 private:
  double lambda_;
  double radius_;
  Vector b_;
  double inv_m_;
};

}  // namespace

Result<ObjectivePerturbationOutput> RunObjectivePerturbation(
    const Dataset& data, const ObjectivePerturbationOptions& options,
    Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be >= 0");
  }
  if (options.passes < 1) return Status::InvalidArgument("passes must be >= 1");

  const double m = static_cast<double>(data.size());
  const double c = 0.25;  // curvature bound of the logistic loss derivative

  // CMS11 Algorithm 2's budget split: the curvature of the loss charges
  // 2·ln(1 + c/(mλ)) of ε; if λ is too small for that to leave a positive
  // remainder, raise λ until the charge is exactly ε/2.
  ObjectivePerturbationOutput out;
  out.effective_lambda = options.lambda;
  double eps_prime =
      options.lambda > 0.0
          ? options.epsilon -
                2.0 * std::log(1.0 + c / (m * options.lambda))
          : -1.0;
  if (eps_prime <= 0.0) {
    out.effective_lambda = c / (m * std::expm1(options.epsilon / 4.0));
    eps_prime = options.epsilon / 2.0;
  }
  out.epsilon_prime = eps_prime;

  // b: uniform direction, ‖b‖ ~ Gamma(d, 2/ε').
  Vector b = SampleUnitSphere(data.dim(), rng);
  double magnitude =
      SampleGamma(static_cast<double>(data.dim()), 2.0 / eps_prime, rng);
  b *= magnitude;
  out.perturbation_norm = magnitude;

  // Approximate argmin J(w) with strongly convex projected PSGD.
  const double radius = 1.0 / out.effective_lambda;
  PerturbedLogisticLoss loss(out.effective_lambda, radius, std::move(b),
                             data.size());
  BOLTON_ASSIGN_OR_RETURN(
      auto schedule,
      MakeInverseTimeStep(loss.strong_convexity(), loss.smoothness()));
  PsgdOptions psgd;
  psgd.passes = options.passes;
  psgd.batch_size = std::min(options.batch_size, data.size());
  psgd.radius = radius;
  Rng psgd_rng = rng->Split();
  BOLTON_ASSIGN_OR_RETURN(PsgdOutput run,
                          RunPsgd(data, loss, *schedule, psgd, &psgd_rng));
  out.model = std::move(run.model);
  out.stats = run.stats;
  return out;
}

}  // namespace bolton
