#include "core/private_sgd.h"

#include <cmath>

#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/parallel_executor.h"
#include "optim/schedule.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace bolton {

namespace {

NoiseMechanism MechanismFor(const PrivacyParams& privacy) {
  return privacy.IsPure() ? NoiseMechanism::kLaplace
                          : NoiseMechanism::kGaussian;
}

SensitivitySetup SetupFor(const Dataset& data, const BoltOnOptions& options) {
  SensitivitySetup setup;
  setup.passes = options.passes;
  setup.batch_size = options.batch_size;
  setup.num_examples = data.size();
  return setup;
}

PsgdOptions PsgdOptionsFor(const BoltOnOptions& options, double radius) {
  PsgdOptions psgd;
  psgd.run() = options.run();
  psgd.radius = radius;
  psgd.sampling = SamplingMode::kPermutation;
  return psgd;
}

}  // namespace

Result<double> BoltOnSensitivity(const LossFunction& loss, double eta,
                                 const SensitivitySetup& setup, size_t shards,
                                 bool use_corrected_minibatch,
                                 const PrivacyParams& privacy) {
  BOLTON_FAILPOINT("bolton.calibrate");
  obs::ScopedSpan sensitivity_span("bolton.sensitivity");
  double sensitivity;
  if (loss.IsStronglyConvex()) {
    BOLTON_ASSIGN_OR_RETURN(
        sensitivity, ShardedStronglyConvexDecreasingStepSensitivity(
                         loss, setup, shards, use_corrected_minibatch));
  } else {
    BOLTON_ASSIGN_OR_RETURN(
        sensitivity,
        ShardedConvexConstantStepSensitivity(loss, eta, setup, shards));
  }
  if (obs::PrivacyLedger::Default().enabled()) {
    // Audit trail: the Δ₂ the single output draw below will be calibrated
    // to, including the shard count the Lemma 10 argument was applied with.
    obs::LedgerEvent event;
    event.kind = "calibration";
    event.mechanism = privacy.IsPure() ? "laplace" : "gaussian";
    event.label =
        shards > 1 ? "bolton.sharded_sensitivity" : "bolton.sensitivity";
    event.epsilon = privacy.epsilon;
    event.delta = privacy.delta;
    event.sensitivity = sensitivity;
    event.shards = shards;
    obs::PrivacyLedger::Default().Record(std::move(event));
  }
  return sensitivity;
}

Result<PrivateSgdOutput> BoltOnPerturb(const Vector& model, double sensitivity,
                                       const PrivacyParams& privacy,
                                       Rng* rng) {
  BOLTON_FAILPOINT("bolton.perturb");
  BOLTON_RETURN_IF_ERROR(privacy.Validate());
  if (sensitivity < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (model.empty()) return Status::InvalidArgument("empty model");
  obs::ScopedSpan perturb_span("bolton.perturb_draw");
  static obs::Counter* perturbations =
      obs::MetricsRegistry::Default().GetCounter("bolton.perturbations");
  perturbations->Increment();
  BOLTON_ASSIGN_OR_RETURN(
      Vector kappa,
      SampleDpNoise(MechanismFor(privacy), model.dim(), sensitivity,
                    privacy.epsilon, privacy.delta, rng));
  PrivateSgdOutput out;
  out.noiseless_model = model;
  out.sensitivity = sensitivity;
  out.noise_norm = kappa.Norm();
  kappa += model;
  out.model = std::move(kappa);
  return out;
}

Result<PrivateSgdOutput> PrivateConvexPsgd(const Dataset& data,
                                           const LossFunction& loss,
                                           const BoltOnOptions& options,
                                           Rng* rng) {
  BOLTON_RETURN_IF_ERROR(options.privacy.Validate());
  if (loss.IsStronglyConvex()) {
    return Status::FailedPrecondition(
        "Algorithm 1 requires a merely convex loss; use "
        "PrivateStronglyConvexPsgd for gamma > 0");
  }
  if (data.empty()) return Status::InvalidArgument("empty training set");

  // Table 4's default constant step: η = 1/√m.
  const double eta =
      options.constant_step > 0.0
          ? options.constant_step
          : 1.0 / std::sqrt(static_cast<double>(data.size()));
  BOLTON_ASSIGN_OR_RETURN(
      double sensitivity,
      BoltOnSensitivity(loss, eta, SetupFor(data, options), options.shards,
                        options.use_corrected_minibatch_sensitivity,
                        options.privacy));
  BOLTON_ASSIGN_OR_RETURN(auto schedule, MakeConstantStep(eta));

  Rng psgd_rng = rng->Split();
  BOLTON_ASSIGN_OR_RETURN(
      ShardedPsgdOutput run,
      RunShardedPsgd(data, loss, *schedule,
                     PsgdOptionsFor(options, loss.radius()), &psgd_rng));

  BOLTON_ASSIGN_OR_RETURN(
      PrivateSgdOutput out,
      BoltOnPerturb(run.model, sensitivity, options.privacy, rng));
  out.stats = run.stats;
  out.shards = run.shards;
  return out;
}

Result<PrivateSgdOutput> PrivateStronglyConvexPsgd(const Dataset& data,
                                                   const LossFunction& loss,
                                                   const BoltOnOptions& options,
                                                   Rng* rng) {
  BOLTON_RETURN_IF_ERROR(options.privacy.Validate());
  if (!loss.IsStronglyConvex()) {
    return Status::FailedPrecondition(
        "Algorithm 2 requires a strongly convex loss (gamma > 0)");
  }
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (!std::isfinite(loss.radius())) {
    return Status::FailedPrecondition(
        "Algorithm 2 runs constrained optimization; the loss must carry a "
        "finite radius (the paper uses R = 1/lambda)");
  }

  BOLTON_ASSIGN_OR_RETURN(
      double sensitivity,
      BoltOnSensitivity(loss, /*eta=*/0.0, SetupFor(data, options),
                        options.shards,
                        options.use_corrected_minibatch_sensitivity,
                        options.privacy));
  // Algorithm 2, line 2: η_t = min(1/β, 1/(γt)).
  BOLTON_ASSIGN_OR_RETURN(
      auto schedule,
      MakeInverseTimeStep(loss.strong_convexity(), loss.smoothness()));

  Rng psgd_rng = rng->Split();
  BOLTON_ASSIGN_OR_RETURN(
      ShardedPsgdOutput run,
      RunShardedPsgd(data, loss, *schedule,
                     PsgdOptionsFor(options, loss.radius()), &psgd_rng));

  BOLTON_ASSIGN_OR_RETURN(
      PrivateSgdOutput out,
      BoltOnPerturb(run.model, sensitivity, options.privacy, rng));
  out.stats = run.stats;
  out.shards = run.shards;
  return out;
}

Result<PrivateSgdOutput> PrivatePsgd(const Dataset& data,
                                     const LossFunction& loss,
                                     const BoltOnOptions& options, Rng* rng) {
  return loss.IsStronglyConvex()
             ? PrivateStronglyConvexPsgd(data, loss, options, rng)
             : PrivateConvexPsgd(data, loss, options, rng);
}

}  // namespace bolton
