#ifndef BOLTON_CORE_OBJECTIVE_PERTURBATION_H_
#define BOLTON_CORE_OBJECTIVE_PERTURBATION_H_

#include "core/privacy.h"
#include "data/dataset.h"
#include "optim/psgd.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Objective perturbation (Chaudhuri, Monteleoni & Sarwate 2011 — the
/// paper's [13]) for L2-regularized logistic regression: the third style of
/// DP convex optimization §5 surveys. Instead of perturbing the output
/// (ours) or every update (SCS13/BST14), it perturbs the OBJECTIVE with a
/// random linear term and releases the exact minimizer of
///
///   J(w) = (1/m) Σ ℓ(w, z_i) + (λ'/2)‖w‖² + ⟨b, w⟩/m,
///
/// where ‖b‖ ~ Gamma(d, 2/ε') with a uniform direction, ε' = ε −
/// 2·ln(1 + c/(mλ)) (c = 1/4, the logistic loss's curvature bound), and
/// λ' is raised just enough to make ε' positive when λ is too small.
///
/// CAVEAT (the paper's §5 critique, reproduced here on purpose): the ε-DP
/// guarantee assumes the EXACT minimizer is released. This implementation
/// approximates it with many PSGD passes, so the guarantee is heuristic in
/// exactly the way the paper criticizes — which is the point of shipping
/// it: the bolt-on method's guarantee holds for whatever the black box
/// returns, this one's does not.
struct ObjectivePerturbationOptions {
  /// ε-DP budget (pure DP only — the classic mechanism).
  double epsilon = 1.0;
  /// Requested regularization λ; may be increased internally (see above).
  double lambda = 1e-3;
  /// PSGD passes used to approximate the minimizer.
  size_t passes = 50;
  size_t batch_size = 10;
};

struct ObjectivePerturbationOutput {
  /// The (approximate) minimizer of the perturbed objective.
  Vector model;
  /// ε' actually available for the noise term after the curvature charge.
  double epsilon_prime = 0.0;
  /// λ actually used (≥ options.lambda).
  double effective_lambda = 0.0;
  /// ‖b‖ drawn (diagnostic).
  double perturbation_norm = 0.0;
  PsgdStats stats;
};

/// Runs objective perturbation for logistic regression. Requires ε > 0,
/// λ ≥ 0, non-empty unit-ball data.
Result<ObjectivePerturbationOutput> RunObjectivePerturbation(
    const Dataset& data, const ObjectivePerturbationOptions& options,
    Rng* rng);

}  // namespace bolton

#endif  // BOLTON_CORE_OBJECTIVE_PERTURBATION_H_
