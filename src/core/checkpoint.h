#ifndef BOLTON_CORE_CHECKPOINT_H_
#define BOLTON_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/solver.h"
#include "obs/ledger.h"
#include "optim/psgd.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Crash-safe checkpoint/resume for serial training runs.
///
/// A checkpoint captures a pass-boundary PsgdResumeState plus everything
/// the solver layer needs to finish the run bit-identically to one that
/// was never interrupted: the solver-spec hash (so a resume under a
/// different configuration is rejected instead of silently producing a
/// model with the wrong privacy calibration), the outer rng that will
/// draw the bolt-on output perturbation, and a privacy-ledger snapshot so
/// the audit trail of the resumed run is continuous.
///
/// PRIVACY: a checkpoint holds the PRE-NOISE iterate. It is not
/// differentially private and must never be released — the file leads
/// with an explicit UNRELEASED_PRIVATE marker and is written 0600. Only
/// the model returned by RunSolverWithCheckpoints (perturbed for
/// kBoltOn) is safe to publish; the checkpoint file is removed once the
/// run completes.

/// Everything one checkpoint persists.
struct CheckpointData {
  /// SolverSpecHash of the run that wrote the checkpoint; resume refuses
  /// to continue under a different hash.
  uint64_t spec_hash = 0;
  /// Canonical AlgorithmName of the run.
  std::string algorithm;
  /// The pass-boundary optimizer state (iterates, cursor, rng,
  /// permutation) captured by RunPsgd's checkpoint plan.
  PsgdResumeState state;
  /// kBoltOn only: the outer rng (post-Split), saved so the single output
  /// perturbation draw after resume is bit-identical.
  bool has_outer_rng = false;
  RngState outer_rng;
  /// Δ₂ the run calibrated at start (kBoltOn; 0 otherwise). Stored so a
  /// resume reuses the original calibration instead of re-recording one.
  double sensitivity = 0.0;
  /// Privacy-ledger snapshot at save time (empty when the ledger is
  /// disabled); restored on resume so calibration events survive a crash.
  std::vector<obs::LedgerEvent> ledger;
};

/// 64-bit digest of everything the resume contract requires to be
/// unchanged: algorithm, run shape (passes, batch, output mode, fresh
/// permutation, shards), privacy parameters and step knobs, the loss
/// identity (name, L, beta, gamma, R), and the dataset shape (m, dim).
/// The dataset contents are NOT hashed — swapping examples between
/// checkpoint and resume is on the caller, exactly as it is for the rng
/// seed of an uninterrupted run.
uint64_t SolverSpecHash(Algorithm algorithm, const SolverSpec& spec,
                        const LossFunction& loss, const Dataset& data);

/// Owns the checkpoint file inside a directory. Saves are atomic:
/// write to `<dir>/bolton.ckpt.tmp` (0600), fsync, rename over
/// `<dir>/bolton.ckpt`, fsync the directory — a crash at any point leaves
/// either the previous checkpoint or the new one, never a torn file. A
/// trailing FNV-1a checksum line rejects corrupt or truncated files on
/// load.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir);

  const std::string& path() const { return path_; }

  Status Save(const CheckpointData& data) const;
  Result<CheckpointData> Load() const;
  bool Exists() const;
  /// Removes the checkpoint file; OK if it does not exist.
  Status Remove() const;

 private:
  std::string dir_;
  std::string path_;
  std::string tmp_path_;
};

/// Checkpoint policy for RunSolverWithCheckpoints.
struct CheckpointOptions {
  /// Directory holding the checkpoint file; must already exist.
  std::string dir;
  /// Save after every this-many completed passes (the final pass is never
  /// checkpointed — the run is about to release).
  size_t every_passes = 1;
  /// Continue from the checkpoint in `dir` instead of starting fresh.
  bool resume = false;
};

/// RunPrivateSolver with pass-boundary checkpointing and crash recovery.
///
/// Supports the two black-box algorithms (kNoiseless, kBoltOn) with
/// spec.shards == 1; the white-box baselines perturb inside the update
/// loop and have no sound mid-run release point, so they are rejected.
///
/// Guarantees, for a fixed seed/spec/dataset:
///  * an uninterrupted checkpointed run returns the same model as
///    RunPrivateSolver (checkpointing only observes pass boundaries);
///  * kill the process at any point, rerun with resume = true, and the
///    released model is bit-identical to the uninterrupted run — the
///    permutation stream is replayed, not re-drawn, and for kBoltOn
///    exactly one noise draw happens, from the restored outer rng;
///  * resume under a changed spec/loss/data-shape fails with
///    FailedPrecondition instead of mis-calibrating;
///  * on success the checkpoint file is removed (it holds the pre-noise
///    iterate and must not outlive the run).
Result<SolverOutput> RunSolverWithCheckpoints(
    Algorithm algorithm, const Dataset& data, const LossFunction& loss,
    const SolverSpec& spec, Rng* rng, const CheckpointOptions& checkpoint);

}  // namespace bolton

#endif  // BOLTON_CORE_CHECKPOINT_H_
