#include "core/multiclass.h"

#include <limits>
#include <thread>

#include "util/logging.h"

namespace bolton {

int MulticlassModel::Predict(const Vector& x) const {
  BOLTON_CHECK(!weights.empty());
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < weights.size(); ++c) {
    double score = Dot(weights[c], x);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(c);
    }
  }
  return best;
}

Result<MulticlassModel> TrainOneVsAll(const Dataset& data,
                                      const PrivacyParams& total_budget,
                                      const BinaryTrainFn& train, Rng* rng,
                                      size_t threads) {
  BOLTON_RETURN_IF_ERROR(total_budget.Validate());
  if (!train) return Status::InvalidArgument("null train function");
  if (data.num_classes() < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  if (threads < 1) return Status::InvalidArgument("threads must be >= 1");
  const int num_classes = data.num_classes();
  const PrivacyParams per_model = total_budget.SplitEvenly(num_classes);

  // Split every per-class RNG up front from the shared stream so the
  // results are identical regardless of thread count or scheduling.
  std::vector<Rng> class_rngs;
  class_rngs.reserve(num_classes);
  for (int c = 0; c < num_classes; ++c) class_rngs.push_back(rng->Split());

  std::vector<Result<Vector>> results(num_classes,
                                      Result<Vector>(Vector()));
  auto train_class = [&](int c) {
    Dataset binary = data.OneVsAllView(c);
    results[c] = train(binary, per_model, &class_rngs[c]);
  };

  if (threads <= 1 || num_classes == 2) {
    for (int c = 0; c < num_classes; ++c) train_class(c);
  } else {
    // Static round-robin assignment: class c goes to worker c % threads.
    std::vector<std::thread> workers;
    size_t worker_count =
        std::min(threads, static_cast<size_t>(num_classes));
    workers.reserve(worker_count);
    for (size_t w = 0; w < worker_count; ++w) {
      workers.emplace_back([&, w]() {
        for (int c = static_cast<int>(w); c < num_classes;
             c += static_cast<int>(worker_count)) {
          train_class(c);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  MulticlassModel model;
  model.weights.reserve(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    if (!results[c].ok()) {
      return results[c].status().WithContext(
          "training one-vs-all class " + std::to_string(c));
    }
    model.weights.push_back(results[c].MoveValue());
  }
  return model;
}

}  // namespace bolton
