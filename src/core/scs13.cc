#include "core/scs13.h"

#include "obs/ledger.h"
#include "obs/trace.h"
#include "optim/schedule.h"
#include "random/dp_noise.h"
#include "util/strings.h"

namespace bolton {

namespace {

/// Per-update noise for SCS13, drawn through the PSGD white-box hook.
class Scs13Noise final : public GradientNoiseSource {
 public:
  Scs13Noise(NoiseMechanism mechanism, double sensitivity, double epsilon,
             double delta)
      : mechanism_(mechanism),
        sensitivity_(sensitivity),
        epsilon_(epsilon),
        delta_(delta) {}

  Result<Vector> Sample(size_t /*step*/, size_t dim, Rng* rng) override {
    return SampleDpNoise(mechanism_, dim, sensitivity_, epsilon_, delta_, rng);
  }

  Result<double> NoiseScale() const {
    if (mechanism_ == NoiseMechanism::kLaplace) {
      return sensitivity_ / epsilon_;
    }
    return GaussianMechanismSigma(sensitivity_, epsilon_, delta_);
  }

 private:
  NoiseMechanism mechanism_;
  double sensitivity_;
  double epsilon_;
  double delta_;
};

}  // namespace

Result<Scs13Output> RunScs13(const Dataset& data, const LossFunction& loss,
                             const Scs13Options& options, Rng* rng) {
  BOLTON_RETURN_IF_ERROR(options.privacy.Validate());
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options.passes < 1) return Status::InvalidArgument("passes must be >= 1");

  // Budget: parallel composition inside a pass (batches are disjoint under
  // permutation sampling), basic composition across the k passes.
  const double eps_step =
      options.privacy.epsilon / static_cast<double>(options.passes);
  const double delta_step =
      options.privacy.delta / static_cast<double>(options.passes);
  const double sensitivity =
      2.0 * loss.lipschitz() / static_cast<double>(options.batch_size);

  NoiseMechanism mechanism = options.privacy.IsPure()
                                 ? NoiseMechanism::kLaplace
                                 : NoiseMechanism::kGaussian;
  Scs13Noise noise(mechanism, sensitivity, eps_step, delta_step);

  obs::ScopedSpan run_span("scs13.run");
  if (obs::PrivacyLedger::Default().enabled()) {
    // Audit trail for the per-step budget split the draws below will use.
    obs::LedgerEvent event;
    event.kind = "calibration";
    event.mechanism =
        mechanism == NoiseMechanism::kLaplace ? "laplace" : "gaussian";
    event.label = "scs13.per_step_budget";
    event.epsilon = eps_step;
    event.delta = delta_step;
    event.sensitivity = sensitivity;
    auto scale = noise.NoiseScale();
    event.noise_scale = scale.ok() ? scale.value() : 0.0;
    obs::PrivacyLedger::Default().Record(std::move(event));
  }

  BOLTON_ASSIGN_OR_RETURN(auto schedule,
                          MakeInverseSqrtStep(options.step_scale));

  PsgdOptions psgd;
  psgd.passes = options.passes;
  psgd.batch_size = options.batch_size;
  psgd.radius = loss.radius();
  psgd.output = OutputMode::kLastIterate;
  psgd.sampling = SamplingMode::kPermutation;

  BOLTON_ASSIGN_OR_RETURN(PsgdOutput run,
                          RunPsgd(data, loss, *schedule, psgd, rng, &noise));

  Scs13Output out;
  out.model = std::move(run.model);
  out.stats = run.stats;
  BOLTON_ASSIGN_OR_RETURN(out.per_step_noise_scale, noise.NoiseScale());
  return out;
}

}  // namespace bolton
