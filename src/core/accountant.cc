#include "core/accountant.h"

#include <algorithm>
#include <cmath>

#include "core/bst14.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace bolton {

namespace {

/// One auditable ledger event per well-formed Charge() call, accepted or
/// not, plus running spend gauges.
void RecordChargeTelemetry(const PrivacyParams& cost, const std::string& label,
                           const PrivacyParams& spent_after, bool accepted) {
  static obs::Counter* accepted_count =
      obs::MetricsRegistry::Default().GetCounter("accountant.charges");
  static obs::Counter* rejected_count =
      obs::MetricsRegistry::Default().GetCounter("accountant.rejected");
  static obs::Gauge* epsilon_spent =
      obs::MetricsRegistry::Default().GetGauge("privacy.epsilon_spent");
  static obs::Gauge* delta_spent =
      obs::MetricsRegistry::Default().GetGauge("privacy.delta_spent");
  (accepted ? accepted_count : rejected_count)->Increment();
  if (accepted) {
    epsilon_spent->Set(spent_after.epsilon);
    delta_spent->Set(spent_after.delta);
  }

  obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
  if (!ledger.enabled()) return;
  obs::LedgerEvent event;
  event.kind = "accountant_charge";
  event.label = label;
  event.epsilon = cost.epsilon;
  event.delta = cost.delta;
  event.accepted = accepted;
  ledger.Record(std::move(event));
}

}  // namespace

PrivacyParams BasicComposition(const std::vector<PrivacyParams>& parts) {
  PrivacyParams total{0.0, 0.0};
  for (const PrivacyParams& p : parts) {
    total.epsilon += p.epsilon;
    total.delta += p.delta;
  }
  return total;
}

Result<PrivacyParams> AdvancedComposition(const PrivacyParams& per_step,
                                          size_t k, double delta_prime) {
  BOLTON_RETURN_IF_ERROR(per_step.Validate());
  if (delta_prime <= 0.0 || delta_prime >= 1.0) {
    return Status::InvalidArgument("delta_prime must be in (0, 1)");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const double kd = static_cast<double>(k);
  const double eps = per_step.epsilon;
  PrivacyParams total;
  total.epsilon = std::sqrt(2.0 * kd * std::log(1.0 / delta_prime)) * eps +
                  kd * eps * std::expm1(eps);
  total.delta = kd * per_step.delta + delta_prime;
  return total;
}

Result<double> PerStepEpsilonForAdvancedComposition(double total_epsilon,
                                                    double delta_prime,
                                                    size_t k) {
  // The BST14 line-5 solve IS this inversion; reuse it.
  return SolveBst14Epsilon1(total_epsilon, delta_prime, k);
}

PrivacyParams ParallelComposition(const std::vector<PrivacyParams>& parts) {
  PrivacyParams total{0.0, 0.0};
  for (const PrivacyParams& p : parts) {
    total.epsilon = std::max(total.epsilon, p.epsilon);
    total.delta = std::max(total.delta, p.delta);
  }
  return total;
}

PrivacyAccountant::PrivacyAccountant(PrivacyParams total_budget)
    : budget_(total_budget) {}

Status PrivacyAccountant::Charge(const PrivacyParams& cost,
                                 const std::string& label) {
  BOLTON_RETURN_IF_ERROR(cost.Validate());
  PrivacyParams spent = Spent();
  // A tiny relative tolerance keeps N charges of budget/N from tripping on
  // floating-point accumulation.
  const double slack = 1e-12;
  if (spent.epsilon + cost.epsilon > budget_.epsilon * (1.0 + slack) ||
      spent.delta + cost.delta > budget_.delta + slack * (budget_.delta + 1.0)) {
    RecordChargeTelemetry(cost, label, spent, /*accepted=*/false);
    return Status::FailedPrecondition(StrFormat(
        "charge '%s' (eps=%g, delta=%g) exceeds remaining budget "
        "(eps=%g, delta=%g)",
        label.c_str(), cost.epsilon, cost.delta, Remaining().epsilon,
        Remaining().delta));
  }
  charges_.push_back(Charged{cost, label});
  RecordChargeTelemetry(cost, label, Spent(), /*accepted=*/true);
  return Status::OK();
}

PrivacyParams PrivacyAccountant::Spent() const {
  PrivacyParams total{0.0, 0.0};
  for (const Charged& c : charges_) {
    total.epsilon += c.cost.epsilon;
    total.delta += c.cost.delta;
  }
  return total;
}

PrivacyParams PrivacyAccountant::Remaining() const {
  PrivacyParams spent = Spent();
  return PrivacyParams{std::max(0.0, budget_.epsilon - spent.epsilon),
                       std::max(0.0, budget_.delta - spent.delta)};
}

std::string PrivacyAccountant::LedgerToString() const {
  std::string out = StrFormat("budget: %s\n", budget_.ToString().c_str());
  for (const Charged& c : charges_) {
    out += StrFormat("  %-24s %s\n", c.label.c_str(),
                     c.cost.ToString().c_str());
  }
  out += StrFormat("spent: %s, remaining: %s\n",
                   Spent().ToString().c_str(),
                   Remaining().ToString().c_str());
  return out;
}

}  // namespace bolton
