#include "core/solver.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/bst14.h"
#include "core/objective_perturbation.h"
#include "core/private_sgd.h"
#include "core/scs13.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "optim/parallel_executor.h"
#include "optim/schedule.h"
#include "util/strings.h"

namespace bolton {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One row per algorithm; AlgorithmName / ParseAlgorithm / the error
/// message all read this table, so adding an algorithm cannot leave one of
/// them behind.
struct AlgorithmRow {
  Algorithm algorithm;
  const char* name;
};

constexpr AlgorithmRow kAlgorithmTable[] = {
    {Algorithm::kNoiseless, "noiseless"}, {Algorithm::kBoltOn, "ours"},
    {Algorithm::kScs13, "scs13"},         {Algorithm::kBst14, "bst14"},
    {Algorithm::kObjective, "objective"},
};

std::string ValidAlgorithmNames() {
  std::string out;
  for (const AlgorithmRow& row : kAlgorithmTable) {
    if (!out.empty()) out += "|";
    out += row.name;
  }
  return out;
}

Status RejectShards(Algorithm algorithm, size_t shards) {
  if (shards == 1) return Status::OK();
  return Status::InvalidArgument(StrFormat(
      "algorithm '%s' perturbs inside the optimization loop and has no "
      "sharded-averaging privacy argument; shards must be 1 (got %zu)",
      AlgorithmName(algorithm), shards));
}

Result<SolverOutput> RunNoiseless(const Dataset& data,
                                  const LossFunction& loss,
                                  const SolverSpec& spec, Rng* rng) {
  std::unique_ptr<StepSizeSchedule> schedule;
  if (loss.IsStronglyConvex()) {
    // Table 4: noiseless strongly convex uses 1/(γt), no 1/β cap.
    BOLTON_ASSIGN_OR_RETURN(
        schedule, MakeInverseTimeStep(loss.strong_convexity(), kInf));
  } else {
    BOLTON_ASSIGN_OR_RETURN(
        schedule,
        MakeConstantStep(1.0 / std::sqrt(static_cast<double>(data.size()))));
  }
  PsgdOptions options;
  options.run() = spec.run();
  options.radius = loss.radius();
  BOLTON_ASSIGN_OR_RETURN(ShardedPsgdOutput run,
                          RunShardedPsgd(data, loss, *schedule, options, rng));
  SolverOutput out;
  out.model = std::move(run.model);
  out.stats = run.stats;
  out.shards = run.shards;
  return out;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  for (const AlgorithmRow& row : kAlgorithmTable) {
    if (row.algorithm == algorithm) return row.name;
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  for (const AlgorithmRow& row : kAlgorithmTable) {
    if (name == row.name) return row.algorithm;
  }
  // Historical aliases for the paper's own method.
  if (name == "bolton" || name == "bolt-on") return Algorithm::kBoltOn;
  return Status::NotFound("unknown algorithm '" + name + "' (" +
                          ValidAlgorithmNames() + ")");
}

Result<SolverOutput> RunPrivateSolver(Algorithm algorithm, const Dataset& data,
                                      const LossFunction& loss,
                                      const SolverSpec& spec, Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");

  // One top-level span + counter interval over the whole solve, so every
  // front end (CLI, benches, ml/TrainBinary) gets an end-to-end IPC /
  // cache-miss reading on the main thread without instrumenting itself.
  obs::ScopedSpan solver_span("solver.run");
  obs::CounterScope solver_counters(&solver_span);

  switch (algorithm) {
    case Algorithm::kNoiseless:
      return RunNoiseless(data, loss, spec, rng);

    case Algorithm::kBoltOn: {
      BoltOnOptions options;
      options.run() = spec.run();
      options.privacy = spec.privacy;
      options.constant_step = spec.constant_step;
      options.use_corrected_minibatch_sensitivity =
          spec.use_corrected_minibatch_sensitivity;
      BOLTON_ASSIGN_OR_RETURN(PrivateSgdOutput run,
                              PrivatePsgd(data, loss, options, rng));
      SolverOutput out;
      out.model = std::move(run.model);
      out.stats = run.stats;
      out.sensitivity = run.sensitivity;
      out.shards = run.shards;
      return out;
    }

    case Algorithm::kScs13: {
      BOLTON_RETURN_IF_ERROR(RejectShards(algorithm, spec.shards));
      Scs13Options options;
      options.privacy = spec.privacy;
      options.passes = spec.passes;
      options.batch_size = spec.batch_size;
      options.step_scale = spec.scs13_step_scale;
      BOLTON_ASSIGN_OR_RETURN(Scs13Output run,
                              RunScs13(data, loss, options, rng));
      SolverOutput out;
      out.model = std::move(run.model);
      out.stats = run.stats;
      return out;
    }

    case Algorithm::kBst14: {
      BOLTON_RETURN_IF_ERROR(RejectShards(algorithm, spec.shards));
      Bst14Options options;
      options.privacy = spec.privacy;
      options.passes = spec.passes;
      options.batch_size = spec.batch_size;
      if (!loss.IsStronglyConvex()) {
        options.radius = spec.bst14_convex_radius;
      }
      BOLTON_ASSIGN_OR_RETURN(Bst14Output run,
                              RunBst14(data, loss, options, rng));
      SolverOutput out;
      out.model = std::move(run.model);
      out.stats = run.stats;
      return out;
    }

    case Algorithm::kObjective: {
      BOLTON_RETURN_IF_ERROR(RejectShards(algorithm, spec.shards));
      if (loss.name().rfind("logistic", 0) != 0) {
        return Status::FailedPrecondition(
            "objective perturbation is implemented for logistic loss only");
      }
      if (!spec.privacy.IsPure()) {
        return Status::FailedPrecondition(
            "objective perturbation provides pure eps-DP only");
      }
      ObjectivePerturbationOptions options;
      options.epsilon = spec.privacy.epsilon;
      // Logistic regularization strength doubles as γ, so the loss already
      // carries the λ the mechanism needs.
      options.lambda = loss.strong_convexity();
      options.passes = spec.passes;
      options.batch_size = spec.batch_size;
      BOLTON_ASSIGN_OR_RETURN(ObjectivePerturbationOutput run,
                              RunObjectivePerturbation(data, options, rng));
      SolverOutput out;
      out.model = std::move(run.model);
      out.stats = run.stats;
      return out;
    }
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace bolton
