#ifndef BOLTON_CORE_SOLVER_H_
#define BOLTON_CORE_SOLVER_H_

#include <cstddef>
#include <string>

#include "core/privacy.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/sgd_spec.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// The four training algorithms the paper's figures compare, plus the
/// classic objective-perturbation alternative (§5's [13]) as an extra
/// baseline. kObjective supports pure ε-DP logistic regression only.
enum class Algorithm { kNoiseless, kBoltOn, kScs13, kBst14, kObjective };

/// Every Algorithm value, for exhaustive iteration (tests, CLIs).
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kNoiseless, Algorithm::kBoltOn, Algorithm::kScs13,
    Algorithm::kBst14, Algorithm::kObjective};

/// Canonical name of an algorithm; ParseAlgorithm round-trips every value.
const char* AlgorithmName(Algorithm algorithm);

/// Parses a canonical name (or the "bolton"/"bolt-on" aliases of "ours");
/// an unknown name returns NotFound listing every valid choice.
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// One private (or noiseless) training run's configuration: the shared
/// SgdRunSpec (passes, batch size, output mode, fresh permutation, shards)
/// with the training defaults k = 10, b = 50, plus the per-algorithm knobs.
/// This is the single surface RunPrivateSolver dispatches on; TrainerConfig
/// and the engine driver both convert into it rather than re-implementing
/// the dispatch.
struct SolverSpec : SgdRunSpec {
  SolverSpec() : SgdRunSpec(/*passes=*/10, /*batch_size=*/50) {}

  /// Ignored by kNoiseless. delta == 0 ⇒ pure ε-DP (not supported by
  /// BST14); delta > 0 ⇒ (ε, δ)-DP.
  PrivacyParams privacy;
  /// Bolt-on Algorithm 1's constant step η; 0 = the paper's 1/√m default.
  double constant_step = 0.0;
  /// Calibrate bolt-on noise to the corrected mini-batch bound instead of
  /// the paper's /b-scaled one (DESIGN.md §6).
  bool use_corrected_minibatch_sensitivity = false;
  /// Scale c of SCS13's η_t = c/√t schedule (Table 4 uses 1).
  double scs13_step_scale = 1.0;
  /// Hypothesis radius handed to BST14 in the convex case, where the loss
  /// itself is unconstrained but Algorithm 4 needs a finite R.
  double bst14_convex_radius = 10.0;
};

/// What a solver run releases. Only `model` is differentially private for
/// the private algorithms; the rest is diagnostics.
struct SolverOutput {
  Vector model;
  PsgdStats stats;
  /// Δ₂ the output perturbation was calibrated to (bolt-on only; 0 for the
  /// white-box and noiseless algorithms).
  double sensitivity = 0.0;
  /// Shards the run executed with (noiseless / bolt-on; 1 otherwise).
  size_t shards = 1;
};

/// The single dispatch point for every training algorithm, with the Table 4
/// step-size conventions applied per (algorithm, convexity):
///   noiseless: convex 1/√m, strongly convex 1/(γt) — sharded when
///              spec.shards > 1;
///   bolt-on:   Algorithms 1/2 via PrivatePsgd (sharding per Lemma 10);
///   SCS13:     1/√t per-update noise — rejects shards > 1;
///   BST14:     Algorithm 4/5 schedules — rejects shards > 1;
///   objective: logistic loss + pure ε-DP only — rejects shards > 1.
/// ml/TrainBinary and the bench/example surfaces are thin wrappers over
/// this entry point.
Result<SolverOutput> RunPrivateSolver(Algorithm algorithm, const Dataset& data,
                                      const LossFunction& loss,
                                      const SolverSpec& spec, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_CORE_SOLVER_H_
