#ifndef BOLTON_CORE_BST14_H_
#define BOLTON_CORE_BST14_H_

#include "core/privacy.h"
#include "data/dataset.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Options for the BST14 baseline with a constant number of epochs
/// (the paper's Algorithms 4 and 5).
struct Bst14Options {
  /// Total (ε, δ) budget. BST14 fundamentally requires δ > 0 (it depends on
  /// advanced composition of (ε, δ)-DP).
  PrivacyParams privacy;
  /// Number of passes k; the algorithm runs T = k·⌈m/b⌉ updates.
  size_t passes = 10;
  /// Mini-batch size b (straightforward extension mentioned in §4.1; the
  /// per-iteration localized sensitivity ι scales as 1/b²).
  size_t batch_size = 50;
  /// Hypothesis radius R for the projection Π_W and (Alg. 4) the step size.
  /// 0 selects the loss's own radius; the convex unconstrained experiments
  /// must supply one since Algorithm 4's η_t = 2R/(G√t) needs a finite R.
  double radius = 0.0;
};

/// Result of a BST14 run, including the solved noise calibration (useful
/// for tests and the EXPERIMENTS.md accounting).
struct Bst14Output {
  Vector model;
  PsgdStats stats;
  /// Per-iteration budget ε₁ solved from
  /// ε = Tε₁(e^{ε₁} − 1) + √(2T ln(1/δ₁))·ε₁ (line 5).
  double epsilon1 = 0.0;
  /// Amplified-by-subsampling per-iteration budget ε₂ = min(1, mε₁/2).
  double epsilon2 = 0.0;
  /// Per-coordinate noise variance σ² = 2 ln(1.25/δ₁)/ε₂² (line 7).
  double sigma_squared = 0.0;
};

/// Solves line 5 of Algorithms 4/5 for ε₁ by bisection:
/// find ε₁ > 0 with T·ε₁(e^{ε₁} − 1) + √(2T ln(1/δ₁))·ε₁ = ε.
/// The left side is strictly increasing in ε₁, so the root is unique.
Result<double> SolveBst14Epsilon1(double epsilon, double delta1, size_t T);

/// Convex BST14 with constant epochs (Algorithm 4): with-replacement SGD
/// where every update perturbs the gradient with N(0, σ²ι I_d) and steps
/// η_t = 2R/(G√t), G = √(dσ²ι + L²). Requires a convex (γ = 0) loss.
Result<Bst14Output> RunBst14Convex(const Dataset& data,
                                   const LossFunction& loss,
                                   const Bst14Options& options, Rng* rng);

/// Strongly convex BST14 with constant epochs (Algorithm 5): same noise,
/// steps η_t = 1/(γt). Requires γ > 0.
Result<Bst14Output> RunBst14StronglyConvex(const Dataset& data,
                                           const LossFunction& loss,
                                           const Bst14Options& options,
                                           Rng* rng);

/// Dispatches on loss.IsStronglyConvex().
Result<Bst14Output> RunBst14(const Dataset& data, const LossFunction& loss,
                             const Bst14Options& options, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_CORE_BST14_H_
