#ifndef BOLTON_CORE_PRIVATE_SGD_H_
#define BOLTON_CORE_PRIVATE_SGD_H_

#include "core/privacy.h"
#include "core/sensitivity.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "random/dp_noise.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Options shared by the bolt-on private PSGD algorithms. Embeds the
/// uniform SgdRunSpec (passes k, batch size b, output mode, fresh
/// permutation, shards) with the bolt-on defaults k = 10, b = 50; shards
/// > 1 runs the shard-parallel executor with noise calibrated to the max
/// per-shard sensitivity (Lemma 10, core/sensitivity.h).
struct BoltOnOptions : SgdRunSpec {
  BoltOnOptions() : SgdRunSpec(/*passes=*/10, /*batch_size=*/50) {}

  /// Privacy budget. delta == 0 selects the spherical-Laplace mechanism
  /// (pure ε-DP, Theorems 4/5); delta > 0 selects the Gaussian mechanism
  /// ((ε, δ)-DP, Theorems 6/7) and then requires epsilon < 1.
  PrivacyParams privacy;
  /// Constant step size η for Algorithm 1. 0 selects the paper's default
  /// η = 1/√m (Table 4). Ignored by Algorithm 2.
  double constant_step = 0.0;
  /// Algorithm 2 only. When false (default), calibrate noise to the
  /// paper's mini-batch sensitivity Δ₂ = 2L/(γmb) — faithful to the
  /// published evaluation (§4.1 divides by b). When true, use the
  /// corrected batch bound Δ₂ = 2L/(γm): our re-derivation and the
  /// empirical simulations in sensitivity_test.cc show the paper's /b
  /// improvement does not hold for the decreasing schedule when b > 1
  /// (see DESIGN.md §6). Deployments that need the worst-case guarantee
  /// at b > 1 should set this.
  bool use_corrected_minibatch_sensitivity = false;
};

/// Everything a private training run produces. `model` is the only
/// differentially private output; the rest is diagnostics for experiments
/// (they depend on the data and MUST NOT be released alongside the model in
/// a real deployment).
struct PrivateSgdOutput {
  /// w̃ = w + κ — the differentially private model.
  Vector model;
  /// The noiseless SGD output w (diagnostic).
  Vector noiseless_model;
  /// The L2-sensitivity Δ₂ used to calibrate κ.
  double sensitivity = 0.0;
  /// ‖κ‖ actually drawn (diagnostic).
  double noise_norm = 0.0;
  /// Engine counters from the underlying black-box run.
  PsgdStats stats;
  /// Shards the black box ran with (1 = serial).
  size_t shards = 1;
};

/// The Δ₂ the bolt-on algorithms calibrate to, shared by the Dataset path
/// (PrivatePsgd) and the engine path (RunBoltOnPrivateDriver) so the
/// convex/strongly-convex × serial/sharded × paper/corrected dispatch lives
/// in exactly one place. `eta` is Algorithm 1's constant step (ignored when
/// the loss is strongly convex). When the ledger is enabled, records one
/// "calibration" event ("bolton.sensitivity" / "bolton.sharded_sensitivity")
/// carrying the (ε, δ, Δ₂, shards) accounting of the run.
Result<double> BoltOnSensitivity(const LossFunction& loss, double eta,
                                 const SensitivitySetup& setup, size_t shards,
                                 bool use_corrected_minibatch,
                                 const PrivacyParams& privacy);

/// Algorithm 1 — Private Convex Permutation-based SGD.
///
/// Requires a convex, non-strongly-convex loss (γ = 0) and η ≤ 2/β. Runs
/// black-box PSGD with constant step η, computes Δ₂ = 2kLη/b (Corollary 1),
/// and publishes w + κ with κ from the mechanism selected by
/// `options.privacy`. Optimization is unconstrained unless the loss carries
/// a finite radius, in which case iterates are projected (rule (7), which
/// leaves the sensitivity argument unchanged).
Result<PrivateSgdOutput> PrivateConvexPsgd(const Dataset& data,
                                           const LossFunction& loss,
                                           const BoltOnOptions& options,
                                           Rng* rng);

/// Algorithm 2 — Private Strongly Convex Permutation-based SGD.
///
/// Requires γ > 0 and a finite hypothesis radius R (the paper sets
/// R = 1/λ). Runs black-box projected PSGD with η_t = min(1/β, 1/(γt)),
/// computes Δ₂ = 2L/(γmb) (Lemma 8 — independent of k), and publishes
/// w + κ.
Result<PrivateSgdOutput> PrivateStronglyConvexPsgd(const Dataset& data,
                                                   const LossFunction& loss,
                                                   const BoltOnOptions& options,
                                                   Rng* rng);

/// Dispatches on loss.IsStronglyConvex(): Algorithm 2 when γ > 0, else
/// Algorithm 1. The convenience entry point used by examples and benches.
Result<PrivateSgdOutput> PrivatePsgd(const Dataset& data,
                                     const LossFunction& loss,
                                     const BoltOnOptions& options, Rng* rng);

/// Generic bolt-on wrapper: perturbs an already-trained model with noise
/// calibrated to a caller-supplied sensitivity. This is the literal "10
/// lines in the Python front-end" integration of §4.2 — use it to privatize
/// the output of ANY training system (e.g., the engine/ UDA driver) once a
/// sensitivity bound for that run is known.
Result<PrivateSgdOutput> BoltOnPerturb(const Vector& model, double sensitivity,
                                       const PrivacyParams& privacy, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_CORE_PRIVATE_SGD_H_
