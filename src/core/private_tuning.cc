#include "core/private_tuning.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

namespace {

// Default error counter: binary sign errors of a linear model.
size_t CountBinarySignErrors(const Vector& model, const Dataset& validation) {
  size_t errors = 0;
  for (size_t i = 0; i < validation.size(); ++i) {
    const Example& e = validation[i];
    double score = Dot(model, e.x);
    int predicted = score >= 0.0 ? +1 : -1;
    if (predicted != e.label) ++errors;
  }
  return errors;
}

}  // namespace

// Stabilized by subtracting the max logit before exponentiation.
size_t SampleExponentialMechanism(const std::vector<size_t>& error_counts,
                                  double epsilon, Rng* rng) {
  BOLTON_CHECK(!error_counts.empty());
  std::vector<double> logits(error_counts.size());
  double max_logit = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < error_counts.size(); ++i) {
    logits[i] = -epsilon * static_cast<double>(error_counts[i]) / 2.0;
    max_logit = std::max(max_logit, logits[i]);
  }
  double total = 0.0;
  for (double& logit : logits) {
    logit = std::exp(logit - max_logit);
    total += logit;
  }
  double u = rng->UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    cumulative += logits[i];
    if (u < cumulative) return i;
  }
  return logits.size() - 1;
}

std::vector<TuningCandidate> MakeTuningGrid(
    const std::vector<size_t>& passes, const std::vector<size_t>& batch_sizes,
    const std::vector<double>& lambdas) {
  std::vector<TuningCandidate> grid;
  grid.reserve(passes.size() * batch_sizes.size() * lambdas.size());
  for (size_t k : passes) {
    for (size_t b : batch_sizes) {
      for (double lambda : lambdas) {
        grid.push_back(TuningCandidate{k, b, lambda});
      }
    }
  }
  return grid;
}

Result<TuningOutput> PrivatelyTunedSgd(const Dataset& data,
                                       const std::vector<TuningCandidate>& grid,
                                       const PrivacyParams& privacy,
                                       const TuningTrainFn& train, Rng* rng,
                                       const TuningErrorFn& errors) {
  BOLTON_RETURN_IF_ERROR(privacy.Validate());
  if (grid.empty()) return Status::InvalidArgument("empty tuning grid");
  if (!train) return Status::InvalidArgument("null train function");
  const size_t l = grid.size();
  if (data.size() < l + 1) {
    return Status::InvalidArgument(
        StrFormat("need at least %zu examples to tune %zu candidates",
                  l + 1, l));
  }

  // Line 2: split S into l+1 equal portions.
  std::vector<Dataset> portions = data.SplitEven(l + 1);
  const Dataset& holdout = portions.back();

  // Line 3: train w_i on S_i with θ_i.  Line 4: count errors on S_{l+1}.
  TuningErrorFn count = errors ? errors : CountBinarySignErrors;
  std::vector<Vector> models;
  std::vector<size_t> error_counts;
  models.reserve(l);
  error_counts.reserve(l);
  for (size_t i = 0; i < l; ++i) {
    Rng candidate_rng = rng->Split();
    BOLTON_ASSIGN_OR_RETURN(Vector w, train(portions[i], grid[i],
                                            &candidate_rng));
    error_counts.push_back(count(w, holdout));
    models.push_back(std::move(w));
  }

  // Line 5: exponential mechanism over the error counts.
  size_t chosen =
      SampleExponentialMechanism(error_counts, privacy.epsilon, rng);

  TuningOutput out;
  out.model = std::move(models[chosen]);
  out.selected_index = chosen;
  out.error_counts = std::move(error_counts);
  return out;
}

Result<TuningOutput> PublicGridSearch(const Dataset& train_data,
                                      const Dataset& validation,
                                      const std::vector<TuningCandidate>& grid,
                                      const TuningTrainFn& train, Rng* rng,
                                      const TuningErrorFn& errors) {
  if (grid.empty()) return Status::InvalidArgument("empty tuning grid");
  if (!train) return Status::InvalidArgument("null train function");
  if (validation.empty()) {
    return Status::InvalidArgument("empty validation set");
  }

  TuningErrorFn count = errors ? errors : CountBinarySignErrors;
  TuningOutput out;
  size_t best_errors = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < grid.size(); ++i) {
    Rng candidate_rng = rng->Split();
    BOLTON_ASSIGN_OR_RETURN(Vector w,
                            train(train_data, grid[i], &candidate_rng));
    size_t e = count(w, validation);
    out.error_counts.push_back(e);
    if (e < best_errors) {
      best_errors = e;
      out.selected_index = i;
      out.model = std::move(w);
    }
  }
  return out;
}

}  // namespace bolton
