#ifndef BOLTON_CORE_SENSITIVITY_H_
#define BOLTON_CORE_SENSITIVITY_H_

#include <cstddef>
#include <functional>

#include "data/dataset.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/schedule.h"
#include "util/result.h"

namespace bolton {

/// Inputs common to all of the paper's L2-sensitivity bounds for k-pass
/// mini-batch PSGD over m examples.
struct SensitivitySetup {
  /// Number of passes k.
  size_t passes = 1;
  /// Mini-batch size b. §3.2.3 shows mini-batching divides every bound by b.
  size_t batch_size = 1;
  /// Training-set size m.
  size_t num_examples = 1;
};

/// Corollary 1 (convex, constant step η ≤ 2/β):  Δ₂ = 2kLη / b.
/// Returns InvalidArgument if the loss is strongly convex (use the strongly
/// convex bounds — they are smaller) or η > 2/β (expansiveness fails).
Result<double> ConvexConstantStepSensitivity(const LossFunction& loss,
                                             double eta,
                                             const SensitivitySetup& setup);

/// Corollary 2 (convex, decreasing step η_t = 2/(β(t + m^c)), c ∈ [0, 1)):
/// the exact pre-simplification bound Δ₂ = (4L/β) Σ_{j=0..k−1} 1/(m^c+jm+1),
/// divided by b. (The paper's displayed closed form (4L/β)(1/m^c + ln k/m)
/// is this sum's upper bound; we return the tighter sum and expose the
/// closed form separately for comparison.)
Result<double> ConvexDecreasingStepSensitivity(const LossFunction& loss,
                                               double c,
                                               const SensitivitySetup& setup);

/// Corollary 2's displayed closed form (4L/β)(1/m^c + ln k / m) / b.
Result<double> ConvexDecreasingStepSensitivityClosedForm(
    const LossFunction& loss, double c, const SensitivitySetup& setup);

/// Corollary 3 (convex, square-root step η_t = 2/(β(√t + m^c))):
/// Δ₂ = (4L/β) Σ_{j=0..k−1} 1/(√(jm+1) + m^c), divided by b.
Result<double> ConvexSqrtStepSensitivity(const LossFunction& loss, double c,
                                         const SensitivitySetup& setup);

/// Lemma 7 (γ-strongly convex, constant step η ≤ 1/β):
/// Δ₂ = 2ηL / (1 − (1−ηγ)^m), divided by b.
Result<double> StronglyConvexConstantStepSensitivity(
    const LossFunction& loss, double eta, const SensitivitySetup& setup);

/// Lemma 8 (γ-strongly convex, step η_t = min(1/β, 1/(γt))):
/// Δ₂ = 2L / (γm), divided by b. This is Algorithm 2's line 3; note it does
/// not depend on the number of passes k.
Result<double> StronglyConvexDecreasingStepSensitivity(
    const LossFunction& loss, const SensitivitySetup& setup);

// ---------------------------------------------------------------------------
// Corrected mini-batch bounds.
//
// The paper's §3.2.3 claims mini-batching divides EVERY sensitivity bound
// by b. Re-deriving the growth recursion for batch updates shows this is
// only sound for the convex constant-step case: with a decreasing schedule
// indexed by (batch) update count, a run has k·m/b updates instead of k·m,
// so the schedule decays b× slower and the 1/b gain in the additive term
// cancels exactly. Empirical two-run simulations (sensitivity_test.cc,
// PaperBatchBoundCanBeViolated) confirm the 1/b-scaled Lemma 8 bound is
// violated for b > 1. The functions below are the corrected bounds; the
// paper-faithful ones above are kept as the default the experiments use
// (matching the published evaluation), with the caveat documented in
// DESIGN.md §6.
// ---------------------------------------------------------------------------

/// Corrected Lemma 8 for mini-batches: Δ₂ = 2L/(γm), independent of BOTH
/// the pass count k and the batch size b. Coincides with the paper's bound
/// at b = 1.
Result<double> StronglyConvexDecreasingStepSensitivityCorrected(
    const LossFunction& loss, const SensitivitySetup& setup);

/// Corrected Lemma 7 for mini-batches: Δ₂ = (2ηL/b)/(1 − (1−ηγ)^⌊m/b⌋)
/// — the contraction runs over the ⌊m/b⌋ updates of a pass, not m.
Result<double> StronglyConvexConstantStepSensitivityCorrected(
    const LossFunction& loss, double eta, const SensitivitySetup& setup);

/// Corrected Corollary 2 for mini-batches:
/// Δ₂ = (4L/(bβ)) Σ_{j=0..k−1} 1/(m^c + j·(m/b) + 1) — the differing batch
/// in pass j is update j·(m/b)+1 at the earliest.
Result<double> ConvexDecreasingStepSensitivityCorrected(
    const LossFunction& loss, double c, const SensitivitySetup& setup);

/// Corrected Corollary 3 for mini-batches:
/// Δ₂ = (4L/(bβ)) Σ_{j=0..k−1} 1/(√(j·(m/b) + 1) + m^c).
Result<double> ConvexSqrtStepSensitivityCorrected(
    const LossFunction& loss, double c, const SensitivitySetup& setup);

// ---------------------------------------------------------------------------
// Sharded (shard-parallel) bounds — §3.2.3 Lemma 10 applied to the parallel
// executor (optim/parallel_executor.h).
//
// RunShardedPsgd partitions the permutation into s disjoint shards, runs an
// independent black-box PSGD per shard, and releases the uniform average of
// the s shard models. A neighboring dataset differs in ONE example, which
// lands in exactly one shard; the other s−1 shard models are untouched
// (shared-nothing data, independent RNG streams). So the serial bounds apply
// PER SHARD with m replaced by the shard size m_j, and by Lemma 10 averaging
// never increases sensitivity: the released average's sensitivity is bounded
// by max_j Δ₂(m_j) — in fact by (1/s)·max_j Δ₂(m_j), since only one summand
// of the average moves; we calibrate to the conservative max (the issue of
// record for the /s refinement is DESIGN.md §8).
//
// Per-shard bounds are non-increasing in m, so the smallest shard ⌊m/s⌋ of
// the balanced partition dominates the max.
// ---------------------------------------------------------------------------

/// Smallest shard of the executor's balanced contiguous partition: ⌊m/s⌋.
/// Errors when shards < 1 or shards > num_examples.
Result<size_t> MinShardSize(size_t num_examples, size_t shards);

/// Generic Lemma 10 combinator: evaluates `serial_bound` on the setup with
/// num_examples replaced by the smallest shard size and returns it — the
/// max per-shard sensitivity the sharded average is calibrated to. At
/// shards = 1 this is exactly the serial bound.
Result<double> ShardedMaxSensitivity(
    const SensitivitySetup& setup, size_t shards,
    const std::function<Result<double>(const SensitivitySetup&)>&
        serial_bound);

/// Corollary 1 per shard (convex, constant step): Δ₂ = 2kLη/b is
/// m-oblivious, so the sharded bound equals the serial one; kept as an
/// explicit entry point so call sites read uniformly.
Result<double> ShardedConvexConstantStepSensitivity(
    const LossFunction& loss, double eta, const SensitivitySetup& setup,
    size_t shards);

/// Lemma 8 per shard (strongly convex, decreasing step):
/// Δ₂ = 2L/(γ·⌊m/s⌋·b) (or the corrected /(γ·⌊m/s⌋) bound) — the paper's
/// bound with m replaced by the smallest shard. Noise grows ~s× over the
/// serial run: the price of shard parallelism under Lemma 10.
Result<double> ShardedStronglyConvexDecreasingStepSensitivity(
    const LossFunction& loss, const SensitivitySetup& setup, size_t shards,
    bool use_corrected_minibatch);

/// Empirically measures δ_T = ‖A(r;S) − A(r;S′)‖ by running PSGD twice with
/// identical randomness on `data` and on a neighboring dataset obtained by
/// replacing example `differing_index` with `replacement`. Used by tests to
/// verify every analytical bound above dominates reality, and by the
/// sensitivity ablation bench.
Result<double> SimulateDeltaT(const Dataset& data, size_t differing_index,
                              const Example& replacement,
                              const LossFunction& loss,
                              const StepSizeSchedule& schedule,
                              const PsgdOptions& options, uint64_t seed);

}  // namespace bolton

#endif  // BOLTON_CORE_SENSITIVITY_H_
