#ifndef BOLTON_CORE_SCS13_H_
#define BOLTON_CORE_SCS13_H_

#include "core/privacy.h"
#include "data/dataset.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Options for the SCS13 baseline (Song, Chaudhuri & Sarwate 2013).
struct Scs13Options {
  /// Total privacy budget for the whole run.
  PrivacyParams privacy;
  /// Number of passes k. SCS13 originally supports one pass (where each
  /// mini-batch touches disjoint data, so the whole pass is ε-DP by
  /// parallel composition); the paper's multi-pass extension splits the
  /// budget evenly across passes by basic composition, which is what this
  /// implementation does (per-pass budget ε/k, δ/k).
  size_t passes = 10;
  /// Mini-batch size b; the per-step gradient sensitivity is 2L/b.
  size_t batch_size = 50;
  /// Scale c of the η_t = c/√t schedule (Table 4 uses c = 1).
  double step_scale = 1.0;
};

/// Result of an SCS13 run.
struct Scs13Output {
  Vector model;
  PsgdStats stats;
  /// Per-update noise scale actually used: the Laplace Δ₂/ε_step ratio, or
  /// the Gaussian σ.
  double per_step_noise_scale = 0.0;
};

/// SCS13: white-box differentially private PSGD that perturbs EVERY
/// mini-batch gradient update
///
///   w_t = Π_R( w_{t−1} − η_t ( (1/b) Σ_{i∈B_t} ∇ℓ_i(w_{t−1}) + z_t ) ),
///
/// with z_t calibrated to the mini-batch gradient's sensitivity 2L/b and the
/// per-pass budget. η_t = step_scale/√t per Table 4. Projection is applied
/// when the loss carries a finite radius (strongly convex experiments use
/// R = 1/λ). δ = 0 draws spherical-Laplace noise; δ > 0 draws Gaussian
/// noise (the (ε, δ) variant).
Result<Scs13Output> RunScs13(const Dataset& data, const LossFunction& loss,
                             const Scs13Options& options, Rng* rng);

}  // namespace bolton

#endif  // BOLTON_CORE_SCS13_H_
