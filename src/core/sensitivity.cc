#include "core/sensitivity.h"

#include <cmath>

#include "util/strings.h"

namespace bolton {

namespace {

Status ValidateSetup(const SensitivitySetup& setup) {
  if (setup.passes < 1) return Status::InvalidArgument("passes must be >= 1");
  if (setup.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (setup.num_examples < 1) {
    return Status::InvalidArgument("num_examples must be >= 1");
  }
  return Status::OK();
}

Status RequireConvexOnly(const LossFunction& loss) {
  if (loss.IsStronglyConvex()) {
    return Status::FailedPrecondition(
        "loss '" + loss.name() +
        "' is strongly convex; use the strongly convex sensitivity bounds "
        "(they are tighter)");
  }
  return Status::OK();
}

Status RequireStronglyConvex(const LossFunction& loss) {
  if (!loss.IsStronglyConvex()) {
    return Status::FailedPrecondition(
        "loss '" + loss.name() + "' is not strongly convex (gamma == 0)");
  }
  return Status::OK();
}

}  // namespace

Result<double> ConvexConstantStepSensitivity(const LossFunction& loss,
                                             double eta,
                                             const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireConvexOnly(loss));
  if (eta <= 0.0) return Status::InvalidArgument("eta must be > 0");
  if (eta > 2.0 / loss.smoothness()) {
    return Status::InvalidArgument(StrFormat(
        "eta=%g exceeds 2/beta=%g; 1-expansiveness (Lemma 1.1) fails and "
        "Corollary 1 does not apply",
        eta, 2.0 / loss.smoothness()));
  }
  double delta2 = 2.0 * static_cast<double>(setup.passes) * loss.lipschitz() *
                  eta;
  return delta2 / static_cast<double>(setup.batch_size);
}

Result<double> ConvexDecreasingStepSensitivity(const LossFunction& loss,
                                               double c,
                                               const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireConvexOnly(loss));
  if (c < 0.0 || c >= 1.0) {
    return Status::InvalidArgument("c must be in [0, 1)");
  }
  const double L = loss.lipschitz();
  const double beta = loss.smoothness();
  const double m = static_cast<double>(setup.num_examples);
  const double mc = std::pow(m, c);
  double sum = 0.0;
  for (size_t j = 0; j < setup.passes; ++j) {
    sum += 1.0 / (mc + static_cast<double>(j) * m + 1.0);
  }
  return (4.0 * L / beta) * sum / static_cast<double>(setup.batch_size);
}

Result<double> ConvexDecreasingStepSensitivityClosedForm(
    const LossFunction& loss, double c, const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireConvexOnly(loss));
  if (c < 0.0 || c >= 1.0) {
    return Status::InvalidArgument("c must be in [0, 1)");
  }
  const double L = loss.lipschitz();
  const double beta = loss.smoothness();
  const double m = static_cast<double>(setup.num_examples);
  const double k = static_cast<double>(setup.passes);
  double bound = (4.0 * L / beta) * (1.0 / std::pow(m, c) + std::log(k) / m);
  return bound / static_cast<double>(setup.batch_size);
}

Result<double> ConvexSqrtStepSensitivity(const LossFunction& loss, double c,
                                         const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireConvexOnly(loss));
  if (c < 0.0 || c >= 1.0) {
    return Status::InvalidArgument("c must be in [0, 1)");
  }
  const double L = loss.lipschitz();
  const double beta = loss.smoothness();
  const double m = static_cast<double>(setup.num_examples);
  const double mc = std::pow(m, c);
  double sum = 0.0;
  for (size_t j = 0; j < setup.passes; ++j) {
    sum += 1.0 / (std::sqrt(static_cast<double>(j) * m + 1.0) + mc);
  }
  return (4.0 * L / beta) * sum / static_cast<double>(setup.batch_size);
}

Result<double> StronglyConvexConstantStepSensitivity(
    const LossFunction& loss, double eta, const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireStronglyConvex(loss));
  if (eta <= 0.0) return Status::InvalidArgument("eta must be > 0");
  if (eta > 1.0 / loss.smoothness()) {
    return Status::InvalidArgument(StrFormat(
        "eta=%g exceeds 1/beta=%g; (1-eta*gamma)-expansiveness (Lemma 2) "
        "fails and Lemma 7 does not apply",
        eta, 1.0 / loss.smoothness()));
  }
  const double L = loss.lipschitz();
  const double gamma = loss.strong_convexity();
  const double m = static_cast<double>(setup.num_examples);
  const double contraction = 1.0 - eta * gamma;
  // 1 − (1−ηγ)^m, computed via expm1 for small ηγ·m where the naive form
  // cancels catastrophically.
  const double denom = -std::expm1(m * std::log1p(-eta * gamma));
  if (denom <= 0.0 || contraction >= 1.0) {
    return Status::InvalidArgument("eta * gamma must be in (0, 1)");
  }
  return (2.0 * eta * L / denom) / static_cast<double>(setup.batch_size);
}

Result<double> StronglyConvexDecreasingStepSensitivity(
    const LossFunction& loss, const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireStronglyConvex(loss));
  const double L = loss.lipschitz();
  const double gamma = loss.strong_convexity();
  const double m = static_cast<double>(setup.num_examples);
  return (2.0 * L / (gamma * m)) / static_cast<double>(setup.batch_size);
}

Result<double> StronglyConvexDecreasingStepSensitivityCorrected(
    const LossFunction& loss, const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireStronglyConvex(loss));
  const double L = loss.lipschitz();
  const double gamma = loss.strong_convexity();
  const double m = static_cast<double>(setup.num_examples);
  // Per-pass telescoping with U = km/b updates: the differing batch in pass
  // j contributes (2Lη_{u*}/b)·Π(1−η_u γ) = 2L/(γUb) = 2L/(γkm); the b and
  // k factors cancel when summed over the k passes.
  return 2.0 * L / (gamma * m);
}

Result<double> StronglyConvexConstantStepSensitivityCorrected(
    const LossFunction& loss, double eta, const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireStronglyConvex(loss));
  if (eta <= 0.0) return Status::InvalidArgument("eta must be > 0");
  if (eta > 1.0 / loss.smoothness()) {
    return Status::InvalidArgument(
        "eta exceeds 1/beta; Lemma 2's contraction does not apply");
  }
  const double L = loss.lipschitz();
  const double gamma = loss.strong_convexity();
  const double updates_per_pass = std::floor(
      static_cast<double>(setup.num_examples) /
      static_cast<double>(setup.batch_size));
  const double denom =
      -std::expm1(updates_per_pass * std::log1p(-eta * gamma));
  if (denom <= 0.0) {
    return Status::InvalidArgument("eta * gamma must be in (0, 1)");
  }
  return (2.0 * eta * L / static_cast<double>(setup.batch_size)) / denom;
}

Result<double> ConvexDecreasingStepSensitivityCorrected(
    const LossFunction& loss, double c, const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireConvexOnly(loss));
  if (c < 0.0 || c >= 1.0) {
    return Status::InvalidArgument("c must be in [0, 1)");
  }
  const double L = loss.lipschitz();
  const double beta = loss.smoothness();
  const double m = static_cast<double>(setup.num_examples);
  const double b = static_cast<double>(setup.batch_size);
  const double mc = std::pow(m, c);
  double sum = 0.0;
  for (size_t j = 0; j < setup.passes; ++j) {
    sum += 1.0 / (mc + static_cast<double>(j) * (m / b) + 1.0);
  }
  return (4.0 * L / (b * beta)) * sum;
}

Result<double> ConvexSqrtStepSensitivityCorrected(
    const LossFunction& loss, double c, const SensitivitySetup& setup) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  BOLTON_RETURN_IF_ERROR(RequireConvexOnly(loss));
  if (c < 0.0 || c >= 1.0) {
    return Status::InvalidArgument("c must be in [0, 1)");
  }
  const double L = loss.lipschitz();
  const double beta = loss.smoothness();
  const double m = static_cast<double>(setup.num_examples);
  const double b = static_cast<double>(setup.batch_size);
  const double mc = std::pow(m, c);
  double sum = 0.0;
  for (size_t j = 0; j < setup.passes; ++j) {
    sum += 1.0 /
           (std::sqrt(static_cast<double>(j) * (m / b) + 1.0) + mc);
  }
  return (4.0 * L / (b * beta)) * sum;
}

Result<size_t> MinShardSize(size_t num_examples, size_t shards) {
  if (shards < 1) return Status::InvalidArgument("shards must be >= 1");
  if (shards > num_examples) {
    return Status::InvalidArgument(
        StrFormat("shards %zu exceeds num_examples %zu", shards,
                  num_examples));
  }
  return num_examples / shards;
}

Result<double> ShardedMaxSensitivity(
    const SensitivitySetup& setup, size_t shards,
    const std::function<Result<double>(const SensitivitySetup&)>&
        serial_bound) {
  BOLTON_RETURN_IF_ERROR(ValidateSetup(setup));
  if (!serial_bound) return Status::InvalidArgument("null serial bound");
  BOLTON_ASSIGN_OR_RETURN(size_t min_shard,
                          MinShardSize(setup.num_examples, shards));
  SensitivitySetup shard_setup = setup;
  shard_setup.num_examples = min_shard;
  return serial_bound(shard_setup);
}

Result<double> ShardedConvexConstantStepSensitivity(
    const LossFunction& loss, double eta, const SensitivitySetup& setup,
    size_t shards) {
  return ShardedMaxSensitivity(
      setup, shards, [&](const SensitivitySetup& shard_setup) {
        return ConvexConstantStepSensitivity(loss, eta, shard_setup);
      });
}

Result<double> ShardedStronglyConvexDecreasingStepSensitivity(
    const LossFunction& loss, const SensitivitySetup& setup, size_t shards,
    bool use_corrected_minibatch) {
  return ShardedMaxSensitivity(
      setup, shards, [&](const SensitivitySetup& shard_setup) {
        return use_corrected_minibatch
                   ? StronglyConvexDecreasingStepSensitivityCorrected(
                         loss, shard_setup)
                   : StronglyConvexDecreasingStepSensitivity(loss,
                                                             shard_setup);
      });
}

Result<double> SimulateDeltaT(const Dataset& data, size_t differing_index,
                              const Example& replacement,
                              const LossFunction& loss,
                              const StepSizeSchedule& schedule,
                              const PsgdOptions& options, uint64_t seed) {
  if (differing_index >= data.size()) {
    return Status::OutOfRange("differing_index exceeds dataset size");
  }
  if (replacement.x.dim() != data.dim()) {
    return Status::InvalidArgument("replacement dimension mismatch");
  }
  Dataset neighbor = data;
  neighbor.Replace(differing_index, replacement);

  // Identical seeds make both runs draw identical permutations, so the only
  // divergence is the differing data point — exactly the sup_r coupling of
  // Lemma 5's randomness-one-at-a-time argument.
  Rng rng_a(seed);
  Rng rng_b(seed);
  BOLTON_ASSIGN_OR_RETURN(
      PsgdOutput run_a, RunPsgd(data, loss, schedule, options, &rng_a));
  BOLTON_ASSIGN_OR_RETURN(
      PsgdOutput run_b, RunPsgd(neighbor, loss, schedule, options, &rng_b));
  return Distance(run_a.model, run_b.model);
}

}  // namespace bolton
