#include "core/bst14.h"

#include <cmath>
#include <limits>

#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/schedule.h"
#include "random/distributions.h"
#include "util/strings.h"

namespace bolton {

namespace {

// Number of model updates the run will perform.
size_t NumUpdates(size_t m, size_t passes, size_t batch) {
  return passes * ((m + batch - 1) / batch);
}

// Left side of the line-5 equation.
double CompositionCost(double eps1, double sqrt_term, double T) {
  return T * eps1 * std::expm1(eps1) + sqrt_term * eps1;
}

/// Per-update Gaussian noise with fixed per-coordinate stddev. Unlike the
/// output-perturbation mechanisms this bypasses random/dp_noise.h (it is raw
/// iid Gaussian noise calibrated by advanced composition), so it carries its
/// own ledger instrumentation.
class Bst14Noise final : public GradientNoiseSource {
 public:
  explicit Bst14Noise(double sigma) : sigma_(sigma) {}

  Result<Vector> Sample(size_t step, size_t dim, Rng* rng) override {
    static obs::Counter* draws =
        obs::MetricsRegistry::Default().GetCounter("bst14.noise_draws");
    draws->Increment();
    obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
    if (!ledger.enabled()) return SampleGaussianVector(dim, sigma_, rng);
    const uint64_t fingerprint = rng->StateFingerprint();
    Vector noise = SampleGaussianVector(dim, sigma_, rng);
    obs::LedgerEvent event;
    event.kind = "noise_draw";
    event.mechanism = "gaussian_per_step";
    event.label = "bst14.per_step";
    event.noise_scale = sigma_;
    event.noise_norm = noise.Norm();
    event.dim = dim;
    event.step = step;
    event.rng_fingerprint = fingerprint;
    ledger.Record(std::move(event));
    return noise;
  }

 private:
  double sigma_;
};

struct Calibration {
  double epsilon1;
  double epsilon2;
  double sigma_squared;  // before the 1/b² localization factor
  double delta1;
};

Result<Calibration> Calibrate(const PrivacyParams& privacy, size_t m,
                              size_t T, size_t batch_size) {
  if (privacy.delta <= 0.0) {
    return Status::FailedPrecondition(
        "BST14 requires delta > 0 (it relies on advanced composition of "
        "(eps,delta)-DP; see the paper's Remark in §3.2.4)");
  }
  Calibration cal;
  cal.delta1 = privacy.delta / static_cast<double>(T);  // line 4
  BOLTON_ASSIGN_OR_RETURN(cal.epsilon1,
                          SolveBst14Epsilon1(privacy.epsilon, cal.delta1, T));
  // Line 6 generalized to mini-batches: amplification-by-subsampling at the
  // batch's actual sampling rate b/m (the paper's ε₂ = min(1, mε₁/2) is the
  // b = 1 case).
  cal.epsilon2 = std::min(
      1.0, static_cast<double>(m) * cal.epsilon1 /
               (2.0 * static_cast<double>(batch_size)));
  cal.sigma_squared =
      2.0 * std::log(1.25 / cal.delta1) / (cal.epsilon2 * cal.epsilon2);
  if (obs::PrivacyLedger::Default().enabled()) {
    // Audit trail for the line 4-7 solve: ε₁ in `epsilon`, δ₁ in `delta`,
    // pre-localization σ in `noise_scale`.
    obs::LedgerEvent event;
    event.kind = "calibration";
    event.mechanism = "gaussian_per_step";
    event.label = "bst14.calibration";
    event.epsilon = cal.epsilon1;
    event.delta = cal.delta1;
    event.noise_scale = std::sqrt(cal.sigma_squared);
    event.step = T;
    obs::PrivacyLedger::Default().Record(std::move(event));
  }
  return cal;
}

Status ValidateCommon(const Dataset& data, const Bst14Options& options) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options.passes < 1) return Status::InvalidArgument("passes must be >= 1");
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  return options.privacy.Validate();
}

double EffectiveRadius(const LossFunction& loss, const Bst14Options& options) {
  return options.radius > 0.0 ? options.radius : loss.radius();
}

}  // namespace

Result<double> SolveBst14Epsilon1(double epsilon, double delta1, size_t T) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be > 0");
  if (delta1 <= 0.0 || delta1 >= 1.0) {
    return Status::InvalidArgument("delta1 must be in (0, 1)");
  }
  if (T < 1) return Status::InvalidArgument("T must be >= 1");
  const double Td = static_cast<double>(T);
  const double sqrt_term = std::sqrt(2.0 * Td * std::log(1.0 / delta1));

  // Bracket the root: the cost is 0 at 0 and strictly increasing.
  double hi = 1.0;
  while (CompositionCost(hi, sqrt_term, Td) < epsilon) {
    hi *= 2.0;
    if (hi > 1e6) return Status::Internal("BST14 epsilon1 solve diverged");
  }
  double lo = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (CompositionCost(mid, sqrt_term, Td) < epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Result<Bst14Output> RunBst14Convex(const Dataset& data,
                                   const LossFunction& loss,
                                   const Bst14Options& options, Rng* rng) {
  BOLTON_RETURN_IF_ERROR(ValidateCommon(data, options));
  if (loss.IsStronglyConvex()) {
    return Status::FailedPrecondition(
        "Algorithm 4 requires a merely convex loss");
  }
  const double R = EffectiveRadius(loss, options);
  if (!std::isfinite(R)) {
    return Status::FailedPrecondition(
        "Algorithm 4's step size eta_t = 2R/(G sqrt(t)) needs a finite "
        "hypothesis radius; set Bst14Options::radius");
  }

  obs::ScopedSpan run_span("bst14.run");
  const size_t m = data.size();
  const size_t T = NumUpdates(m, options.passes, options.batch_size);
  BOLTON_ASSIGN_OR_RETURN(Calibration cal, Calibrate(options.privacy, m, T, options.batch_size));

  // ι localizes the per-iteration sensitivity; 1 for a single logistic
  // example (paper's note on line 11), 1/b² for an averaged size-b batch.
  const double b = static_cast<double>(options.batch_size);
  const double iota = 1.0 / (b * b);
  const double sigma = std::sqrt(cal.sigma_squared * iota);

  // Line 12: G = sqrt(d σ²ι + L²) bounds E‖noisy gradient‖.
  const double L = loss.lipschitz();
  const double G = std::sqrt(static_cast<double>(data.dim()) * sigma * sigma +
                             L * L);
  // η_t = 2R/(G√t) is an inverse-sqrt schedule with scale 2R/G.
  BOLTON_ASSIGN_OR_RETURN(auto schedule, MakeInverseSqrtStep(2.0 * R / G));

  Bst14Noise noise(sigma);
  PsgdOptions psgd;
  psgd.passes = options.passes;
  psgd.batch_size = options.batch_size;
  psgd.radius = R;
  psgd.output = OutputMode::kLastIterate;
  psgd.sampling = SamplingMode::kWithReplacement;  // line 10: i_t ~ [m]

  BOLTON_ASSIGN_OR_RETURN(PsgdOutput run,
                          RunPsgd(data, loss, *schedule, psgd, rng, &noise));

  Bst14Output out;
  out.model = std::move(run.model);
  out.stats = run.stats;
  out.epsilon1 = cal.epsilon1;
  out.epsilon2 = cal.epsilon2;
  out.sigma_squared = sigma * sigma;
  return out;
}

Result<Bst14Output> RunBst14StronglyConvex(const Dataset& data,
                                           const LossFunction& loss,
                                           const Bst14Options& options,
                                           Rng* rng) {
  BOLTON_RETURN_IF_ERROR(ValidateCommon(data, options));
  if (!loss.IsStronglyConvex()) {
    return Status::FailedPrecondition(
        "Algorithm 5 requires a strongly convex loss");
  }
  const double R = EffectiveRadius(loss, options);

  obs::ScopedSpan run_span("bst14.run");
  const size_t m = data.size();
  const size_t T = NumUpdates(m, options.passes, options.batch_size);
  BOLTON_ASSIGN_OR_RETURN(Calibration cal, Calibrate(options.privacy, m, T, options.batch_size));

  const double b = static_cast<double>(options.batch_size);
  const double iota = 1.0 / (b * b);
  const double sigma = std::sqrt(cal.sigma_squared * iota);

  // Line 12: η_t = 1/(γt).
  BOLTON_ASSIGN_OR_RETURN(
      auto schedule,
      MakeInverseTimeStep(loss.strong_convexity(),
                          std::numeric_limits<double>::infinity()));

  Bst14Noise noise(sigma);
  PsgdOptions psgd;
  psgd.passes = options.passes;
  psgd.batch_size = options.batch_size;
  psgd.radius = R;
  psgd.output = OutputMode::kLastIterate;
  psgd.sampling = SamplingMode::kWithReplacement;

  BOLTON_ASSIGN_OR_RETURN(PsgdOutput run,
                          RunPsgd(data, loss, *schedule, psgd, rng, &noise));

  Bst14Output out;
  out.model = std::move(run.model);
  out.stats = run.stats;
  out.epsilon1 = cal.epsilon1;
  out.epsilon2 = cal.epsilon2;
  out.sigma_squared = sigma * sigma;
  return out;
}

Result<Bst14Output> RunBst14(const Dataset& data, const LossFunction& loss,
                             const Bst14Options& options, Rng* rng) {
  return loss.IsStronglyConvex()
             ? RunBst14StronglyConvex(data, loss, options, rng)
             : RunBst14Convex(data, loss, options, rng);
}

}  // namespace bolton
