#ifndef BOLTON_CORE_MULTICLASS_H_
#define BOLTON_CORE_MULTICLASS_H_

#include <functional>
#include <vector>

#include "core/privacy.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// A one-vs-all multiclass linear model: one weight vector per class;
/// prediction is the argmax score (paper §4.3, the MNIST construction).
struct MulticlassModel {
  std::vector<Vector> weights;

  int num_classes() const { return static_cast<int>(weights.size()); }

  /// argmax_c ⟨w_c, x⟩. Requires at least one class and matching dims.
  int Predict(const Vector& x) const;
};

/// Trains one ±1 binary sub-model under the given (sub-)budget. Plug in the
/// bolt-on, SCS13, or BST14 trainer; for a noiseless baseline ignore the
/// budget.
using BinaryTrainFn = std::function<Result<Vector>(
    const Dataset& binary_view, const PrivacyParams& budget, Rng* rng)>;

/// Trains a K-class one-vs-all model, dividing the total (ε, δ) budget
/// evenly across the K binary sub-models by basic composition — exactly the
/// paper's MNIST strategy ("we used the simplest composition theorem, and
/// divide the privacy budget evenly", §4.3).
///
/// `threads` > 1 trains sub-models concurrently (they are independent —
/// disjoint budgets, per-class RNG streams split up front), producing
/// BIT-IDENTICAL models to the serial run. `train` must then be
/// thread-safe for concurrent calls on distinct data (every trainer in
/// this library is: they share no mutable state).
Result<MulticlassModel> TrainOneVsAll(const Dataset& data,
                                      const PrivacyParams& total_budget,
                                      const BinaryTrainFn& train, Rng* rng,
                                      size_t threads = 1);

}  // namespace bolton

#endif  // BOLTON_CORE_MULTICLASS_H_
