#include "core/privacy.h"

#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

Status PrivacyParams::Validate() const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("epsilon must be > 0; got %g", epsilon));
  }
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("delta must be in [0, 1); got %g", delta));
  }
  return Status::OK();
}

PrivacyParams PrivacyParams::SplitEvenly(int parts) const {
  BOLTON_CHECK(parts >= 1);
  return PrivacyParams{epsilon / parts, delta / parts};
}

std::string PrivacyParams::ToString() const {
  if (IsPure()) return StrFormat("eps=%g", epsilon);
  return StrFormat("(eps=%g, delta=%g)", epsilon, delta);
}

}  // namespace bolton
