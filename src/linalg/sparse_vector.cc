#include "linalg/sparse_vector.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

Result<SparseVector> SparseVector::FromEntries(size_t dim,
                                               std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  SparseVector out(dim);
  out.entries_.reserve(entries.size());
  size_t previous = 0;
  bool first = true;
  for (const Entry& e : entries) {
    if (e.first >= dim) {
      return Status::OutOfRange(
          StrFormat("sparse index %zu >= dim %zu", e.first, dim));
    }
    if (!first && e.first == previous) {
      return Status::InvalidArgument(
          StrFormat("duplicate sparse index %zu", e.first));
    }
    previous = e.first;
    first = false;
    if (e.second != 0.0) out.entries_.push_back(e);
  }
  return out;
}

SparseVector SparseVector::FromDense(const Vector& dense, double threshold) {
  SparseVector out(dense.dim());
  for (size_t i = 0; i < dense.dim(); ++i) {
    if (std::abs(dense[i]) > threshold) out.entries_.emplace_back(i, dense[i]);
  }
  return out;
}

Vector SparseVector::ToDense() const {
  Vector out(dim_);
  for (const Entry& e : entries_) out[e.first] = e.second;
  return out;
}

double SparseVector::Norm() const {
  double acc = 0.0;
  for (const Entry& e : entries_) acc += e.second * e.second;
  return std::sqrt(acc);
}

void SparseVector::Scale(double factor) {
  for (Entry& e : entries_) e.second *= factor;
}

void SparseVector::AxpyInto(double scale, Vector* dense) const {
  BOLTON_CHECK(dense->dim() == dim_);
  for (const Entry& e : entries_) (*dense)[e.first] += scale * e.second;
}

double Dot(const SparseVector& sparse, const Vector& dense) {
  BOLTON_CHECK(sparse.dim() == dense.dim());
  // Canonical-order kernel, NOT a plain sequential sum: the sparse engine's
  // bit-for-bit equivalence with the dense engine requires summing in the
  // exact order the dense dot uses (see SimdSparseDot in linalg/simd.h).
  return SimdSparseDot(sparse.entries().data(), sparse.entries().size(),
                       dense.data(), dense.dim());
}

}  // namespace bolton
