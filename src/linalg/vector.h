#ifndef BOLTON_LINALG_VECTOR_H_
#define BOLTON_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/logging.h"

namespace bolton {

/// Dense real vector used for hypotheses (model weights), feature vectors,
/// gradients, and noise draws.
///
/// A thin wrapper over contiguous doubles with dimension-checked arithmetic.
/// All element-wise operations BOLTON_CHECK dimension agreement: a dimension
/// mismatch is a programmer error, not a data error.
class Vector {
 public:
  /// An empty (0-dimensional) vector.
  Vector() = default;

  /// A `dim`-dimensional zero vector.
  explicit Vector(size_t dim) : data_(dim, 0.0) {}

  /// A `dim`-dimensional vector with every component `value`.
  Vector(size_t dim, double value) : data_(dim, value) {}

  /// From a braced list: Vector v{1.0, 2.0, 3.0};
  Vector(std::initializer_list<double> init) : data_(init) {}

  /// From an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  /// Bounds-checked element access.
  double at(size_t i) const {
    BOLTON_CHECK(i < data_.size());
    return data_[i];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  const std::vector<double>& values() const { return data_; }

  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }

  /// Sets every component to zero, keeping the dimension.
  void SetZero();

  /// In-place arithmetic. Dimensions must match.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// this += scalar * other  (BLAS axpy). Dimensions must match.
  void Axpy(double scalar, const Vector& other);

  /// Euclidean (L2) norm.
  double Norm() const;

  /// Squared Euclidean norm; cheaper when the root is not needed.
  double SquaredNorm() const;

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<double> data_;
};

/// Value-returning arithmetic. Dimensions must match.
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(double scalar, const Vector& v);
Vector operator*(const Vector& v, double scalar);

/// Inner product <a, b>. Dimensions must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean distance ||a - b||.
double Distance(const Vector& a, const Vector& b);

/// Scales `v` so that ||v|| == 1. A zero vector is returned unchanged.
Vector Normalized(const Vector& v);

/// Projects `v` onto the L2 ball of the given radius centered at the origin:
/// returns v if ||v|| <= radius, else v * (radius / ||v||). This is the
/// projection operator Π_C of the paper's rule (7); it is non-expansive,
/// which is what preserves the sensitivity analysis under constrained
/// optimization (paper §3.2.3, "Constrained Optimization").
Vector ProjectToL2Ball(const Vector& v, double radius);

/// In-place variant of ProjectToL2Ball.
void ProjectToL2BallInPlace(Vector* v, double radius);

}  // namespace bolton

#endif  // BOLTON_LINALG_VECTOR_H_
