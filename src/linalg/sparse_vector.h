#ifndef BOLTON_LINALG_SPARSE_VECTOR_H_
#define BOLTON_LINALG_SPARSE_VECTOR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/vector.h"
#include "util/result.h"

namespace bolton {

/// A sparse real vector: sorted (index, value) pairs over a fixed
/// dimension. Real LIBSVM datasets (KDDCup-99, text features) are mostly
/// zeros; sparse kernels make the gradient inner loop O(nnz) instead of
/// O(d).
///
/// Invariants (enforced by the factory): indices strictly increasing,
/// all < dim(), no explicit zeros.
class SparseVector {
 public:
  using Entry = std::pair<size_t, double>;

  /// An all-zero sparse vector of the given dimension.
  explicit SparseVector(size_t dim = 0) : dim_(dim) {}

  /// Builds from entries, validating the invariants. Entries need not be
  /// pre-sorted; duplicates and out-of-range indices are errors, explicit
  /// zeros are dropped.
  static Result<SparseVector> FromEntries(size_t dim,
                                          std::vector<Entry> entries);

  /// Sparsifies a dense vector, dropping entries with |v| <= threshold.
  static SparseVector FromDense(const Vector& dense, double threshold = 0.0);

  size_t dim() const { return dim_; }
  size_t nnz() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Materializes the dense representation.
  Vector ToDense() const;

  /// Euclidean norm (over the nonzeros, trivially).
  double Norm() const;

  /// Scales all values in place.
  void Scale(double factor);

  /// dense += scale · this. Requires dense->dim() == dim(). O(nnz).
  void AxpyInto(double scale, Vector* dense) const;

 private:
  size_t dim_;
  std::vector<Entry> entries_;
};

/// ⟨sparse, dense⟩ in O(nnz). Dimensions must match.
double Dot(const SparseVector& sparse, const Vector& dense);

}  // namespace bolton

#endif  // BOLTON_LINALG_SPARSE_VECTOR_H_
