#include "linalg/simd.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BOLTON_SIMD_X86 1
#endif

// This file is compiled with -ffp-contract=off (see src/linalg/CMakeLists):
// the bit-identity contract requires every multiply and add to round
// separately, and a compiler-introduced FMA would round once. The intrinsic
// kernels likewise never use FMA instructions.

namespace bolton {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These DEFINE the semantics every vector tier must
// reproduce bit-for-bit: reductions use 8 virtual accumulator lanes over the
// vectorizable prefix, the fixed combine tree (l0+l4 ... then pairwise), and
// an index-order tail. See the contract comment in simd.h.
// ---------------------------------------------------------------------------

double DotScalar(const double* x, const double* y, size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    l0 += x[i + 0] * y[i + 0];
    l1 += x[i + 1] * y[i + 1];
    l2 += x[i + 2] * y[i + 2];
    l3 += x[i + 3] * y[i + 3];
    l4 += x[i + 4] * y[i + 4];
    l5 += x[i + 5] * y[i + 5];
    l6 += x[i + 6] * y[i + 6];
    l7 += x[i + 7] * y[i + 7];
  }
  const double c0 = l0 + l4, c1 = l1 + l5, c2 = l2 + l6, c3 = l3 + l7;
  double total = (c0 + c1) + (c2 + c3);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

double SquaredNormScalar(const double* x, size_t n) { return DotScalar(x, x, n); }

double SquaredDistanceScalar(const double* x, const double* y, size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    const double d0 = x[i + 0] - y[i + 0];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    const double d4 = x[i + 4] - y[i + 4];
    const double d5 = x[i + 5] - y[i + 5];
    const double d6 = x[i + 6] - y[i + 6];
    const double d7 = x[i + 7] - y[i + 7];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
    l4 += d4 * d4;
    l5 += d5 * d5;
    l6 += d6 * d6;
    l7 += d7 * d7;
  }
  const double c0 = l0 + l4, c1 = l1 + l5, c2 = l2 + l6, c3 = l3 + l7;
  double total = (c0 + c1) + (c2 + c3);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

void AxpyScalar(double a, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void ScaleScalar(double* x, double a, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= a;
}

void AddScalar(double* y, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

void SubScalar(double* y, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] -= x[i];
}

#ifdef BOLTON_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2: the 8 virtual lanes live in 4 xmm registers — a01 = (l0,l1),
// a23 = (l2,l3), a45 = (l4,l5), a67 = (l6,l7). a01+a45 yields (c0,c1) and
// a23+a67 yields (c2,c3), matching the scalar combine tree exactly.
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) double DotSse2(const double* x,
                                               const double* y, size_t n) {
  __m128d a01 = _mm_setzero_pd(), a23 = _mm_setzero_pd();
  __m128d a45 = _mm_setzero_pd(), a67 = _mm_setzero_pd();
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    a01 = _mm_add_pd(a01, _mm_mul_pd(_mm_loadu_pd(x + i),
                                     _mm_loadu_pd(y + i)));
    a23 = _mm_add_pd(a23, _mm_mul_pd(_mm_loadu_pd(x + i + 2),
                                     _mm_loadu_pd(y + i + 2)));
    a45 = _mm_add_pd(a45, _mm_mul_pd(_mm_loadu_pd(x + i + 4),
                                     _mm_loadu_pd(y + i + 4)));
    a67 = _mm_add_pd(a67, _mm_mul_pd(_mm_loadu_pd(x + i + 6),
                                     _mm_loadu_pd(y + i + 6)));
  }
  const __m128d c01 = _mm_add_pd(a01, a45);  // (c0, c1)
  const __m128d c23 = _mm_add_pd(a23, a67);  // (c2, c3)
  const double c0 = _mm_cvtsd_f64(c01);
  const double c1 = _mm_cvtsd_f64(_mm_unpackhi_pd(c01, c01));
  const double c2 = _mm_cvtsd_f64(c23);
  const double c3 = _mm_cvtsd_f64(_mm_unpackhi_pd(c23, c23));
  double total = (c0 + c1) + (c2 + c3);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

__attribute__((target("sse2"))) double SquaredNormSse2(const double* x,
                                                       size_t n) {
  return DotSse2(x, x, n);
}

__attribute__((target("sse2"))) double SquaredDistanceSse2(const double* x,
                                                           const double* y,
                                                           size_t n) {
  __m128d a01 = _mm_setzero_pd(), a23 = _mm_setzero_pd();
  __m128d a45 = _mm_setzero_pd(), a67 = _mm_setzero_pd();
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2));
    const __m128d d45 =
        _mm_sub_pd(_mm_loadu_pd(x + i + 4), _mm_loadu_pd(y + i + 4));
    const __m128d d67 =
        _mm_sub_pd(_mm_loadu_pd(x + i + 6), _mm_loadu_pd(y + i + 6));
    a01 = _mm_add_pd(a01, _mm_mul_pd(d01, d01));
    a23 = _mm_add_pd(a23, _mm_mul_pd(d23, d23));
    a45 = _mm_add_pd(a45, _mm_mul_pd(d45, d45));
    a67 = _mm_add_pd(a67, _mm_mul_pd(d67, d67));
  }
  const __m128d c01 = _mm_add_pd(a01, a45);
  const __m128d c23 = _mm_add_pd(a23, a67);
  const double c0 = _mm_cvtsd_f64(c01);
  const double c1 = _mm_cvtsd_f64(_mm_unpackhi_pd(c01, c01));
  const double c2 = _mm_cvtsd_f64(c23);
  const double c3 = _mm_cvtsd_f64(_mm_unpackhi_pd(c23, c23));
  double total = (c0 + c1) + (c2 + c3);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("sse2"))) void AxpySse2(double a, const double* x,
                                              double* y, size_t n) {
  const __m128d av = _mm_set1_pd(a);
  size_t i = 0;
  const size_t n2 = n & ~static_cast<size_t>(1);
  for (; i < n2; i += 2) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i),
                                    _mm_mul_pd(av, _mm_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("sse2"))) void ScaleSse2(double* x, double a, size_t n) {
  const __m128d av = _mm_set1_pd(a);
  size_t i = 0;
  const size_t n2 = n & ~static_cast<size_t>(1);
  for (; i < n2; i += 2) {
    _mm_storeu_pd(x + i, _mm_mul_pd(_mm_loadu_pd(x + i), av));
  }
  for (; i < n; ++i) x[i] *= a;
}

__attribute__((target("sse2"))) void AddSse2(double* y, const double* x,
                                             size_t n) {
  size_t i = 0;
  const size_t n2 = n & ~static_cast<size_t>(1);
  for (; i < n2; i += 2) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("sse2"))) void SubSse2(double* y, const double* x,
                                             size_t n) {
  size_t i = 0;
  const size_t n2 = n & ~static_cast<size_t>(1);
  for (; i < n2; i += 2) {
    _mm_storeu_pd(y + i, _mm_sub_pd(_mm_loadu_pd(y + i), _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

// ---------------------------------------------------------------------------
// AVX2: lanes in 2 ymm registers — a0123 = (l0..l3), a4567 = (l4..l7).
// Their elementwise sum is (c0,c1,c2,c3); the 128-bit halves finish the tree.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) double ReduceC0123Avx2(__m256d c) {
  const __m128d lo = _mm256_castpd256_pd128(c);      // (c0, c1)
  const __m128d hi = _mm256_extractf128_pd(c, 1);    // (c2, c3)
  const double c0 = _mm_cvtsd_f64(lo);
  const double c1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double c2 = _mm_cvtsd_f64(hi);
  const double c3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (c0 + c1) + (c2 + c3);
}

__attribute__((target("avx2"))) double DotAvx2(const double* x,
                                               const double* y, size_t n) {
  __m256d a0123 = _mm256_setzero_pd(), a4567 = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    a0123 = _mm256_add_pd(
        a0123, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    a4567 = _mm256_add_pd(a4567, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                               _mm256_loadu_pd(y + i + 4)));
  }
  double total = ReduceC0123Avx2(_mm256_add_pd(a0123, a4567));
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

__attribute__((target("avx2"))) double SquaredNormAvx2(const double* x,
                                                       size_t n) {
  return DotAvx2(x, x, n);
}

__attribute__((target("avx2"))) double SquaredDistanceAvx2(const double* x,
                                                           const double* y,
                                                           size_t n) {
  __m256d a0123 = _mm256_setzero_pd(), a4567 = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    const __m256d d0123 =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    const __m256d d4567 =
        _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4));
    a0123 = _mm256_add_pd(a0123, _mm256_mul_pd(d0123, d0123));
    a4567 = _mm256_add_pd(a4567, _mm256_mul_pd(d4567, d4567));
  }
  double total = ReduceC0123Avx2(_mm256_add_pd(a0123, a4567));
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2"))) void AxpyAvx2(double a, const double* x,
                                              double* y, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  size_t i = 0;
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2"))) void ScaleAvx2(double* x, double a, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  size_t i = 0;
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), av));
  }
  for (; i < n; ++i) x[i] *= a;
}

__attribute__((target("avx2"))) void AddAvx2(double* y, const double* x,
                                             size_t n) {
  size_t i = 0;
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("avx2"))) void SubAvx2(double* y, const double* x,
                                             size_t n) {
  size_t i = 0;
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

// ---------------------------------------------------------------------------
// AVX-512: all 8 lanes in one zmm register. The 256-bit halves are (l0..l3)
// and (l4..l7); adding them gives (c0..c3) and the AVX2 finisher applies.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx2"))) double DotAvx512(const double* x,
                                                         const double* y,
                                                         size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    acc = _mm512_add_pd(
        acc, _mm512_mul_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  const __m256d lo = _mm512_castpd512_pd256(acc);       // (l0..l3)
  const __m256d hi = _mm512_extractf64x4_pd(acc, 1);    // (l4..l7)
  double total = ReduceC0123Avx2(_mm256_add_pd(lo, hi));
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

__attribute__((target("avx512f,avx2"))) double SquaredNormAvx512(
    const double* x, size_t n) {
  return DotAvx512(x, x, n);
}

__attribute__((target("avx512f,avx2"))) double SquaredDistanceAvx512(
    const double* x, const double* y, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
  }
  const __m256d lo = _mm512_castpd512_pd256(acc);
  const __m256d hi = _mm512_extractf64x4_pd(acc, 1);
  double total = ReduceC0123Avx2(_mm256_add_pd(lo, hi));
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx512f"))) void AxpyAvx512(double a, const double* x,
                                                   double* y, size_t n) {
  const __m512d av = _mm512_set1_pd(a);
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                             _mm512_mul_pd(av, _mm512_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx512f"))) void ScaleAvx512(double* x, double a,
                                                    size_t n) {
  const __m512d av = _mm512_set1_pd(a);
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), av));
  }
  for (; i < n; ++i) x[i] *= a;
}

__attribute__((target("avx512f"))) void AddAvx512(double* y, const double* x,
                                                  size_t n) {
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("avx512f"))) void SubAvx512(double* y, const double* x,
                                                  size_t n) {
  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (; i < n8; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_sub_pd(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

#endif  // BOLTON_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch: one table per tier, one atomic pointer to the active table.
// ---------------------------------------------------------------------------

struct KernelTable {
  SimdTier tier;
  double (*dot)(const double*, const double*, size_t);
  double (*squared_norm)(const double*, size_t);
  double (*squared_distance)(const double*, const double*, size_t);
  void (*axpy)(double, const double*, double*, size_t);
  void (*scale)(double*, double, size_t);
  void (*add)(double*, const double*, size_t);
  void (*sub)(double*, const double*, size_t);
};

const KernelTable kScalarTable = {SimdTier::kScalar,
                                  DotScalar,
                                  SquaredNormScalar,
                                  SquaredDistanceScalar,
                                  AxpyScalar,
                                  ScaleScalar,
                                  AddScalar,
                                  SubScalar};

#ifdef BOLTON_SIMD_X86
const KernelTable kSse2Table = {SimdTier::kSse2,
                                DotSse2,
                                SquaredNormSse2,
                                SquaredDistanceSse2,
                                AxpySse2,
                                ScaleSse2,
                                AddSse2,
                                SubSse2};

const KernelTable kAvx2Table = {SimdTier::kAvx2,
                                DotAvx2,
                                SquaredNormAvx2,
                                SquaredDistanceAvx2,
                                AxpyAvx2,
                                ScaleAvx2,
                                AddAvx2,
                                SubAvx2};

const KernelTable kAvx512Table = {SimdTier::kAvx512,
                                  DotAvx512,
                                  SquaredNormAvx512,
                                  SquaredDistanceAvx512,
                                  AxpyAvx512,
                                  ScaleAvx512,
                                  AddAvx512,
                                  SubAvx512};
#endif

const KernelTable* TableForTier(SimdTier tier) {
  switch (tier) {
#ifdef BOLTON_SIMD_X86
    case SimdTier::kSse2:
      return &kSse2Table;
    case SimdTier::kAvx2:
      return &kAvx2Table;
    case SimdTier::kAvx512:
      return &kAvx512Table;
#endif
    default:
      return &kScalarTable;
  }
}

std::atomic<const KernelTable*> g_active_table{nullptr};

SimdTier ResolveDefaultTier() {
  const char* env = std::getenv("BOLTON_SIMD");
  if (env == nullptr || env[0] == '\0') return DetectedSimdTier();
  SimdTier requested;
  if (!ParseSimdTier(env, &requested)) {
    BOLTON_LOG(kWarning) << "BOLTON_SIMD=" << env
                         << " is not a tier name; using "
                         << SimdTierName(DetectedSimdTier());
    return DetectedSimdTier();
  }
  if (requested == SimdTier::kAuto) return DetectedSimdTier();
  if (!SimdTierSupported(requested)) {
    // Clamp, don't fail: the same CI script must run on machines with and
    // without wide vectors, and every tier is bit-identical anyway.
    BOLTON_LOG(kWarning) << "BOLTON_SIMD=" << env
                         << " is not supported on this CPU; clamping to "
                         << SimdTierName(DetectedSimdTier());
    return DetectedSimdTier();
  }
  return requested;
}

const KernelTable* ActiveTable() {
  const KernelTable* table = g_active_table.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  static std::once_flag once;
  std::call_once(once, [] {
    const KernelTable* resolved = TableForTier(DefaultSimdTier());
    const KernelTable* expected = nullptr;
    // A ForceSimdTier that raced ahead of the lazy init wins.
    g_active_table.compare_exchange_strong(expected, resolved,
                                           std::memory_order_acq_rel);
  });
  return g_active_table.load(std::memory_order_acquire);
}

}  // namespace

SimdTier DetectedSimdTier() {
#ifdef BOLTON_SIMD_X86
  static const SimdTier tier = [] {
    if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
    if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
    return SimdTier::kScalar;
  }();
  return tier;
#else
  return SimdTier::kScalar;
#endif
}

SimdTier DefaultSimdTier() {
  static const SimdTier tier = ResolveDefaultTier();
  return tier;
}

SimdTier ActiveSimdTier() { return ActiveTable()->tier; }

bool SimdTierSupported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAuto:
      return false;
    case SimdTier::kScalar:
      return true;
    case SimdTier::kSse2:
    case SimdTier::kAvx2:
    case SimdTier::kAvx512:
      return static_cast<int>(tier) <= static_cast<int>(DetectedSimdTier());
  }
  return false;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAuto:
      return "auto";
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseSimdTier(const std::string& name, SimdTier* out) {
  if (name == "auto") {
    *out = SimdTier::kAuto;
    return true;
  }
  if (name == "scalar") {
    *out = SimdTier::kScalar;
    return true;
  }
  if (name == "sse2") {
    *out = SimdTier::kSse2;
    return true;
  }
  if (name == "avx2") {
    *out = SimdTier::kAvx2;
    return true;
  }
  if (name == "avx512" || name == "avx512f") {
    *out = SimdTier::kAvx512;
    return true;
  }
  return false;
}

bool ForceSimdTier(SimdTier tier) {
  if (tier == SimdTier::kAuto) {
    g_active_table.store(TableForTier(DefaultSimdTier()),
                         std::memory_order_release);
    return true;
  }
  if (!SimdTierSupported(tier)) {
    BOLTON_LOG(kWarning) << "cannot force SIMD tier " << SimdTierName(tier)
                         << ": unsupported on this CPU (detected "
                         << SimdTierName(DetectedSimdTier()) << ")";
    return false;
  }
  g_active_table.store(TableForTier(tier), std::memory_order_release);
  return true;
}

ScopedSimdTier::ScopedSimdTier(SimdTier tier) : previous_(ActiveSimdTier()) {
  BOLTON_CHECK(tier == SimdTier::kAuto || SimdTierSupported(tier));
  ForceSimdTier(tier);
}

ScopedSimdTier::~ScopedSimdTier() { ForceSimdTier(previous_); }

double SimdDot(const double* x, const double* y, size_t n) {
  return ActiveTable()->dot(x, y, n);
}

double SimdSquaredNorm(const double* x, size_t n) {
  return ActiveTable()->squared_norm(x, n);
}

double SimdSquaredDistance(const double* x, const double* y, size_t n) {
  return ActiveTable()->squared_distance(x, y, n);
}

void SimdAxpy(double a, const double* x, double* y, size_t n) {
  ActiveTable()->axpy(a, x, y, n);
}

void SimdScale(double* x, double a, size_t n) {
  ActiveTable()->scale(x, a, n);
}

void SimdAdd(double* y, const double* x, size_t n) {
  ActiveTable()->add(y, x, n);
}

void SimdSub(double* y, const double* x, size_t n) {
  ActiveTable()->sub(y, x, n);
}

double SimdSparseDot(const std::pair<size_t, double>* entries, size_t nnz,
                     const double* y, size_t n) {
  // One implementation for every tier: the contract is the canonical lane
  // ORDER, and a scalar gather realizes it exactly. Entries are sorted by
  // index, so each lane's partial sum accumulates in ascending index order —
  // the same order DotScalar visits them — and the coordinates missing here
  // would only have added exact +0.0 to their lane.
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t n8 = n & ~static_cast<size_t>(7);
  size_t k = 0;
  for (; k < nnz && entries[k].first < n8; ++k) {
    lanes[entries[k].first & 7] += entries[k].second * y[entries[k].first];
  }
  const double c0 = lanes[0] + lanes[4], c1 = lanes[1] + lanes[5],
               c2 = lanes[2] + lanes[6], c3 = lanes[3] + lanes[7];
  double total = (c0 + c1) + (c2 + c3);
  for (; k < nnz; ++k) total += entries[k].second * y[entries[k].first];
  return total;
}

}  // namespace bolton
