#include "linalg/vector.h"

#include <cmath>

namespace bolton {

void Vector::SetZero() {
  for (double& x : data_) x = 0.0;
}

Vector& Vector::operator+=(const Vector& other) {
  BOLTON_CHECK(dim() == other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  BOLTON_CHECK(dim() == other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  BOLTON_CHECK(scalar != 0.0);
  return (*this) *= (1.0 / scalar);
}

void Vector::Axpy(double scalar, const Vector& other) {
  BOLTON_CHECK(dim() == other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scalar * other.data_[i];
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return acc;
}

Vector operator+(const Vector& a, const Vector& b) {
  Vector out = a;
  out += b;
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  Vector out = a;
  out -= b;
  return out;
}

Vector operator*(double scalar, const Vector& v) {
  Vector out = v;
  out *= scalar;
  return out;
}

Vector operator*(const Vector& v, double scalar) { return scalar * v; }

double Dot(const Vector& a, const Vector& b) {
  BOLTON_CHECK(a.dim() == b.dim());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) acc += a[i] * b[i];
  return acc;
}

double Distance(const Vector& a, const Vector& b) {
  BOLTON_CHECK(a.dim() == b.dim());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

Vector Normalized(const Vector& v) {
  double n = v.Norm();
  if (n == 0.0) return v;
  return v * (1.0 / n);
}

Vector ProjectToL2Ball(const Vector& v, double radius) {
  Vector out = v;
  ProjectToL2BallInPlace(&out, radius);
  return out;
}

void ProjectToL2BallInPlace(Vector* v, double radius) {
  BOLTON_CHECK(radius >= 0.0);
  double n = v->Norm();
  if (n > radius && n > 0.0) *v *= (radius / n);
}

}  // namespace bolton
