#include "linalg/vector.h"

#include <cmath>

#include "linalg/simd.h"

// The dense hot loops (dot, axpy, scale, add/sub, norms) dispatch to the
// runtime-selected SIMD kernels in linalg/simd.h. Every tier is bit-identical
// to the scalar reference (see the contract comment there), so routing
// through the dispatcher changes speed, never results.

namespace bolton {

void Vector::SetZero() {
  for (double& x : data_) x = 0.0;
}

Vector& Vector::operator+=(const Vector& other) {
  BOLTON_CHECK(dim() == other.dim());
  SimdAdd(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  BOLTON_CHECK(dim() == other.dim());
  SimdSub(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  SimdScale(data_.data(), scalar, data_.size());
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  BOLTON_CHECK(scalar != 0.0);
  return (*this) *= (1.0 / scalar);
}

void Vector::Axpy(double scalar, const Vector& other) {
  BOLTON_CHECK(dim() == other.dim());
  SimdAxpy(scalar, other.data_.data(), data_.data(), data_.size());
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const {
  return SimdSquaredNorm(data_.data(), data_.size());
}

Vector operator+(const Vector& a, const Vector& b) {
  Vector out = a;
  out += b;
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  Vector out = a;
  out -= b;
  return out;
}

Vector operator*(double scalar, const Vector& v) {
  Vector out = v;
  out *= scalar;
  return out;
}

Vector operator*(const Vector& v, double scalar) { return scalar * v; }

double Dot(const Vector& a, const Vector& b) {
  BOLTON_CHECK(a.dim() == b.dim());
  return SimdDot(a.data(), b.data(), a.dim());
}

double Distance(const Vector& a, const Vector& b) {
  BOLTON_CHECK(a.dim() == b.dim());
  return std::sqrt(SimdSquaredDistance(a.data(), b.data(), a.dim()));
}

Vector Normalized(const Vector& v) {
  double n = v.Norm();
  if (n == 0.0) return v;
  return v * (1.0 / n);
}

Vector ProjectToL2Ball(const Vector& v, double radius) {
  Vector out = v;
  ProjectToL2BallInPlace(&out, radius);
  return out;
}

void ProjectToL2BallInPlace(Vector* v, double radius) {
  BOLTON_CHECK(radius >= 0.0);
  double n = v->Norm();
  if (n > radius && n > 0.0) *v *= (radius / n);
}

}  // namespace bolton
