#ifndef BOLTON_LINALG_SIMD_H_
#define BOLTON_LINALG_SIMD_H_

#include <cstddef>
#include <string>
#include <utility>

namespace bolton {

/// Runtime-dispatched SIMD kernels for the dense double-precision loops that
/// dominate gradient work (dot, axpy, scale, elementwise add/sub, squared
/// norm/distance).
///
/// ## Bit-identity contract
///
/// Every tier produces BIT-IDENTICAL results to the scalar reference on the
/// same inputs, at the default rounding mode. This is what lets the sharded
/// executor's determinism contract ("results depend only on seed and shard
/// count") survive heterogeneous fleets and the BOLTON_SIMD override: a model
/// trained with AVX-512 kernels equals one trained with the scalar path bit
/// for bit.
///
/// The trick is a canonical reduction order shared by all tiers. Reductions
/// (dot, squared norm, squared distance) accumulate into 8 virtual lanes —
/// lane j sums elements with index ≡ j (mod 8) over the vectorizable prefix —
/// then combine as
///
///     c0 = l0+l4   c1 = l1+l5   c2 = l2+l6   c3 = l3+l7
///     total = (c0 + c1) + (c2 + c3)
///
/// and fold the remaining tail elements in index order. The same tree is
/// realized as 4×2-lane registers under SSE2, 2×4-lane under AVX2, and
/// 1×8-lane under AVX-512, so every tier performs the exact same sequence of
/// rounded double operations. Elementwise kernels (axpy, scale, add, sub) are
/// bit-identical by construction. No FMA is ever used (a fused multiply-add
/// rounds once where the contract requires twice); the translation unit is
/// compiled with -ffp-contract=off to keep the compiler from introducing one.
///
/// ## Dispatch
///
/// The active tier is resolved once per process: the BOLTON_SIMD environment
/// variable (scalar|sse2|avx2|avx512) if set and supported — an unsupported
/// request is clamped to the best supported tier with a warning — otherwise
/// the best tier the CPU supports (one-time __builtin_cpu_supports probe).
/// Tests and the ExecutorConfig override can force a tier at runtime with
/// ScopedSimdTier. The selected tier is surfaced through obs build info
/// (`boltondp version`, /buildz, bench JSON).
enum class SimdTier {
  /// Not a tier: "no override" in ExecutorConfig / ScopedSimdTier.
  kAuto,
  kScalar,
  kSse2,
  kAvx2,
  kAvx512,
};

/// Best tier the CPU supports (one-time probe, cached).
SimdTier DetectedSimdTier();

/// The tier new kernel calls dispatch to right now: the process default
/// (BOLTON_SIMD or the probe) unless a ScopedSimdTier override is live.
SimdTier ActiveSimdTier();

/// The process default tier: BOLTON_SIMD if set (clamped to supported),
/// otherwise DetectedSimdTier().
SimdTier DefaultSimdTier();

/// True when `tier`'s kernels can run on this CPU. kScalar is always
/// supported; kAuto is not a tier and returns false.
bool SimdTierSupported(SimdTier tier);

/// Lower-case tier name ("auto", "scalar", "sse2", "avx2", "avx512").
const char* SimdTierName(SimdTier tier);

/// Parses a tier name (as accepted by BOLTON_SIMD, plus "auto" and the
/// "avx512f" spelling). Returns false on unknown names.
bool ParseSimdTier(const std::string& name, SimdTier* out);

/// Forces the active tier for the whole process until reset; kAuto resets to
/// DefaultSimdTier(). Returns false (and changes nothing) when the tier is
/// unsupported on this CPU. Because all tiers are bit-identical this is safe
/// to flip at any time — concurrent runs can only differ in speed.
bool ForceSimdTier(SimdTier tier);

/// RAII tier override (test force-tier hook; also powers
/// ExecutorConfig::simd). Restores the previously active tier on
/// destruction. The constructor BOLTON_CHECKs that the tier is supported —
/// gate with SimdTierSupported() first.
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier tier);
  ~ScopedSimdTier();

  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

 private:
  SimdTier previous_;
};

/// <x, y> over n doubles, canonical reduction order.
double SimdDot(const double* x, const double* y, size_t n);

/// ||x||² over n doubles, canonical reduction order (== SimdDot(x, x, n)).
double SimdSquaredNorm(const double* x, size_t n);

/// ||x - y||² over n doubles, canonical reduction order.
double SimdSquaredDistance(const double* x, const double* y, size_t n);

/// y[i] += a * x[i] (BLAS axpy; multiply and add each rounded — no FMA).
void SimdAxpy(double a, const double* x, double* y, size_t n);

/// x[i] *= a.
void SimdScale(double* x, double a, size_t n);

/// y[i] += x[i].
void SimdAdd(double* y, const double* x, size_t n);

/// y[i] -= x[i].
void SimdSub(double* y, const double* x, size_t n);

/// Sparse·dense dot: Σ value·y[index] over `entries` (nnz sorted, unique
/// (index, value) pairs with index < n), in the SAME canonical order SimdDot
/// uses over the full dense index space — entry (i, v) lands in lane i mod 8
/// when i < (n & ~7), tail entries fold in index order after the lane
/// combine. A coordinate absent from `entries` would contribute an exact
/// +0.0 to its lane, which cannot change the sum, so the result is
/// bit-identical to SimdDot(densified, y, n) at every tier. This is what
/// keeps the sparse PSGD engine bit-for-bit against the dense engine. The
/// gather pattern stays scalar at every tier — the canonical order, not
/// vector registers, is the contract here.
double SimdSparseDot(const std::pair<size_t, double>* entries, size_t nnz,
                     const double* y, size_t n);

}  // namespace bolton

#endif  // BOLTON_LINALG_SIMD_H_
