#include "linalg/matrix.h"

#include <cmath>

#include "util/logging.h"

namespace bolton {

Vector Matrix::Row(size_t r) const {
  BOLTON_CHECK(r < rows_);
  Vector out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::Multiply(const Vector& x) const {
  BOLTON_CHECK(x.dim() == cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Vector Matrix::MultiplyTransposed(const Vector& x) const {
  BOLTON_CHECK(x.dim() == rows_);
  Vector out(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * xr;
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace bolton
