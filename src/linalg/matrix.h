#ifndef BOLTON_LINALG_MATRIX_H_
#define BOLTON_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/vector.h"

namespace bolton {

/// Dense row-major matrix. Used by the Gaussian random-projection transform
/// (paper §2, "Random Projection") and by tests.
class Matrix {
 public:
  Matrix() = default;

  /// A rows x cols zero matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// Row `r` copied out as a Vector.
  Vector Row(size_t r) const;

  /// Matrix-vector product: returns `this * x`. Requires x.dim() == cols().
  Vector Multiply(const Vector& x) const;

  /// Transposed product: returns `this^T * x`. Requires x.dim() == rows().
  Vector MultiplyTransposed(const Vector& x) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace bolton

#endif  // BOLTON_LINALG_MATRIX_H_
