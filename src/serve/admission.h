#ifndef BOLTON_SERVE_ADMISSION_H_
#define BOLTON_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "util/result.h"

namespace bolton {
namespace serve {

class AdmissionController;

/// Capacity limits for concurrently *executing* requests. The queue-side
/// bound (accepted connections waiting for a handler) lives in
/// obs::ObsServerOptions::max_pending; this layer caps what the handlers
/// actually run at once.
struct AdmissionOptions {
  /// Requests executing across all tenants. Exceeding it means the daemon
  /// is saturated → 503 + Retry-After (load shedding, not queuing).
  size_t max_inflight = 8;
  /// Requests executing for any single tenant. Exceeding it refuses just
  /// that tenant with 429 (tenant_busy) while others proceed — one noisy
  /// tenant cannot monopolize the worker pool.
  size_t max_inflight_per_tenant = 2;
};

/// RAII admission slot: constructed only by AdmissionController::Admit,
/// releases its slot on destruction (or explicit Release). Movable so the
/// handler can carry it across the whole request.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept { *this = std::move(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  ~AdmissionTicket() { Release(); }

  /// Frees the slot early. Idempotent.
  void Release();

  bool held() const { return controller_ != nullptr; }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, std::string tenant)
      : controller_(controller), tenant_(std::move(tenant)) {}

  AdmissionController* controller_ = nullptr;
  std::string tenant_;
};

/// Per-tenant and global in-flight caps with refuse-fast semantics: Admit
/// never blocks — over-capacity requests are refused immediately so the
/// caller can shed load while it is still cheap to do so.
///
/// Error contract (the daemon maps these onto HTTP):
///   OutOfRange          global cap hit ("overloaded")      → 503
///   FailedPrecondition  per-tenant cap hit ("tenant_busy") → 429
///   anything else       injected by the serve.admit failpoint → 503
///
/// Must outlive every ticket it issues.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Claims a slot for `tenant`, or refuses per the contract above.
  Result<AdmissionTicket> Admit(const std::string& tenant);

  size_t inflight() const;
  size_t inflight(const std::string& tenant) const;

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

 private:
  friend class AdmissionTicket;
  void Release(const std::string& tenant);

  AdmissionOptions options_;
  mutable std::mutex mu_;
  size_t total_inflight_ = 0;
  std::map<std::string, size_t> tenant_inflight_;
};

}  // namespace serve
}  // namespace bolton

#endif  // BOLTON_SERVE_ADMISSION_H_
