#ifndef BOLTON_SERVE_DAEMON_H_
#define BOLTON_SERVE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "data/dataset.h"
#include "linalg/vector.h"
#include "obs/http_server.h"
#include "serve/admission.h"
#include "serve/budget.h"
#include "util/cancellation.h"
#include "util/result.h"

namespace bolton {
namespace serve {

/// Everything `boltondp serve` configures.
struct ServeOptions {
  /// 127.0.0.1:`port`; 0 = ephemeral (the bound port is printed/queryable).
  int port = 0;
  /// Concurrent HTTP handler threads.
  size_t handler_threads = 4;
  /// Accepted connections queued beyond this are shed with 503.
  size_t max_pending = 16;
  /// Per-connection socket I/O deadline.
  int io_timeout_ms = 5000;
  /// Executing-request caps (global + per tenant).
  AdmissionOptions admission;
  /// Per-tenant budget accounts + persistence.
  TenantBudgetOptions budget;
  /// Deadline applied to requests that do not send `timeout_ms` themselves
  /// (0 = no default deadline). A request's own timeout_ms wins.
  uint64_t default_timeout_ms = 0;
  /// How long Shutdown() waits for in-flight requests before cancelling
  /// the stragglers' solver runs.
  uint64_t drain_timeout_ms = 5000;
  /// Training threads the worker pool may use per request (the
  /// ExecutorConfig max_threads cap); 0 = auto.
  size_t max_training_threads = 0;
  /// Cap on `scale` accepted from requests, so one tenant cannot ask the
  /// daemon to synthesize a multi-gigabyte dataset.
  double max_dataset_scale = 1.0;
};

/// The multi-tenant private-analytics daemon behind `boltondp serve`.
///
/// Mounts a JSON API on the in-process obs::ObsServer (which also keeps
/// serving /metrics, /healthz, /ledger, ...):
///
///   POST /v1/train      {"tenant","dataset","algorithm","epsilon",...}
///                       trains one binary model through the core solver
///                       dispatch on the shared worker pool; private
///                       algorithms spend tenant budget (reserve → train →
///                       commit). 200 {"model_id",...} | 400 | 408 timeout
///                       | 429 budget_exhausted/tenant_busy | 503.
///   POST /v1/predict    {"tenant","model_id","features":[...]} scores a
///                       model previously trained by the same tenant. The
///                       released model is already private, so prediction
///                       is budget-free. 200 {"prediction","score"}.
///   POST /v1/aggregate  {"tenant","dataset","op":"count"|"feature_mean",
///                       "epsilon",...} answers a private aggregate (§4.6
///                       multi-query setting) under the same budget.
///   GET  /v1/budget     [?tenant=t] account views: budget, spent,
///                       reserved, commits/refunds/refusals/recovered.
///
/// Budget protocol per request (private algorithms): Reserve persists a
/// write-ahead hold before any work; Commit converts it to spend after the
/// noisy release; a run that provably released nothing (cancelled, failed,
/// or refused before the noise draw — black-box algorithms only) Refunds.
/// White-box runs (scs13/bst14/objective) draw noise during optimization,
/// so any run that started commits even on failure.
///
/// Degradation ladder: full pending queue → 503 at accept (ObsServer);
/// global in-flight cap → 503; per-tenant cap → 429 tenant_busy;
/// over-budget → 429 budget_exhausted; deadline → 408 with the solver run
/// cancelled cooperatively (ExecutorConfig.cancel). Idle cost follows the
/// shared pool's idle-timeout spin-down: a quiet daemon holds no worker
/// threads.
class ServeDaemon {
 public:
  static Result<std::unique_ptr<ServeDaemon>> Start(
      const ServeOptions& options);

  ~ServeDaemon();

  /// The bound port.
  int port() const { return server_->port(); }

  /// Graceful drain: refuse new requests (503 "draining"), wait up to
  /// drain_timeout_ms for in-flight requests, then cancel stragglers'
  /// solver runs, stop the HTTP server, and flush budget state. Idempotent.
  void Shutdown();

  TenantBudgetManager& budget() { return *budget_; }
  AdmissionController& admission() { return *admission_; }
  obs::ObsServer& server() { return *server_; }

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

 private:
  struct StoredModel {
    std::string tenant;
    Vector weights;
    std::string algorithm;
    std::string dataset;
  };

  explicit ServeDaemon(const ServeOptions& options);

  obs::HttpResponse HandleTrain(const obs::HttpRequest& request);
  obs::HttpResponse HandlePredict(const obs::HttpRequest& request);
  obs::HttpResponse HandleAggregate(const obs::HttpRequest& request);
  obs::HttpResponse HandleBudget(const obs::HttpRequest& request);

  /// The shared synthetic-dataset cache: generating "protein" at scale 0.1
  /// once per daemon, not once per request. Keyed by (name, scale, seed).
  Result<std::shared_ptr<const std::pair<Dataset, Dataset>>> DatasetFor(
      const std::string& name, double scale, uint64_t seed);

  ServeOptions options_;
  std::unique_ptr<TenantBudgetManager> budget_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<obs::ObsServer> server_;

  /// Root of every request's cancellation chain: Shutdown() cancels it to
  /// cut stragglers loose after the drain window.
  CancellationToken drain_cancel_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  std::mutex data_mu_;
  std::map<std::string, std::shared_ptr<const std::pair<Dataset, Dataset>>>
      datasets_;

  std::mutex models_mu_;
  std::map<std::string, StoredModel> models_;
  uint64_t next_model_seq_ = 1;
};

}  // namespace serve
}  // namespace bolton

#endif  // BOLTON_SERVE_DAEMON_H_
