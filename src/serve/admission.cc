#include "serve/admission.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace bolton {
namespace serve {

namespace {

struct AdmissionMetrics {
  obs::Counter* admitted;
  obs::Counter* overloaded;
  obs::Counter* tenant_busy;
  obs::Gauge* inflight;
};

AdmissionMetrics& Metrics() {
  static AdmissionMetrics* m = new AdmissionMetrics{
      obs::MetricsRegistry::Default().GetCounter("serve.admitted_total"),
      obs::MetricsRegistry::Default().GetCounter("serve.overloaded_total"),
      obs::MetricsRegistry::Default().GetCounter("serve.tenant_busy_total"),
      obs::MetricsRegistry::Default().GetGauge("serve.inflight"),
  };
  return *m;
}

}  // namespace

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    tenant_ = std::move(other.tenant_);
    other.controller_ = nullptr;
  }
  return *this;
}

void AdmissionTicket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release(tenant_);
  controller_ = nullptr;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  options_.max_inflight = std::max<size_t>(options_.max_inflight, 1);
  options_.max_inflight_per_tenant =
      std::max<size_t>(options_.max_inflight_per_tenant, 1);
}

Result<AdmissionTicket> AdmissionController::Admit(const std::string& tenant) {
  // Fault gate: an injected error refuses admission (nothing claimed).
  BOLTON_FAILPOINT("serve.admit");

  std::lock_guard<std::mutex> lock(mu_);
  if (total_inflight_ >= options_.max_inflight) {
    Metrics().overloaded->Increment();
    return Status::OutOfRange(StrFormat(
        "overloaded: %zu requests already executing (cap %zu)",
        total_inflight_, options_.max_inflight));
  }
  size_t& mine = tenant_inflight_[tenant];
  if (mine >= options_.max_inflight_per_tenant) {
    Metrics().tenant_busy->Increment();
    return Status::FailedPrecondition(StrFormat(
        "tenant_busy: tenant '%s' already has %zu requests executing "
        "(cap %zu)",
        tenant.c_str(), mine, options_.max_inflight_per_tenant));
  }
  ++mine;
  ++total_inflight_;
  Metrics().admitted->Increment();
  Metrics().inflight->Set(static_cast<double>(total_inflight_));
  return AdmissionTicket(this, tenant);
}

void AdmissionController::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end()) {
    if (--it->second == 0) tenant_inflight_.erase(it);
  }
  if (total_inflight_ > 0) --total_inflight_;
  Metrics().inflight->Set(static_cast<double>(total_inflight_));
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_inflight_;
}

size_t AdmissionController::inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_inflight_.find(tenant);
  return it == tenant_inflight_.end() ? 0 : it->second;
}

}  // namespace serve
}  // namespace bolton
