#ifndef BOLTON_SERVE_BUDGET_H_
#define BOLTON_SERVE_BUDGET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/accountant.h"
#include "core/privacy.h"
#include "optim/sgd_spec.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {
namespace serve {

/// Shape of the per-tenant budget store.
struct TenantBudgetOptions {
  /// Budget granted to a tenant on first contact. Existing accounts loaded
  /// from the state file keep their recorded budget even if this changes.
  PrivacyParams default_budget{1.0, 1e-6};
  /// Directory for the persisted budget state ("" = in-memory only; spend
  /// then dies with the process — tests and benches only). The state file
  /// is written with the checkpoint-style atomic tmp+fsync+rename, so a
  /// crashed daemon never forgets spend.
  std::string state_dir;
  /// Bounded retry with jittered exponential backoff on persist I/O
  /// failures (the ShardRetryPolicy shape, reused verbatim). Retries are
  /// counted on the serve.persist_retries metric.
  ShardRetryPolicy persist_retry{3, 5, 0.5};
};

/// Read-only view of one tenant's account.
struct TenantAccountView {
  std::string tenant;
  PrivacyParams budget;
  PrivacyParams spent{0.0, 0.0};     // committed + recovered charges
  PrivacyParams reserved{0.0, 0.0};  // in-flight holds
  uint64_t commits = 0;
  uint64_t refunds = 0;
  uint64_t refusals = 0;
  uint64_t recovered = 0;
};

/// Per-tenant (ε, δ) accounts with an atomic reserve → commit/refund
/// protocol, the serve daemon's enforcement point for the paper's
/// one-account-per-dataset-owner contract (Theorem 1's calibration assumes
/// the budget it spends was actually available).
///
/// Exactly-once spend across crashes:
///   * Reserve() persists the hold (write-ahead) BEFORE any work runs —
///     a crash after the noise draw can never forget the charge;
///   * Commit() converts the hold to spend on the tenant's
///     PrivacyAccountant (core/accountant). A persist failure at commit is
///     tolerated: the disk still shows the hold, and recovery promotes it;
///   * Refund() releases a hold — callers may only refund when provably no
///     noise was drawn (the black-box algorithms draw noise only at
///     release; a run cancelled or failed before release is refundable);
///   * Open() promotes any pending holds found on disk to spend
///     ("budget_recover" ledger events): the crash may have happened after
///     the noise draw but before the commit persisted, so the conservative
///     resolution is to charge. Over-counting ε is safe; under-counting is
///     a privacy violation.
///
/// Every transition is recorded on the privacy ledger keyed by tenant
/// (budget_reserve / budget_commit / budget_refund / budget_refusal /
/// budget_recover). An over-budget Reserve() refuses with
/// FailedPrecondition and records a refusal (accepted=false).
///
/// Thread-safe; all methods may be called from concurrent handler threads.
class TenantBudgetManager {
 public:
  /// Loads (or initializes) the state under options.state_dir, promoting
  /// pending holds as described above, and persists the recovered state.
  static Result<std::unique_ptr<TenantBudgetManager>> Open(
      const TenantBudgetOptions& options);

  /// Places a write-ahead hold of `cost` against `tenant`'s remaining
  /// budget (basic composition over spend + existing holds). Returns the
  /// hold id for Commit/Refund. FailedPrecondition when the hold would
  /// overspend (the refusal is ledgered and counted); IOError when the
  /// write-ahead persist fails after retries (nothing is held).
  Result<uint64_t> Reserve(const std::string& tenant,
                           const PrivacyParams& cost,
                           const std::string& label);

  /// Converts a hold to committed spend. NotFound for an unknown id.
  Status Commit(uint64_t hold_id);

  /// Releases a hold without spending. Only legal when no noise was drawn
  /// under it. NotFound for an unknown id.
  Status Refund(uint64_t hold_id);

  /// The account view for `tenant`; a never-seen tenant reports the
  /// default budget with zero spend.
  TenantAccountView Account(const std::string& tenant) const;

  /// All known accounts, tenant-sorted.
  std::vector<TenantAccountView> Snapshot() const;

  /// Holds promoted to spend by Open() — the crash-recovery telltale.
  uint64_t recovered_holds() const { return recovered_holds_; }

  TenantBudgetManager(const TenantBudgetManager&) = delete;
  TenantBudgetManager& operator=(const TenantBudgetManager&) = delete;

 private:
  struct AccountState {
    explicit AccountState(const PrivacyParams& budget)
        : budget(budget), accountant(budget) {}
    PrivacyParams budget;
    PrivacyAccountant accountant;  // committed spend + refusal bookkeeping
    /// Sum of this tenant's pending holds. NB: PrivacyParams defaults to
    /// ε=1, so the zero must be explicit.
    PrivacyParams reserved{0.0, 0.0};
    uint64_t commits = 0;
    uint64_t refunds = 0;
    uint64_t refusals = 0;
    uint64_t recovered = 0;
  };

  struct Hold {
    std::string tenant;
    PrivacyParams cost;
    std::string label;
  };

  explicit TenantBudgetManager(const TenantBudgetOptions& options);

  AccountState& GetOrCreateLocked(const std::string& tenant);
  TenantAccountView ViewLocked(const std::string& tenant,
                               const AccountState& account) const;
  /// Serializes and atomically replaces the state file, with bounded
  /// jittered retry. No-op without a state_dir.
  Status PersistLocked();
  std::string RenderLocked() const;
  Status RestoreLocked(const std::string& content);

  TenantBudgetOptions options_;
  std::string path_;      // "" when in-memory only
  std::string tmp_path_;

  mutable std::mutex mu_;
  std::map<std::string, AccountState> accounts_;
  std::map<uint64_t, Hold> holds_;
  uint64_t next_hold_id_ = 1;
  uint64_t recovered_holds_ = 0;
  Rng jitter_rng_{0x73657276656a6974ull};  // persist-backoff jitter stream
};

}  // namespace serve
}  // namespace bolton

#endif  // BOLTON_SERVE_BUDGET_H_
