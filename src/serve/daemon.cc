#include "serve/daemon.h"

#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "core/solver.h"
#include "data/synthetic.h"
#include "engine/private_aggregates.h"
#include "engine/table.h"
#include "ml/trainer.h"
#include "obs/metrics.h"
#include "random/rng.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {
namespace serve {

namespace {

using obs::HttpRequest;
using obs::HttpResponse;

struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* cancelled;
  obs::Counter* draining;
  obs::Histogram* request_seconds;
};

ServeMetrics& Metrics() {
  static ServeMetrics* m = new ServeMetrics{
      obs::MetricsRegistry::Default().GetCounter("serve.requests_total"),
      obs::MetricsRegistry::Default().GetCounter("serve.cancelled_total"),
      obs::MetricsRegistry::Default().GetCounter("serve.draining_total"),
      obs::MetricsRegistry::Default().GetHistogram(
          "serve.request_seconds", obs::LatencySecondsBuckets()),
  };
  return *m;
}

HttpResponse JsonError(int status, const char* code,
                       const std::string& detail) {
  HttpResponse response;
  response.status = status;
  response.body = StrFormat("{\"error\":\"%s\",\"detail\":\"%s\"}\n", code,
                            JsonEscape(detail).c_str());
  return response;
}

HttpResponse JsonOk(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

/// Maps an AdmissionController refusal onto the degradation ladder.
HttpResponse AdmissionRefusal(const Status& status,
                              uint64_t retry_after_seconds) {
  if (status.code() == StatusCode::kFailedPrecondition) {
    return JsonError(429, "tenant_busy", status.message());
  }
  HttpResponse response = JsonError(503, "overloaded", status.message());
  response.headers.emplace_back(
      "Retry-After", StrFormat("%llu", static_cast<unsigned long long>(
                                           retry_after_seconds)));
  return response;
}

HttpResponse BudgetRefusal(const std::string& tenant,
                           const TenantAccountView& account,
                           const Status& status) {
  HttpResponse response;
  response.status = 429;
  response.body = StrFormat(
      "{\"error\":\"budget_exhausted\",\"tenant\":\"%s\","
      "\"budget_epsilon\":%g,\"spent_epsilon\":%g,\"reserved_epsilon\":%g,"
      "\"detail\":\"%s\"}\n",
      JsonEscape(tenant).c_str(), account.budget.epsilon,
      account.spent.epsilon, account.reserved.epsilon,
      JsonEscape(status.message()).c_str());
  return response;
}

/// True for the algorithms whose only noise draw happens at release
/// (noiseless draws none at all): a run that ended without releasing —
/// cancelled, failed, injected fault — provably spent nothing and its hold
/// is refundable. The white-box baselines (SCS13/BST14/objective) perturb
/// during optimization, so a started run always commits.
bool RefundableOnFailure(Algorithm algorithm) {
  return algorithm == Algorithm::kNoiseless || algorithm == Algorithm::kBoltOn;
}

std::string RenderAccountView(const TenantAccountView& view) {
  return StrFormat(
      "{\"tenant\":\"%s\",\"budget_epsilon\":%g,\"budget_delta\":%g,"
      "\"spent_epsilon\":%.12g,\"spent_delta\":%.12g,"
      "\"reserved_epsilon\":%.12g,\"reserved_delta\":%.12g,"
      "\"commits\":%llu,\"refunds\":%llu,\"refusals\":%llu,"
      "\"recovered\":%llu}",
      JsonEscape(view.tenant).c_str(), view.budget.epsilon, view.budget.delta,
      view.spent.epsilon, view.spent.delta, view.reserved.epsilon,
      view.reserved.delta, static_cast<unsigned long long>(view.commits),
      static_cast<unsigned long long>(view.refunds),
      static_cast<unsigned long long>(view.refusals),
      static_cast<unsigned long long>(view.recovered));
}

/// One "k=v" pair out of a query string ("" when absent).
std::string QueryParam(const std::string& query, const std::string& key) {
  for (const std::string& pair : StrSplit(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return "";
}

/// Tracks a request for drain accounting and latency metrics.
class RequestScope {
 public:
  RequestScope(std::mutex* mu, std::condition_variable* cv, size_t* inflight)
      : mu_(mu), cv_(cv), inflight_(inflight),
        start_(std::chrono::steady_clock::now()) {
    std::lock_guard<std::mutex> lock(*mu_);
    ++*inflight_;
  }
  ~RequestScope() {
    Metrics().request_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
    {
      std::lock_guard<std::mutex> lock(*mu_);
      --*inflight_;
    }
    cv_->notify_all();
  }

 private:
  std::mutex* mu_;
  std::condition_variable* cv_;
  size_t* inflight_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

ServeDaemon::ServeDaemon(const ServeOptions& options) : options_(options) {}

ServeDaemon::~ServeDaemon() { Shutdown(); }

Result<std::unique_ptr<ServeDaemon>> ServeDaemon::Start(
    const ServeOptions& options) {
  std::unique_ptr<ServeDaemon> daemon(new ServeDaemon(options));
  BOLTON_ASSIGN_OR_RETURN(daemon->budget_,
                          TenantBudgetManager::Open(options.budget));
  daemon->admission_.reset(new AdmissionController(options.admission));

  obs::ObsServerOptions server_options;
  server_options.port = options.port;
  server_options.io_timeout_ms = options.io_timeout_ms;
  server_options.handler_threads =
      options.handler_threads == 0 ? 1 : options.handler_threads;
  server_options.max_pending = options.max_pending;
  BOLTON_ASSIGN_OR_RETURN(daemon->server_,
                          obs::ObsServer::Start(server_options));

  ServeDaemon* d = daemon.get();
  daemon->server_->RegisterHandler(
      "POST", "/v1/train",
      [d](const HttpRequest& request) { return d->HandleTrain(request); });
  daemon->server_->RegisterHandler(
      "POST", "/v1/predict",
      [d](const HttpRequest& request) { return d->HandlePredict(request); });
  daemon->server_->RegisterHandler(
      "POST", "/v1/aggregate",
      [d](const HttpRequest& request) { return d->HandleAggregate(request); });
  daemon->server_->RegisterHandler(
      "GET", "/v1/budget",
      [d](const HttpRequest& request) { return d->HandleBudget(request); });

  if (daemon->budget_->recovered_holds() > 0) {
    BOLTON_LOG(kWarning) << "serve: promoted "
                         << daemon->budget_->recovered_holds()
                         << " pending budget hold(s) to spend at startup";
  }
  return daemon;
}

void ServeDaemon::Shutdown() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this] { return inflight_ == 0; });
    if (inflight_ > 0) {
      BOLTON_LOG(kWarning) << "serve: drain window elapsed with " << inflight_
                           << " request(s) in flight; cancelling their runs";
    }
  }
  // Cut stragglers loose: every request token chains to this one, and the
  // solver polls it at batch boundaries. A cancelled private run releases
  // nothing (its hold is refunded), so cancellation never corrupts spend.
  drain_cancel_.Cancel();
  server_->Stop();
}

Result<std::shared_ptr<const std::pair<Dataset, Dataset>>>
ServeDaemon::DatasetFor(const std::string& name, double scale, uint64_t seed) {
  if (!(scale > 0.0) || scale > options_.max_dataset_scale) {
    return Status::InvalidArgument(StrFormat(
        "scale must be in (0, %g], got %g", options_.max_dataset_scale,
        scale));
  }
  const std::string key =
      StrFormat("%s@%.6g#%llu", name.c_str(), scale,
                static_cast<unsigned long long>(seed));
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    auto it = datasets_.find(key);
    if (it != datasets_.end()) return it->second;
  }
  // Generated outside the lock: two tenants racing on a cold key both
  // generate (identical seeds → identical data); one insert wins.
  BOLTON_ASSIGN_OR_RETURN(auto generated, GenerateByName(name, scale, seed));
  auto shared = std::make_shared<const std::pair<Dataset, Dataset>>(
      std::move(generated));
  std::lock_guard<std::mutex> lock(data_mu_);
  auto inserted = datasets_.emplace(key, std::move(shared));
  return inserted.first->second;
}

HttpResponse ServeDaemon::HandleTrain(const HttpRequest& request) {
  Metrics().requests->Increment();
  if (draining_.load(std::memory_order_acquire)) {
    Metrics().draining->Increment();
    return JsonError(503, "draining", "daemon is shutting down");
  }
  RequestScope scope(&inflight_mu_, &inflight_cv_, &inflight_);

  auto parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    return JsonError(400, "bad_request", parsed.status().message());
  }
  const JsonValue& body = parsed.value();

  auto tenant = body.GetString("tenant", "");
  if (!tenant.ok()) return JsonError(400, "bad_request", tenant.status().message());
  if (tenant.value().empty()) {
    return JsonError(400, "bad_request", "missing required field: tenant");
  }

  // Flat-field extraction; any type mismatch answers 400 naming the field.
  TrainerConfig config;
  std::string dataset_name, algorithm_name, model_name;
  double scale = 0.0, epsilon = 0.0, delta = 0.0;
  int64_t data_seed = 0, train_seed = 0, timeout_ms = 0, positive_class = 0;
  int64_t passes = 0, batch_size = 0, shards = 0;
  Status field = Status::OK();
  {
    auto bind = [&field](auto result, auto* out) {
      if (field.ok()) {
        if (result.ok()) {
          *out = result.value();
        } else {
          field = result.status();
        }
      }
    };
    bind(body.GetString("dataset", "protein"), &dataset_name);
    bind(body.GetString("algorithm", "bolton"), &algorithm_name);
    bind(body.GetString("model", "logistic"), &model_name);
    bind(body.GetNumber("scale", 0.01), &scale);
    bind(body.GetNumber("epsilon", 1.0), &epsilon);
    bind(body.GetNumber("delta", 1e-6), &delta);
    bind(body.GetNumber("lambda", 0.01), &config.lambda);
    bind(body.GetInt("passes", 3), &passes);
    bind(body.GetInt("batch_size", 50), &batch_size);
    bind(body.GetInt("shards", 1), &shards);
    bind(body.GetInt("data_seed", 42), &data_seed);
    bind(body.GetInt("seed", 1), &train_seed);
    bind(body.GetInt("timeout_ms", 0), &timeout_ms);
    bind(body.GetInt("positive_class", 0), &positive_class);
  }
  if (!field.ok()) return JsonError(400, "bad_request", field.message());
  if (passes < 1 || batch_size < 1 || shards < 1 || timeout_ms < 0) {
    return JsonError(400, "bad_request",
                     "passes, batch_size, shards must be >= 1 and "
                     "timeout_ms >= 0");
  }

  auto algorithm = ParseAlgorithm(algorithm_name);
  if (!algorithm.ok()) {
    return JsonError(400, "bad_request", algorithm.status().message());
  }
  if (model_name == "logistic") {
    config.model = ModelKind::kLogistic;
  } else if (model_name == "huber_svm") {
    config.model = ModelKind::kHuberSvm;
  } else {
    return JsonError(400, "bad_request",
                     "model must be \"logistic\" or \"huber_svm\"");
  }
  config.algorithm = algorithm.value();
  config.privacy = PrivacyParams{epsilon, delta};
  config.passes = static_cast<size_t>(passes);
  config.batch_size = static_cast<size_t>(batch_size);
  config.shards = static_cast<size_t>(shards);
  config.executor.max_threads = options_.max_training_threads;

  // Admission: refuse-fast before any expensive work.
  auto ticket = admission_->Admit(tenant.value());
  if (!ticket.ok()) {
    return AdmissionRefusal(ticket.status(), /*retry_after_seconds=*/1);
  }

  auto data = DatasetFor(dataset_name, scale,
                         static_cast<uint64_t>(data_seed));
  if (!data.ok()) {
    const int status =
        data.status().code() == StatusCode::kNotFound ? 404 : 400;
    return JsonError(status, "bad_dataset", data.status().message());
  }
  const Dataset& full_train = data.value()->first;
  Dataset binary_view;
  const Dataset* train = &full_train;
  if (full_train.num_classes() > 2) {
    if (positive_class < 0 || positive_class >= full_train.num_classes()) {
      return JsonError(400, "bad_request",
                       "positive_class out of range for this dataset");
    }
    binary_view = full_train.OneVsAllView(static_cast<int>(positive_class));
    train = &binary_view;
  }

  // Budget: write-ahead reserve before the run. Noiseless runs release
  // nothing private and spend nothing.
  const bool is_private = config.algorithm != Algorithm::kNoiseless;
  uint64_t hold_id = 0;
  if (is_private) {
    auto reserved = budget_->Reserve(
        tenant.value(), config.privacy,
        StrFormat("train %s/%s", dataset_name.c_str(),
                  AlgorithmName(config.algorithm)));
    if (!reserved.ok()) {
      if (reserved.status().code() == StatusCode::kFailedPrecondition) {
        return BudgetRefusal(tenant.value(), budget_->Account(tenant.value()),
                             reserved.status());
      }
      if (reserved.status().code() == StatusCode::kInvalidArgument) {
        // Malformed (ε, δ) in the request, not a server fault.
        return JsonError(400, "bad_request", reserved.status().message());
      }
      return JsonError(500, "budget_unavailable", reserved.status().message());
    }
    hold_id = reserved.value();
  }

  // Fault gate between reserve and the run: an injected dispatch error
  // aborts before any work (and before any noise), so the hold refunds.
  Status dispatch = FailpointRegistry::Default().Evaluate("serve.dispatch");
  if (!dispatch.ok()) {
    if (is_private) budget_->Refund(hold_id).CheckOK();
    return JsonError(500, "dispatch_failed", dispatch.message());
  }

  // Deadline propagation: the request token chains under the daemon's
  // drain token, and the solver polls it at batch boundaries.
  CancellationToken cancel(&drain_cancel_);
  const uint64_t effective_timeout =
      timeout_ms > 0 ? static_cast<uint64_t>(timeout_ms)
                     : options_.default_timeout_ms;
  if (effective_timeout > 0) cancel.SetTimeout(effective_timeout);
  config.executor.cancel = &cancel;

  const auto started = std::chrono::steady_clock::now();
  Rng rng(static_cast<uint64_t>(train_seed));
  auto trained = TrainBinary(*train, config, &rng);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();

  if (!trained.ok()) {
    const bool cancelled =
        trained.status().code() == StatusCode::kCancelled;
    if (cancelled) Metrics().cancelled->Increment();
    if (is_private) {
      if (RefundableOnFailure(config.algorithm)) {
        // Bolt-on draws noise only at release; a run that ended early
        // released nothing, so the hold refunds.
        budget_->Refund(hold_id).CheckOK();
      } else {
        // White-box noise is already in the world — commit the spend.
        budget_->Commit(hold_id).CheckOK();
      }
    }
    if (cancelled) {
      return JsonError(408, "timeout", trained.status().message());
    }
    return JsonError(500, "train_failed", trained.status().message());
  }
  if (is_private) {
    Status committed = budget_->Commit(hold_id);
    if (!committed.ok()) {
      // Unreachable by construction (the hold exists and reserve
      // guaranteed capacity); surface rather than release unaccounted.
      return JsonError(500, "budget_commit_failed", committed.message());
    }
  }

  std::string model_id;
  {
    std::lock_guard<std::mutex> lock(models_mu_);
    model_id = StrFormat("%s-%llu", tenant.value().c_str(),
                         static_cast<unsigned long long>(next_model_seq_++));
    StoredModel stored;
    stored.tenant = tenant.value();
    stored.weights = std::move(trained).value();
    stored.algorithm = AlgorithmName(config.algorithm);
    stored.dataset = dataset_name;
    models_[model_id] = std::move(stored);
  }

  const TenantAccountView account = budget_->Account(tenant.value());
  return JsonOk(StrFormat(
      "{\"model_id\":\"%s\",\"tenant\":\"%s\",\"algorithm\":\"%s\","
      "\"dataset\":\"%s\",\"dim\":%zu,\"elapsed_ms\":%.3f,"
      "\"epsilon\":%g,\"delta\":%g,"
      "\"spent_epsilon\":%.12g,\"remaining_epsilon\":%.12g}\n",
      JsonEscape(model_id).c_str(), JsonEscape(tenant.value()).c_str(),
      AlgorithmName(config.algorithm), JsonEscape(dataset_name).c_str(),
      train->dim(), elapsed_ms, is_private ? epsilon : 0.0,
      is_private ? delta : 0.0, account.spent.epsilon,
      account.budget.epsilon - account.spent.epsilon -
          account.reserved.epsilon));
}

HttpResponse ServeDaemon::HandlePredict(const HttpRequest& request) {
  Metrics().requests->Increment();
  if (draining_.load(std::memory_order_acquire)) {
    Metrics().draining->Increment();
    return JsonError(503, "draining", "daemon is shutting down");
  }
  RequestScope scope(&inflight_mu_, &inflight_cv_, &inflight_);

  auto parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    return JsonError(400, "bad_request", parsed.status().message());
  }
  const JsonValue& body = parsed.value();
  auto tenant = body.GetString("tenant", "");
  auto model_id = body.GetString("model_id", "");
  if (!tenant.ok() || !model_id.ok()) {
    return JsonError(400, "bad_request",
                     (!tenant.ok() ? tenant.status() : model_id.status())
                         .message());
  }
  if (tenant.value().empty() || model_id.value().empty()) {
    return JsonError(400, "bad_request",
                     "missing required field: tenant and model_id");
  }
  const JsonValue* features = body.Find("features");
  if (features == nullptr || !features->is_array()) {
    return JsonError(400, "bad_request",
                     "missing required array field: features");
  }

  Vector x(features->array_items().size());
  for (size_t i = 0; i < features->array_items().size(); ++i) {
    const JsonValue& item = features->array_items()[i];
    if (!item.is_number()) {
      return JsonError(400, "bad_request", "features must all be numbers");
    }
    x[i] = item.number_value();
  }

  Vector weights;
  std::string algorithm;
  {
    std::lock_guard<std::mutex> lock(models_mu_);
    auto it = models_.find(model_id.value());
    // A foreign tenant's model id answers the same 404 as a missing one:
    // existence of another tenant's model is not disclosed.
    if (it == models_.end() || it->second.tenant != tenant.value()) {
      return JsonError(404, "model_not_found",
                       "no such model for this tenant");
    }
    weights = it->second.weights;
    algorithm = it->second.algorithm;
  }
  if (weights.dim() != x.dim()) {
    return JsonError(400, "bad_request",
                     StrFormat("features dim %zu != model dim %zu", x.dim(),
                               weights.dim()));
  }
  // The released model is already differentially private (or noiseless by
  // request); scoring it is post-processing and spends no budget.
  const double score = Dot(weights, x);
  return JsonOk(StrFormat(
      "{\"model_id\":\"%s\",\"algorithm\":\"%s\",\"score\":%.12g,"
      "\"prediction\":%d}\n",
      JsonEscape(model_id.value()).c_str(), algorithm.c_str(), score,
      score >= 0.0 ? 1 : -1));
}

HttpResponse ServeDaemon::HandleAggregate(const HttpRequest& request) {
  Metrics().requests->Increment();
  if (draining_.load(std::memory_order_acquire)) {
    Metrics().draining->Increment();
    return JsonError(503, "draining", "daemon is shutting down");
  }
  RequestScope scope(&inflight_mu_, &inflight_cv_, &inflight_);

  auto parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    return JsonError(400, "bad_request", parsed.status().message());
  }
  const JsonValue& body = parsed.value();
  auto tenant = body.GetString("tenant", "");
  if (!tenant.ok()) return JsonError(400, "bad_request", tenant.status().message());
  if (tenant.value().empty()) {
    return JsonError(400, "bad_request", "missing required field: tenant");
  }

  std::string dataset_name, op;
  double scale = 0.0, epsilon = 0.0, delta = 0.0;
  int64_t data_seed = 0, noise_seed = 0, column = 0;
  Status field = Status::OK();
  {
    auto bind = [&field](auto result, auto* out) {
      if (field.ok()) {
        if (result.ok()) {
          *out = result.value();
        } else {
          field = result.status();
        }
      }
    };
    bind(body.GetString("dataset", "protein"), &dataset_name);
    bind(body.GetString("op", "count"), &op);
    bind(body.GetNumber("scale", 0.01), &scale);
    bind(body.GetNumber("epsilon", 0.1), &epsilon);
    bind(body.GetNumber("delta", 0.0), &delta);
    bind(body.GetInt("data_seed", 42), &data_seed);
    bind(body.GetInt("seed", 1), &noise_seed);
    bind(body.GetInt("column", 0), &column);
  }
  if (!field.ok()) return JsonError(400, "bad_request", field.message());
  if (op != "count" && op != "feature_mean") {
    return JsonError(400, "bad_request",
                     "op must be \"count\" or \"feature_mean\"");
  }

  auto ticket = admission_->Admit(tenant.value());
  if (!ticket.ok()) {
    return AdmissionRefusal(ticket.status(), /*retry_after_seconds=*/1);
  }

  auto data = DatasetFor(dataset_name, scale,
                         static_cast<uint64_t>(data_seed));
  if (!data.ok()) {
    const int status =
        data.status().code() == StatusCode::kNotFound ? 404 : 400;
    return JsonError(status, "bad_dataset", data.status().message());
  }
  auto table = MakeTable(data.value()->first, StorageMode::kMemory);
  if (!table.ok()) {
    return JsonError(500, "table_failed", table.status().message());
  }
  if (op == "feature_mean" &&
      (column < 0 ||
       static_cast<size_t>(column) >= table.value()->dim())) {
    return JsonError(400, "bad_request", "column out of range");
  }

  const PrivacyParams cost{epsilon, delta};
  auto reserved = budget_->Reserve(
      tenant.value(), cost,
      StrFormat("aggregate %s/%s", dataset_name.c_str(), op.c_str()));
  if (!reserved.ok()) {
    if (reserved.status().code() == StatusCode::kFailedPrecondition) {
      return BudgetRefusal(tenant.value(), budget_->Account(tenant.value()),
                           reserved.status());
    }
    if (reserved.status().code() == StatusCode::kInvalidArgument) {
      return JsonError(400, "bad_request", reserved.status().message());
    }
    return JsonError(500, "budget_unavailable", reserved.status().message());
  }
  const uint64_t hold_id = reserved.value();

  Rng rng(static_cast<uint64_t>(noise_seed));
  Result<PrivateScalar> released =
      op == "count"
          ? PrivateCount(*table.value(), cost, &rng)
          : PrivateFeatureMean(*table.value(), static_cast<size_t>(column),
                               cost, &rng);
  if (!released.ok()) {
    // The aggregate failed before releasing anything — refundable.
    budget_->Refund(hold_id).CheckOK();
    return JsonError(500, "aggregate_failed", released.status().message());
  }
  Status committed = budget_->Commit(hold_id);
  if (!committed.ok()) {
    return JsonError(500, "budget_commit_failed", committed.message());
  }
  const TenantAccountView account = budget_->Account(tenant.value());
  return JsonOk(StrFormat(
      "{\"op\":\"%s\",\"dataset\":\"%s\",\"value\":%.12g,"
      "\"epsilon\":%g,\"delta\":%g,\"spent_epsilon\":%.12g,"
      "\"remaining_epsilon\":%.12g}\n",
      op.c_str(), JsonEscape(dataset_name).c_str(), released.value().noisy,
      epsilon, delta, account.spent.epsilon,
      account.budget.epsilon - account.spent.epsilon -
          account.reserved.epsilon));
}

HttpResponse ServeDaemon::HandleBudget(const HttpRequest& request) {
  Metrics().requests->Increment();
  const std::string tenant = QueryParam(request.query, "tenant");
  if (!tenant.empty()) {
    return JsonOk(RenderAccountView(budget_->Account(tenant)) + "\n");
  }
  std::string body = "[";
  bool first = true;
  for (const TenantAccountView& view : budget_->Snapshot()) {
    if (!first) body += ",";
    first = false;
    body += RenderAccountView(view);
  }
  body += "]\n";
  return JsonOk(std::move(body));
}

}  // namespace serve
}  // namespace bolton
