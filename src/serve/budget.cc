#include "serve/budget.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/ledger.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {
namespace serve {

namespace {

constexpr char kMagic[] = "bolton-budget v1";

/// Tolerance for the over-budget comparison: ε/δ sums accumulate float
/// error across many holds; a request within one part in 10⁹ of the line
/// is admitted rather than refused on rounding noise.
constexpr double kBudgetSlack = 1e-9;

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Tenant ids and labels are identifier-ish; "-" stands for the empty
/// string and embedded whitespace is made safe (same convention as the
/// checkpoint format).
std::string EncodeToken(const std::string& s) {
  if (s.empty()) return "-";
  std::string out = s;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return out;
}

std::string DecodeToken(const std::string& s) { return s == "-" ? "" : s; }

Result<uint64_t> ParseU64Token(const std::string& text) {
  auto parsed = ParseInt(text);
  if (!parsed.ok() || parsed.value() < 0) {
    return Status::InvalidArgument(
        StrFormat("bad unsigned integer '%s'", text.c_str()));
  }
  return static_cast<uint64_t>(parsed.value());
}

void SleepBeforeRetry(const ShardRetryPolicy& retry, size_t attempt,
                      Rng* jitter_rng) {
  if (retry.backoff_base_ms == 0) return;
  const size_t shift = std::min<size_t>(attempt - 1, 20);
  double ms = static_cast<double>(retry.backoff_base_ms) *
              static_cast<double>(uint64_t{1} << shift);
  if (retry.jitter_frac > 0.0) {
    ms *= 1.0 + jitter_rng->UniformDouble(0.0, retry.jitter_frac);
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void RecordBudgetEvent(const std::string& kind, const std::string& tenant,
                       const std::string& label, const PrivacyParams& cost,
                       bool accepted) {
  obs::PrivacyLedger& ledger = obs::PrivacyLedger::Default();
  if (!ledger.enabled()) return;
  obs::LedgerEvent event;
  event.kind = kind;
  event.label = label;
  event.tenant = tenant;
  event.epsilon = cost.epsilon;
  event.delta = cost.delta;
  event.accepted = accepted;
  ledger.Record(std::move(event));
}

struct BudgetMetrics {
  obs::Counter* reserves;
  obs::Counter* commits;
  obs::Counter* refunds;
  obs::Counter* refusals;
  obs::Counter* recovered;
  obs::Counter* persist_retries;
  obs::Counter* persist_errors;
};

BudgetMetrics& Metrics() {
  static BudgetMetrics* m = new BudgetMetrics{
      obs::MetricsRegistry::Default().GetCounter("serve.budget_reserves"),
      obs::MetricsRegistry::Default().GetCounter("serve.budget_commits"),
      obs::MetricsRegistry::Default().GetCounter("serve.budget_refunds"),
      obs::MetricsRegistry::Default().GetCounter("serve.budget_refusals"),
      obs::MetricsRegistry::Default().GetCounter("serve.budget_recovered"),
      obs::MetricsRegistry::Default().GetCounter("serve.persist_retries"),
      obs::MetricsRegistry::Default().GetCounter("serve.persist_errors"),
  };
  return *m;
}

}  // namespace

TenantBudgetManager::TenantBudgetManager(const TenantBudgetOptions& options)
    : options_(options) {
  if (!options_.state_dir.empty()) {
    path_ = options_.state_dir + "/bolton.budget";
    tmp_path_ = path_ + ".tmp";
  }
}

Result<std::unique_ptr<TenantBudgetManager>> TenantBudgetManager::Open(
    const TenantBudgetOptions& options) {
  BOLTON_RETURN_IF_ERROR(options.default_budget.Validate().WithContext(
      "tenant default budget"));
  std::unique_ptr<TenantBudgetManager> manager(
      new TenantBudgetManager(options));
  if (manager->path_.empty()) return manager;

  auto content = ReadFileToString(manager->path_);
  if (content.status().code() == StatusCode::kNotFound) {
    return manager;  // first boot: empty state
  }
  BOLTON_RETURN_IF_ERROR(content.status());

  std::lock_guard<std::mutex> lock(manager->mu_);
  BOLTON_RETURN_IF_ERROR(
      manager->RestoreLocked(content.value())
          .WithContext(StrFormat("budget state %s", manager->path_.c_str())));

  // Crash recovery: every hold still pending on disk may have released
  // noise before the commit persisted — promote it to spend. Charging an
  // unreleased run over-counts ε (safe); forgetting a released one would
  // under-count (a privacy violation), so pending always promotes.
  for (const auto& entry : manager->holds_) {
    const Hold& hold = entry.second;
    auto account = manager->accounts_.find(hold.tenant);
    if (account == manager->accounts_.end()) continue;  // unreachable
    Status charged = account->second.accountant.Charge(
        hold.cost, hold.label + " (recovered)");
    if (!charged.ok()) {
      // A reserve was only ever admitted within budget, so this means the
      // state file is inconsistent; surface it rather than dropping spend.
      return charged.WithContext(
          StrFormat("promoting recovered hold for tenant '%s'",
                    hold.tenant.c_str()));
    }
    account->second.reserved.epsilon -= hold.cost.epsilon;
    account->second.reserved.delta -= hold.cost.delta;
    account->second.recovered += 1;
    manager->recovered_holds_ += 1;
    Metrics().recovered->Increment();
    RecordBudgetEvent("budget_recover", hold.tenant, hold.label, hold.cost,
                      true);
    BOLTON_LOG(kWarning) << "budget recovery: promoted pending hold ("
                         << hold.tenant << ", eps=" << hold.cost.epsilon
                         << ") to committed spend";
  }
  manager->holds_.clear();
  for (auto& entry : manager->accounts_) {
    entry.second.reserved = PrivacyParams{0.0, 0.0};
  }
  BOLTON_RETURN_IF_ERROR(manager->PersistLocked());
  return manager;
}

TenantBudgetManager::AccountState& TenantBudgetManager::GetOrCreateLocked(
    const std::string& tenant) {
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    it = accounts_.emplace(tenant, AccountState(options_.default_budget)).first;
  }
  return it->second;
}

Result<uint64_t> TenantBudgetManager::Reserve(const std::string& tenant,
                                              const PrivacyParams& cost,
                                              const std::string& label) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant id must be non-empty");
  }
  BOLTON_RETURN_IF_ERROR(cost.Validate().WithContext(
      StrFormat("budget reserve for tenant '%s'", tenant.c_str())));

  std::lock_guard<std::mutex> lock(mu_);
  AccountState& account = GetOrCreateLocked(tenant);
  const PrivacyParams remaining = account.accountant.Remaining();
  const double epsilon_free = remaining.epsilon - account.reserved.epsilon;
  const double delta_free = remaining.delta - account.reserved.delta;
  if (cost.epsilon > epsilon_free + kBudgetSlack ||
      cost.delta > delta_free + kBudgetSlack) {
    account.refusals += 1;
    Metrics().refusals->Increment();
    RecordBudgetEvent("budget_refusal", tenant, label, cost, false);
    return Status::FailedPrecondition(StrFormat(
        "budget_exhausted: tenant '%s' asked for (ε=%g, δ=%g) with only "
        "(ε=%g, δ=%g) uncommitted",
        tenant.c_str(), cost.epsilon, cost.delta, std::max(0.0, epsilon_free),
        std::max(0.0, delta_free)));
  }

  // Fault gate before any mutation: an injected reserve error refuses the
  // request cleanly (nothing held, nothing persisted).
  BOLTON_FAILPOINT("serve.budget_reserve");

  const uint64_t hold_id = next_hold_id_++;
  holds_[hold_id] = Hold{tenant, cost, label};
  account.reserved.epsilon += cost.epsilon;
  account.reserved.delta += cost.delta;

  // Write-ahead: the hold must be durable before any training work (and
  // certainly before any noise) happens under it.
  Status persisted = PersistLocked();
  if (!persisted.ok()) {
    holds_.erase(hold_id);
    account.reserved.epsilon -= cost.epsilon;
    account.reserved.delta -= cost.delta;
    return persisted.WithContext("budget reserve write-ahead");
  }
  Metrics().reserves->Increment();
  RecordBudgetEvent("budget_reserve", tenant, label, cost, true);
  return hold_id;
}

Status TenantBudgetManager::Commit(uint64_t hold_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) {
    return Status::NotFound(
        StrFormat("unknown budget hold %llu",
                  static_cast<unsigned long long>(hold_id)));
  }
  const Hold hold = it->second;
  AccountState& account = GetOrCreateLocked(hold.tenant);

  // The in-memory transition happens unconditionally: by commit time the
  // noisy model has been (or is about to be) released, so the spend is a
  // fact. Only the persist below can fail, and that failure is tolerable —
  // the disk still shows the hold as pending and recovery promotes it.
  Status charged = account.accountant.Charge(hold.cost, hold.label);
  if (!charged.ok()) {
    // Reserve guaranteed capacity; this is bookkeeping corruption.
    return charged.WithContext("budget commit");
  }
  account.reserved.epsilon -= hold.cost.epsilon;
  account.reserved.delta -= hold.cost.delta;
  account.commits += 1;
  holds_.erase(it);
  Metrics().commits->Increment();
  RecordBudgetEvent("budget_commit", hold.tenant, hold.label, hold.cost,
                    true);

  // Fault gate on the commit persist path (chaos tests arm error/panic
  // here: error = persist failure tolerated; panic = crash between spend
  // and persist, resolved by recovery promotion).
  Status inject = FailpointRegistry::Default().Evaluate("serve.budget_commit");
  Status persisted = inject.ok() ? PersistLocked() : inject;
  if (!persisted.ok()) {
    Metrics().persist_errors->Increment();
    BOLTON_LOG(kWarning)
        << "budget commit persisted lazily (state file still shows the "
        << "hold; recovery would promote it): " << persisted.ToString();
  }
  return Status::OK();
}

Status TenantBudgetManager::Refund(uint64_t hold_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) {
    return Status::NotFound(
        StrFormat("unknown budget hold %llu",
                  static_cast<unsigned long long>(hold_id)));
  }
  const Hold hold = it->second;
  AccountState& account = GetOrCreateLocked(hold.tenant);
  account.reserved.epsilon -= hold.cost.epsilon;
  account.reserved.delta -= hold.cost.delta;
  account.refunds += 1;
  holds_.erase(it);
  Metrics().refunds->Increment();
  RecordBudgetEvent("budget_refund", hold.tenant, hold.label, hold.cost,
                    true);
  // Best-effort persist: a failure leaves the hold pending on disk, and a
  // later crash would conservatively promote it — an over-charge, never an
  // under-charge.
  Status persisted = PersistLocked();
  if (!persisted.ok()) {
    Metrics().persist_errors->Increment();
    BOLTON_LOG(kWarning) << "budget refund persist failed (refund stands "
                         << "in memory; a crash before the next persist "
                         << "re-charges it): " << persisted.ToString();
  }
  return Status::OK();
}

TenantAccountView TenantBudgetManager::ViewLocked(
    const std::string& tenant, const AccountState& account) const {
  TenantAccountView view;
  view.tenant = tenant;
  view.budget = account.budget;
  view.spent = account.accountant.Spent();
  view.reserved = account.reserved;
  view.commits = account.commits;
  view.refunds = account.refunds;
  view.refusals = account.refusals;
  view.recovered = account.recovered;
  return view;
}

TenantAccountView TenantBudgetManager::Account(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    TenantAccountView view;
    view.tenant = tenant;
    view.budget = options_.default_budget;
    return view;
  }
  return ViewLocked(tenant, it->second);
}

std::vector<TenantAccountView> TenantBudgetManager::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantAccountView> out;
  out.reserve(accounts_.size());
  for (const auto& entry : accounts_) {
    out.push_back(ViewLocked(entry.first, entry.second));
  }
  return out;
}

std::string TenantBudgetManager::RenderLocked() const {
  std::string out = kMagic;
  out += "\n";
  out += StrFormat("next_hold %llu\n",
                   static_cast<unsigned long long>(next_hold_id_));
  out += StrFormat("accounts %zu\n", accounts_.size());
  for (const auto& entry : accounts_) {
    const AccountState& a = entry.second;
    const PrivacyParams spent = a.accountant.Spent();
    out += StrFormat(
        "account %s %.17g %.17g %.17g %.17g %llu %llu %llu %llu\n",
        EncodeToken(entry.first).c_str(), a.budget.epsilon, a.budget.delta,
        spent.epsilon, spent.delta,
        static_cast<unsigned long long>(a.commits),
        static_cast<unsigned long long>(a.refunds),
        static_cast<unsigned long long>(a.refusals),
        static_cast<unsigned long long>(a.recovered));
  }
  out += StrFormat("holds %zu\n", holds_.size());
  for (const auto& entry : holds_) {
    const Hold& hold = entry.second;
    out += StrFormat("hold %llu %s %.17g %.17g %s\n",
                     static_cast<unsigned long long>(entry.first),
                     EncodeToken(hold.tenant).c_str(), hold.cost.epsilon,
                     hold.cost.delta, EncodeToken(hold.label).c_str());
  }
  out += StrFormat("checksum %016llx\n",
                   static_cast<unsigned long long>(
                       Fnv1a(out.data(), out.size())));
  return out;
}

Status TenantBudgetManager::RestoreLocked(const std::string& content) {
  const size_t checksum_at = content.rfind("\nchecksum ");
  if (checksum_at == std::string::npos) {
    return Status::InvalidArgument("missing checksum line");
  }
  const size_t body_size = checksum_at + 1;  // include the preceding '\n'
  const std::string checksum_line(
      StripWhitespace(content.substr(body_size)));
  const std::string expected =
      StrFormat("checksum %016llx",
                static_cast<unsigned long long>(
                    Fnv1a(content.data(), body_size)));
  if (checksum_line != expected) {
    return Status::InvalidArgument("checksum mismatch (truncated or "
                                   "corrupted budget state)");
  }

  std::vector<std::string> lines;
  for (const std::string& line : StrSplit(content.substr(0, body_size), '\n')) {
    if (!std::string(StripWhitespace(line)).empty()) lines.push_back(line);
  }
  size_t at = 0;
  auto next_tokens = [&](const char* want) -> Result<std::vector<std::string>> {
    if (at >= lines.size()) {
      return Status::InvalidArgument(
          StrFormat("truncated state: expected '%s' line", want));
    }
    std::vector<std::string> tokens = StrSplit(lines[at++], ' ');
    if (tokens.empty() || tokens[0] != want) {
      return Status::InvalidArgument(
          StrFormat("expected '%s' line, got '%s'", want,
                    lines[at - 1].c_str()));
    }
    return tokens;
  };

  if (at >= lines.size() || lines[at] != kMagic) {
    return Status::InvalidArgument("not a bolton-budget v1 file");
  }
  ++at;
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, next_tokens("next_hold"));
    if (tokens.size() != 2) return Status::InvalidArgument("bad next_hold");
    BOLTON_ASSIGN_OR_RETURN(next_hold_id_, ParseU64Token(tokens[1]));
  }
  uint64_t account_count = 0;
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, next_tokens("accounts"));
    if (tokens.size() != 2) return Status::InvalidArgument("bad accounts");
    BOLTON_ASSIGN_OR_RETURN(account_count, ParseU64Token(tokens[1]));
  }
  accounts_.clear();
  for (uint64_t i = 0; i < account_count; ++i) {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, next_tokens("account"));
    if (tokens.size() != 10) {
      return Status::InvalidArgument("bad account line");
    }
    const std::string tenant = DecodeToken(tokens[1]);
    PrivacyParams budget, spent;
    BOLTON_ASSIGN_OR_RETURN(budget.epsilon, ParseDouble(tokens[2]));
    BOLTON_ASSIGN_OR_RETURN(budget.delta, ParseDouble(tokens[3]));
    BOLTON_ASSIGN_OR_RETURN(spent.epsilon, ParseDouble(tokens[4]));
    BOLTON_ASSIGN_OR_RETURN(spent.delta, ParseDouble(tokens[5]));
    auto account = accounts_.emplace(tenant, AccountState(budget)).first;
    if (spent.epsilon > 0.0 || spent.delta > 0.0) {
      BOLTON_RETURN_IF_ERROR(
          account->second.accountant.Charge(spent, "restored")
              .WithContext(StrFormat("restoring spend for tenant '%s'",
                                     tenant.c_str())));
    }
    BOLTON_ASSIGN_OR_RETURN(account->second.commits,
                            ParseU64Token(tokens[6]));
    BOLTON_ASSIGN_OR_RETURN(account->second.refunds,
                            ParseU64Token(tokens[7]));
    BOLTON_ASSIGN_OR_RETURN(account->second.refusals,
                            ParseU64Token(tokens[8]));
    BOLTON_ASSIGN_OR_RETURN(account->second.recovered,
                            ParseU64Token(tokens[9]));
  }
  uint64_t hold_count = 0;
  {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, next_tokens("holds"));
    if (tokens.size() != 2) return Status::InvalidArgument("bad holds");
    BOLTON_ASSIGN_OR_RETURN(hold_count, ParseU64Token(tokens[1]));
  }
  holds_.clear();
  for (uint64_t i = 0; i < hold_count; ++i) {
    BOLTON_ASSIGN_OR_RETURN(auto tokens, next_tokens("hold"));
    if (tokens.size() != 6) return Status::InvalidArgument("bad hold line");
    uint64_t id = 0;
    BOLTON_ASSIGN_OR_RETURN(id, ParseU64Token(tokens[1]));
    Hold hold;
    hold.tenant = DecodeToken(tokens[2]);
    BOLTON_ASSIGN_OR_RETURN(hold.cost.epsilon, ParseDouble(tokens[3]));
    BOLTON_ASSIGN_OR_RETURN(hold.cost.delta, ParseDouble(tokens[4]));
    hold.label = DecodeToken(tokens[5]);
    if (accounts_.find(hold.tenant) == accounts_.end()) {
      return Status::InvalidArgument(
          StrFormat("hold for unknown tenant '%s'", hold.tenant.c_str()));
    }
    accounts_.at(hold.tenant).reserved.epsilon += hold.cost.epsilon;
    accounts_.at(hold.tenant).reserved.delta += hold.cost.delta;
    holds_[id] = std::move(hold);
  }
  return Status::OK();
}

Status TenantBudgetManager::PersistLocked() {
  if (path_.empty()) return Status::OK();
  const std::string content = RenderLocked();
  const ShardRetryPolicy& retry = options_.persist_retry;
  const size_t attempts = std::max<size_t>(retry.max_attempts, 1);
  Status last;
  for (size_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      Metrics().persist_retries->Increment();
      SleepBeforeRetry(retry, attempt - 1, &jitter_rng_);
    }
    Status inject = FailpointRegistry::Default().Evaluate("serve.persist");
    last = inject.ok()
               ? AtomicWriteFile(tmp_path_, path_, options_.state_dir,
                                 content)
               : inject;
    if (last.ok()) return last;
  }
  return last.WithContext(
      StrFormat("budget persist failed after %zu attempts", attempts));
}

}  // namespace serve
}  // namespace bolton
