#ifndef BOLTON_DATA_DATASET_H_
#define BOLTON_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// One labeled training/test example. For binary tasks `label` is ±1; for
/// multiclass tasks it is the class index in [0, num_classes).
struct Example {
  Vector x;
  int label = 0;
};

/// An ordered, labeled dataset — the training set S = ((x_i, y_i))_{i=1..m}
/// of the paper. Order matters: permutation-based SGD walks the set in a
/// (shuffled) index order, and the sensitivity analysis is stated in terms of
/// neighboring datasets that differ at one position.
class Dataset {
 public:
  Dataset() = default;

  /// Creates a dataset with the given feature dimension and class count
  /// (2 for binary ±1 labels).
  Dataset(size_t dim, int num_classes) : dim_(dim), num_classes_(num_classes) {}

  size_t size() const { return examples_.size(); }
  size_t dim() const { return dim_; }
  int num_classes() const { return num_classes_; }
  bool empty() const { return examples_.empty(); }

  const Example& operator[](size_t i) const { return examples_[i]; }
  Example& operator[](size_t i) { return examples_[i]; }
  const std::vector<Example>& examples() const { return examples_; }

  /// Appends an example. The feature dimension must match dim().
  void Add(Example example);

  /// Replaces the example at `index`; used by tests to construct neighboring
  /// datasets S ~ S' that differ in exactly one position.
  void Replace(size_t index, Example example);

  /// Scales each feature vector x to ‖x‖ ≤ 1 (dividing by ‖x‖ when it
  /// exceeds 1). This is the preprocessing assumed throughout the paper's
  /// analysis ("each ‖x‖ ≤ 1", §2).
  void NormalizeToUnitBall();

  /// Largest feature-vector norm in the dataset; 0 for an empty set.
  double MaxFeatureNorm() const;

  /// Returns the examples whose indices are listed, in that order.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Returns {first `count` examples, the rest}. Requires count <= size().
  std::pair<Dataset, Dataset> SplitAt(size_t count) const;

  /// Shuffles example order uniformly (Fisher–Yates) using `rng`.
  void Shuffle(Rng* rng);

  /// Splits into `parts` nearly equal contiguous portions (the S_1..S_{l+1}
  /// split of the private tuning Algorithm 3). Requires 1 <= parts <= size().
  std::vector<Dataset> SplitEven(size_t parts) const;

  /// Copies labels of a multiclass set into a ±1 binary view: examples of
  /// class `positive_class` get +1, all others −1 (the one-vs-all reduction
  /// of §4.3).
  Dataset OneVsAllView(int positive_class) const;

  /// Human-readable one-line summary (size/dim/classes), for Table 3.
  std::string Summary(const std::string& name) const;

 private:
  size_t dim_ = 0;
  int num_classes_ = 2;
  std::vector<Example> examples_;
};

}  // namespace bolton

#endif  // BOLTON_DATA_DATASET_H_
