#include "data/dataset.h"

#include <utility>

#include "random/permutation.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

void Dataset::Add(Example example) {
  BOLTON_CHECK(example.x.dim() == dim_);
  examples_.push_back(std::move(example));
}

void Dataset::Replace(size_t index, Example example) {
  BOLTON_CHECK(index < examples_.size());
  BOLTON_CHECK(example.x.dim() == dim_);
  examples_[index] = std::move(example);
}

void Dataset::NormalizeToUnitBall() {
  for (Example& e : examples_) {
    double n = e.x.Norm();
    if (n > 1.0) e.x *= (1.0 / n);
  }
}

double Dataset::MaxFeatureNorm() const {
  double max_norm = 0.0;
  for (const Example& e : examples_) {
    double n = e.x.Norm();
    if (n > max_norm) max_norm = n;
  }
  return max_norm;
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out(dim_, num_classes_);
  for (size_t idx : indices) {
    BOLTON_CHECK(idx < examples_.size());
    out.examples_.push_back(examples_[idx]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::SplitAt(size_t count) const {
  BOLTON_CHECK(count <= examples_.size());
  Dataset head(dim_, num_classes_);
  Dataset tail(dim_, num_classes_);
  head.examples_.assign(examples_.begin(), examples_.begin() + count);
  tail.examples_.assign(examples_.begin() + count, examples_.end());
  return {std::move(head), std::move(tail)};
}

void Dataset::Shuffle(Rng* rng) { ShuffleInPlace(&examples_, rng); }

std::vector<Dataset> Dataset::SplitEven(size_t parts) const {
  BOLTON_CHECK(parts >= 1);
  BOLTON_CHECK(parts <= examples_.size());
  std::vector<Dataset> out;
  out.reserve(parts);
  size_t base = examples_.size() / parts;
  size_t extra = examples_.size() % parts;
  size_t begin = 0;
  for (size_t p = 0; p < parts; ++p) {
    size_t len = base + (p < extra ? 1 : 0);
    Dataset part(dim_, num_classes_);
    part.examples_.assign(examples_.begin() + begin,
                          examples_.begin() + begin + len);
    out.push_back(std::move(part));
    begin += len;
  }
  return out;
}

Dataset Dataset::OneVsAllView(int positive_class) const {
  Dataset out(dim_, 2);
  out.examples_ = examples_;
  for (Example& e : out.examples_) {
    e.label = (e.label == positive_class) ? +1 : -1;
  }
  return out;
}

std::string Dataset::Summary(const std::string& name) const {
  return StrFormat("%-16s m=%-8zu d=%-5zu classes=%-3d max||x||=%.4f",
                   name.c_str(), size(), dim(), num_classes(),
                   MaxFeatureNorm());
}

}  // namespace bolton
